"""Setuptools entry point.

Kept as an explicit ``setup.py`` (rather than a PEP 517 ``[build-system]``
table) so that editable installs work in offline environments that lack the
``wheel`` package.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Online Pricing with Reserve Price Constraint for "
        "Personal Data Markets' (ICDE 2020)"
    ),
    author="Reproduction authors",
    license="MIT",
    python_requires=">=3.9",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=["numpy>=1.21", "scipy>=1.7"],
    extras_require={"dev": ["pytest", "pytest-benchmark", "hypothesis"]},
)
