"""Bench for Table I: per-round statistics of the version with reserve price."""

from conftest import bench_scale, run_once

from repro.experiments.table1 import format_table1, run_table1


def test_table1_statistics(benchmark):
    """Table I rows (market value / reserve / posted price / regret, mean & std)."""
    scale = bench_scale()
    rounds = int(4_000 * scale)
    rows = run_once(
        benchmark, run_table1, dimensions=(1, 20, 40), rounds=rounds, owner_count=200, seed=7
    )

    print()
    print("Table I (version with reserve price)")
    print(format_table1(rows))

    for row in rows:
        market_mean, _ = row.market_value
        reserve_mean, _ = row.reserve_price
        posted_mean, _ = row.posted_price
        regret_mean, _ = row.regret
        # Structural relations the paper's Table I exhibits: the posted price
        # sits between the reserve price and the market value on average, and
        # the per-round regret is a small fraction of the market value.
        assert reserve_mean <= market_mean
        assert posted_mean >= reserve_mean * 0.95
        assert regret_mean <= market_mean
        # Market values grow with the feature dimension (||θ*|| = √(2n)).
    assert rows[0].market_value[0] <= rows[-1].market_value[0]
    benchmark.extra_info["rows"] = [row.as_cells() for row in rows]
