"""Benches for the design-choice ablations called out in DESIGN.md §6.

* cold-start mitigation by the reserve price (the paper's headline qualitative
  finding, quantified over the first rounds),
* the uncertainty buffer δ versus the realised noise scale,
* the ellipsoid mechanism versus the SGD contextual-pricing baseline discussed
  in the related-work section.
"""

import numpy as np
from conftest import bench_scale, run_once

from repro.core.baselines import RiskAversePricer
from repro.core.models import LinearModel
from repro.core.pricing import EllipsoidPricer, PricerConfig
from repro.core.sgd_pricer import SGDContextualPricer
from repro.core.simulation import QueryArrival, compare_pricers
from repro.experiments.cold_start import run_cold_start
from repro.experiments.noise_robustness import format_noise_robustness, run_noise_robustness


def test_cold_start_mitigation(benchmark):
    """Reserve price reduces the regret accumulated over the first rounds."""
    scale = bench_scale()
    result = run_once(
        benchmark,
        run_cold_start,
        dimension=20,
        rounds=int(3_000 * scale),
        window=200,
        owner_count=200,
        seed=41,
    )
    print()
    print(result.format())
    assert result.reserve_cold_start_reduction_percent() > 0.0
    assert (
        result.early_regret_ratio["with reserve price"]
        <= result.early_regret_ratio["pure version"] + 1e-9
    )
    benchmark.extra_info["early_regret_ratio"] = result.early_regret_ratio


def test_noise_robustness(benchmark):
    """The δ buffer keeps θ* in the knowledge set as the market noise grows."""
    scale = bench_scale()
    results = run_once(
        benchmark,
        run_noise_robustness,
        sigmas=(0.0, 0.002, 0.01),
        use_buffer=True,
        dimension=10,
        rounds=int(3_000 * scale),
        seed=43,
    )
    print()
    print(format_noise_robustness(results))
    assert all(result.theta_retained for result in results)
    noiseless = results[0]
    noisiest = results[-1]
    assert noisiest.cumulative_regret >= 0.8 * noiseless.cumulative_regret
    benchmark.extra_info["regret_by_sigma"] = {r.sigma: r.cumulative_regret for r in results}


def test_ellipsoid_vs_sgd_baseline(benchmark):
    """The ellipsoid mechanism beats the SGD contextual-pricing baseline."""
    scale = bench_scale()
    rounds = int(4_000 * scale)
    dimension = 10
    rng = np.random.default_rng(47)
    theta = np.abs(rng.standard_normal(dimension))
    theta *= np.sqrt(2 * dimension) / np.linalg.norm(theta)
    model = LinearModel(theta)
    arrivals = []
    for _ in range(rounds):
        features = np.abs(rng.standard_normal(dimension))
        features /= np.linalg.norm(features)
        arrivals.append(
            QueryArrival(features=features, reserve_value=0.6 * float(features @ theta), noise=0.0)
        )
    radius = 2.0 * np.sqrt(dimension)
    pricers = [
        EllipsoidPricer(PricerConfig(dimension=dimension, radius=radius, epsilon=dimension**2 / rounds)),
        SGDContextualPricer(dimension=dimension, radius=radius),
        RiskAversePricer(),
    ]

    results = run_once(benchmark, compare_pricers, model, pricers, arrivals)

    print()
    for result in results:
        print(
            "  %-28s cumulative regret %10.2f   regret ratio %6.2f%%"
            % (result.pricer_name, result.cumulative_regret, 100 * result.regret_ratio)
        )
    ellipsoid, sgd, risk_averse = results
    assert ellipsoid.cumulative_regret < sgd.cumulative_regret
    assert ellipsoid.cumulative_regret < risk_averse.cumulative_regret
    benchmark.extra_info["regret"] = {r.pricer_name: r.cumulative_regret for r in results}
