"""Bench for the regret-scaling sweeps backing Theorems 1 and 3 (plus ε ablation)."""

from conftest import bench_scale, run_once

from repro.experiments.regret_scaling import (
    format_scaling,
    run_dimension_scaling,
    run_epsilon_ablation,
    run_horizon_scaling,
)


def test_horizon_scaling(benchmark):
    """Cumulative regret grows sub-linearly in the horizon T (Theorem 1 shape)."""
    scale = bench_scale()
    horizons = tuple(int(h * scale) for h in (1_000, 2_000, 4_000, 8_000))
    results = run_once(
        benchmark, run_horizon_scaling, horizons=horizons, dimension=20, owner_count=200, seed=29
    )

    print()
    print(format_scaling(results))

    # Sub-linearity: doubling T must multiply the cumulative regret by clearly
    # less than 2 once past the initial exploration phase.
    first, last = results[0], results[-1]
    growth = last.cumulative_regret / max(first.cumulative_regret, 1e-9)
    horizon_growth = last.rounds / first.rounds
    assert growth < horizon_growth
    # The regret ratio improves with longer horizons.
    assert last.regret_ratio < first.regret_ratio
    benchmark.extra_info["regret"] = {r.rounds: r.cumulative_regret for r in results}


def test_dimension_scaling(benchmark):
    """Cumulative regret grows with the feature dimension n (Theorem 1 shape)."""
    scale = bench_scale()
    rounds = int(4_000 * scale)
    results = run_once(
        benchmark,
        run_dimension_scaling,
        dimensions=(10, 20, 40),
        rounds=rounds,
        owner_count=200,
        seed=31,
    )

    print()
    print(format_scaling(results))

    regrets = [r.cumulative_regret for r in results]
    assert regrets[0] < regrets[-1]
    benchmark.extra_info["regret"] = {r.dimension: r.cumulative_regret for r in results}


def test_epsilon_ablation(benchmark):
    """Regret as ε is scaled around the theoretical max(n²/T, 4nδ) setting."""
    scale = bench_scale()
    rounds = int(4_000 * scale)
    results = run_once(
        benchmark,
        run_epsilon_ablation,
        epsilon_multipliers=(0.25, 1.0, 4.0, 16.0),
        dimension=20,
        rounds=rounds,
        owner_count=200,
        seed=37,
    )

    print()
    print(format_scaling(results))

    # A hugely inflated ε must not beat the theoretical setting by much: it
    # stops exploration too early and pays the conservative-price gap forever.
    theoretical = next(r for r in results if r.parameter_value == 1.0)
    inflated = next(r for r in results if r.parameter_value == 16.0)
    assert inflated.cumulative_regret > 0.8 * theoretical.cumulative_regret
    benchmark.extra_info["regret"] = {r.parameter_value: r.cumulative_regret for r in results}
