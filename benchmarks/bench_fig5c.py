"""Bench for Fig. 5(c): impression-pricing regret ratios (logistic model)."""

from conftest import bench_scale, run_once

from repro.experiments.fig5 import run_fig5c


def test_fig5c_impressions(benchmark):
    """Fig. 5(c): sparse vs dense cases of the CTR-priced impression stream."""
    scale = bench_scale()
    impressions = int(5_000 * scale)
    dimensions = (128,) if scale < 3 else (128, 1024)
    result = run_once(
        benchmark,
        run_fig5c,
        impression_count=impressions,
        training_count=impressions,
        dimensions=dimensions,
        seed=17,
    )

    print()
    print(result.format())

    # Paper claims reproduced in shape: the learned CTR model is sparse, the
    # dense case prices in a much smaller dimension than the hashing modulus,
    # and its regret ratio decreases at least as fast as the sparse case's.
    for dimension in dimensions:
        sparse_label = "n=%d (sparse)" % dimension
        dense_label = "n=%d (dense)" % dimension
        assert result.nonzero_weights[dense_label] < dimension
        assert (
            result.final_ratio[dense_label]
            <= result.final_ratio[sparse_label] + 0.05
        )
        assert result.regret_ratio[sparse_label][-1] <= result.regret_ratio[sparse_label][0] + 1e-9
    benchmark.extra_info["final_ratio"] = result.final_ratio
    benchmark.extra_info["nonzero_weights"] = result.nonzero_weights
