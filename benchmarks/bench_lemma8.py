"""Bench for Lemma 8 / Fig. 6: the conservative-price-cut ablation."""

from conftest import bench_scale, run_once

from repro.experiments.adversarial import run_adversarial_example


def test_lemma8_adversarial_example(benchmark):
    """Allowing conservative-price cuts lets the adversary force Ω(T) regret."""
    scale = bench_scale()
    rounds = int(2_000 * scale)
    results = run_once(benchmark, run_adversarial_example, rounds=rounds)

    print()
    for result in results.values():
        print(result.format())

    forbidden = results["forbidden"]
    allowed = results["allowed"]
    # The paper's Lemma 8: the ablated broker (cutting on conservative prices)
    # suffers regret that grows linearly in T, while the correct broker's
    # regret stays bounded by the (logarithmic) exploration budget.
    assert allowed.cumulative_regret > 10.0 * max(forbidden.cumulative_regret, 1.0)
    assert allowed.width_along_second_axis_at_half_time > 10.0 * max(
        forbidden.width_along_second_axis_at_half_time, 1e-9
    )
    benchmark.extra_info["forbidden_regret"] = forbidden.cumulative_regret
    benchmark.extra_info["allowed_regret"] = allowed.cumulative_regret
