"""Bench for Fig. 5(a): regret ratios of the four versions + risk-averse baseline."""

from conftest import bench_scale, run_once

from repro.experiments.fig5 import run_fig5a


def test_fig5a_regret_ratios(benchmark):
    """Fig. 5(a): noisy linear query, all versions against the risk-averse baseline."""
    scale = bench_scale()
    rounds = int(6_000 * scale)
    dimension = 40 if scale < 3 else 100
    result = run_once(
        benchmark,
        run_fig5a,
        dimension=dimension,
        rounds=rounds,
        owner_count=200,
        delta=0.01,
        seed=11,
    )

    print()
    print(result.format())
    print(
        "reduction vs risk-averse baseline: with reserve price %.1f%%, "
        "with reserve price and uncertainty %.1f%%"
        % (
            result.reduction_vs_risk_averse("with reserve price"),
            result.reduction_vs_risk_averse("with reserve price and uncertainty"),
        )
    )

    finals = result.final_ratio
    # The paper's Fig. 5(a) claims: the ellipsoid versions beat the risk-averse
    # baseline, and the reserve price mitigates the cold start (lower ratio at
    # small t than the corresponding version without reserve).
    assert finals["with reserve price"] < finals["risk-averse baseline"]
    assert finals["with reserve price and uncertainty"] < finals["risk-averse baseline"]
    early_index = 0
    reserve_early = result.regret_ratio["with reserve price"][early_index]
    pure_early = result.regret_ratio["pure version"][early_index]
    assert reserve_early <= pure_early + 1e-9
    benchmark.extra_info["final_ratio"] = finals
