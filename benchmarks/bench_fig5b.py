"""Bench for Fig. 5(b): accommodation-rental regret ratios (log-linear model)."""

from conftest import bench_scale, run_once

from repro.experiments.fig5 import run_fig5b


def test_fig5b_accommodation(benchmark):
    """Fig. 5(b): reserve/market log ratios 0.4 / 0.6 / 0.8 + risk-averse baseline."""
    scale = bench_scale()
    listing_count = int(5_000 * scale)
    result = run_once(
        benchmark,
        run_fig5b,
        listing_count=listing_count,
        reserve_log_ratios=(0.4, 0.6, 0.8),
        seed=13,
    )

    print()
    print(result.format())

    finals = result.final_ratio
    # Paper claims reproduced in shape:
    # (1) a reserve price closer to the market value mitigates the cold start —
    #     at the earliest checkpoints the r=0.8 curve sits below r=0.4;
    early = 0
    assert (
        result.regret_ratio["with reserve price (r=0.8)"][early]
        <= result.regret_ratio["with reserve price (r=0.4)"][early] + 1e-9
    )
    # (2) every ellipsoid version beats the always-post-the-reserve baseline
    #     at the same ratio by a wide margin at the end of the run;
    for ratio, baseline_ratio in result.risk_averse_ratio.items():
        label = "with reserve price (r=%.1f)" % ratio
        assert finals[label] < baseline_ratio
    # (3) the regret ratio decreases as more rounds are traded.
    for label, series in result.regret_ratio.items():
        assert series[-1] <= series[0] + 1e-9
    benchmark.extra_info["final_ratio"] = finals
    benchmark.extra_info["risk_averse_ratio"] = result.risk_averse_ratio
