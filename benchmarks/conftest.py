"""Shared configuration for the benchmark suite.

Each bench regenerates one table or figure of the paper at a laptop-scale
size (the ``SCALE`` environment variable enlarges the workloads, e.g.
``REPRO_BENCH_SCALE=5 pytest benchmarks/ --benchmark-only`` for runs closer to
the paper's horizons) and prints the reproduced rows / series so the output
can be compared with the paper directly (run with ``-s`` to see it live).
"""

import os

import pytest


def bench_scale() -> float:
    """Multiplier applied to benchmark workload sizes (default 1)."""
    try:
        return max(0.1, float(os.environ.get("REPRO_BENCH_SCALE", "1")))
    except ValueError:
        return 1.0


@pytest.fixture
def scale() -> float:
    """Workload scale multiplier fixture."""
    return bench_scale()


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
