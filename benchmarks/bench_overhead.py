"""Bench for Section V-D: per-round online latency and memory overhead.

Unlike the figure benches (which time a whole experiment once), the per-round
latency is also measured directly with pytest-benchmark on a single
propose/update cycle of the n = 100 ellipsoid pricer — the quantity the paper
reports in milliseconds per query.
"""

import numpy as np
from conftest import bench_scale, run_once

from repro.core.pricing import PricerConfig, EllipsoidPricer
from repro.experiments.overhead import format_overhead, run_overhead


def test_overhead_report(benchmark):
    """Latency / memory table for the three applications (plus polytope ablation)."""
    scale = bench_scale()
    reports = run_once(
        benchmark,
        run_overhead,
        noisy_query_rounds=int(1_000 * scale),
        noisy_query_dimension=100,
        listing_count=int(1_000 * scale),
        impression_count=int(1_000 * scale),
        impression_dimension=1024,
        owner_count=200,
        include_polytope_ablation=True,
        polytope_rounds=int(100 * scale),
        seed=23,
    )

    print()
    print(format_overhead(reports))

    ellipsoid_reports = [r for r in reports if "[polytope]" not in r.version]
    polytope_reports = [r for r in reports if "[polytope]" in r.version]
    for report in ellipsoid_reports:
        # The paper reports millisecond-scale latencies and an O(n^2) state;
        # generous ceilings so the assertion is about magnitude, not machine.
        assert report.mean_latency_ms < 50.0
        assert report.state_megabytes < 160.0
    if polytope_reports:
        # The exact polytope (two LPs per round) must be far slower than the
        # ellipsoid representation — the paper's argument for using ellipsoids.
        ellipsoid_small = [r for r in ellipsoid_reports if r.dimension <= 20]
        if ellipsoid_small:
            assert polytope_reports[0].mean_latency_ms > 2.0 * ellipsoid_small[0].mean_latency_ms
    benchmark.extra_info["reports"] = [r.as_cells() for r in reports]


def test_single_round_latency_n100(benchmark):
    """Per-round propose+update latency of the n = 100 pricer (paper: ~0.1 ms)."""
    dimension = 100
    pricer = EllipsoidPricer(
        PricerConfig(dimension=dimension, radius=2.0 * np.sqrt(dimension), epsilon=1e-4)
    )
    rng = np.random.default_rng(0)
    features = np.abs(rng.standard_normal(dimension))
    features /= np.linalg.norm(features)

    def one_round():
        decision = pricer.propose(features, reserve=0.5)
        pricer.update(decision, accepted=True)
        return decision

    benchmark(one_round)
    report = pricer.memory_report()
    print()
    print(
        "n=100 pricer state: %.3f MB (process RSS %s MB)"
        % (
            report.state_megabytes,
            "%.0f" % report.process_megabytes if report.process_megabytes else "n/a",
        )
    )
    assert report.state_megabytes < 1.0
