"""Bench for Fig. 4: cumulative regret of the four algorithm versions.

Regenerates the cumulative-regret-versus-rounds series of Fig. 4 (noisy linear
query pricing under the linear market value model) for a subset of the paper's
feature dimensions, and prints the same series the paper plots.
"""

from conftest import bench_scale, run_once

from repro.experiments.fig4 import run_fig4


def test_fig4_cumulative_regret(benchmark):
    """Fig. 4 (a)/(b): n = 1 and n = 20, four algorithm versions."""
    scale = bench_scale()
    rounds = int(4_000 * scale)
    results = run_once(
        benchmark, run_fig4, dimensions=(1, 20), rounds=rounds, owner_count=200, seed=7
    )

    for dimension, result in results.items():
        print()
        print(result.format())

    for dimension, result in results.items():
        finals = result.final_regret
        # The reserve price constraint must not hurt, and typically helps
        # (cold-start mitigation) — the paper's headline Fig. 4 observation.
        assert finals["with reserve price"] <= finals["pure version"] * 1.05
        assert finals["with reserve price and uncertainty"] <= finals["with uncertainty"] * 1.05
        # Cumulative regret is non-decreasing and strictly sub-linear in T
        # (far below the always-lose bound of mean-value x rounds).
        for version, series in result.cumulative_regret.items():
            assert all(b >= a - 1e-9 for a, b in zip(series, series[1:]))
    benchmark.extra_info["final_regret"] = {
        "n=%d" % dim: result.final_regret for dim, result in results.items()
    }
