#!/usr/bin/env python
"""Load-generate the online quote-serving subsystem and report throughput.

The workload is the fig4-style market (noisy linear query, the same
environment ``scripts/bench_engine.py`` times offline): one shared arrival
stream replayed closed-loop by N concurrent pricing sessions — each round
submits one quote per session, the micro-batch window coalesces them into a
single drain, sales are settled against the realised market values, and the
accept/reject outcomes go back through the batched feedback path before the
next round (so every session runs the exact online protocol).

Four measurement modes, all written into one ``BENCH_serving.json``:

* **closed-loop** (always run) — the in-process baseline: quotes/sec and
  p50/p99 per-quote latency (enqueue → response, i.e. including micro-batch
  queueing delay), sessions resident, and the lifecycle counters.
* **replay-at-rate** (``--target-qps``) — open-loop pacing: quotes are
  submitted on a fixed schedule regardless of completions (an arrival
  process, not a benchmark loop), responses are settled as they drain, and
  the report carries offered vs *achieved* qps plus queue-delay percentiles.
* **networked replay-at-rate** (``--net-target-qps``) — the same open-loop
  arrival schedule driven **through the socket frontend**: ``--connections``
  pipelined :class:`AsyncQuoteClient` connections over a unix socket
  (binary v2 wire and write coalescing by default; ``--wire 1`` measures
  the JSON path), quotes fanned round-robin, feedback settled as results
  arrive.  Reports offered vs achieved qps, client-side round-trip
  percentiles, the server-side queue-delay percentiles, backpressure
  rejections, and the frontend wire/dispatch counters — this is the mode
  that actually exercises the network path.
* **latency-vs-offered-load sweep** (``--sweep-qps lo:hi:steps``) — runs the
  networked mode at ``steps`` offered rates between ``lo`` and ``hi`` (a
  fresh service and frontend per point, so no learning-state carryover) and
  locates the *knee*: the highest offered rate the frontend still sustains
  (achieved ≥ 90% of offered).  The whole curve lands in the report.
* **shard scaling** (``--shards N``) — the same closed-loop replay dispatched
  through :class:`repro.serving.sharding.ShardedRegistry` with 1 worker and
  with N workers (identical pipe dispatch, so the comparison isolates the
  parallelism), reporting both throughputs and the scaling factor.  Scaling
  requires as many idle cores as shards — on a 1-CPU container the factor
  is necessarily ≈ 1.
* **stacked-cut feedback micro-bench** (``--feedback-sessions N``) — N
  same-family ellipsoid sessions in lockstep, timing the ``feedback_batch``
  path twice: the default per-session scalar loop vs ``backend="batched"``
  (one stacked Löwner–John kernel call over the sessions' slab rows).
  Reports both timings, the speedup (``--feedback-min-speedup`` turns it
  into a CI gate), and the stacked-update coverage counters.
* **Zipf popularity sweep** (``--zipf-sessions N``) — the columnar-store
  stress: quotes drawn from a Zipf(``--zipf-a``) popularity law over ``N``
  distinct sessions (≥ 100k in the committed run) against a residency bound
  of ``--zipf-max-sessions``, so the tail of the distribution thrashes
  through persist → clock-evict → hydrate continuously.  Reports
  hydration-storm latency percentiles, resident-memory bytes (and
  bytes/session — the CI regression gate), the zero-copy vs legacy
  hydration split, and an eviction-cost curve across resident set sizes:
  clock-hand steps per eviction must stay flat as the resident set grows —
  the O(1) replacement for the old O(n) LRU scan.

Usage::

    PYTHONPATH=src python scripts/bench_serving.py --rounds 5000 --sessions 4
    PYTHONPATH=src python scripts/bench_serving.py --target-qps 20000
    PYTHONPATH=src python scripts/bench_serving.py --net-target-qps 10000 --connections 4
    PYTHONPATH=src python scripts/bench_serving.py --shards 4
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import shutil
import sys
import tempfile
import time

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.apps.common import ALGORITHM_VERSIONS, build_pricer_for_version
from repro.apps.noisy_linear_query import NoisyLinearQueryConfig, build_noisy_query_environment
from repro.engine import prepare, stream_rounds
from repro.exceptions import BackpressureError, ServingError
from repro.serving import (
    AsyncQuoteClient,
    FeedbackEvent,
    MicroBatchConfig,
    PricerRegistry,
    QuoteRequest,
    QuoteService,
    SessionKey,
    ShardedRegistry,
    frame_sold_at,
    start_frontend_thread,
)
from repro.utils.metrics import LatencySummary


def parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rounds", type=int, default=5_000, help="rounds per session")
    parser.add_argument("--sessions", type=int, default=4, help="concurrent pricing sessions")
    parser.add_argument("--dimension", type=int, default=20, help="feature dimension n")
    parser.add_argument("--owner-count", type=int, default=200, help="data owner count")
    parser.add_argument("--seed", type=int, default=7, help="master seed")
    parser.add_argument("--delta", type=float, default=0.01, help="uncertainty buffer")
    parser.add_argument("--max-batch", type=int, default=64, help="micro-batch size bound")
    parser.add_argument(
        "--max-wait-ms", type=float, default=1.0, help="micro-batch window in milliseconds"
    )
    parser.add_argument(
        "--snapshot-dir", default=None, help="session snapshot directory (default: off)"
    )
    parser.add_argument(
        "--persist-every",
        type=int,
        default=0,
        help="write-behind cadence in feedback updates (0 = only on flush/evict)",
    )
    parser.add_argument(
        "--max-sessions", type=int, default=None, help="LRU residency bound (default: unbounded)"
    )
    parser.add_argument(
        "--target-qps",
        type=float,
        default=0.0,
        help="replay-at-rate mode: offered open-loop quote rate (0 = skip)",
    )
    parser.add_argument(
        "--rate-rounds",
        type=int,
        default=0,
        help="rounds per session for the rate mode (0 = same as --rounds)",
    )
    parser.add_argument(
        "--net-target-qps",
        type=float,
        default=0.0,
        help="networked replay-at-rate mode: offered rate through the socket (0 = skip)",
    )
    parser.add_argument(
        "--connections",
        type=int,
        default=4,
        help="pipelined client connections for the networked rate mode",
    )
    parser.add_argument(
        "--wire",
        type=int,
        choices=(1, 2),
        default=2,
        help="wire protocol for the networked modes (2 = binary batched, 1 = JSON)",
    )
    parser.add_argument(
        "--sweep-qps",
        default=None,
        metavar="LO:HI:STEPS",
        help="latency-vs-offered-load sweep through the socket (e.g. 2000:16000:5)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=0,
        help="shard-scaling mode: worker process count (0 = skip)",
    )
    parser.add_argument(
        "--replay-window",
        type=int,
        default=256,
        help="rounds per pipe message in the sharded replay dispatch",
    )
    parser.add_argument(
        "--zipf-sessions",
        type=int,
        default=0,
        help="Zipf popularity sweep: distinct session universe size (0 = skip)",
    )
    parser.add_argument(
        "--zipf-events",
        type=int,
        default=200_000,
        help="quote+feedback events drawn for the Zipf sweep",
    )
    parser.add_argument(
        "--zipf-a",
        type=float,
        default=1.1,
        help="Zipf exponent of the session popularity law",
    )
    parser.add_argument(
        "--zipf-max-sessions",
        type=int,
        default=4096,
        help="residency bound for the Zipf sweep (the clock-eviction stress)",
    )
    parser.add_argument(
        "--zipf-format",
        choices=("legacy", "segment"),
        default="segment",
        help="snapshot format the Zipf sweep persists through",
    )
    parser.add_argument(
        "--feedback-sessions",
        type=int,
        default=0,
        help="cross-session stacked-cut micro-bench: concurrent sessions (0 = skip)",
    )
    parser.add_argument(
        "--feedback-rounds",
        type=int,
        default=200,
        help="lockstep rounds per session for the stacked-cut micro-bench",
    )
    parser.add_argument(
        "--feedback-min-speedup",
        type=float,
        default=0.0,
        help="fail (exit 1) when the batched feedback speedup lands below this (0 = report only)",
    )
    parser.add_argument(
        "--min-qps",
        type=float,
        default=0.0,
        help="fail (exit 1) when closed-loop quotes/sec lands below this floor (0 = report only)",
    )
    parser.add_argument("--output", default="BENCH_serving.json", help="JSON output path")
    return parser.parse_args(argv)


def build_workload(args):
    """The shared fig4-style market plus session keys and their factory."""
    config = NoisyLinearQueryConfig(
        dimension=args.dimension,
        rounds=args.rounds,
        owner_count=args.owner_count,
        delta=args.delta,
        seed=args.seed,
    )
    environment = build_noisy_query_environment(config)
    materialized = prepare(environment.model, environment.arrival_batch())

    versions = list(ALGORITHM_VERSIONS)
    keys = [
        SessionKey(app="fig4", segment="shard=%d/%s" % (index, versions[index % len(versions)]))
        for index in range(args.sessions)
    ]
    version_of = {key: versions[index % len(versions)] for index, key in enumerate(keys)}

    def factory(key: SessionKey):
        return environment.model, build_pricer_for_version(environment, version_of[key])

    return environment, materialized, keys, factory


def micro_batch_config(args) -> MicroBatchConfig:
    return MicroBatchConfig(
        max_batch=max(args.max_batch, args.sessions),
        max_wait_seconds=args.max_wait_ms / 1000.0,
    )


def run_closed_loop(args, materialized, keys, factory):
    """The in-process closed-loop baseline (the bench's headline numbers)."""
    registry = PricerRegistry(
        factory,
        snapshot_dir=args.snapshot_dir,
        max_sessions=args.max_sessions,
        persist_every=args.persist_every,
    )
    service = QuoteService(registry, config=micro_batch_config(args))

    print("serving %d quotes closed-loop ..." % (args.rounds * args.sessions))
    start = time.perf_counter()
    for round_ in stream_rounds(materialized):
        for key in keys:
            service.submit(
                QuoteRequest(key=key, features=round_.features, reserve=round_.reserve)
            )
        events = [
            FeedbackEvent(
                key=response.key,
                quote_id=response.quote_id,
                accepted=response.sold_at(round_.market_value),
            )
            for response in service.flush()
        ]
        service.feedback_batch(events)
    wall_seconds = time.perf_counter() - start
    if args.snapshot_dir:
        registry.flush()

    quotes = service.stats.quotes_served
    qps = quotes / wall_seconds if wall_seconds > 0 else float("inf")
    latency = service.stats.latency_summary()
    print(
        "served %d quotes in %.2fs  ->  %.0f quotes/sec   p50 %.4f ms   p99 %.4f ms"
        % (quotes, wall_seconds, qps, latency.p50_ms, latency.p99_ms)
    )
    return {
        "quotes": quotes,
        "wall_seconds": round(wall_seconds, 4),
        "quotes_per_second": round(qps, 1),
        "latency": {name: round(value, 6) for name, value in latency.as_dict().items()},
        "sessions_resident": registry.resident_count,
        "service": {
            "drains": service.stats.drains,
            "batched_proposals": service.stats.batched_proposals,
            "feedback_applied": service.stats.feedback_applied,
        },
        "registry": registry.stats.as_dict(),
    }


def run_replay_at_rate(args, materialized, keys, factory):
    """Open-loop pacing: submit on a fixed schedule, settle as drains land.

    The schedule is *open-loop*: quote ``i`` is offered at ``start + i/qps``
    whether or not earlier quotes completed (a service that falls behind
    accumulates queue delay instead of throttling the arrival process —
    exactly how live traffic behaves).  Queue-delay percentiles are the
    enqueue → response latencies the service records.
    """
    rate_rounds = args.rate_rounds or args.rounds
    if rate_rounds > args.rounds:
        # The rate mode replays a slice of the closed-loop market; clamp
        # instead of crashing after the closed-loop phase already ran.
        print(
            "note: --rate-rounds %d exceeds --rounds %d; clamping"
            % (rate_rounds, args.rounds)
        )
        rate_rounds = args.rounds
    target_qps = args.target_qps
    registry = PricerRegistry(factory)
    service = QuoteService(registry, config=micro_batch_config(args))

    total = rate_rounds * len(keys)
    print("replaying at %.0f offered qps (%d quotes) ..." % (target_qps, total))
    interval = 1.0 / target_qps
    market_value_of = {}
    settled = 0

    def settle(responses):
        events = [
            FeedbackEvent(
                key=response.key,
                quote_id=response.quote_id,
                accepted=response.sold_at(market_value_of.pop(response.quote_id)),
            )
            for response in responses
        ]
        if events:
            service.feedback_batch(events)
        return len(events)

    offered = 0
    start = time.perf_counter()
    for round_ in stream_rounds(materialized.slice(0, rate_rounds)):
        for key in keys:
            due = start + offered * interval
            now = time.perf_counter()
            if now < due:
                time.sleep(due - now)
                settled += settle(service.poll())
            quote_id = service.submit(
                QuoteRequest(key=key, features=round_.features, reserve=round_.reserve)
            )
            market_value_of[quote_id] = round_.market_value
            offered += 1
            settled += settle(service.poll())
    settled += settle(service.flush())
    wall_seconds = time.perf_counter() - start

    achieved = settled / wall_seconds if wall_seconds > 0 else float("inf")
    latency = service.stats.latency_summary()
    print(
        "offered %.0f qps, achieved %.0f qps   queue-delay p50 %.4f ms   p99 %.4f ms"
        % (target_qps, achieved, latency.p50_ms, latency.p99_ms)
    )
    return {
        "offered_qps": round(target_qps, 1),
        "achieved_qps": round(achieved, 1),
        "quotes": settled,
        "rounds": rate_rounds,
        "wall_seconds": round(wall_seconds, 4),
        "queue_delay": {name: round(value, 6) for name, value in latency.as_dict().items()},
        "service": {
            "drains": service.stats.drains,
            "batched_proposals": service.stats.batched_proposals,
            "feedback_applied": service.stats.feedback_applied,
        },
    }


def run_networked_point(args, materialized, keys, factory, target_qps):
    """One open-loop measurement **through the socket**: real wire, one rate.

    The in-process rate mode never touches a socket; this one starts the
    asyncio frontend on a unix socket (a fresh service per call, so repeated
    points never inherit learning state) and drives it from
    ``--connections`` pipelined :class:`AsyncQuoteClient` connections
    speaking ``--wire`` with write coalescing.  Quotes follow the open-loop
    schedule (quote ``i`` offered at ``start + i/qps``), fanned round-robin
    across connections.  The settle path is callback-driven, not
    task-per-quote: each quote future chains into its feedback submit on
    completion, so a burst of submits per tick stays one coalesced frame
    out and one coalesced frame back, and completions never throttle the
    arrival process.  Backpressure rejections are counted, not retried — an
    overloaded frontend sheds load instead of queueing unboundedly, and the
    achieved qps shows it.
    """
    rate_rounds = args.rate_rounds or args.rounds
    if rate_rounds > args.rounds:
        rate_rounds = args.rounds
    connections = max(1, args.connections)
    registry = PricerRegistry(factory)
    service = QuoteService(registry, config=micro_batch_config(args))
    socket_dir = tempfile.mkdtemp(prefix="bench-serving-net-")
    handle = start_frontend_thread(
        service, unix_path=os.path.join(socket_dir, "quotes.sock"), drain_interval=0.0005
    )
    total = rate_rounds * len(keys)
    print(
        "replaying at %.0f offered qps through the socket "
        "(%d quotes, %d connections, wire v%d) ..."
        % (target_qps, total, connections, args.wire)
    )

    async def _drive():
        clients = [
            await AsyncQuoteClient.connect(
                unix_path=handle.address, wire=args.wire, coalesce_writes=True
            )
            for _ in range(connections)
        ]
        interval = 1.0 / target_qps
        round_trip = []
        counters = {"settled": 0, "rejected": 0, "errors": 0}
        state = {"outstanding": 0, "submits_done": False}
        done = asyncio.Event()

        def _finish_one():
            state["outstanding"] -= 1
            if state["outstanding"] == 0 and state["submits_done"]:
                done.set()

        def _on_feedback(future):
            if future.cancelled() or future.exception() is not None:
                counters["errors"] += 1
            else:
                counters["settled"] += 1
            _finish_one()

        def _on_quote(future, client, key, market_value, begin):
            if future.cancelled():
                counters["errors"] += 1
                _finish_one()
                return
            exc = future.exception()
            if exc is not None:
                if isinstance(exc, BackpressureError):
                    counters["rejected"] += 1
                else:
                    counters["errors"] += 1
                _finish_one()
                return
            result = future.result()
            round_trip.append(time.perf_counter() - begin)
            try:
                feedback = client.submit_feedback(
                    key, result["quote_id"], frame_sold_at(result, market_value)
                )
            except ServingError:
                counters["errors"] += 1
                _finish_one()
                return
            feedback.add_done_callback(_on_feedback)

        offered = 0
        behind = 0
        start = time.perf_counter()
        for round_ in stream_rounds(materialized.slice(0, rate_rounds)):
            for key in keys:
                due = start + offered * interval
                now = time.perf_counter()
                if now < due:
                    await asyncio.sleep(due - now)
                    behind = 0
                else:
                    # Behind schedule: submit back-to-back, but yield every
                    # few dozen submits so the coalesced flush, the reader
                    # task, and the response callbacks keep running.
                    behind += 1
                    if behind % 64 == 0:
                        await asyncio.sleep(0)
                client = clients[offered % len(clients)]
                begin = time.perf_counter()
                try:
                    future = client.submit_quote(
                        key, round_.features, reserve=round_.reserve
                    )
                except ServingError:
                    counters["errors"] += 1
                    offered += 1
                    continue
                state["outstanding"] += 1
                future.add_done_callback(
                    lambda f, c=client, k=key, mv=round_.market_value, b=begin:
                        _on_quote(f, c, k, mv, b)
                )
                offered += 1
        state["submits_done"] = True
        if state["outstanding"] == 0:
            done.set()
        try:
            await asyncio.wait_for(done.wait(), timeout=120.0)
        except asyncio.TimeoutError:
            counters["errors"] += state["outstanding"]
        wall_seconds = time.perf_counter() - start
        stats = await clients[0].stats()
        for client in clients:
            await client.close()
        return wall_seconds, round_trip, counters, stats

    try:
        wall_seconds, round_trip, counters, stats = asyncio.run(_drive())
    finally:
        handle.stop()
        shutil.rmtree(socket_dir, ignore_errors=True)

    achieved = counters["settled"] / wall_seconds if wall_seconds > 0 else float("inf")
    trip = LatencySummary.from_seconds(round_trip)
    queue_delay = stats.get("latency", {})
    frontend = stats.get("frontend", {})
    print(
        "offered %.0f qps, achieved %.0f qps over the wire   "
        "round-trip p50 %.4f ms   p99 %.4f ms   (%d rejected)"
        % (target_qps, achieved, trip.p50_ms, trip.p99_ms, counters["rejected"])
    )
    return {
        "offered_qps": round(target_qps, 1),
        "achieved_qps": round(achieved, 1),
        "wire": args.wire,
        "connections": connections,
        "quotes": counters["settled"],
        "rejected_backpressure": counters["rejected"],
        "errors": counters["errors"],
        "rounds": rate_rounds,
        "wall_seconds": round(wall_seconds, 4),
        "round_trip": {name: round(value, 6) for name, value in trip.as_dict().items()},
        "queue_delay": {name: round(value, 6) for name, value in queue_delay.items()},
        "frontend": frontend,
    }


def parse_sweep(spec: str):
    """``lo:hi:steps`` → the list of offered rates (linear spacing)."""
    try:
        lo_text, hi_text, steps_text = spec.split(":")
        lo, hi, steps = float(lo_text), float(hi_text), int(steps_text)
    except ValueError:
        raise SystemExit("--sweep-qps expects LO:HI:STEPS, got %r" % spec)
    if lo <= 0 or hi < lo or steps < 1:
        raise SystemExit("--sweep-qps needs 0 < LO <= HI and STEPS >= 1")
    if steps == 1:
        return [lo]
    return [lo + index * (hi - lo) / (steps - 1) for index in range(steps)]


def find_knee(sustained):
    """Index of the knee in a low-to-high sweep's sustained flags, or ``None``.

    The knee is the highest sustained rate that is *corroborated*: either the
    very first swept rate, or a rate whose immediate predecessor was also
    sustained.  A lone sustained blip past unsustained rates is measurement
    noise beyond saturation, not capacity — the old "last sustained point"
    rule reported exactly those blips as the knee.
    """
    knee = None
    for index, flag in enumerate(sustained):
        if flag and (index == 0 or sustained[index - 1]):
            knee = index
    return knee


def run_networked_sweep(args, materialized, keys, factory):
    """Latency-vs-offered-load curve through the socket, plus its knee.

    Each offered rate is an independent :func:`run_networked_point` (fresh
    service, fresh frontend).  The *knee* is the highest offered rate still
    sustained — achieved ≥ 90% of offered with no backpressure shedding —
    i.e. where the open-loop arrival process stops being served at its own
    rate and latency starts growing without bound.
    """
    rates = parse_sweep(args.sweep_qps)
    print("sweeping offered load through the socket: %s qps ..."
          % ", ".join("%.0f" % rate for rate in rates))
    points = []
    for rate in rates:
        point = run_networked_point(args, materialized, keys, factory, rate)
        point["sustained"] = (
            point["achieved_qps"] >= 0.9 * point["offered_qps"]
            and point["rejected_backpressure"] == 0
        )
        points.append(point)
    knee_index = find_knee([point["sustained"] for point in points])
    knee = None if knee_index is None else points[knee_index]
    summary = {
        "wire": args.wire,
        "connections": max(1, args.connections),
        "offered_qps": [point["offered_qps"] for point in points],
        "achieved_qps": [point["achieved_qps"] for point in points],
        "round_trip_p50_ms": [point["round_trip"].get("p50_ms") for point in points],
        "round_trip_p99_ms": [point["round_trip"].get("p99_ms") for point in points],
        "knee_qps": knee["offered_qps"] if knee else None,
        "points": points,
    }
    if knee:
        print("knee: %.0f offered qps sustained (achieved %.0f)"
              % (knee["offered_qps"], knee["achieved_qps"]))
    else:
        print("knee: none of the swept rates was sustained")
    return summary


def run_batched_feedback(args, environment, materialized):
    """Cross-session stacked-cut micro-bench: per-session loop vs batched backend.

    ``--feedback-sessions`` ellipsoid sessions of the *same family* (identical
    pricer type and dimension — the paper's "pure version", which cuts on
    essentially every exploratory round) advance in lockstep: each round every
    session quotes the same arrival, the micro-batch drains, and all outcomes
    go back through one ``feedback_batch`` call.  With the default backend
    that call runs N scalar Löwner–John updates; with ``backend="batched"``
    the eligible single-cut session groups are gathered from the columnar
    store's slab rows and updated by **one** stacked kernel invocation.  Only
    the ``feedback_batch`` calls are timed — the quote path is identical in
    both runs — so the ratio isolates the cross-session batching win the
    relaxed tier admits.
    """
    sessions = args.feedback_sessions
    rounds = min(max(1, args.feedback_rounds), args.rounds)
    version = "pure version"
    keys = [SessionKey("stacked", "s%04d" % index) for index in range(sessions)]

    def factory(key):
        return environment.model, build_pricer_for_version(environment, version)

    def measure(backend):
        registry = PricerRegistry(factory)
        service = QuoteService(
            registry,
            config=MicroBatchConfig(
                max_batch=max(args.max_batch, sessions),
                max_wait_seconds=args.max_wait_ms / 1000.0,
            ),
            backend=backend,
        )
        feedback_seconds = 0.0
        for round_ in stream_rounds(materialized.slice(0, rounds)):
            for key in keys:
                service.submit(
                    QuoteRequest(key=key, features=round_.features, reserve=round_.reserve)
                )
            events = [
                FeedbackEvent(
                    key=response.key,
                    quote_id=response.quote_id,
                    accepted=response.sold_at(round_.market_value),
                )
                for response in service.flush()
            ]
            begin = time.perf_counter()
            service.feedback_batch(events)
            feedback_seconds += time.perf_counter() - begin
        return feedback_seconds, service.stats

    print(
        "stacked-cut feedback micro-bench: %d sessions x %d lockstep rounds ..."
        % (sessions, rounds)
    )
    scalar_seconds, scalar_stats = measure(None)
    batched_seconds, batched_stats = measure("batched")
    speedup = scalar_seconds / batched_seconds if batched_seconds > 0 else float("inf")
    print(
        "  scalar loop %.4fs   batched %.4fs   speedup %.2fx   "
        "(%d stacked updates covering %d session-rounds)"
        % (
            scalar_seconds,
            batched_seconds,
            speedup,
            batched_stats.batched_updates,
            batched_stats.batched_update_sessions,
        )
    )
    return {
        "sessions": sessions,
        "rounds": rounds,
        "version": version,
        "feedback_events": scalar_stats.feedback_applied,
        "scalar_seconds": round(scalar_seconds, 4),
        "batched_seconds": round(batched_seconds, 4),
        "speedup": round(speedup, 3),
        "stacked_updates": batched_stats.batched_updates,
        "stacked_update_sessions": batched_stats.batched_update_sessions,
    }


def run_sharded_scaling(args, materialized, keys, factory):
    """Closed-loop replay through 1 worker vs ``--shards`` workers.

    Both runs go through the identical :class:`ShardedRegistry` pipe
    dispatch (same windowing, same pickling), so the ratio isolates the
    parallelism across worker processes.
    """
    pairs = []
    for round_ in stream_rounds(materialized):
        for key in keys:
            pairs.append(
                (
                    QuoteRequest(key=key, features=round_.features, reserve=round_.reserve),
                    round_.market_value,
                )
            )

    def measure(num_shards):
        # Each measurement gets its own snapshot tree: sharing one would let
        # the N-shard run hydrate sessions the 1-shard run persisted, making
        # the two workloads (and the scaling ratio) non-equivalent.
        snapshot_dir = (
            os.path.join(args.snapshot_dir, "scaling-%d" % num_shards)
            if args.snapshot_dir
            else None
        )
        with ShardedRegistry(
            factory,
            num_shards=num_shards,
            config=micro_batch_config(args),
            snapshot_dir=snapshot_dir,
            max_sessions=args.max_sessions,
            persist_every=args.persist_every,
        ) as sharded:
            start = time.perf_counter()
            served = sharded.replay_closed_loop(pairs, window=args.replay_window)
            wall_seconds = time.perf_counter() - start
            stats = sharded.stats()
        qps = served / wall_seconds if wall_seconds > 0 else float("inf")
        print(
            "  %d shard(s): %d quotes in %.2fs  ->  %.0f quotes/sec"
            % (num_shards, served, wall_seconds, qps)
        )
        return {
            "quotes": served,
            "wall_seconds": round(wall_seconds, 4),
            "quotes_per_second": round(qps, 1),
            "latency": {
                name: round(value, 6) for name, value in stats["latency"].items()
            },
            "sessions_resident": stats["sessions_resident"],
            "registry": stats["registry"],
        }

    print("shard scaling (replay window %d) ..." % args.replay_window)
    single = measure(1)
    sharded = measure(args.shards)
    scaling = (
        sharded["quotes_per_second"] / single["quotes_per_second"]
        if single["quotes_per_second"]
        else float("inf")
    )
    print("  scaling: %.2fx over single shard (%d CPUs)" % (scaling, os.cpu_count() or 1))
    return {
        "shards": args.shards,
        "replay_window": args.replay_window,
        "single_shard": single,
        "sharded": sharded,
        "scaling_x": round(scaling, 3),
    }


def run_zipf_popularity(args, environment, materialized):
    """Zipf-popularity session churn: the columnar store's stress workload.

    ``--zipf-sessions`` distinct sessions, accesses drawn from a bounded
    Zipf(``--zipf-a``) law, residency capped at ``--zipf-max-sessions`` —
    the popular head stays resident while the long tail cycles through
    persist → clock-evict → hydrate on every touch (a hydration storm).
    The numbers that matter:

    * hydration latency percentiles (per-hydration wall clock, straight
      from the store's instrumentation) — the mmap segment read path;
    * ``resident_bytes`` / ``bytes_per_session`` — memory stays bounded by
      the residency cap, not the session universe (the CI gate compares
      bytes/session against the committed baseline);
    * the eviction-cost curve — ``clock_hand_steps / evictions`` across
      growing resident sizes.  The old LRU scan walked the whole resident
      set per eviction (O(n)); the clock hand must hold a flat, small
      constant.
    """
    num_sessions = args.zipf_sessions
    rows = list(stream_rounds(materialized.slice(0, min(args.rounds, 512))))
    version = list(ALGORITHM_VERSIONS)[0]

    def factory(key):
        return environment.model, build_pricer_for_version(environment, version)

    print(
        "zipf popularity sweep: %d sessions, a=%.2f, %d events, "
        "max %d resident, %s snapshots ..."
        % (
            num_sessions,
            args.zipf_a,
            args.zipf_events,
            args.zipf_max_sessions,
            args.zipf_format,
        )
    )
    rng = np.random.default_rng(args.seed)
    pmf = np.arange(1, num_sessions + 1, dtype=np.float64) ** -args.zipf_a
    pmf /= pmf.sum()
    draws = rng.choice(num_sessions, size=args.zipf_events, p=pmf)
    keys = [SessionKey("zipf", "s%07d" % index) for index in range(num_sessions)]

    def run_point(max_sessions, event_draws):
        snapshot_dir = tempfile.mkdtemp(prefix="bench-zipf-")
        registry = PricerRegistry(
            factory,
            snapshot_dir=snapshot_dir,
            max_sessions=max_sessions,
            snapshot_format=args.zipf_format,
        )
        service = QuoteService(registry, config=micro_batch_config(args))
        start = time.perf_counter()
        for index, rank in enumerate(event_draws):
            row = rows[index % len(rows)]
            key = keys[rank]
            response = service.quote(
                QuoteRequest(key=key, features=row.features, reserve=row.reserve)
            )
            service.feedback(
                FeedbackEvent(
                    key=key,
                    quote_id=response.quote_id,
                    accepted=response.sold_at(row.market_value),
                )
            )
        wall_seconds = time.perf_counter() - start
        stats = registry.stats.as_dict()
        hydration = LatencySummary.from_seconds(registry.store.hydration_seconds)
        resident = registry.resident_count
        served = service.stats.quotes_served
        settled = service.stats.feedback_applied
        registry.close()
        shutil.rmtree(snapshot_dir, ignore_errors=True)
        events = len(event_draws)
        return {
            "events": events,
            "distinct_sessions_touched": int(np.unique(event_draws).size),
            "max_sessions": max_sessions,
            "wall_seconds": round(wall_seconds, 4),
            "events_per_second": round(events / wall_seconds, 1)
            if wall_seconds > 0
            else float("inf"),
            "lost_quotes": events - settled,
            "hit_rate": round(1.0 - stats["opened"] / max(events, 1), 4),
            "hydration_ms": {
                name: round(value, 6) for name, value in hydration.as_dict().items()
            },
            "resident_sessions": resident,
            "steps_per_eviction": round(
                stats["clock_hand_steps"] / max(stats["evictions"], 1), 3
            ),
            "evictions_per_second": round(
                stats["evictions"] / wall_seconds, 1
            )
            if wall_seconds > 0
            else float("inf"),
            "bytes_per_session": round(
                stats["resident_bytes"] / max(resident, 1), 1
            ),
            "registry": stats,
            "served": served,
        }

    main_point = run_point(args.zipf_max_sessions, draws)
    print(
        "  %d events in %.2fs -> %.0f events/sec   hydration p50 %.4f ms  "
        "p99 %.4f ms   %.1f bytes/session resident   %.2f clock steps/eviction"
        % (
            main_point["events"],
            main_point["wall_seconds"],
            main_point["events_per_second"],
            main_point["hydration_ms"]["p50_ms"],
            main_point["hydration_ms"]["p99_ms"],
            main_point["bytes_per_session"],
            main_point["steps_per_eviction"],
        )
    )

    # The O(1) eviction demonstration: identical event stream against
    # growing resident sets.  An O(n) victim scan would show steps (and
    # cost) growing with the resident size; the clock hand stays flat.
    cost_events = draws[: min(len(draws), 40_000)]
    sizes = sorted(
        {
            max(128, args.zipf_max_sessions // 8),
            max(256, args.zipf_max_sessions // 2),
            args.zipf_max_sessions,
        }
    )
    curve = {
        "resident_sizes": [],
        "steps_per_eviction": [],
        "evictions_per_second": [],
        "events_per_second": [],
    }
    for size in sizes:
        point = run_point(size, cost_events)
        curve["resident_sizes"].append(size)
        curve["steps_per_eviction"].append(point["steps_per_eviction"])
        curve["evictions_per_second"].append(point["evictions_per_second"])
        curve["events_per_second"].append(point["events_per_second"])
        print(
            "  eviction cost @ %5d resident: %.2f steps/eviction, %.0f evictions/sec"
            % (size, point["steps_per_eviction"], point["evictions_per_second"])
        )

    result = dict(main_point)
    result.update(
        {
            "sessions": num_sessions,
            "zipf_a": args.zipf_a,
            "snapshot_format": args.zipf_format,
            "eviction_cost": curve,
        }
    )
    return result


def main(argv=None) -> int:
    args = parse_args(argv)
    print(
        "building fig4 workload (n=%d, T=%d per session, %d sessions) ..."
        % (args.dimension, args.rounds, args.sessions)
    )
    environment, materialized, keys, factory = build_workload(args)

    closed_loop = run_closed_loop(args, materialized, keys, factory)

    report = {
        "benchmark": "bench_serving (fig4-style closed-loop, noisy linear query)",
        "config": {
            "rounds": args.rounds,
            "sessions": args.sessions,
            "dimension": args.dimension,
            "owner_count": args.owner_count,
            "delta": args.delta,
            "seed": args.seed,
            "max_batch": max(args.max_batch, args.sessions),
            "max_wait_ms": args.max_wait_ms,
            "persist_every": args.persist_every,
            "snapshot_dir": bool(args.snapshot_dir),
        },
        "cpu_count": os.cpu_count(),
    }
    report.update(closed_loop)

    if args.target_qps > 0:
        report["replay_at_rate"] = run_replay_at_rate(args, materialized, keys, factory)
    if args.net_target_qps > 0:
        report["replay_at_rate_networked"] = run_networked_point(
            args, materialized, keys, factory, args.net_target_qps
        )
    if args.sweep_qps:
        report["replay_at_rate_networked_sweep"] = run_networked_sweep(
            args, materialized, keys, factory
        )
    if args.feedback_sessions > 0:
        report["batched_feedback"] = run_batched_feedback(args, environment, materialized)
    if args.shards > 0:
        report["sharding"] = run_sharded_scaling(args, materialized, keys, factory)
    if args.zipf_sessions > 0:
        report["zipf"] = run_zipf_popularity(args, environment, materialized)

    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("wrote %s" % args.output)

    qps = report["quotes_per_second"]
    if args.min_qps > 0 and qps < args.min_qps:
        print(
            "ERROR: %.0f quotes/sec below the required %.0f" % (qps, args.min_qps),
            file=sys.stderr,
        )
        return 1
    feedback = report.get("batched_feedback")
    if (
        args.feedback_min_speedup > 0
        and feedback is not None
        and feedback["speedup"] < args.feedback_min_speedup
    ):
        print(
            "ERROR: batched feedback speedup %.2fx below the required %.2fx"
            % (feedback["speedup"], args.feedback_min_speedup),
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
