#!/usr/bin/env python
"""Load-generate the online quote-serving subsystem and report throughput.

The workload is the fig4-style market (noisy linear query, the same
environment ``scripts/bench_engine.py`` times offline): one shared arrival
stream replayed closed-loop by N concurrent pricing sessions — each round
submits one quote per session, the micro-batch window coalesces them into a
single drain, sales are settled against the realised market values, and the
accept/reject outcomes go back through the batched feedback path before the
next round (so every session runs the exact online protocol).

The report (``BENCH_serving.json``) carries quotes/sec, p50/p99 per-quote
latency (enqueue → response, i.e. including micro-batch queueing delay),
sessions resident, and the registry/service lifecycle counters.  CI runs a
short burst of this script and uploads the report alongside the engine
smoke bench.

Usage::

    PYTHONPATH=src python scripts/bench_serving.py --rounds 5000 --sessions 4
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.apps.common import ALGORITHM_VERSIONS, build_pricer_for_version
from repro.apps.noisy_linear_query import NoisyLinearQueryConfig, build_noisy_query_environment
from repro.engine import prepare, stream_rounds
from repro.serving import (
    FeedbackEvent,
    MicroBatchConfig,
    PricerRegistry,
    QuoteRequest,
    QuoteService,
    SessionKey,
)


def parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rounds", type=int, default=5_000, help="rounds per session")
    parser.add_argument("--sessions", type=int, default=4, help="concurrent pricing sessions")
    parser.add_argument("--dimension", type=int, default=20, help="feature dimension n")
    parser.add_argument("--owner-count", type=int, default=200, help="data owner count")
    parser.add_argument("--seed", type=int, default=7, help="master seed")
    parser.add_argument("--delta", type=float, default=0.01, help="uncertainty buffer")
    parser.add_argument("--max-batch", type=int, default=64, help="micro-batch size bound")
    parser.add_argument(
        "--max-wait-ms", type=float, default=1.0, help="micro-batch window in milliseconds"
    )
    parser.add_argument(
        "--snapshot-dir", default=None, help="session snapshot directory (default: off)"
    )
    parser.add_argument(
        "--persist-every",
        type=int,
        default=0,
        help="write-behind cadence in feedback updates (0 = only on flush/evict)",
    )
    parser.add_argument(
        "--max-sessions", type=int, default=None, help="LRU residency bound (default: unbounded)"
    )
    parser.add_argument(
        "--min-qps",
        type=float,
        default=0.0,
        help="fail (exit 1) when quotes/sec lands below this floor (0 = report only)",
    )
    parser.add_argument("--output", default="BENCH_serving.json", help="JSON output path")
    return parser.parse_args(argv)


def main(argv=None) -> int:
    args = parse_args(argv)
    config = NoisyLinearQueryConfig(
        dimension=args.dimension,
        rounds=args.rounds,
        owner_count=args.owner_count,
        delta=args.delta,
        seed=args.seed,
    )
    print(
        "building fig4 workload (n=%d, T=%d per session, %d sessions) ..."
        % (args.dimension, args.rounds, args.sessions)
    )
    environment = build_noisy_query_environment(config)
    materialized = prepare(environment.model, environment.arrival_batch())

    versions = list(ALGORITHM_VERSIONS)
    keys = [
        SessionKey(app="fig4", segment="shard=%d/%s" % (index, versions[index % len(versions)]))
        for index in range(args.sessions)
    ]
    version_of = {
        key: versions[index % len(versions)] for index, key in enumerate(keys)
    }

    def factory(key: SessionKey):
        return environment.model, build_pricer_for_version(environment, version_of[key])

    registry = PricerRegistry(
        factory,
        snapshot_dir=args.snapshot_dir,
        max_sessions=args.max_sessions,
        persist_every=args.persist_every,
    )
    service = QuoteService(
        registry,
        config=MicroBatchConfig(
            max_batch=max(args.max_batch, args.sessions),
            max_wait_seconds=args.max_wait_ms / 1000.0,
        ),
    )

    print("serving %d quotes ..." % (args.rounds * args.sessions))
    start = time.perf_counter()
    for round_ in stream_rounds(materialized):
        for key in keys:
            service.submit(
                QuoteRequest(key=key, features=round_.features, reserve=round_.reserve)
            )
        events = []
        for response in service.flush():
            sold = (
                not response.skipped
                and response.posted_price is not None
                and response.posted_price <= round_.market_value
            )
            events.append(
                FeedbackEvent(key=response.key, quote_id=response.quote_id, accepted=sold)
            )
        service.feedback_batch(events)
    wall_seconds = time.perf_counter() - start
    if args.snapshot_dir:
        registry.flush()

    quotes = service.stats.quotes_served
    qps = quotes / wall_seconds if wall_seconds > 0 else float("inf")
    latency = service.stats.latency_summary()
    print(
        "served %d quotes in %.2fs  ->  %.0f quotes/sec   p50 %.4f ms   p99 %.4f ms"
        % (quotes, wall_seconds, qps, latency.p50_ms, latency.p99_ms)
    )

    report = {
        "benchmark": "bench_serving (fig4-style closed-loop, noisy linear query)",
        "config": {
            "rounds": args.rounds,
            "sessions": args.sessions,
            "dimension": args.dimension,
            "owner_count": args.owner_count,
            "delta": args.delta,
            "seed": args.seed,
            "max_batch": max(args.max_batch, args.sessions),
            "max_wait_ms": args.max_wait_ms,
            "persist_every": args.persist_every,
            "snapshot_dir": bool(args.snapshot_dir),
        },
        "cpu_count": os.cpu_count(),
        "quotes": quotes,
        "wall_seconds": round(wall_seconds, 4),
        "quotes_per_second": round(qps, 1),
        "latency": {name: round(value, 6) for name, value in latency.as_dict().items()},
        "sessions_resident": registry.resident_count,
        "service": {
            "drains": service.stats.drains,
            "batched_proposals": service.stats.batched_proposals,
            "feedback_applied": service.stats.feedback_applied,
        },
        "registry": registry.stats.as_dict(),
    }
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("wrote %s" % args.output)

    if args.min_qps > 0 and qps < args.min_qps:
        print(
            "ERROR: %.0f quotes/sec below the required %.0f" % (qps, args.min_qps),
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
