#!/usr/bin/env python
"""Live-reshard a sharded serving fleet N→M **under socket traffic**.

The online counterpart of ``scripts/reshard.py``: instead of stopping the
service and rewriting the snapshot tree, this CLI starts a sharded fleet on
N workers behind the asyncio socket frontend, drives a closed-loop fig4
workload through a pipelined :class:`AsyncQuoteClient`, and mid-stream runs
:class:`repro.serving.rebalance.LiveRebalancer` to migrate the fleet to M
shards — sessions are quiesced and moved one at a time while every other
session keeps serving.

The run is **self-verifying** on two axes:

* **exact quote-id accounting** — every submitted quote must resolve
  (response + applied feedback); quotes failed by a shard loss are retried
  and must converge, so the final ledger shows zero unresolved ids;
* **bit-exactness** — each session's posted-price transcript must equal the
  offline engine's for its pricer family, straight through the migration
  (and, with ``--chaos``, straight through a SIGKILL of a shard worker
  mid-migration: the worker is respawned and its sessions recover from
  their write-behind snapshots, so the retried quotes re-propose the exact
  same prices).

Usage::

    PYTHONPATH=src python scripts/rebalance.py \\
        --from-shards 2 --to-shards 3 --sessions 8 --rounds 96
    PYTHONPATH=src python scripts/rebalance.py \\
        --from-shards 2 --to-shards 3 --chaos --report rebalance_stats.json

``--report`` writes the migration report plus the backend's ``rebalance``
stats block (sessions moved, parked/replayed quote counts, quiesce-time
percentiles) as JSON — CI uploads it as an artifact next to
``BENCH_serving.json``.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import signal
import sys
import tempfile
import threading
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

import numpy as np

from repro.apps.common import ALGORITHM_VERSIONS, build_pricer_for_version
from repro.apps.noisy_linear_query import NoisyLinearQueryConfig, build_noisy_query_environment
from repro.engine import prepare, simulate, stream_rounds
from repro.serving import (
    AsyncQuoteClient,
    LiveRebalancer,
    MicroBatchConfig,
    SessionKey,
    ShardedRegistry,
    frame_sold_at,
    start_frontend_thread,
)

#: Per-(key, round) retry budget for quotes failed by a dying shard.
MAX_RETRIES = 60
RETRY_SLEEP = 0.05


def parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sessions", type=int, default=8, help="concurrent sessions")
    parser.add_argument("--rounds", type=int, default=96, help="closed-loop rounds per session")
    parser.add_argument("--dimension", type=int, default=8)
    parser.add_argument("--owner-count", type=int, default=3)
    parser.add_argument("--delta", type=float, default=0.05)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--from-shards", type=int, default=2, help="initial shard count N")
    parser.add_argument("--to-shards", type=int, default=3, help="target shard count M")
    parser.add_argument("--wire", type=int, default=2, choices=(1, 2))
    parser.add_argument("--persist-every", type=int, default=1,
                        help="write-behind cadence (1 = persist per feedback)")
    parser.add_argument("--move-at", type=float, default=0.5,
                        help="start the migration at this fraction of the horizon")
    parser.add_argument("--quiesce-timeout", type=float, default=30.0)
    parser.add_argument("--chaos", action="store_true",
                        help="SIGKILL + respawn a shard worker mid-migration")
    parser.add_argument("--snapshot-dir", default=None,
                        help="snapshot tree (default: a temp directory)")
    parser.add_argument("--report", default=None, help="write the run report as JSON here")
    return parser.parse_args(argv)


def build_workload(args):
    """The fig4-style market plus versioned session keys and their factory."""
    config = NoisyLinearQueryConfig(
        dimension=args.dimension,
        rounds=args.rounds,
        owner_count=args.owner_count,
        delta=args.delta,
        seed=args.seed,
    )
    environment = build_noisy_query_environment(config)
    materialized = prepare(environment.model, environment.arrival_batch())
    versions = list(ALGORITHM_VERSIONS)
    keys = [
        SessionKey(app="rebalance", segment="seg=%d/%s" % (index, versions[index % len(versions)]))
        for index in range(args.sessions)
    ]
    version_of = {key: versions[index % len(versions)] for index, key in enumerate(keys)}

    def factory(key: SessionKey):
        return environment.model, build_pricer_for_version(environment, version_of[key])

    return environment, materialized, keys, version_of, factory


def offline_baselines(environment, materialized, version_of):
    """Posted-price transcript per pricer version from the offline engine."""
    baselines = {}
    for version in sorted(set(version_of.values())):
        result = simulate(
            environment.model,
            build_pricer_for_version(environment, version),
            materialized=materialized,
        )
        baselines[version] = result.transcript.posted_prices
    return baselines


async def drive(args, sharded, address, materialized, keys, counters, migration):
    """Closed-loop socket traffic with retry-until-resolved accounting.

    Per round, every session fires one pipelined quote; each settled quote
    fires its feedback before the session's next round (the closed-loop
    protocol).  A quote or feedback failed by a mid-migration shard loss is
    retried from the quote step — the session's write-behind snapshot
    guarantees the re-proposal is bit-identical — so the ledger converges
    to zero unresolved ids or the run fails loudly.
    """
    client = await AsyncQuoteClient.connect(
        unix_path=address, wire=args.wire, coalesce_writes=True
    )
    posted = {key: [] for key in keys}
    try:
        for index, round_ in enumerate(stream_rounds(materialized)):
            if migration is not None and index == counters["move_round"]:
                migration.start()
            quote_futures = {
                key: client.submit_quote(key, round_.features, round_.reserve)
                for key in keys
            }
            counters["submitted"] += len(keys)
            for key, future in quote_futures.items():
                result = None
                for attempt in range(MAX_RETRIES):
                    try:
                        result = await future
                        break
                    except Exception:
                        counters["retries"] += 1
                        await asyncio.sleep(RETRY_SLEEP)
                        future = client.submit_quote(key, round_.features, round_.reserve)
                        counters["submitted"] += 1
                if result is None:
                    raise RuntimeError(
                        "quote for %s round %d did not resolve after %d attempts"
                        % (key, index, MAX_RETRIES)
                    )
                sold = frame_sold_at(result, round_.market_value)
                settled = False
                for attempt in range(MAX_RETRIES):
                    try:
                        await client.submit_feedback(key, result["quote_id"], sold)
                        settled = True
                        break
                    except Exception:
                        # The shard died between quote and feedback: the
                        # decision is gone, so replay the quote itself.
                        counters["retries"] += 1
                        await asyncio.sleep(RETRY_SLEEP)
                        result = None
                        for requote in range(MAX_RETRIES):
                            try:
                                result = await client.submit_quote(
                                    key, round_.features, round_.reserve
                                )
                                counters["submitted"] += 1
                                break
                            except Exception:
                                counters["retries"] += 1
                                await asyncio.sleep(RETRY_SLEEP)
                        if result is None:
                            break
                        sold = frame_sold_at(result, round_.market_value)
                if not settled:
                    raise RuntimeError(
                        "feedback for %s round %d did not settle after %d attempts"
                        % (key, index, MAX_RETRIES)
                    )
                counters["resolved"] += 1
                posted[key].append(
                    np.nan if result.get("posted_price") is None else result["posted_price"]
                )
    finally:
        await client.close()
    return posted


def main(argv=None) -> int:
    args = parse_args(argv)
    if args.sessions < 1 or args.rounds < 1:
        print("ERROR: --sessions and --rounds must be positive", file=sys.stderr)
        return 1
    environment, materialized, keys, version_of, factory = build_workload(args)
    baselines = offline_baselines(environment, materialized, version_of)

    snapshot_dir = args.snapshot_dir or tempfile.mkdtemp(prefix="rebalance-cli-")
    socket_dir = tempfile.mkdtemp(prefix="rebalance-sock-")
    sharded = ShardedRegistry(
        factory,
        num_shards=args.from_shards,
        config=MicroBatchConfig(max_batch=max(8, args.sessions), max_wait_seconds=0.002),
        snapshot_dir=snapshot_dir,
        persist_every=args.persist_every,
    )
    chaos_log = []

    def chaos_hook(count, move):
        if not args.chaos or count != 1:
            return
        victim = move.target
        os.kill(sharded._shards[victim].process.pid, signal.SIGKILL)
        lost = sharded.respawn_shard(victim)
        chaos_log.append({"killed_shard": victim, "lost_quote_ids": lost})

    rebalancer = LiveRebalancer(
        sharded,
        args.to_shards,
        quiesce_timeout=args.quiesce_timeout,
        after_move=chaos_hook,
    )
    migration_result = {}

    def migrate():
        try:
            migration_result["report"] = rebalancer.run()
        except Exception as exc:  # surfaced after the drive loop joins
            migration_result["error"] = exc

    migration = threading.Thread(target=migrate, name="rebalancer")
    counters = {
        "submitted": 0,
        "resolved": 0,
        "retries": 0,
        "move_round": min(max(0, int(args.rounds * args.move_at)), args.rounds - 1),
    }

    handle = start_frontend_thread(
        sharded,
        unix_path=os.path.join(socket_dir, "quotes.sock"),
        drain_interval=0.0005,
    )
    print(
        "serving %d sessions x %d rounds through the socket (wire v%d), "
        "migrating %d -> %d shards at round %d%s ..."
        % (
            args.sessions,
            args.rounds,
            args.wire,
            args.from_shards,
            args.to_shards,
            counters["move_round"],
            " with chaos" if args.chaos else "",
        )
    )
    start = time.perf_counter()
    try:
        posted = asyncio.run(
            drive(args, sharded, handle.address, materialized, keys, counters, migration)
        )
        migration.join(timeout=120.0)
        if migration.is_alive():
            raise RuntimeError("migration did not finish within 120s")
        if "error" in migration_result:
            raise migration_result["error"]
        stats = sharded.stats()
    finally:
        handle.stop()
        sharded.close()
    wall_seconds = time.perf_counter() - start

    report = migration_result["report"]
    mismatched = []
    for key in keys:
        expected = baselines[version_of[key]][: args.rounds]
        if not np.array_equal(np.array(posted[key]), expected, equal_nan=True):
            mismatched.append(key)
    unresolved = args.rounds * args.sessions - counters["resolved"]
    exact = not mismatched and unresolved == 0

    print(
        "migrated %d session(s) in %d sweep(s); %d quote submit(s), "
        "%d resolved, %d retried, %.1fs wall"
        % (
            report.sessions,
            report.sweeps,
            counters["submitted"],
            counters["resolved"],
            counters["retries"],
            wall_seconds,
        )
    )
    if chaos_log:
        print(
            "chaos: killed shard %d mid-migration (%d in-flight quote(s) lost, retried)"
            % (chaos_log[0]["killed_shard"], len(chaos_log[0]["lost_quote_ids"]))
        )
    quiesce = report.stats.get("quiesce", {})
    print(
        "rebalance block: parked=%d replayed=%d quiesce p50=%.2fms p99=%.2fms"
        % (
            report.stats.get("parked_quotes", 0),
            report.stats.get("replayed_quotes", 0),
            quiesce.get("p50_ms", 0.0) or 0.0,
            quiesce.get("p99_ms", 0.0) or 0.0,
        )
    )
    if exact:
        print(
            "exact: all %d sessions bit-identical to the offline engine, "
            "zero unresolved quote ids" % len(keys)
        )
    else:
        print(
            "ERROR: %d session(s) diverged from the offline engine%s"
            % (
                len(mismatched),
                "; unresolved=%d" % unresolved if unresolved else "",
            ),
            file=sys.stderr,
        )

    if args.report:
        payload = {
            "workload": {
                "sessions": args.sessions,
                "rounds": args.rounds,
                "wire": args.wire,
                "from_shards": args.from_shards,
                "to_shards": args.to_shards,
                "chaos": bool(args.chaos),
            },
            "migration": report.as_dict(),
            "routing": stats["routing"],
            "rebalance": stats["rebalance"],
            "accounting": {
                "submitted": counters["submitted"],
                "resolved": counters["resolved"],
                "retries": counters["retries"],
                "exact": exact,
            },
            "chaos": chaos_log,
            "wall_seconds": wall_seconds,
        }
        with open(args.report, "w") as out:
            json.dump(payload, out, indent=2, sort_keys=True, default=str)
            out.write("\n")
        print("wrote %s" % args.report)
    return 0 if exact else 1


if __name__ == "__main__":
    sys.exit(main())
