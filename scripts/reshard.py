#!/usr/bin/env python
"""Rewrite per-shard session snapshot dirs from N to M shards.

The key→shard map of the sharded serving layer is a pure function of the
session key and the shard count, so scaling the worker count up or down
requires migrating every session snapshot into the directory its key hashes
to under the *new* count — otherwise a restarted service re-creates the
sessions from scratch instead of hydrating their exact state.

This CLI wraps :mod:`repro.serving.resharding`: it plans the migration from
the source tree's checkpoint metadata, copies every ``.session.npz``
byte-for-byte into the target layout, verifies each migrated checkpoint
bit-exactly against its source, and prints (optionally writes) the report.
The source tree is never modified.

Usage::

    PYTHONPATH=src python scripts/reshard.py \\
        --source snapshots/ --target snapshots-8/ --to-shards 8
    PYTHONPATH=src python scripts/reshard.py \\
        --source snapshots/ --target snapshots-8/ --to-shards 8 \\
        --from-shards 4 --report reshard_report.json

Then point the restarted service at the migrated tree::

    ShardedRegistry(factory, num_shards=8, snapshot_dir="snapshots-8/")
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.exceptions import ReshardingError
from repro.serving.resharding import reshard_snapshots


def parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--source", required=True, help="source snapshot tree (shard-NN dirs)")
    parser.add_argument("--target", required=True, help="target snapshot tree (must differ)")
    parser.add_argument(
        "--to-shards", type=int, required=True, help="target shard count M"
    )
    parser.add_argument(
        "--from-shards",
        type=int,
        default=None,
        help="source shard count N (default: inferred from the shard-NN dirs)",
    )
    parser.add_argument(
        "--no-verify",
        action="store_true",
        help="skip the bit-exact checkpoint verification pass",
    )
    parser.add_argument(
        "--report", default=None, help="write the migration report as JSON here"
    )
    return parser.parse_args(argv)


def main(argv=None) -> int:
    args = parse_args(argv)
    try:
        report = reshard_snapshots(
            args.source,
            args.target,
            target_shards=args.to_shards,
            source_shards=args.from_shards,
            verify=not args.no_verify,
        )
    except ReshardingError as exc:
        print("ERROR: %s" % exc, file=sys.stderr)
        return 1

    histogram = report.target_histogram()
    print(
        "migrated %d session(s) from %d to %d shard(s); %d relocated"
        % (report.sessions, report.source_shards, report.target_shards, report.relocated)
    )
    for shard in sorted(histogram):
        print("  shard-%02d: %d session(s)" % (shard, histogram[shard]))
    if report.verified:
        print(
            "verified: every migrated checkpoint is bit-identical to its source"
        )
    else:
        print("verification skipped (--no-verify)")

    if args.report:
        with open(args.report, "w") as handle:
            json.dump(report.as_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print("wrote %s" % args.report)
    return 0


if __name__ == "__main__":
    sys.exit(main())
