#!/usr/bin/env python3
"""Regenerate the golden-transcript fixtures under ``tests/golden/``.

Each fixture pins the full transcript of one pricer family over a seeded
T=512 market (see ``tests/golden/golden_specs.py`` for the family specs).
The replay test asserts exact float equality against these artifacts, so the
engine's exactness contract is pinned by committed data, not just by the
in-process reference loop.

Regenerate (and commit the diff) ONLY when a change is *supposed* to alter
transcripts — e.g. a deliberate algorithm fix.  A perf refactor must never
need this.

Run:  PYTHONPATH=src python scripts/make_golden_transcripts.py
"""

import os
import sys

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "tests", "golden"))

import golden_specs  # noqa: E402

from repro.engine import simulate  # noqa: E402


def main() -> int:
    for family in sorted(golden_specs.GOLDEN_SPECS):
        model, batch, theta = golden_specs.build_market(family)
        pricer = golden_specs.build_pricer(family, theta)
        result = simulate(model, pricer, arrivals=batch)
        payload = {
            "family": np.array(family),
            "theta": theta,
            "features": batch.features,
            "reserve_values": batch.reserve_values,
            "noise": batch.noise,
        }
        for name in golden_specs.GOLDEN_COLUMNS:
            payload["expected_%s" % name] = getattr(result.transcript, name)
        path = golden_specs.fixture_path(family)
        np.savez_compressed(path, **payload)
        print(
            "wrote %s (%d rounds, %d sold, cumulative regret %.4f)"
            % (
                os.path.relpath(path),
                result.rounds,
                int(np.count_nonzero(result.transcript.sold)),
                result.cumulative_regret,
            )
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
