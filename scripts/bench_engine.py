#!/usr/bin/env python
"""Benchmark the columnar engine + run matrix against the legacy loop.

Regenerates a ``bench_fig4``-style workload (the noisy-linear-query market,
all four algorithm versions on one shared arrival stream) twice:

* **legacy** — the preserved sequential reference loop
  (:func:`repro.engine.simulate_reference`), one full object-per-round pass
  per version, exactly as the pre-engine simulator ran it;
* **engine** — a :class:`repro.engine.RunMatrix` over the same cells: the
  market is materialised once, each version runs through its batched fast
  path, and the cells fan out across workers where available.

The transcripts of the two passes are checked element-wise identical (prices,
sold flags, regrets) before the timing is trusted, and the result is written
to a JSON file (``BENCH_engine.json``) so the performance trajectory is
tracked across PRs — CI runs a short-horizon smoke version of this script.

Usage::

    PYTHONPATH=src python scripts/bench_engine.py --rounds 20000 --output BENCH_engine.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.apps.common import ALGORITHM_VERSIONS, VersionPricerFactory, build_pricer_for_version
from repro.apps.noisy_linear_query import NoisyLinearQueryConfig, build_noisy_query_environment
from repro.engine import RunMatrix, simulate, simulate_reference
from repro.engine.equivalence import (
    assert_regret_curves_close,
    assert_transcripts_close,
    decision_flips,
)
from repro.engine.runner import prepare


def parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rounds", type=int, default=20_000, help="horizon T per cell")
    parser.add_argument("--dimension", type=int, default=20, help="feature dimension n")
    parser.add_argument("--owner-count", type=int, default=200, help="data owner count")
    parser.add_argument("--seed", type=int, default=7, help="master seed")
    parser.add_argument("--delta", type=float, default=0.01, help="uncertainty buffer")
    parser.add_argument(
        "--executor",
        default="auto",
        choices=("auto", "serial", "thread", "process"),
        help="run-matrix executor for the engine pass",
    )
    parser.add_argument("--output", default="BENCH_engine.json", help="JSON output path")
    parser.add_argument(
        "--skip-legacy",
        action="store_true",
        help="only time the engine pass (no speedup/identity check)",
    )
    parser.add_argument(
        "--skip-backend",
        action="store_true",
        help="skip the relaxed-tier batched-backend comparison",
    )
    parser.add_argument(
        "--backend-repeats",
        type=int,
        default=3,
        help="timing repeats per path in the backend comparison (best-of)",
    )
    return parser.parse_args(argv)


def run_backend_compare(args, environment) -> dict:
    """Reference vs ``backend="batched"`` on the conservative-tail workload.

    The ellipsoid pricer's exploratory phase is cut-dense (block vectorisation
    gains little there) but the long conservative tail re-prices round after
    round on a *frozen* ellipsoid — exactly the regime the galloping-block
    kernel collapses into O(log T) stacked support-interval evaluations.  The
    same full horizon runs through both paths; equivalence is asserted under
    the relaxed tier (zero decision flips expected) before timing is trusted.
    """
    version = "with reserve price"
    materialized = prepare(environment.model, environment.arrivals)

    def one_pass(backend):
        best = float("inf")
        result = None
        pricer = None
        for _ in range(max(1, args.backend_repeats)):
            pricer = build_pricer_for_version(environment, version)
            start = time.perf_counter()
            result = simulate(
                environment.model, pricer, materialized=materialized, backend=backend
            )
            best = min(best, time.perf_counter() - start)
        return best, result, pricer

    reference_seconds, reference, _ = one_pass(None)
    batched_seconds, batched, _ = one_pass("batched")

    flips = decision_flips(batched.transcript, reference.transcript)
    relaxed_ok = True
    try:
        assert_transcripts_close(batched.transcript, reference.transcript)
        assert_regret_curves_close(batched.transcript, reference.transcript)
    except AssertionError as exc:
        relaxed_ok = False
        print("ERROR: batched backend outside relaxed tier: %s" % exc, file=sys.stderr)
    conservative = int(np.count_nonzero(
        ~np.asarray(reference.transcript.exploratory)
        & ~np.asarray(reference.transcript.skipped)
    ))
    speedup = reference_seconds / batched_seconds if batched_seconds > 0 else float("inf")
    print(
        "backend compare (%s, T=%d, %d conservative rounds):" % (version, materialized.rounds, conservative)
    )
    print(
        "  reference %.3fs   batched %.3fs   speedup %.2fx   flips %d"
        % (reference_seconds, batched_seconds, speedup, flips)
    )
    return {
        "version": version,
        "rounds": materialized.rounds,
        "conservative_rounds": conservative,
        "reference_seconds": round(reference_seconds, 4),
        "batched_seconds": round(batched_seconds, 4),
        "speedup": round(speedup, 3),
        "decision_flips": flips,
        "relaxed_equivalent": relaxed_ok,
    }


def transcripts_identical(engine_result, reference_result) -> bool:
    """Element-wise identity of the decision-relevant transcript columns."""
    engine, reference = engine_result.transcript, reference_result.transcript
    return bool(
        np.array_equal(engine.posted_prices, reference.posted_prices, equal_nan=True)
        and np.array_equal(engine.link_prices, reference.link_prices, equal_nan=True)
        and np.array_equal(engine.sold, reference.sold)
        and np.array_equal(engine.skipped, reference.skipped)
        and np.array_equal(engine.regrets, reference.regrets)
        and np.array_equal(engine.market_values, reference.market_values)
    )


def main(argv=None) -> int:
    args = parse_args(argv)
    config = NoisyLinearQueryConfig(
        dimension=args.dimension,
        rounds=args.rounds,
        owner_count=args.owner_count,
        delta=args.delta,
        seed=args.seed,
    )
    print(
        "building environment (n=%d, T=%d, owners=%d) ..."
        % (args.dimension, args.rounds, args.owner_count)
    )
    environment = build_noisy_query_environment(config)
    versions = list(ALGORITHM_VERSIONS)

    # Engine pass: one matrix, one shared materialisation, batched fast paths.
    matrix = RunMatrix()
    matrix.add_scenario("market", environment.as_scenario)
    for version in versions:
        matrix.add_pricer(version, VersionPricerFactory(version))
    matrix.add_cross()
    start = time.perf_counter()
    grid = matrix.run(executor=args.executor)
    engine_seconds = time.perf_counter() - start
    engine_results = {version: grid.get("market", version) for version in versions}
    print("engine pass:  %6.2fs  (%d cells, executor=%s)" % (engine_seconds, len(versions), args.executor))

    report = {
        "benchmark": "bench_engine (fig4-style, noisy linear query)",
        "config": {
            "rounds": args.rounds,
            "dimension": args.dimension,
            "owner_count": args.owner_count,
            "delta": args.delta,
            "seed": args.seed,
            "versions": versions,
        },
        "cpu_count": os.cpu_count(),
        "executor": args.executor,
        "engine_seconds": round(engine_seconds, 4),
        "final_cumulative_regret": {
            version: round(result.cumulative_regret, 4)
            for version, result in engine_results.items()
        },
    }

    if not args.skip_legacy:
        legacy_seconds = 0.0
        identical = True
        for version in versions:
            pricer = build_pricer_for_version(environment, version)
            start = time.perf_counter()
            reference = simulate_reference(environment.model, pricer, environment.arrivals)
            legacy_seconds += time.perf_counter() - start
            identical &= transcripts_identical(engine_results[version], reference)
        speedup = legacy_seconds / engine_seconds if engine_seconds > 0 else float("inf")
        print("legacy pass:  %6.2fs" % legacy_seconds)
        print("speedup:      %6.2fx   transcripts identical: %s" % (speedup, identical))
        report["legacy_seconds"] = round(legacy_seconds, 4)
        report["speedup"] = round(speedup, 3)
        report["transcripts_identical"] = identical
        if not identical:
            print("ERROR: engine transcripts differ from the sequential reference", file=sys.stderr)
            return 1

    if not args.skip_backend:
        report["backend_compare"] = run_backend_compare(args, environment)
        if not report["backend_compare"]["relaxed_equivalent"]:
            return 1

    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("wrote %s" % args.output)
    return 0


if __name__ == "__main__":
    sys.exit(main())
