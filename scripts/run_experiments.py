#!/usr/bin/env python3
"""Run every experiment at (near-)paper scale and write the results report.

This is the script behind EXPERIMENTS.md: it regenerates each table and figure
at the largest scale that is practical on a laptop, prints the series, and
stores everything in ``results/experiments_report.txt`` plus a machine-readable
``results/experiments_report.json``.

Run:  python scripts/run_experiments.py [--quick]
"""

import argparse
import json
import os
import sys
import time

from repro.experiments.adversarial import run_adversarial_example
from repro.experiments.fig4 import run_fig4
from repro.experiments.fig5 import run_fig5a, run_fig5b, run_fig5c
from repro.experiments.overhead import format_overhead, run_overhead
from repro.experiments.regret_scaling import (
    format_scaling,
    run_dimension_scaling,
    run_epsilon_ablation,
    run_horizon_scaling,
)
from repro.experiments.table1 import format_table1, run_table1


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="run a fast, scaled-down pass")
    parser.add_argument("--output-dir", default="results")
    args = parser.parse_args()

    os.makedirs(args.output_dir, exist_ok=True)
    lines = []
    summary = {}

    def emit(text=""):
        print(text, flush=True)
        lines.append(text)

    start = time.time()
    quick = args.quick

    # ------------------------------------------------------------------ Fig. 4
    emit("=" * 78)
    emit("Fig. 4 — cumulative regret, noisy linear query, four algorithm versions")
    emit("=" * 78)
    fig4 = run_fig4(
        dimensions=(1, 20, 40, 60, 80, 100) if not quick else (1, 20),
        rounds=None if not quick else 2_000,
        owner_count=300 if not quick else 150,
        seed=7,
    )
    summary["fig4"] = {}
    for dimension, result in fig4.items():
        emit()
        emit(result.format())
        summary["fig4"][dimension] = {
            "rounds": result.rounds,
            "final_regret": result.final_regret,
            "reserve_reduction_percent": result.reserve_reduction_percent,
            "uncertainty_increase_percent": result.uncertainty_increase_percent,
        }
    emit("[fig4 done at %.0fs]" % (time.time() - start))

    # ---------------------------------------------------------------- Table I
    emit()
    emit("=" * 78)
    emit("Table I — per-round statistics, version with reserve price")
    emit("=" * 78)
    table1 = run_table1(
        dimensions=(1, 20, 40, 60, 80, 100) if not quick else (1, 20),
        rounds=None if not quick else 2_000,
        owner_count=300 if not quick else 150,
        seed=7,
    )
    emit(format_table1(table1))
    summary["table1"] = [row.as_cells() for row in table1]
    emit("[table1 done at %.0fs]" % (time.time() - start))

    # --------------------------------------------------------------- Fig. 5(a)
    emit()
    emit("=" * 78)
    emit("Fig. 5(a) — regret ratios, noisy linear query, n = 100")
    emit("=" * 78)
    fig5a = run_fig5a(
        dimension=100 if not quick else 20,
        rounds=20_000 if not quick else 2_000,
        owner_count=300 if not quick else 150,
        seed=11,
    )
    emit(fig5a.format())
    emit(
        "reduction vs risk-averse: reserve %.1f%%, reserve+uncertainty %.1f%%"
        % (
            fig5a.reduction_vs_risk_averse("with reserve price"),
            fig5a.reduction_vs_risk_averse("with reserve price and uncertainty"),
        )
    )
    summary["fig5a"] = fig5a.final_ratio
    emit("[fig5a done at %.0fs]" % (time.time() - start))

    # --------------------------------------------------------------- Fig. 5(b)
    emit()
    emit("=" * 78)
    emit("Fig. 5(b) — regret ratios, accommodation rental, log-linear model")
    emit("=" * 78)
    fig5b = run_fig5b(
        listing_count=74_111 if not quick else 3_000,
        reserve_log_ratios=(0.4, 0.6, 0.8),
        seed=13,
    )
    emit(fig5b.format())
    summary["fig5b"] = {
        "final_ratio": fig5b.final_ratio,
        "risk_averse_ratio": fig5b.risk_averse_ratio,
        "test_mse": fig5b.test_mse,
    }
    emit("[fig5b done at %.0fs]" % (time.time() - start))

    # --------------------------------------------------------------- Fig. 5(c)
    emit()
    emit("=" * 78)
    emit("Fig. 5(c) — regret ratios, impression pricing, logistic model")
    emit("=" * 78)
    fig5c = run_fig5c(
        impression_count=20_000 if not quick else 3_000,
        training_count=20_000 if not quick else 3_000,
        dimensions=(128, 1024) if not quick else (64,),
        seed=17,
    )
    emit(fig5c.format())
    summary["fig5c"] = {
        "final_ratio": fig5c.final_ratio,
        "nonzero_weights": fig5c.nonzero_weights,
    }
    emit("[fig5c done at %.0fs]" % (time.time() - start))

    # ------------------------------------------------------- Section V-D
    emit()
    emit("=" * 78)
    emit("Section V-D — online latency and memory overhead")
    emit("=" * 78)
    overhead = run_overhead(
        noisy_query_rounds=2_000 if not quick else 300,
        noisy_query_dimension=100,
        listing_count=2_000 if not quick else 300,
        impression_count=2_000 if not quick else 300,
        impression_dimension=1024 if not quick else 128,
        owner_count=300 if not quick else 100,
        include_polytope_ablation=True,
        polytope_rounds=200 if not quick else 50,
        seed=23,
    )
    emit(format_overhead(overhead))
    summary["overhead"] = [report.as_cells() for report in overhead]
    emit("[overhead done at %.0fs]" % (time.time() - start))

    # ------------------------------------------------------- Lemma 8 / Fig. 6
    emit()
    emit("=" * 78)
    emit("Lemma 8 / Fig. 6 — conservative-price-cut ablation")
    emit("=" * 78)
    adversarial = run_adversarial_example(rounds=4_000 if not quick else 800)
    for result in adversarial.values():
        emit(result.format())
    summary["lemma8"] = {
        key: value.cumulative_regret for key, value in adversarial.items()
    }
    emit("[lemma8 done at %.0fs]" % (time.time() - start))

    # ------------------------------------------------------- scaling sweeps
    emit()
    emit("=" * 78)
    emit("Theorem 1 / 3 — regret scaling sweeps and epsilon ablation")
    emit("=" * 78)
    horizon = run_horizon_scaling(
        horizons=(1_000, 2_000, 5_000, 10_000, 20_000) if not quick else (500, 1_000),
        dimension=20,
        owner_count=300 if not quick else 100,
        seed=29,
    )
    emit(format_scaling(horizon))
    emit()
    dimension_sweep = run_dimension_scaling(
        dimensions=(10, 20, 40, 60, 80) if not quick else (5, 10),
        rounds=10_000 if not quick else 1_000,
        owner_count=300 if not quick else 100,
        seed=31,
    )
    emit(format_scaling(dimension_sweep))
    emit()
    epsilon = run_epsilon_ablation(
        epsilon_multipliers=(0.1, 0.5, 1.0, 2.0, 10.0) if not quick else (1.0, 5.0),
        dimension=20,
        rounds=10_000 if not quick else 1_000,
        owner_count=300 if not quick else 100,
        seed=37,
    )
    emit(format_scaling(epsilon))
    summary["scaling"] = {
        "horizon": {r.rounds: r.cumulative_regret for r in horizon},
        "dimension": {r.dimension: r.cumulative_regret for r in dimension_sweep},
        "epsilon": {r.parameter_value: r.cumulative_regret for r in epsilon},
    }

    emit()
    emit("total wall-clock: %.0f seconds" % (time.time() - start))

    report_path = os.path.join(args.output_dir, "experiments_report.txt")
    with open(report_path, "w") as handle:
        handle.write("\n".join(lines) + "\n")
    with open(os.path.join(args.output_dir, "experiments_report.json"), "w") as handle:
        json.dump(summary, handle, indent=2, default=str)
    print("\nreport written to %s" % report_path)


if __name__ == "__main__":
    sys.exit(main())
