#!/usr/bin/env python3
"""Run every experiment at (near-)paper scale and write the results report.

This is the script behind EXPERIMENTS.md: it regenerates each table and figure
at the largest scale that is practical on a laptop, prints the series, and
stores everything in ``results/experiments_report.txt`` plus a machine-readable
``results/experiments_report.json``.

The multi-seed sweep runs on a :class:`repro.engine.RunMatrix` seed sweep with
optional checkpointed progress: pass ``--checkpoint-dir`` and every finished
(scenario, pricer) cell is persisted, so an interrupted pass resumes where it
stopped instead of re-simulating minutes of completed work.

The exactness contract is additionally pinned by a committed smoke report:

    python scripts/run_experiments.py --smoke           # (re)write the report
    python scripts/run_experiments.py --smoke --diff    # compare against it

``--smoke`` runs a small, deterministic seed sweep and writes
``results/experiments_smoke.json``; ``--smoke --diff`` re-runs it and fails
(exit code 2, diff written to ``results/smoke_diff.json``) if any number
drifted beyond ``--rtol`` from the committed report — CI runs this on every
push, so perf work cannot silently change results.

Run:  python scripts/run_experiments.py [--quick] [--smoke [--diff]]
"""

import argparse
import json
import math
import os
import sys
import time

import numpy as np

from repro.core.baselines import RiskAversePricer
from repro.core.models import LinearModel
from repro.core.pricing import PricerConfig, make_pricer
from repro.engine import ArrivalBatch, MarketScenario, RunMatrix
from repro.experiments.adversarial import run_adversarial_example
from repro.experiments.fig4 import run_fig4
from repro.experiments.fig5 import run_fig5a, run_fig5b, run_fig5c
from repro.experiments.overhead import format_overhead, run_overhead
from repro.experiments.regret_scaling import (
    format_scaling,
    run_dimension_scaling,
    run_epsilon_ablation,
    run_horizon_scaling,
)
from repro.experiments.reporting import format_table
from repro.experiments.table1 import format_table1, run_table1

#: Algorithm versions covered by the seed sweep (paper names + baseline).
SWEEP_VERSIONS = (
    "pure version",
    "with reserve price",
    "with reserve price and uncertainty",
    "risk-averse baseline",
)

#: Parameters of the deterministic smoke sweep pinned by the committed report.
SMOKE_PARAMS = {"dimension": 5, "rounds": 400, "seeds": (1, 2, 3), "delta": 0.01}


class _SweepScenarioBuilder:
    """Picklable seed → scenario builder for the noisy-linear seed sweep.

    The market is generated from *uniform* RNG draws and the identity-link
    linear model only (no ``normal``/``exp``/``log``), so the committed smoke
    report does not depend on the platform's libm — the same determinism
    discipline as the golden-transcript fixtures.
    """

    def __init__(self, dimension: int, rounds: int) -> None:
        self.dimension = dimension
        self.rounds = rounds

    def __call__(self, seed: int) -> MarketScenario:
        rng = np.random.default_rng(seed)
        theta = rng.random(self.dimension) + 0.1
        theta *= np.sqrt(2.0 * self.dimension) / np.linalg.norm(theta)
        features = rng.random((self.rounds, self.dimension)) + 0.05
        features /= np.linalg.norm(features, axis=1, keepdims=True)
        reserves = 0.6 * np.array([float(row @ theta) for row in features])
        noise = 0.01 * (rng.random(self.rounds) - 0.5)
        return MarketScenario(
            name="noisy-linear/seed=%d" % seed,
            model=LinearModel(theta),
            batch=ArrivalBatch(features=features, reserve_values=reserves, noise=noise),
            context={"seed": seed},
        )


class _SweepPricerFactory:
    """Picklable pricer factory for one sweep version."""

    def __init__(self, version: str, rounds: int, delta: float) -> None:
        self.version = version
        self.rounds = rounds
        self.delta = delta

    def __call__(self, scenario: MarketScenario):
        if self.version == "risk-averse baseline":
            return RiskAversePricer()
        dimension = scenario.batch.raw_dimension
        delta = self.delta if "uncertainty" in self.version else 0.0
        return make_pricer(
            dimension=dimension,
            radius=2.0 * np.sqrt(dimension),
            epsilon=PricerConfig.theoretical_epsilon(dimension, self.rounds, delta),
            delta=delta,
            use_reserve="reserve price" in self.version,
        )


def run_seed_sweep(
    dimension: int,
    rounds: int,
    seeds,
    delta: float = 0.01,
    executor: str = "auto",
    checkpoint_dir=None,
) -> dict:
    """Run the (version × seed) grid through the run matrix and summarise it."""
    matrix = RunMatrix()
    keys = matrix.add_scenario_sweep(
        "noisy-linear", _SweepScenarioBuilder(dimension, rounds), seeds
    )
    for version in SWEEP_VERSIONS:
        matrix.add_pricer(version, _SweepPricerFactory(version, rounds, delta))
    matrix.add_cross()
    # The tag fingerprints the workload, so smoke/quick/full passes can share
    # one checkpoint directory without ever reusing each other's results.
    grid = matrix.run(
        executor=executor,
        checkpoint_dir=checkpoint_dir,
        checkpoint_tag="noisy-linear/d=%d/T=%d/delta=%g" % (dimension, rounds, delta),
    )

    per_version = {}
    for version in SWEEP_VERSIONS:
        per_seed = {}
        for seed, key in zip(seeds, keys):
            result = grid.get(key, version)
            per_seed[str(seed)] = {
                "cumulative_regret": result.cumulative_regret,
                "regret_ratio": result.regret_ratio,
                "sale_rate": result.sale_rate(),
            }
        ratios = [cell["regret_ratio"] for cell in per_seed.values()]
        regrets = [cell["cumulative_regret"] for cell in per_seed.values()]
        per_version[version] = {
            "mean_regret_ratio": sum(ratios) / len(ratios),
            "mean_cumulative_regret": sum(regrets) / len(regrets),
            "per_seed": per_seed,
        }
    return {
        "workload": {
            "dimension": dimension,
            "rounds": rounds,
            "seeds": list(seeds),
            "delta": delta,
        },
        "per_version": per_version,
    }


def format_seed_sweep(sweep: dict) -> str:
    headers = ["version", "mean regret ratio", "mean cumulative regret"]
    rows = [
        [version, "%.6f" % cells["mean_regret_ratio"], "%.4f" % cells["mean_cumulative_regret"]]
        for version, cells in sweep["per_version"].items()
    ]
    return format_table(headers, rows)


def diff_payloads(expected, actual, rtol: float, path: str = "") -> list:
    """Recursive numeric diff; returns a list of mismatch records."""
    mismatches = []
    if isinstance(expected, dict) and isinstance(actual, dict):
        for key in sorted(set(expected) | set(actual)):
            child = "%s.%s" % (path, key) if path else str(key)
            if key not in expected:
                mismatches.append({"path": child, "error": "unexpected key"})
            elif key not in actual:
                mismatches.append({"path": child, "error": "missing key"})
            else:
                mismatches.extend(diff_payloads(expected[key], actual[key], rtol, child))
    elif isinstance(expected, list) and isinstance(actual, list):
        if len(expected) != len(actual):
            mismatches.append(
                {"path": path, "error": "length %d != %d" % (len(actual), len(expected))}
            )
        else:
            for index, (left, right) in enumerate(zip(expected, actual)):
                mismatches.extend(
                    diff_payloads(left, right, rtol, "%s[%d]" % (path, index))
                )
    elif isinstance(expected, (int, float)) and isinstance(actual, (int, float)):
        if not math.isclose(float(expected), float(actual), rel_tol=rtol, abs_tol=rtol):
            mismatches.append(
                {"path": path, "expected": expected, "actual": actual}
            )
    elif expected != actual:
        mismatches.append({"path": path, "expected": expected, "actual": actual})
    return mismatches


def run_smoke(args) -> int:
    """Run the deterministic smoke sweep; write or diff the committed report."""
    report_path = os.path.join(args.output_dir, "experiments_smoke.json")
    sweep = run_seed_sweep(
        dimension=SMOKE_PARAMS["dimension"],
        rounds=SMOKE_PARAMS["rounds"],
        seeds=SMOKE_PARAMS["seeds"],
        delta=SMOKE_PARAMS["delta"],
        executor="serial",
        checkpoint_dir=args.checkpoint_dir,
    )
    print(format_seed_sweep(sweep))
    if not args.diff:
        os.makedirs(args.output_dir, exist_ok=True)
        with open(report_path, "w") as handle:
            json.dump(sweep, handle, indent=2, sort_keys=True)
        print("smoke report written to %s" % report_path)
        return 0

    if not os.path.exists(report_path):
        print("no committed smoke report at %s; run --smoke without --diff first" % report_path)
        return 2
    with open(report_path) as handle:
        expected = json.load(handle)
    mismatches = diff_payloads(expected, sweep, rtol=args.rtol)
    if not mismatches:
        print("results-diff: OK (matches %s at rtol=%g)" % (report_path, args.rtol))
        return 0
    diff_path = os.path.join(args.output_dir, "smoke_diff.json")
    os.makedirs(args.output_dir, exist_ok=True)
    with open(diff_path, "w") as handle:
        json.dump({"rtol": args.rtol, "mismatches": mismatches, "actual": sweep}, handle, indent=2)
    print("results-diff: %d mismatch(es) vs %s; diff written to %s" % (
        len(mismatches), report_path, diff_path))
    for record in mismatches[:10]:
        print("  %s" % json.dumps(record))
    return 2


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="run a fast, scaled-down pass")
    parser.add_argument("--output-dir", default="results")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run only the small deterministic seed sweep (the committed results-diff tier)",
    )
    parser.add_argument(
        "--diff",
        action="store_true",
        help="with --smoke: compare against the committed report instead of rewriting it",
    )
    parser.add_argument(
        "--rtol", type=float, default=1e-9, help="relative tolerance for --diff comparisons"
    )
    parser.add_argument(
        "--checkpoint-dir",
        default=None,
        help="persist finished sweep cells here and resume from them on re-run",
    )
    args = parser.parse_args()

    if args.smoke:
        return run_smoke(args)

    os.makedirs(args.output_dir, exist_ok=True)
    lines = []
    summary = {}

    def emit(text=""):
        print(text, flush=True)
        lines.append(text)

    start = time.time()
    quick = args.quick

    # ------------------------------------------------------------------ Fig. 4
    emit("=" * 78)
    emit("Fig. 4 — cumulative regret, noisy linear query, four algorithm versions")
    emit("=" * 78)
    fig4 = run_fig4(
        dimensions=(1, 20, 40, 60, 80, 100) if not quick else (1, 20),
        rounds=None if not quick else 2_000,
        owner_count=300 if not quick else 150,
        seed=7,
    )
    summary["fig4"] = {}
    for dimension, result in fig4.items():
        emit()
        emit(result.format())
        summary["fig4"][dimension] = {
            "rounds": result.rounds,
            "final_regret": result.final_regret,
            "reserve_reduction_percent": result.reserve_reduction_percent,
            "uncertainty_increase_percent": result.uncertainty_increase_percent,
        }
    emit("[fig4 done at %.0fs]" % (time.time() - start))

    # ---------------------------------------------------------------- Table I
    emit()
    emit("=" * 78)
    emit("Table I — per-round statistics, version with reserve price")
    emit("=" * 78)
    table1 = run_table1(
        dimensions=(1, 20, 40, 60, 80, 100) if not quick else (1, 20),
        rounds=None if not quick else 2_000,
        owner_count=300 if not quick else 150,
        seed=7,
    )
    emit(format_table1(table1))
    summary["table1"] = [row.as_cells() for row in table1]
    emit("[table1 done at %.0fs]" % (time.time() - start))

    # --------------------------------------------------------------- Fig. 5(a)
    emit()
    emit("=" * 78)
    emit("Fig. 5(a) — regret ratios, noisy linear query, n = 100")
    emit("=" * 78)
    fig5a = run_fig5a(
        dimension=100 if not quick else 20,
        rounds=20_000 if not quick else 2_000,
        owner_count=300 if not quick else 150,
        seed=11,
    )
    emit(fig5a.format())
    emit(
        "reduction vs risk-averse: reserve %.1f%%, reserve+uncertainty %.1f%%"
        % (
            fig5a.reduction_vs_risk_averse("with reserve price"),
            fig5a.reduction_vs_risk_averse("with reserve price and uncertainty"),
        )
    )
    summary["fig5a"] = fig5a.final_ratio
    emit("[fig5a done at %.0fs]" % (time.time() - start))

    # --------------------------------------------------------------- Fig. 5(b)
    emit()
    emit("=" * 78)
    emit("Fig. 5(b) — regret ratios, accommodation rental, log-linear model")
    emit("=" * 78)
    fig5b = run_fig5b(
        listing_count=74_111 if not quick else 3_000,
        reserve_log_ratios=(0.4, 0.6, 0.8),
        seed=13,
    )
    emit(fig5b.format())
    summary["fig5b"] = {
        "final_ratio": fig5b.final_ratio,
        "risk_averse_ratio": fig5b.risk_averse_ratio,
        "test_mse": fig5b.test_mse,
    }
    emit("[fig5b done at %.0fs]" % (time.time() - start))

    # --------------------------------------------------------------- Fig. 5(c)
    emit()
    emit("=" * 78)
    emit("Fig. 5(c) — regret ratios, impression pricing, logistic model")
    emit("=" * 78)
    fig5c = run_fig5c(
        impression_count=20_000 if not quick else 3_000,
        training_count=20_000 if not quick else 3_000,
        dimensions=(128, 1024) if not quick else (64,),
        seed=17,
    )
    emit(fig5c.format())
    summary["fig5c"] = {
        "final_ratio": fig5c.final_ratio,
        "nonzero_weights": fig5c.nonzero_weights,
    }
    emit("[fig5c done at %.0fs]" % (time.time() - start))

    # ------------------------------------------------------- Section V-D
    emit()
    emit("=" * 78)
    emit("Section V-D — online latency and memory overhead")
    emit("=" * 78)
    overhead = run_overhead(
        noisy_query_rounds=2_000 if not quick else 300,
        noisy_query_dimension=100,
        listing_count=2_000 if not quick else 300,
        impression_count=2_000 if not quick else 300,
        impression_dimension=1024 if not quick else 128,
        owner_count=300 if not quick else 100,
        include_polytope_ablation=True,
        polytope_rounds=200 if not quick else 50,
        seed=23,
    )
    emit(format_overhead(overhead))
    summary["overhead"] = [report.as_cells() for report in overhead]
    emit("[overhead done at %.0fs]" % (time.time() - start))

    # ------------------------------------------------------- Lemma 8 / Fig. 6
    emit()
    emit("=" * 78)
    emit("Lemma 8 / Fig. 6 — conservative-price-cut ablation")
    emit("=" * 78)
    adversarial = run_adversarial_example(rounds=4_000 if not quick else 800)
    for result in adversarial.values():
        emit(result.format())
    summary["lemma8"] = {
        key: value.cumulative_regret for key, value in adversarial.items()
    }
    emit("[lemma8 done at %.0fs]" % (time.time() - start))

    # ------------------------------------------------------- scaling sweeps
    emit()
    emit("=" * 78)
    emit("Theorem 1 / 3 — regret scaling sweeps and epsilon ablation")
    emit("=" * 78)
    horizon = run_horizon_scaling(
        horizons=(1_000, 2_000, 5_000, 10_000, 20_000) if not quick else (500, 1_000),
        dimension=20,
        owner_count=300 if not quick else 100,
        seed=29,
    )
    emit(format_scaling(horizon))
    emit()
    dimension_sweep = run_dimension_scaling(
        dimensions=(10, 20, 40, 60, 80) if not quick else (5, 10),
        rounds=10_000 if not quick else 1_000,
        owner_count=300 if not quick else 100,
        seed=31,
    )
    emit(format_scaling(dimension_sweep))
    emit()
    epsilon = run_epsilon_ablation(
        epsilon_multipliers=(0.1, 0.5, 1.0, 2.0, 10.0) if not quick else (1.0, 5.0),
        dimension=20,
        rounds=10_000 if not quick else 1_000,
        owner_count=300 if not quick else 100,
        seed=37,
    )
    emit(format_scaling(epsilon))
    summary["scaling"] = {
        "horizon": {r.rounds: r.cumulative_regret for r in horizon},
        "dimension": {r.dimension: r.cumulative_regret for r in dimension_sweep},
        "epsilon": {r.parameter_value: r.cumulative_regret for r in epsilon},
    }
    emit("[scaling done at %.0fs]" % (time.time() - start))

    # ------------------------------------------------- multi-seed run matrix
    emit()
    emit("=" * 78)
    emit("Multi-seed sweep — (version × seed) run matrix, checkpointed progress")
    emit("=" * 78)
    sweep = run_seed_sweep(
        dimension=20 if not quick else 5,
        rounds=10_000 if not quick else 500,
        seeds=(1, 2, 3, 4, 5) if not quick else (1, 2),
        checkpoint_dir=args.checkpoint_dir,
    )
    emit(format_seed_sweep(sweep))
    summary["seed_sweep"] = sweep
    emit("[seed sweep done at %.0fs]" % (time.time() - start))

    emit()
    emit("total wall-clock: %.0f seconds" % (time.time() - start))

    report_path = os.path.join(args.output_dir, "experiments_report.txt")
    with open(report_path, "w") as handle:
        handle.write("\n".join(lines) + "\n")
    with open(os.path.join(args.output_dir, "experiments_report.json"), "w") as handle:
        json.dump(summary, handle, indent=2, default=str)
    print("\nreport written to %s" % report_path)
    return 0


if __name__ == "__main__":
    sys.exit(main())
