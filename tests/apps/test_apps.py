"""Tests for the three application instances and their shared plumbing."""

import numpy as np
import pytest

from repro.apps.accommodation import AccommodationConfig, build_accommodation_environment
from repro.apps.common import (
    ALGORITHM_VERSIONS,
    build_pricer_for_version,
    run_versions,
    scale_to_norm,
)
from repro.apps.impression import ImpressionConfig, build_impression_environment
from repro.apps.noisy_linear_query import (
    NoisyLinearQueryConfig,
    build_noisy_query_environment,
    run_noisy_query_experiment,
)
from repro.core.baselines import RiskAversePricer
from repro.core.one_dim import OneDimensionalPricer
from repro.core.pricing import EllipsoidPricer


class TestCommon:
    def test_scale_to_norm(self):
        scaled = scale_to_norm(np.array([3.0, 4.0]), 10.0)
        assert np.linalg.norm(scaled) == pytest.approx(10.0)
        assert np.allclose(scale_to_norm(np.zeros(2), 5.0), 0.0)

    def test_version_names_cover_paper(self):
        assert ALGORITHM_VERSIONS == (
            "pure version",
            "with uncertainty",
            "with reserve price",
            "with reserve price and uncertainty",
        )


@pytest.fixture(scope="module")
def small_noisy_query_environment():
    config = NoisyLinearQueryConfig(dimension=8, rounds=300, owner_count=80, seed=5)
    return build_noisy_query_environment(config)


class TestNoisyLinearQueryApp:
    def test_environment_structure(self, small_noisy_query_environment):
        env = small_noisy_query_environment
        assert env.dimension == 8
        assert env.rounds == 300
        assert env.radius >= 2.0 * np.sqrt(8) - 1e-9
        assert env.feature_norm_bound == pytest.approx(1.0)
        # ‖θ*‖ is at least the paper's √(2n) (it may be rescaled upward by the
        # value/reserve calibration) and stays inside the knowledge ball.
        assert np.linalg.norm(env.model.theta) >= np.sqrt(16.0) - 1e-9
        assert np.linalg.norm(env.model.theta) <= env.radius + 1e-9
        for arrival in env.arrivals[:20]:
            assert np.linalg.norm(arrival.features) == pytest.approx(1.0)
            assert arrival.reserve_value == pytest.approx(float(np.sum(arrival.features)))
            assert arrival.noise is not None

    def test_market_value_usually_exceeds_reserve(self, small_noisy_query_environment):
        env = small_noisy_query_environment
        exceeds = [
            float(a.features @ env.model.theta) >= a.reserve_value for a in env.arrivals
        ]
        assert np.mean(exceeds) > 0.8

    def test_pricer_versions_built_correctly(self, small_noisy_query_environment):
        env = small_noisy_query_environment
        pure = build_pricer_for_version(env, "pure version")
        assert isinstance(pure, EllipsoidPricer)
        assert not pure.config.use_reserve and pure.config.delta == 0.0
        uncertain = build_pricer_for_version(env, "with reserve price and uncertainty")
        assert uncertain.config.use_reserve and uncertain.config.delta == pytest.approx(env.delta)
        baseline = build_pricer_for_version(env, "risk-averse baseline")
        assert isinstance(baseline, RiskAversePricer)
        with pytest.raises(ValueError):
            build_pricer_for_version(env, "made-up version")

    def test_one_dimensional_configuration_uses_interval_pricer(self):
        config = NoisyLinearQueryConfig(dimension=1, rounds=50, owner_count=40, seed=1)
        env = build_noisy_query_environment(config)
        pricer = build_pricer_for_version(env, "with reserve price")
        assert isinstance(pricer, OneDimensionalPricer)
        # n = 1 features collapse to the constant 1 and θ* to √2 (paper Table I row 1).
        assert env.arrivals[0].features[0] == pytest.approx(1.0)
        assert env.model.theta[0] == pytest.approx(np.sqrt(2.0))

    def test_run_versions_shares_market(self, small_noisy_query_environment):
        results = run_versions(
            small_noisy_query_environment,
            versions=("pure version", "with reserve price"),
            include_risk_averse=True,
        )
        assert set(results) == {"pure version", "with reserve price", "risk-averse baseline"}
        values = {
            name: [o.market_value for o in result.outcomes[:10]]
            for name, result in results.items()
        }
        assert values["pure version"] == values["with reserve price"]

    def test_reserve_version_not_worse_than_pure(self, small_noisy_query_environment):
        results = run_versions(
            small_noisy_query_environment, versions=("pure version", "with reserve price")
        )
        assert (
            results["with reserve price"].cumulative_regret
            <= results["pure version"].cumulative_regret * 1.05
        )

    def test_experiment_wrapper(self):
        config = NoisyLinearQueryConfig(dimension=5, rounds=100, owner_count=50, seed=2)
        results = run_noisy_query_experiment(config, versions=("with reserve price",))
        assert set(results) == {"with reserve price"}
        assert results["with reserve price"].rounds == 100

    def test_invalid_rounds_rejected(self):
        with pytest.raises(ValueError):
            build_noisy_query_environment(
                NoisyLinearQueryConfig(dimension=5, rounds=0, owner_count=50)
            )


class TestAccommodationApp:
    @pytest.fixture(scope="class")
    def environment(self):
        config = AccommodationConfig(listing_count=400, reserve_log_ratio=0.6, seed=3)
        return build_accommodation_environment(config)

    def test_environment_structure(self, environment):
        assert environment.dimension == 55
        assert environment.rounds == 400
        assert environment.metadata["test_mse"] < 0.5
        for arrival in environment.arrivals[:10]:
            link_value = float(arrival.features @ environment.model.theta)
            assert arrival.reserve_value == pytest.approx(np.exp(0.6 * link_value))

    def test_reserve_below_market_value(self, environment):
        for arrival in environment.arrivals[:50]:
            value = environment.model.value(arrival.features)
            assert arrival.reserve_value <= value + 1e-9

    def test_no_reserve_configuration(self):
        config = AccommodationConfig(listing_count=200, reserve_log_ratio=None, seed=4)
        env = build_accommodation_environment(config)
        assert all(a.reserve_value is None for a in env.arrivals)

    def test_warm_start_contains_theta_and_speeds_convergence(self):
        cold_config = AccommodationConfig(listing_count=600, reserve_log_ratio=0.6, seed=5)
        warm_config = AccommodationConfig(
            listing_count=600, reserve_log_ratio=0.6, warm_start_count=400, seed=5
        )
        cold_env = build_accommodation_environment(cold_config)
        warm_env = build_accommodation_environment(warm_config)
        assert warm_env.initial_ellipsoid is not None
        assert warm_env.initial_ellipsoid.contains(warm_env.model.theta)
        cold = run_versions(cold_env, versions=("with reserve price",))["with reserve price"]
        warm = run_versions(warm_env, versions=("with reserve price",))["with reserve price"]
        assert warm.cumulative_regret <= cold.cumulative_regret

    def test_low_dimension_variant(self):
        config = AccommodationConfig(
            listing_count=300, dimension=16, include_amenities=False, seed=6
        )
        env = build_accommodation_environment(config)
        assert env.dimension == 16

    def test_invalid_ratio_rejected(self):
        with pytest.raises(ValueError):
            build_accommodation_environment(
                AccommodationConfig(listing_count=100, reserve_log_ratio=1.5)
            )


class TestImpressionApp:
    def test_sparse_environment(self):
        config = ImpressionConfig(
            impression_count=300, training_count=500, dimension=64, dense=False, seed=7
        )
        env = build_impression_environment(config)
        assert env.dimension == 64
        assert env.rounds == 300
        assert all(a.reserve_value is None for a in env.arrivals)
        # Market values are CTRs.
        for arrival in env.arrivals[:20]:
            value = env.model.value(arrival.features)
            assert 0.0 < value < 1.0

    def test_dense_environment_uses_support(self):
        config = ImpressionConfig(
            impression_count=300, training_count=500, dimension=64, dense=True, seed=7
        )
        env = build_impression_environment(config)
        assert env.dimension == env.metadata["nonzero_weights"]
        assert env.dimension < 64

    def test_invalid_counts_rejected(self):
        with pytest.raises(ValueError):
            build_impression_environment(ImpressionConfig(impression_count=0))
