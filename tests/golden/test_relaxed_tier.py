"""Relaxed-tier replay of the golden families through the batched backend.

The admission test for a fast math backend (see
:mod:`repro.engine.equivalence`): ``backend="batched"`` must reproduce every
committed golden family within the relaxed-tier tolerances — zero decision
flips on these fixtures, prices/regrets within policy rtol, final knowledge
geometry within policy rtol, cut counters exactly equal — while the default
path on the same process stays byte-identical to the fixture (the relaxed
tier is opt-in, never ambient).
"""

import os

import numpy as np
import pytest

import golden_specs

from repro.core.batched_ellipsoid import HAS_TORCH
from repro.engine import simulate
from repro.engine.equivalence import (
    assert_bit_exact,
    assert_regret_curves_close,
    assert_states_close,
    assert_transcripts_close,
    decision_flips,
)

FAMILIES = sorted(golden_specs.GOLDEN_SPECS)

RELAXED = ["batched"] + (["batched-torch"] if HAS_TORCH else [])


def _load(family):
    path = golden_specs.fixture_path(family)
    assert os.path.exists(path), (
        "golden fixture %s missing; run scripts/make_golden_transcripts.py" % path
    )
    return np.load(path)


def _golden_columns(data):
    return {
        name: data["expected_%s" % name] for name in golden_specs.GOLDEN_COLUMNS
    }


@pytest.mark.parametrize("backend", RELAXED)
@pytest.mark.parametrize("family", FAMILIES)
class TestRelaxedReplay:
    def test_batched_backend_within_relaxed_policy(self, family, backend):
        data = _load(family)
        model, batch, theta = golden_specs.market_from_fixture(data)
        pricer = golden_specs.build_pricer(family, theta)
        result = simulate(model, pricer, arrivals=batch, backend=backend)
        golden = _golden_columns(data)
        assert decision_flips(result.transcript, golden) == 0, (
            "%s/%s: batched replay flipped decisions on the golden market"
            % (family, backend)
        )
        assert_transcripts_close(
            result.transcript, golden, label="%s/%s" % (family, backend)
        )
        assert_regret_curves_close(
            np.nan_to_num(np.asarray(result.transcript.regrets), nan=0.0),
            np.nan_to_num(np.asarray(golden["regrets"], dtype=float), nan=0.0),
            label="%s/%s regret curve" % (family, backend),
        )

    def test_final_state_matches_reference(self, family, backend):
        data = _load(family)
        model, batch, theta = golden_specs.market_from_fixture(data)
        reference_pricer = golden_specs.build_pricer(family, theta)
        batched_pricer = golden_specs.build_pricer(family, theta)
        simulate(model, reference_pricer, arrivals=batch)
        simulate(model, batched_pricer, arrivals=batch, backend=backend)
        if not hasattr(reference_pricer, "state_dict"):
            pytest.skip("family %s has no checkpointable state" % family)
        assert_states_close(
            batched_pricer.state_dict(),
            reference_pricer.state_dict(),
            label="%s/%s state" % (family, backend),
        )


@pytest.mark.parametrize("family", FAMILIES)
def test_default_path_still_bit_exact(family):
    """The bit-exact tier is unaffected by the relaxed machinery existing."""
    data = _load(family)
    model, batch, theta = golden_specs.market_from_fixture(data)
    pricer = golden_specs.build_pricer(family, theta)
    result = simulate(model, pricer, arrivals=batch)
    columns = {
        name: getattr(result.transcript, name)
        for name in golden_specs.GOLDEN_COLUMNS
    }
    assert_bit_exact(columns, _golden_columns(data), label=family)
