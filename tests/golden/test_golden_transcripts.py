"""Golden-transcript regression tier.

The exactness contract used to be enforced only *pairwise* (engine vs the
in-process reference loop); if both drifted together, nothing would notice.
This tier pins the contract with committed artifacts: seeded T=512
transcripts per pricer family under ``tests/golden/``, replayed here with
**exact float equality** through

* the columnar engine (:func:`repro.engine.simulate`),
* the sequential reference loop (:func:`repro.engine.simulate_reference`),
* the chunked runner (:func:`repro.engine.run_batch_chunked`) at several
  chunk sizes — a chunk boundary must never move a single bit.

Regenerate fixtures with ``scripts/make_golden_transcripts.py`` only for
deliberate algorithm changes.

Escape hatch: on hosts whose BLAS rounds dot products differently (the only
platform-dependent operation in the replay), set ``REPRO_GOLDEN_ATOL`` to a
small tolerance (e.g. ``1e-12``) instead of deleting the tier.
"""

import os

import numpy as np
import pytest

import golden_specs

from repro.engine import run_batch_chunked, simulate, simulate_reference

FAMILIES = sorted(golden_specs.GOLDEN_SPECS)

#: Chunk sizes exercised against the committed transcripts (T = 512).
GOLDEN_CHUNK_SIZES = (7, 256, 512)

_ATOL = float(os.environ.get("REPRO_GOLDEN_ATOL", "0") or 0)


def _load(family):
    path = golden_specs.fixture_path(family)
    assert os.path.exists(path), (
        "golden fixture %s missing; run scripts/make_golden_transcripts.py" % path
    )
    return np.load(path)


def _assert_matches_golden(transcript, data, context):
    for name in golden_specs.GOLDEN_COLUMNS:
        actual = getattr(transcript, name)
        expected = data["expected_%s" % name]
        if _ATOL and actual.dtype.kind == "f":
            matches = np.allclose(actual, expected, rtol=0.0, atol=_ATOL, equal_nan=True)
        elif actual.dtype.kind == "f":
            matches = np.array_equal(actual, expected, equal_nan=True)
        else:
            matches = np.array_equal(actual, expected)
        assert matches, "%s: column %r diverged from the golden transcript" % (context, name)


class TestGoldenTranscripts:
    @pytest.mark.parametrize("family", FAMILIES)
    def test_engine_replay_is_exact(self, family):
        data = _load(family)
        model, batch, theta = golden_specs.market_from_fixture(data)
        pricer = golden_specs.build_pricer(family, theta)
        result = simulate(model, pricer, arrivals=batch)
        assert result.rounds == golden_specs.GOLDEN_ROUNDS
        _assert_matches_golden(result.transcript, data, "%s/engine" % family)

    @pytest.mark.parametrize("family", FAMILIES)
    def test_reference_loop_replay_is_exact(self, family):
        data = _load(family)
        model, batch, theta = golden_specs.market_from_fixture(data)
        pricer = golden_specs.build_pricer(family, theta)
        result = simulate_reference(model, pricer, batch.to_arrivals())
        _assert_matches_golden(result.transcript, data, "%s/reference" % family)

    @pytest.mark.parametrize("chunk_size", GOLDEN_CHUNK_SIZES)
    @pytest.mark.parametrize("family", FAMILIES)
    def test_chunked_replay_is_exact(self, family, chunk_size):
        data = _load(family)
        model, batch, theta = golden_specs.market_from_fixture(data)
        pricer = golden_specs.build_pricer(family, theta)
        result = run_batch_chunked(model, pricer, arrivals=batch, chunk_size=chunk_size)
        _assert_matches_golden(
            result.transcript, data, "%s/chunked[%d]" % (family, chunk_size)
        )

    def test_fixtures_are_committed_for_every_family(self):
        for family in FAMILIES:
            assert os.path.exists(golden_specs.fixture_path(family))

    def test_golden_markets_are_nontrivial(self):
        # Guards against a silently degenerate fixture (no sales, or a
        # learning pricer whose accept/reject feedback never varies) that
        # would make the equality assertions vacuous.  The risk-averse and
        # constant-markup baselines legitimately sell every round (they post
        # at or near the reserve, which sits below the market value).
        for family in FAMILIES:
            data = _load(family)
            sold = int(np.count_nonzero(data["expected_sold"]))
            assert sold > 0, family
            if family in ("ellipsoid-reserve", "ellipsoid-uncertainty", "one-dim", "sgd"):
                assert 0 < sold < data["expected_sold"].shape[0], family
