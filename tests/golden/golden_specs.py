"""Shared fixture specs for the golden-transcript regression tier.

One spec per pricer family: how to generate its seeded T=512 market and how
to build a fresh pricer for it.  Both the committed fixture generator
(``scripts/make_golden_transcripts.py``) and the replay test import this
module, so the fixtures can always be regenerated from the same definitions.

Determinism notes
-----------------
The markets use only *uniform* RNG draws plus IEEE-exact arithmetic
(add/mul/div/sqrt) — no ``normal``/``exp``/``log`` — and the identity-link
:class:`~repro.core.models.LinearModel`, so regeneration does not depend on
the platform's libm.  Noise and reserves are pre-drawn and **stored** in the
fixture, which means the replay exercises exactly the committed market even
if the generator's arithmetic ever drifted.  The replay itself still goes
through per-row ``numpy`` dot products, which are deterministic for a given
BLAS build; on an exotic BLAS the strict comparison can be relaxed with the
``REPRO_GOLDEN_ATOL`` environment variable (see the test module).
"""

from __future__ import annotations

import os

import numpy as np

from repro.core.baselines import (
    ConstantMarkupPricer,
    FixedPricePricer,
    OraclePricer,
    RiskAversePricer,
)
from repro.core.models import LinearModel
from repro.core.pricing import make_pricer
from repro.core.sgd_pricer import SGDContextualPricer
from repro.engine import ArrivalBatch

#: Horizon of every golden fixture.
GOLDEN_ROUNDS = 512

#: Directory holding the committed fixtures (next to this module).
GOLDEN_DIR = os.path.dirname(os.path.abspath(__file__))

#: Transcript columns pinned by the fixtures, in a fixed order.
GOLDEN_COLUMNS = (
    "link_values",
    "market_values",
    "reserve_values",
    "link_prices",
    "posted_prices",
    "sold",
    "skipped",
    "exploratory",
    "regrets",
)


def _uniform_market(seed: int, dimension: int, rounds: int = GOLDEN_ROUNDS):
    """A seeded market from uniform draws only (libm-free generation).

    Features are positive and unit-normalised, θ* is positive with
    ``‖θ*‖ = sqrt(2 n)`` (the paper's Section V-A setup), reserves sit at 60%
    of the deterministic value, and a small pre-drawn uniform noise term
    keeps the accept/reject boundary non-trivial.
    """
    rng = np.random.default_rng(seed)
    theta = rng.random(dimension) + 0.1
    theta *= np.sqrt(2.0 * dimension) / np.linalg.norm(theta)
    features = rng.random((rounds, dimension)) + 0.05
    features /= np.linalg.norm(features, axis=1, keepdims=True)
    reserves = 0.6 * np.array([float(row @ theta) for row in features])
    noise = 0.01 * (rng.random(rounds) - 0.5)
    return theta, features, reserves, noise


def _spec(seed, dimension, build, with_reserve=True):
    return {"seed": seed, "dimension": dimension, "build": build, "with_reserve": with_reserve}


def _ellipsoid_reserve(theta):
    dimension = theta.shape[0]
    return make_pricer(dimension=dimension, radius=2.0 * np.sqrt(dimension), epsilon=0.05)


def _ellipsoid_uncertainty(theta):
    dimension = theta.shape[0]
    return make_pricer(
        dimension=dimension,
        radius=2.0 * np.sqrt(dimension),
        epsilon=0.2,
        delta=0.01,
        use_reserve=False,
    )


def _one_dim(theta):
    return make_pricer(dimension=1, radius=2.0, epsilon=0.01)


def _sgd(theta):
    dimension = theta.shape[0]
    return SGDContextualPricer(dimension=dimension, radius=2.0 * np.sqrt(dimension))


def _oracle(theta):
    return OraclePricer(lambda x: float(x @ theta))


#: family name -> spec.  One entry per pricer family of the engine: the two
#: ellipsoid algorithm branches (reserve / starred-with-uncertainty), the
#: one-dimensional bisection pricer, the SGD learner, and the four stateless
#: baselines.
GOLDEN_SPECS = {
    "ellipsoid-reserve": _spec(101, 6, _ellipsoid_reserve),
    "ellipsoid-uncertainty": _spec(102, 6, _ellipsoid_uncertainty),
    "one-dim": _spec(103, 1, _one_dim),
    "sgd": _spec(104, 5, _sgd),
    "risk-averse": _spec(105, 4, lambda theta: RiskAversePricer()),
    "fixed-price": _spec(106, 4, lambda theta: FixedPricePricer(1.1)),
    "constant-markup": _spec(107, 4, lambda theta: ConstantMarkupPricer(1.5)),
    "oracle": _spec(108, 4, _oracle),
}


def fixture_path(family: str) -> str:
    return os.path.join(GOLDEN_DIR, "%s.npz" % family)


def build_market(family: str):
    """(model, batch, theta) for one family — regenerated from the spec."""
    spec = GOLDEN_SPECS[family]
    theta, features, reserves, noise = _uniform_market(spec["seed"], spec["dimension"])
    if not spec["with_reserve"]:
        reserves = np.full(features.shape[0], np.nan)
    model = LinearModel(theta)
    batch = ArrivalBatch(features=features, reserve_values=reserves, noise=noise)
    return model, batch, theta


def build_pricer(family: str, theta: np.ndarray):
    """A fresh pricer for one family."""
    return GOLDEN_SPECS[family]["build"](theta)


def market_from_fixture(data) -> tuple:
    """(model, batch, theta) reconstructed from a loaded fixture archive.

    The market replayed by the test is the *committed* one: features,
    reserves, and noise come from the fixture file, never from regeneration.
    """
    theta = np.asarray(data["theta"], dtype=float)
    batch = ArrivalBatch(
        features=np.asarray(data["features"], dtype=float),
        reserve_values=np.asarray(data["reserve_values"], dtype=float),
        noise=np.asarray(data["noise"], dtype=float),
    )
    return LinearModel(theta), batch, theta
