"""End-to-end integration tests exercising the paper's headline claims."""

import numpy as np
import pytest

from repro.apps.common import run_versions
from repro.apps.noisy_linear_query import NoisyLinearQueryConfig, build_noisy_query_environment
from repro.core.models import LinearModel, LogisticModel, LogLinearModel
from repro.core.noise import GaussianNoise
from repro.core.pricing import EllipsoidPricer, PricerConfig
from repro.core.simulation import MarketSimulator, QueryArrival


def _simulate_linear(pricer, theta, rounds, rng, reserve_fraction=0.6, noise=None):
    dimension = theta.shape[0]
    model = LinearModel(theta)
    arrivals = []
    for _ in range(rounds):
        features = np.abs(rng.standard_normal(dimension))
        features /= np.linalg.norm(features)
        value = float(features @ theta)
        noise_value = float(noise.sample(rng)) if noise is not None else 0.0
        arrivals.append(
            QueryArrival(
                features=features, reserve_value=reserve_fraction * value, noise=noise_value
            )
        )
    return MarketSimulator(model, pricer).run(arrivals)


class TestHeadlineClaims:
    def test_regret_ratio_decreases_and_becomes_small(self, rng):
        """The core claim: the ellipsoid pricer's regret ratio shrinks to a few percent."""
        dimension = 6
        theta = np.abs(rng.standard_normal(dimension))
        theta *= np.sqrt(2 * dimension) / np.linalg.norm(theta)
        pricer = EllipsoidPricer(
            PricerConfig(dimension=dimension, radius=2 * np.sqrt(dimension), epsilon=0.02)
        )
        result = _simulate_linear(pricer, theta, 3_000, rng)
        ratios = result.regret_ratio_curve()
        assert ratios[-1] < 0.10
        assert ratios[-1] < ratios[99]

    def test_knowledge_set_keeps_theta_despite_bounded_noise(self, rng):
        """With the δ buffer sized for the horizon, θ* survives noisy feedback."""
        dimension = 5
        theta = np.abs(rng.standard_normal(dimension)) + 0.1
        horizon = 800
        noise = GaussianNoise(0.002)
        delta = noise.buffer(horizon)
        pricer = EllipsoidPricer(
            PricerConfig(
                dimension=dimension,
                radius=2 * np.linalg.norm(theta),
                epsilon=max(0.05, 4 * dimension * delta),
                delta=delta,
            )
        )
        result = _simulate_linear(pricer, theta, horizon, rng, noise=noise)
        assert pricer.knowledge.contains(theta)
        assert result.cumulative_regret >= 0.0

    def test_reserve_price_mitigates_cold_start(self):
        """Fig. 5(a)'s qualitative claim on a fresh noisy-linear-query market."""
        config = NoisyLinearQueryConfig(dimension=12, rounds=400, owner_count=80, seed=21)
        environment = build_noisy_query_environment(config)
        results = run_versions(environment, versions=("pure version", "with reserve price"))
        pure_early = results["pure version"].accumulator.ratio_at(50)
        reserve_early = results["with reserve price"].accumulator.ratio_at(50)
        assert reserve_early <= pure_early + 1e-9

    def test_all_versions_beat_risk_averse_on_long_horizon(self):
        config = NoisyLinearQueryConfig(dimension=10, rounds=2_000, owner_count=80, seed=22)
        environment = build_noisy_query_environment(config)
        results = run_versions(
            environment,
            versions=("with reserve price", "with reserve price and uncertainty"),
            include_risk_averse=True,
        )
        baseline = results["risk-averse baseline"].regret_ratio
        assert results["with reserve price"].regret_ratio < baseline
        # The uncertainty version pays for its buffer during exploration; at
        # this short horizon it must already be in the baseline's neighbourhood
        # (it only overtakes it on the paper's 10^5-round horizon, which the
        # Fig. 5(a) bench exercises).
        assert results["with reserve price and uncertainty"].regret_ratio < 1.3 * baseline

    def test_uncertainty_version_costs_slightly_more(self):
        """Fig. 4's claim: the uncertainty buffer adds (moderate) regret."""
        config = NoisyLinearQueryConfig(dimension=10, rounds=2_000, owner_count=80, seed=23)
        environment = build_noisy_query_environment(config)
        results = run_versions(environment, versions=("pure version", "with uncertainty"))
        assert (
            results["with uncertainty"].cumulative_regret
            >= 0.8 * results["pure version"].cumulative_regret
        )


class TestNonLinearEndToEnd:
    def test_log_linear_pipeline_converges(self, rng):
        dimension = 4
        theta = np.array([2.0, 0.6, 0.3, 0.1])
        model = LogLinearModel(theta)
        pricer = EllipsoidPricer(
            PricerConfig(dimension=dimension, radius=1.2 * np.linalg.norm(theta), epsilon=0.05, use_reserve=True)
        )
        arrivals = []
        for _ in range(1_500):
            features = np.concatenate([[1.0], rng.uniform(0.0, 1.0, size=dimension - 1)])
            value = model.value(features)
            arrivals.append(QueryArrival(features=features, reserve_value=value**0.6, noise=0.0))
        result = MarketSimulator(model, pricer).run(arrivals)
        ratios = result.regret_ratio_curve()
        assert ratios[-1] < ratios[49]
        assert ratios[-1] < 0.4

    def test_logistic_pipeline_prices_ctr(self, rng):
        dimension = 6
        theta = rng.normal(0.0, 1.0, size=dimension)
        model = LogisticModel(theta)
        pricer = EllipsoidPricer(
            PricerConfig(
                dimension=dimension,
                radius=1.5 * np.linalg.norm(theta),
                epsilon=0.05,
                use_reserve=False,
            )
        )
        arrivals = []
        for _ in range(1_000):
            features = (rng.random(dimension) < 0.4).astype(float)
            arrivals.append(QueryArrival(features=features, reserve_value=None, noise=0.0))
        result = MarketSimulator(model, pricer).run(arrivals)
        for outcome in result.outcomes:
            if outcome.posted_price is not None:
                assert 0.0 <= outcome.posted_price <= 1.0
        assert result.regret_ratio_curve()[-1] < result.regret_ratio_curve()[49]
