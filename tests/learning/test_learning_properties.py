"""Property-based tests for the offline learning substrate."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.learning.ftrl import FTRLProximal
from repro.learning.linear_regression import LinearRegression
from repro.learning.metrics import log_loss, mean_squared_error
from repro.learning.pca import PCA

SETTINGS = settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


class TestOLSProperties:
    @SETTINGS
    @given(
        coefficients=hnp.arrays(
            dtype=float,
            shape=4,
            elements=st.floats(min_value=-3.0, max_value=3.0, allow_nan=False),
        ),
        seed=st.integers(0, 10_000),
    )
    def test_noiseless_recovery(self, coefficients, seed):
        rng = np.random.default_rng(seed)
        features = rng.standard_normal((60, 4))
        targets = features @ coefficients
        fit = LinearRegression(fit_intercept=False).fit(features, targets)
        assert np.allclose(fit.coefficients, coefficients, atol=1e-6)

    @SETTINGS
    @given(seed=st.integers(0, 10_000))
    def test_residuals_orthogonal_to_features(self, seed):
        rng = np.random.default_rng(seed)
        features = rng.standard_normal((80, 3))
        targets = rng.standard_normal(80)
        fit = LinearRegression(fit_intercept=False).fit(features, targets)
        residuals = targets - fit.predict(features)
        assert np.allclose(features.T @ residuals, 0.0, atol=1e-6)

    @SETTINGS
    @given(seed=st.integers(0, 10_000), ridge=st.floats(min_value=0.0, max_value=10.0))
    def test_ols_beats_or_matches_mean_predictor(self, seed, ridge):
        rng = np.random.default_rng(seed)
        features = rng.standard_normal((60, 3))
        targets = features @ np.array([1.0, -1.0, 0.5]) + rng.normal(0, 0.5, 60)
        fit = LinearRegression(fit_intercept=True, ridge=ridge).fit(features, targets)
        model_mse = mean_squared_error(targets, fit.predict(features))
        mean_mse = mean_squared_error(targets, np.full_like(targets, targets.mean()))
        assert model_mse <= mean_mse + 1e-9


class TestFTRLProperties:
    @SETTINGS
    @given(seed=st.integers(0, 10_000), l1=st.floats(min_value=0.0, max_value=5.0))
    def test_predictions_are_probabilities(self, seed, l1):
        rng = np.random.default_rng(seed)
        matrix = (rng.random((100, 8)) < 0.3).astype(float)
        labels = (rng.random(100) < 0.3).astype(float)
        model = FTRLProximal(dimension=8, l1=l1).fit(matrix, labels)
        probabilities = model.predict_proba_batch(matrix)
        assert np.all(probabilities >= 0.0)
        assert np.all(probabilities <= 1.0)
        assert np.isfinite(log_loss(labels, probabilities))

    @SETTINGS
    @given(seed=st.integers(0, 10_000))
    def test_weights_stay_finite(self, seed):
        rng = np.random.default_rng(seed)
        model = FTRLProximal(dimension=5, l1=0.1)
        for _ in range(200):
            features = (rng.random(5) < 0.5).astype(float)
            label = float(rng.random() < 0.5)
            model.update(features, label)
        assert np.all(np.isfinite(model.weights))


class TestPCAProperties:
    @SETTINGS
    @given(
        seed=st.integers(0, 10_000),
        components=st.integers(min_value=1, max_value=4),
    )
    def test_projection_norm_never_exceeds_centred_norm(self, seed, components):
        rng = np.random.default_rng(seed)
        data = rng.standard_normal((50, 4))
        pca = PCA(n_components=components).fit(data)
        projected = pca.transform(data)
        centred = data - data.mean(axis=0)
        assert np.all(
            np.linalg.norm(projected, axis=1) <= np.linalg.norm(centred, axis=1) + 1e-9
        )

    @SETTINGS
    @given(seed=st.integers(0, 10_000))
    def test_full_rank_projection_preserves_distances(self, seed):
        rng = np.random.default_rng(seed)
        data = rng.standard_normal((30, 3))
        pca = PCA(n_components=3).fit(data)
        projected = pca.transform(data)
        original_distance = np.linalg.norm(data[0] - data[1])
        projected_distance = np.linalg.norm(projected[0] - projected[1])
        assert projected_distance == pytest.approx(original_distance, rel=1e-9)
