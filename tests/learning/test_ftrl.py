"""Unit tests for FTRL-Proximal logistic regression."""

import numpy as np
import pytest

from repro.exceptions import LearningError
from repro.learning.ftrl import FTRLProximal
from repro.learning.metrics import log_loss


def _separable_dataset(rng, count=2000, dimension=10):
    """Labels depend on the first three coordinates only."""
    matrix = (rng.random((count, dimension)) < 0.3).astype(float)
    logits = 2.0 * matrix[:, 0] - 2.0 * matrix[:, 1] + 1.5 * matrix[:, 2] - 0.5
    probabilities = 1.0 / (1.0 + np.exp(-logits))
    labels = (rng.random(count) < probabilities).astype(float)
    return matrix, labels


class TestConstruction:
    def test_parameter_validation(self):
        with pytest.raises(LearningError):
            FTRLProximal(dimension=0)
        with pytest.raises(LearningError):
            FTRLProximal(dimension=3, alpha=0.0)
        with pytest.raises(LearningError):
            FTRLProximal(dimension=3, l1=-1.0)

    def test_initial_weights_are_zero(self):
        model = FTRLProximal(dimension=5)
        assert np.allclose(model.weights, 0.0)
        assert model.sparsity() == 0
        assert model.predict_proba(np.ones(5)) == pytest.approx(0.5)


class TestLearning:
    def test_learns_signal(self, rng):
        matrix, labels = _separable_dataset(rng)
        model = FTRLProximal(dimension=10, l1=0.5)
        model.fit(matrix, labels)
        predictions = model.predict_proba_batch(matrix)
        trained_loss = log_loss(labels, predictions)
        baseline_loss = log_loss(labels, np.full_like(labels, labels.mean()))
        assert trained_loss < baseline_loss

    def test_l1_induces_sparsity(self, rng):
        matrix, labels = _separable_dataset(rng)
        weak = FTRLProximal(dimension=10, l1=0.01).fit(matrix, labels)
        strong = FTRLProximal(dimension=10, l1=20.0).fit(matrix, labels)
        assert strong.sparsity() <= weak.sparsity()

    def test_update_returns_pre_update_probability(self, rng):
        model = FTRLProximal(dimension=4)
        probability = model.update(np.ones(4), 1.0)
        assert probability == pytest.approx(0.5)

    def test_signal_coordinates_have_largest_weights(self, rng):
        matrix, labels = _separable_dataset(rng, count=4000)
        model = FTRLProximal(dimension=10, l1=0.5).fit(matrix, labels, epochs=2)
        weights = np.abs(model.weights)
        informative = set(np.argsort(weights)[-3:])
        assert informative & {0, 1, 2}

    def test_label_validation(self):
        model = FTRLProximal(dimension=2)
        with pytest.raises(LearningError):
            model.update(np.ones(2), 0.5)

    def test_batch_shape_validation(self):
        model = FTRLProximal(dimension=2)
        with pytest.raises(LearningError):
            model.predict_proba_batch(np.ones((3, 5)))
        with pytest.raises(LearningError):
            model.fit(np.ones((3, 2)), np.ones(4))
        with pytest.raises(LearningError):
            model.fit(np.ones((3, 2)), np.ones(3), epochs=0)

    def test_deterministic_given_data_order(self, rng):
        matrix, labels = _separable_dataset(rng, count=500)
        a = FTRLProximal(dimension=10, l1=1.0).fit(matrix, labels)
        b = FTRLProximal(dimension=10, l1=1.0).fit(matrix, labels)
        assert np.allclose(a.weights, b.weights)
