"""Unit tests for the hashing-trick vectorizer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import LearningError
from repro.learning.hashing import HashingVectorizer, fnv1a_hash


class TestHash:
    def test_deterministic(self):
        assert fnv1a_hash("banner_pos=3") == fnv1a_hash("banner_pos=3")

    def test_different_tokens_differ(self):
        assert fnv1a_hash("a") != fnv1a_hash("b")

    def test_64_bit_range(self):
        assert 0 <= fnv1a_hash("some token") < 2**64


class TestVectorizer:
    def test_binary_one_hot(self):
        vectorizer = HashingVectorizer(dimension=16)
        vector = vectorizer.transform_tokens(["a", "b"])
        assert vector.shape == (16,)
        assert set(np.unique(vector)) <= {0.0, 1.0}
        assert vector.sum() in (1.0, 2.0)  # collisions allowed

    def test_counting_mode(self):
        vectorizer = HashingVectorizer(dimension=4, binary=False)
        vector = vectorizer.transform_tokens(["x", "x", "x"])
        assert vector.sum() == pytest.approx(3.0)

    def test_normalised_mode(self):
        vectorizer = HashingVectorizer(dimension=32, normalise=True)
        vector = vectorizer.transform_tokens(["a", "b", "c"])
        assert np.linalg.norm(vector) == pytest.approx(1.0)

    def test_batch_transform(self):
        vectorizer = HashingVectorizer(dimension=8)
        matrix = vectorizer.transform([["a"], ["b"], ["a", "b"]])
        assert matrix.shape == (3, 8)
        assert np.allclose(matrix[0] + matrix[1], matrix[2])

    def test_empty_batch(self):
        vectorizer = HashingVectorizer(dimension=8)
        assert vectorizer.transform([]).shape == (0, 8)

    def test_same_token_same_slot(self):
        vectorizer = HashingVectorizer(dimension=64)
        assert vectorizer.slot("device=7") == vectorizer.slot("device=7")

    def test_invalid_dimension(self):
        with pytest.raises(LearningError):
            HashingVectorizer(dimension=0)

    @settings(max_examples=50, deadline=None)
    @given(tokens=st.lists(st.text(min_size=1, max_size=12), max_size=20), dimension=st.integers(2, 64))
    def test_property_slots_in_range_and_stable(self, tokens, dimension):
        vectorizer = HashingVectorizer(dimension=dimension)
        vector_a = vectorizer.transform_tokens(tokens)
        vector_b = vectorizer.transform_tokens(tokens)
        assert np.array_equal(vector_a, vector_b)
        assert vector_a.shape == (dimension,)
        assert np.count_nonzero(vector_a) <= max(1, len(tokens)) if tokens else True
