"""Unit tests for categorical encoding and the listings featurizer."""

import numpy as np
import pytest

from repro.datasets.listings import generate_listings
from repro.exceptions import LearningError
from repro.learning.encoding import CategoricalEncoder, InteractionExpander, ListingFeaturizer


class TestCategoricalEncoder:
    def test_codes_assigned_in_first_seen_order(self):
        encoder = CategoricalEncoder().fit(["b", "a", "b", "c"])
        assert encoder.categories == ["b", "a", "c"]
        assert np.allclose(encoder.transform(["a", "b", "c"]), [1.0, 0.0, 2.0])

    def test_unknown_and_missing_values_encode_to_minus_one(self):
        encoder = CategoricalEncoder().fit(["x", "y"])
        assert np.allclose(encoder.transform(["z", None, "nan", "x"]), [-1.0, -1.0, -1.0, 0.0])

    def test_cardinality(self):
        encoder = CategoricalEncoder().fit(["a", "a", "b"])
        assert encoder.cardinality == 2

    def test_fit_transform(self):
        encoder = CategoricalEncoder()
        codes = encoder.fit_transform(["p", "q", "p"])
        assert np.allclose(codes, [0.0, 1.0, 0.0])


class TestInteractionExpander:
    def test_appends_products(self):
        matrix = np.array([[1.0, 2.0, 3.0], [0.5, 4.0, 2.0]])
        expanded = InteractionExpander([(0, 1), (1, 2)]).transform(matrix)
        assert expanded.shape == (2, 5)
        assert np.allclose(expanded[:, 3], matrix[:, 0] * matrix[:, 1])
        assert np.allclose(expanded[:, 4], matrix[:, 1] * matrix[:, 2])

    def test_no_pairs_is_identity(self):
        matrix = np.ones((3, 2))
        assert np.array_equal(InteractionExpander([]).transform(matrix), matrix)

    def test_out_of_range_pair_rejected(self):
        with pytest.raises(LearningError):
            InteractionExpander([(0, 5)]).transform(np.ones((2, 3)))

    def test_requires_2d(self):
        with pytest.raises(LearningError):
            InteractionExpander([(0, 0)]).transform(np.ones(3))


class TestListingFeaturizer:
    @pytest.fixture(scope="class")
    def dataset(self):
        return generate_listings(count=300, seed=11)

    def test_default_dimension_is_55(self, dataset):
        featurizer = ListingFeaturizer()
        matrix = featurizer.fit_transform(dataset)
        assert matrix.shape == (300, 55)
        assert featurizer.dimension == 55

    def test_intercept_column_is_one(self, dataset):
        matrix = ListingFeaturizer().fit_transform(dataset)
        assert np.allclose(matrix[:, 0], 1.0)

    def test_minmax_scaling_bounds_features(self, dataset):
        matrix = ListingFeaturizer().fit_transform(dataset)
        assert np.min(matrix) >= -1e-9
        assert np.max(matrix) <= 1.0 + 1e-9

    def test_standardise_scaling(self, dataset):
        matrix = ListingFeaturizer(scaling="standardise").fit_transform(dataset)
        means = matrix[:, 1:].mean(axis=0)
        assert np.max(np.abs(means)) < 1e-8

    def test_raw_scaling_keeps_counts(self, dataset):
        matrix = ListingFeaturizer(scaling="none").fit_transform(dataset)
        # number_of_reviews column keeps its raw (Poisson ~25) scale.
        assert matrix.max() > 10.0

    def test_without_amenities_smaller_base(self, dataset):
        featurizer = ListingFeaturizer(target_dimension=20, include_amenities=False)
        matrix = featurizer.fit_transform(dataset)
        assert matrix.shape == (300, 20)

    def test_target_dimension_below_base_width_rejected(self):
        with pytest.raises(LearningError):
            ListingFeaturizer(target_dimension=10)

    def test_unknown_scaling_rejected(self):
        with pytest.raises(LearningError):
            ListingFeaturizer(scaling="robust")

    def test_transform_before_fit_rejected(self, dataset):
        with pytest.raises(LearningError):
            ListingFeaturizer().transform(dataset)

    def test_fit_on_empty_dataset_rejected(self):
        from repro.datasets.listings import ListingsDataset

        with pytest.raises(LearningError):
            ListingFeaturizer().fit(ListingsDataset(listings=[]))

    def test_transform_is_consistent_across_calls(self, dataset):
        featurizer = ListingFeaturizer().fit(dataset)
        first = featurizer.transform(dataset)
        second = featurizer.transform(dataset)
        assert np.array_equal(first, second)

    def test_interactions_added_when_target_exceeds_base(self, dataset):
        featurizer = ListingFeaturizer(target_dimension=60)
        matrix = featurizer.fit_transform(dataset)
        assert matrix.shape == (300, 60)
