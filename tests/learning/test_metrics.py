"""Unit tests for the learning metrics."""

import numpy as np
import pytest

from repro.learning.metrics import accuracy, log_loss, mean_squared_error, r2_score


class TestMSE:
    def test_zero_for_perfect_predictions(self):
        assert mean_squared_error([1.0, 2.0], [1.0, 2.0]) == 0.0

    def test_known_value(self):
        assert mean_squared_error([0.0, 0.0], [1.0, 3.0]) == pytest.approx(5.0)

    def test_length_mismatch_rejected(self):
        with pytest.raises(Exception):
            mean_squared_error([1.0], [1.0, 2.0])


class TestR2:
    def test_perfect_fit(self):
        assert r2_score([1.0, 2.0, 3.0], [1.0, 2.0, 3.0]) == pytest.approx(1.0)

    def test_mean_prediction_scores_zero(self):
        targets = [1.0, 2.0, 3.0]
        assert r2_score(targets, [2.0, 2.0, 2.0]) == pytest.approx(0.0)

    def test_constant_targets(self):
        assert r2_score([2.0, 2.0], [2.0, 2.0]) == 1.0
        assert r2_score([2.0, 2.0], [1.0, 3.0]) == 0.0


class TestLogLoss:
    def test_confident_correct_predictions_score_low(self):
        assert log_loss([1.0, 0.0], [0.99, 0.01]) < 0.05

    def test_uninformative_predictions_score_log2(self):
        assert log_loss([1.0, 0.0], [0.5, 0.5]) == pytest.approx(np.log(2.0))

    def test_clipping_avoids_infinity(self):
        assert np.isfinite(log_loss([1.0], [0.0]))

    def test_rejects_non_binary_labels(self):
        with pytest.raises(ValueError):
            log_loss([0.5], [0.5])


class TestAccuracy:
    def test_thresholding(self):
        assert accuracy([1.0, 0.0, 1.0], [0.9, 0.2, 0.4]) == pytest.approx(2.0 / 3.0)

    def test_custom_threshold(self):
        assert accuracy([1.0], [0.4], threshold=0.3) == 1.0
