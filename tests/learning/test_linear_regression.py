"""Unit tests for the OLS / ridge regression substrate."""

import numpy as np
import pytest

from repro.exceptions import LearningError
from repro.learning.linear_regression import LinearRegression, train_test_split
from repro.learning.metrics import mean_squared_error


class TestFit:
    def test_recovers_exact_linear_relation(self, rng):
        features = rng.standard_normal((200, 4))
        coefficients = np.array([1.0, -2.0, 0.5, 3.0])
        targets = features @ coefficients + 0.7
        model = LinearRegression().fit(features, targets)
        assert np.allclose(model.coefficients, coefficients, atol=1e-8)
        assert model.intercept == pytest.approx(0.7)

    def test_without_intercept(self, rng):
        features = rng.standard_normal((100, 3))
        coefficients = np.array([2.0, 0.0, -1.0])
        targets = features @ coefficients
        model = LinearRegression(fit_intercept=False).fit(features, targets)
        assert model.intercept == 0.0
        assert np.allclose(model.coefficients, coefficients, atol=1e-8)

    def test_ridge_shrinks_coefficients(self, rng):
        features = rng.standard_normal((50, 3))
        targets = features @ np.array([5.0, 5.0, 5.0])
        plain = LinearRegression(fit_intercept=False).fit(features, targets)
        ridged = LinearRegression(fit_intercept=False, ridge=100.0).fit(features, targets)
        assert np.linalg.norm(ridged.coefficients) < np.linalg.norm(plain.coefficients)

    def test_ridge_handles_collinear_columns(self, rng):
        base = rng.standard_normal((80, 1))
        features = np.hstack([base, base, rng.standard_normal((80, 1))])
        targets = features @ np.array([1.0, 1.0, 0.5])
        model = LinearRegression(fit_intercept=False, ridge=1e-6).fit(features, targets)
        predictions = model.predict(features)
        assert mean_squared_error(targets, predictions) < 1e-6

    def test_prediction_on_noisy_data_beats_mean(self, rng):
        features = rng.standard_normal((300, 5))
        targets = features @ rng.standard_normal(5) + rng.normal(0, 0.1, size=300)
        model = LinearRegression().fit(features, targets)
        predictions = model.predict(features)
        baseline = np.full_like(targets, targets.mean())
        assert mean_squared_error(targets, predictions) < mean_squared_error(targets, baseline)

    def test_weight_vector_with_intercept_first(self, rng):
        features = rng.standard_normal((50, 2))
        targets = features @ np.array([1.0, 2.0]) + 3.0
        model = LinearRegression().fit(features, targets)
        weights = model.weight_vector()
        assert weights.shape == (3,)
        assert weights[0] == pytest.approx(model.intercept)

    def test_errors(self):
        with pytest.raises(LearningError):
            LinearRegression(ridge=-1.0)
        with pytest.raises(LearningError):
            LinearRegression().fit(np.ones((3, 2)), np.ones(4))
        with pytest.raises(LearningError):
            LinearRegression().fit(np.ones(3), np.ones(3))
        with pytest.raises(LearningError):
            LinearRegression().predict(np.ones((2, 2)))
        model = LinearRegression().fit(np.ones((3, 2)), np.ones(3))
        with pytest.raises(LearningError):
            model.predict(np.ones((2, 5)))

    def test_predict_single_row(self, rng):
        features = rng.standard_normal((30, 3))
        targets = features @ np.array([1.0, 1.0, 1.0])
        model = LinearRegression(fit_intercept=False).fit(features, targets)
        prediction = model.predict(np.array([1.0, 2.0, 3.0]))
        assert prediction.shape == (1,)
        assert prediction[0] == pytest.approx(6.0)


class TestTrainTestSplit:
    def test_split_sizes(self, rng):
        features = rng.standard_normal((100, 3))
        targets = rng.standard_normal(100)
        train_x, test_x, train_y, test_y = train_test_split(features, targets, 0.2, seed=0)
        assert train_x.shape == (80, 3)
        assert test_x.shape == (20, 3)
        assert train_y.shape == (80,)
        assert test_y.shape == (20,)

    def test_split_is_a_partition(self, rng):
        features = np.arange(50, dtype=float).reshape(50, 1)
        targets = np.arange(50, dtype=float)
        train_x, test_x, _, _ = train_test_split(features, targets, 0.3, seed=1)
        combined = np.sort(np.concatenate([train_x.ravel(), test_x.ravel()]))
        assert np.allclose(combined, np.arange(50))

    def test_invalid_fraction_rejected(self, rng):
        features = rng.standard_normal((10, 2))
        targets = rng.standard_normal(10)
        with pytest.raises(LearningError):
            train_test_split(features, targets, 0.0)
        with pytest.raises(LearningError):
            train_test_split(features, targets, 1.0)
