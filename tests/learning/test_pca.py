"""Unit tests for the PCA implementation."""

import numpy as np
import pytest

from repro.exceptions import LearningError
from repro.learning.pca import PCA


class TestPCA:
    def test_recovers_dominant_direction(self, rng):
        direction = np.array([3.0, 4.0]) / 5.0
        data = np.outer(rng.standard_normal(500), direction) + 0.01 * rng.standard_normal((500, 2))
        pca = PCA(n_components=1).fit(data)
        learned = pca.components_[0]
        assert abs(abs(learned @ direction) - 1.0) < 1e-3

    def test_transform_shape(self, rng):
        data = rng.standard_normal((100, 6))
        projected = PCA(n_components=3).fit_transform(data)
        assert projected.shape == (100, 3)

    def test_single_vector_transform(self, rng):
        data = rng.standard_normal((50, 4))
        pca = PCA(n_components=2).fit(data)
        projected = pca.transform(data[0])
        assert projected.shape == (2,)

    def test_reconstruction_error_decreases_with_components(self, rng):
        data = rng.standard_normal((200, 8)) @ np.diag([5, 4, 3, 2, 1, 0.5, 0.2, 0.1])
        errors = []
        for k in (1, 4, 8):
            pca = PCA(n_components=k).fit(data)
            reconstructed = pca.inverse_transform(pca.transform(data))
            errors.append(float(np.mean((data - reconstructed) ** 2)))
        assert errors[0] > errors[1] > errors[2]
        assert errors[2] == pytest.approx(0.0, abs=1e-18)

    def test_components_are_orthonormal(self, rng):
        data = rng.standard_normal((100, 5))
        pca = PCA(n_components=3).fit(data)
        gram = pca.components_ @ pca.components_.T
        assert np.allclose(gram, np.eye(3), atol=1e-10)

    def test_explained_variance_ratio_sums_below_one(self, rng):
        data = rng.standard_normal((100, 5))
        pca = PCA(n_components=2).fit(data)
        ratios = pca.explained_variance_ratio(data)
        assert np.all(ratios >= 0)
        assert ratios.sum() <= 1.0 + 1e-9

    def test_errors(self, rng):
        with pytest.raises(LearningError):
            PCA(n_components=0)
        with pytest.raises(LearningError):
            PCA(n_components=3).fit(rng.standard_normal((2, 2)))
        with pytest.raises(LearningError):
            PCA(n_components=2).transform(rng.standard_normal((3, 2)))
        pca = PCA(n_components=2).fit(rng.standard_normal((10, 4)))
        with pytest.raises(LearningError):
            pca.transform(rng.standard_normal((3, 7)))
