"""Unit tests for the synthetic ad click dataset (Avazu stand-in)."""

import numpy as np
import pytest

from repro.datasets.ad_clicks import FIELD_CARDINALITIES, generate_ad_clicks
from repro.exceptions import DatasetError


class TestGeneration:
    def test_count_and_fields(self):
        dataset = generate_ad_clicks(count=300, seed=0)
        assert len(dataset) == 300
        impression = dataset[0]
        assert set(impression.fields) == set(FIELD_CARDINALITIES)
        for name, value in impression.fields.items():
            assert 0 <= value < FIELD_CARDINALITIES[name]

    def test_click_rate_near_base_ctr(self):
        dataset = generate_ad_clicks(count=8000, base_ctr=0.17, seed=1)
        assert 0.10 < dataset.click_rate() < 0.30

    def test_labels_match_clicked_flags(self):
        dataset = generate_ad_clicks(count=100, seed=2)
        labels = dataset.labels()
        assert labels.shape == (100,)
        assert set(np.unique(labels)) <= {0.0, 1.0}
        assert labels.mean() == pytest.approx(dataset.click_rate())

    def test_tokens_are_stable_strings(self):
        impression = generate_ad_clicks(count=1, seed=3)[0]
        tokens = impression.tokens()
        assert len(tokens) == len(FIELD_CARDINALITIES)
        assert all("=" in token for token in tokens)
        assert tokens == sorted(tokens)

    def test_informative_fields_influence_ctr(self):
        """Banner position carries signal: CTRs differ clearly across its values."""
        dataset = generate_ad_clicks(count=20_000, seed=4)
        rates = []
        for position in range(FIELD_CARDINALITIES["banner_pos"]):
            clicks = [imp.clicked for imp in dataset if imp.fields["banner_pos"] == position]
            if len(clicks) > 100:
                rates.append(np.mean(clicks))
        assert max(rates) - min(rates) > 0.05

    def test_reproducible(self):
        a = generate_ad_clicks(count=50, seed=5)
        b = generate_ad_clicks(count=50, seed=5)
        assert [i.fields for i in a] == [i.fields for i in b]
        assert [i.clicked for i in a] == [i.clicked for i in b]

    def test_invalid_parameters_rejected(self):
        with pytest.raises(DatasetError):
            generate_ad_clicks(count=0)
        with pytest.raises(DatasetError):
            generate_ad_clicks(count=10, base_ctr=1.5)
