"""Unit tests for the synthetic ratings dataset (MovieLens stand-in)."""

import numpy as np
import pytest

from repro.datasets.synthetic_ratings import generate_ratings
from repro.exceptions import DatasetError


class TestGeneration:
    def test_shapes_and_ranges(self):
        dataset = generate_ratings(user_count=100, item_count=40, seed=0)
        assert dataset.user_count == 100
        assert dataset.item_count == 40
        assert dataset.rating_count == dataset.user_ids.shape[0]
        assert np.all(dataset.ratings >= 0.5)
        assert np.all(dataset.ratings <= 5.0)
        assert np.all(dataset.user_ids < 100)
        assert np.all(dataset.item_ids < 40)

    def test_half_star_scale(self):
        dataset = generate_ratings(user_count=50, item_count=30, seed=1)
        assert np.allclose(dataset.ratings * 2, np.round(dataset.ratings * 2))

    def test_every_user_has_at_least_one_rating(self):
        dataset = generate_ratings(user_count=80, item_count=30, seed=2)
        assert np.all(dataset.ratings_per_user() >= 1)

    def test_heavy_tailed_activity(self):
        dataset = generate_ratings(user_count=500, item_count=200, mean_ratings_per_user=10, seed=3)
        counts = dataset.ratings_per_user()
        assert counts.max() > 3 * np.median(counts)

    def test_reproducible(self):
        a = generate_ratings(user_count=30, item_count=20, seed=7)
        b = generate_ratings(user_count=30, item_count=20, seed=7)
        assert np.array_equal(a.ratings, b.ratings)
        assert np.array_equal(a.item_ids, b.item_ids)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(DatasetError):
            generate_ratings(user_count=0)
        with pytest.raises(DatasetError):
            generate_ratings(mean_ratings_per_user=0.0)
        with pytest.raises(DatasetError):
            generate_ratings(latent_rank=0)


class TestOwnerRecords:
    def test_mean_rating_records_in_scale(self):
        dataset = generate_ratings(user_count=60, item_count=30, seed=4)
        records = dataset.owner_records("mean_rating")
        assert records.shape == (60,)
        assert np.all(records >= 0.5)
        assert np.all(records <= 5.0)

    def test_activity_records_non_negative(self):
        dataset = generate_ratings(user_count=60, item_count=30, seed=5)
        records = dataset.owner_records("activity")
        assert np.all(records >= 0.0)

    def test_unknown_record_kind_rejected(self):
        dataset = generate_ratings(user_count=10, item_count=10, seed=6)
        with pytest.raises(DatasetError):
            dataset.owner_records("favorite_color")

    def test_mean_rating_matches_manual_computation(self):
        dataset = generate_ratings(user_count=20, item_count=15, seed=8)
        means = dataset.mean_rating_per_user()
        user = int(dataset.user_ids[0])
        mask = dataset.user_ids == user
        assert means[user] == pytest.approx(float(np.mean(dataset.ratings[mask])))
