"""Dataset-loader streaming determinism.

The serving replay feeds (:mod:`repro.serving.feeds`) rebuild their arrival
streams from the dataset loaders on every iteration, so the loaders must be
strictly deterministic: the same seed must produce the same record sequence
on every call, and iterating one dataset object twice must stream identical
records in identical order.  These tests pin that contract for all four
generators.
"""

import numpy as np

from repro.datasets import (
    generate_ad_clicks,
    generate_listings,
    generate_loans,
    generate_ratings,
)

SEED = 1234
COUNT = 200


def test_loans_same_seed_same_sequence():
    first = generate_loans(count=COUNT, seed=SEED)
    second = generate_loans(count=COUNT, seed=SEED)
    assert np.array_equal(first.feature_matrix(), second.feature_matrix())
    assert np.array_equal(first.interest_rates(), second.interest_rates())
    assert not np.array_equal(
        first.feature_matrix(), generate_loans(count=COUNT, seed=SEED + 1).feature_matrix()
    )


def test_listings_same_seed_same_sequence():
    first = generate_listings(count=COUNT, seed=SEED)
    second = generate_listings(count=COUNT, seed=SEED)
    assert np.array_equal(first.log_prices(), second.log_prices())
    for listing_a, listing_b in zip(first, second):
        assert listing_a.categorical_values() == listing_b.categorical_values()
        assert listing_a.numeric_values() == listing_b.numeric_values()
        assert listing_a.amenity_values() == listing_b.amenity_values()


def test_ad_clicks_same_seed_same_sequence():
    first = generate_ad_clicks(count=COUNT, seed=SEED)
    second = generate_ad_clicks(count=COUNT, seed=SEED)
    assert np.array_equal(first.labels(), second.labels())
    for impression_a, impression_b in zip(first, second):
        assert impression_a.tokens() == impression_b.tokens()


def test_ratings_same_seed_same_sequence():
    first = generate_ratings(user_count=40, item_count=30, seed=SEED)
    second = generate_ratings(user_count=40, item_count=30, seed=SEED)
    assert np.array_equal(first.user_ids, second.user_ids)
    assert np.array_equal(first.item_ids, second.item_ids)
    assert np.array_equal(first.ratings, second.ratings)


def test_iterating_one_dataset_twice_streams_identical_arrivals():
    """Replay feeds iterate a loader's output repeatedly; two passes over the
    same dataset object must yield the same arrivals in the same order."""
    loans = generate_loans(count=COUNT, seed=SEED)
    first_pass = [application.feature_vector() for application in loans]
    second_pass = [application.feature_vector() for application in loans]
    assert len(first_pass) == COUNT
    for vector_a, vector_b in zip(first_pass, second_pass):
        assert np.array_equal(vector_a, vector_b)

    clicks = generate_ad_clicks(count=COUNT, seed=SEED)
    assert [i.tokens() for i in clicks] == [i.tokens() for i in clicks]
