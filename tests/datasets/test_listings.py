"""Unit tests for the synthetic listings dataset (Airbnb stand-in)."""

import numpy as np
import pytest

from repro.datasets.listings import AMENITIES, AMENITY_NAMES, generate_listings
from repro.exceptions import DatasetError


class TestGeneration:
    def test_count_and_fields(self):
        dataset = generate_listings(count=200, seed=0)
        assert len(dataset) == 200
        listing = dataset[0]
        assert listing.city in ("NYC", "LA", "SF", "DC", "Chicago", "Boston")
        assert listing.accommodates >= 1
        assert 0.0 <= listing.host_response_rate <= 1.0
        assert 0.0 <= listing.occupancy_rate <= 1.0
        assert set(listing.amenities.keys()) == set(AMENITY_NAMES)

    def test_log_prices_reasonable(self):
        dataset = generate_listings(count=500, seed=1)
        log_prices = dataset.log_prices()
        assert log_prices.shape == (500,)
        assert 2.0 < np.mean(log_prices) < 8.0
        assert np.std(log_prices) > 0.1

    def test_entire_homes_cost_more_than_shared_rooms(self):
        dataset = generate_listings(count=3000, seed=2)
        entire = [l.log_price for l in dataset if l.room_type == "Entire home/apt"]
        shared = [l.log_price for l in dataset if l.room_type == "Shared room"]
        assert np.mean(entire) > np.mean(shared)

    def test_amenity_prevalence_roughly_matches_spec(self):
        dataset = generate_listings(count=4000, seed=3)
        values = np.array([[l.amenity_values()[name] for name, _, _ in AMENITIES] for l in dataset])
        observed = values.mean(axis=0)
        expected = np.array([prevalence for _, prevalence, _ in AMENITIES])
        assert np.max(np.abs(observed - expected)) < 0.05

    def test_noise_free_prices_are_deterministic_function_of_attributes(self):
        dataset = generate_listings(count=100, price_noise_sigma=0.0, seed=4)
        assert len(dataset) == 100

    def test_reproducible(self):
        a = generate_listings(count=50, seed=9)
        b = generate_listings(count=50, seed=9)
        assert np.allclose(a.log_prices(), b.log_prices())

    def test_invalid_parameters_rejected(self):
        with pytest.raises(DatasetError):
            generate_listings(count=0)
        with pytest.raises(DatasetError):
            generate_listings(count=10, price_noise_sigma=-0.1)


class TestRecordViews:
    def test_categorical_and_numeric_views(self):
        listing = generate_listings(count=1, seed=5)[0]
        categorical = listing.categorical_values()
        numeric = listing.numeric_values()
        assert set(categorical) == {"city", "room_type", "property_type", "cancellation_policy", "bed_type"}
        assert len(numeric) == 10
        assert numeric["instant_bookable"] in (0.0, 1.0)

    def test_amenity_values_are_binary(self):
        listing = generate_listings(count=1, seed=6)[0]
        assert set(listing.amenity_values().values()) <= {0.0, 1.0}
