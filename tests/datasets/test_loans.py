"""Unit tests for the synthetic loan application dataset."""

import numpy as np
import pytest

from repro.datasets.loans import LOAN_FEATURE_NAMES, generate_loans, true_elasticities
from repro.exceptions import DatasetError
from repro.learning.linear_regression import LinearRegression


class TestGeneration:
    def test_count_and_positivity(self):
        dataset = generate_loans(count=200, seed=0)
        assert len(dataset) == 200
        matrix = dataset.feature_matrix()
        assert matrix.shape == (200, len(LOAN_FEATURE_NAMES))
        assert np.all(matrix > 0)
        assert np.all(dataset.interest_rates() > 0)

    def test_rates_in_realistic_range(self):
        dataset = generate_loans(count=2000, seed=1)
        rates = dataset.interest_rates()
        assert 2.0 < np.median(rates) < 40.0

    def test_better_credit_scores_get_lower_rates(self):
        dataset = generate_loans(count=4000, seed=2)
        scores = dataset.feature_matrix()[:, 0]
        rates = dataset.interest_rates()
        good = rates[scores > np.percentile(scores, 75)]
        bad = rates[scores < np.percentile(scores, 25)]
        assert np.mean(good) < np.mean(bad)

    def test_log_log_structure_recoverable_by_ols(self):
        """OLS on log-transformed data recovers the latent elasticities."""
        dataset = generate_loans(count=5000, rate_noise_sigma=0.01, seed=3)
        log_features = np.log(dataset.feature_matrix())
        log_rates = np.log(dataset.interest_rates())
        design = np.hstack([np.ones((len(dataset), 1)), log_features])
        fit = LinearRegression(fit_intercept=False).fit(design, log_rates)
        recovered = fit.coefficients[1:]
        assert np.allclose(recovered, true_elasticities(), atol=0.05)

    def test_reproducible(self):
        a = generate_loans(count=30, seed=5)
        b = generate_loans(count=30, seed=5)
        assert np.allclose(a.interest_rates(), b.interest_rates())

    def test_invalid_parameters_rejected(self):
        with pytest.raises(DatasetError):
            generate_loans(count=0)
        with pytest.raises(DatasetError):
            generate_loans(count=5, rate_noise_sigma=-1.0)

    def test_indexing_and_iteration(self):
        dataset = generate_loans(count=5, seed=6)
        assert dataset[2].application_id == 2
        assert len(list(iter(dataset))) == 5
