"""Unit tests for the ellipsoid geometry."""

import math

import numpy as np
import pytest

from repro.core.ellipsoid import Ellipsoid, random_ellipsoid, unit_ball_volume
from repro.exceptions import DimensionMismatchError, NotPositiveDefiniteError


class TestConstruction:
    def test_ball_has_requested_radius(self):
        ball = Ellipsoid.ball(4, 3.0)
        assert ball.dimension == 4
        assert np.allclose(ball.center, 0.0)
        assert np.allclose(ball.shape, 9.0 * np.eye(4))

    def test_ball_rejects_non_positive_radius(self):
        with pytest.raises(ValueError):
            Ellipsoid.ball(3, 0.0)

    def test_enclosing_box_radius_matches_paper_formula(self):
        lower = np.array([-1.0, -2.0])
        upper = np.array([3.0, 1.0])
        ellipsoid = Ellipsoid.enclosing_box(lower, upper)
        expected_radius = math.sqrt(max(1.0, 9.0) + max(4.0, 1.0))
        assert np.isclose(ellipsoid.shape[0, 0], expected_radius**2)
        # Every corner of the box lies inside the enclosing ball.
        for x in (lower[0], upper[0]):
            for y in (lower[1], upper[1]):
                assert ellipsoid.contains(np.array([x, y]))

    def test_enclosing_box_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            Ellipsoid.enclosing_box([0.0, 1.0], [1.0, 0.0])

    def test_non_positive_definite_shape_rejected(self):
        with pytest.raises(NotPositiveDefiniteError):
            Ellipsoid(np.zeros(2), np.array([[1.0, 0.0], [0.0, -1.0]]))

    def test_non_square_shape_rejected(self):
        with pytest.raises(DimensionMismatchError):
            Ellipsoid(np.zeros(2), np.ones((2, 3)))

    def test_shape_is_symmetrised(self):
        shape = np.array([[2.0, 0.1], [0.0999999, 2.0]])
        ellipsoid = Ellipsoid(np.zeros(2), shape)
        assert np.allclose(ellipsoid.shape, ellipsoid.shape.T)

    def test_copy_is_independent(self, small_ellipsoid):
        clone = small_ellipsoid.copy()
        clone.center[0] = 100.0
        assert small_ellipsoid.center[0] != 100.0


class TestGeometry:
    def test_contains_center(self, small_ellipsoid):
        assert small_ellipsoid.contains(small_ellipsoid.center)

    def test_contains_rejects_far_point(self, small_ellipsoid):
        far_point = small_ellipsoid.center + 100.0 * np.ones(3)
        assert not small_ellipsoid.contains(far_point)

    def test_mahalanobis_of_center_is_zero(self, small_ellipsoid):
        assert small_ellipsoid.mahalanobis(small_ellipsoid.center) == pytest.approx(0.0)

    def test_support_interval_of_unit_ball(self, unit_ball_3d):
        direction = np.array([1.0, 0.0, 0.0])
        lower, upper = unit_ball_3d.support_interval(direction)
        assert lower == pytest.approx(-1.0)
        assert upper == pytest.approx(1.0)

    def test_support_interval_scales_with_direction_norm(self, unit_ball_3d):
        direction = np.array([2.0, 0.0, 0.0])
        lower, upper = unit_ball_3d.support_interval(direction)
        assert upper == pytest.approx(2.0)
        assert lower == pytest.approx(-2.0)

    def test_support_interval_bounds_inner_products(self, small_ellipsoid, rng):
        direction = rng.standard_normal(3)
        lower, upper = small_ellipsoid.support_interval(direction)
        points = small_ellipsoid.sample(200, seed=rng)
        values = points @ direction
        assert np.all(values >= lower - 1e-8)
        assert np.all(values <= upper + 1e-8)

    def test_width_along_matches_paper_formula(self, small_ellipsoid):
        direction = np.array([0.3, -0.2, 0.9])
        expected = 2.0 * math.sqrt(direction @ small_ellipsoid.shape @ direction)
        assert small_ellipsoid.width_along(direction) == pytest.approx(expected)

    def test_boundary_vector_lies_on_boundary(self, small_ellipsoid):
        direction = np.array([1.0, 1.0, 0.0])
        boundary = small_ellipsoid.boundary_vector(direction)
        point = small_ellipsoid.center + boundary
        assert small_ellipsoid.mahalanobis(point) == pytest.approx(1.0, abs=1e-8)

    def test_boundary_vector_rejects_zero_direction(self, small_ellipsoid):
        with pytest.raises(ValueError):
            small_ellipsoid.boundary_vector(np.zeros(3))


class TestVolumeAndEigenvalues:
    def test_unit_ball_volume_known_values(self):
        assert unit_ball_volume(1) == pytest.approx(2.0)
        assert unit_ball_volume(2) == pytest.approx(math.pi)
        assert unit_ball_volume(3) == pytest.approx(4.0 * math.pi / 3.0)

    def test_unit_ball_volume_rejects_bad_dimension(self):
        with pytest.raises(ValueError):
            unit_ball_volume(0)

    def test_ball_volume(self):
        ball = Ellipsoid.ball(3, 2.0)
        assert ball.volume() == pytest.approx(unit_ball_volume(3) * 8.0)

    def test_log_volume_consistent_with_volume(self, small_ellipsoid):
        assert math.log(small_ellipsoid.volume()) == pytest.approx(small_ellipsoid.log_volume())

    def test_eigenvalues_sorted_descending(self, small_ellipsoid):
        eigenvalues = small_ellipsoid.eigenvalues()
        assert np.all(np.diff(eigenvalues) <= 1e-12)
        assert small_ellipsoid.largest_eigenvalue() == pytest.approx(eigenvalues[0])
        assert small_ellipsoid.smallest_eigenvalue() == pytest.approx(eigenvalues[-1])

    def test_axis_widths_of_ball(self):
        ball = Ellipsoid.ball(4, 3.0)
        assert np.allclose(ball.axis_widths(), 6.0)


class TestSampling:
    def test_samples_are_contained(self, small_ellipsoid):
        points = small_ellipsoid.sample(500, seed=0)
        assert points.shape == (500, 3)
        for point in points:
            assert small_ellipsoid.contains(point)

    def test_boundary_samples_on_boundary(self, small_ellipsoid):
        points = small_ellipsoid.sample(50, seed=1, boundary=True)
        for point in points:
            assert small_ellipsoid.mahalanobis(point) == pytest.approx(1.0, abs=1e-6)

    def test_sample_rejects_negative_count(self, small_ellipsoid):
        with pytest.raises(ValueError):
            small_ellipsoid.sample(-1)


class TestMisc:
    def test_equality(self, small_ellipsoid):
        assert small_ellipsoid == small_ellipsoid.copy()
        assert small_ellipsoid != Ellipsoid.ball(3, 1.0)

    def test_state_arrays_reports_center_and_shape(self, small_ellipsoid):
        arrays = list(small_ellipsoid.state_arrays())
        assert len(arrays) == 2
        assert arrays[0].shape == (3,)
        assert arrays[1].shape == (3, 3)

    def test_random_ellipsoid_is_valid(self):
        ellipsoid = random_ellipsoid(6, seed=3)
        assert ellipsoid.dimension == 6
        assert ellipsoid.smallest_eigenvalue() > 0
