"""Unit tests for the one-dimensional posted price mechanism (Theorem 3 setting)."""

import numpy as np
import pytest

from repro.core.one_dim import OneDimensionalPricer


class TestConstruction:
    def test_rejects_negative_epsilon(self):
        with pytest.raises(ValueError):
            OneDimensionalPricer(0.0, 1.0, epsilon=0.0)

    def test_rejects_negative_delta(self):
        with pytest.raises(ValueError):
            OneDimensionalPricer(0.0, 1.0, epsilon=0.1, delta=-0.1)

    def test_version_names(self):
        assert OneDimensionalPricer(0, 1, 0.1).name == "with reserve price"
        assert OneDimensionalPricer(0, 1, 0.1, use_reserve=False).name == "pure version"
        assert OneDimensionalPricer(0, 1, 0.1, delta=0.1).name == "with reserve price and uncertainty"
        assert (
            OneDimensionalPricer(0, 1, 0.1, delta=0.1, use_reserve=False).name
            == "with uncertainty"
        )


class TestPaperOneDimensionalScenario:
    """The n = 1 setting of Section V-A: x = 1, reserve 1, market value √2."""

    def test_first_round_posts_reserve_like_midpoint(self):
        pricer = OneDimensionalPricer(0.0, 2.0, epsilon=0.01)
        decision = pricer.propose(1.0, reserve=1.0)
        # Midpoint of [0, 2] equals the reserve price 1; both give price 1.
        assert decision.exploratory
        assert decision.price == pytest.approx(1.0)

    def test_reserve_has_no_effect_after_first_acceptance(self):
        """After the first accepted cut the interval is [1, 2]; the reserve 1 never binds again."""
        with_reserve = OneDimensionalPricer(0.0, 2.0, epsilon=0.01, use_reserve=True)
        without_reserve = OneDimensionalPricer(0.0, 2.0, epsilon=0.01, use_reserve=False)
        market_value = float(np.sqrt(2.0))
        for _ in range(30):
            prices = []
            for pricer in (with_reserve, without_reserve):
                decision = pricer.propose(1.0, reserve=1.0)
                sold = decision.price is not None and decision.price <= market_value
                pricer.update(decision, accepted=sold)
                prices.append(decision.price)
            assert prices[0] == pytest.approx(prices[1])

    def test_bisection_converges_to_market_value(self):
        pricer = OneDimensionalPricer(0.0, 2.0, epsilon=1e-4, use_reserve=False)
        market_value = float(np.sqrt(2.0))
        for _ in range(40):
            decision = pricer.propose(1.0)
            sold = decision.price <= market_value
            pricer.update(decision, accepted=sold)
        lower, upper = pricer.value_bounds(1.0)
        assert lower <= market_value <= upper
        assert upper - lower < 0.01


class TestBehaviour:
    def test_skip_when_reserve_above_upper(self):
        pricer = OneDimensionalPricer(0.0, 2.0, epsilon=0.01)
        decision = pricer.propose(1.0, reserve=3.0)
        assert decision.skipped
        assert pricer.skipped_rounds == 1

    def test_conservative_price_when_interval_small(self):
        pricer = OneDimensionalPricer(0.9, 1.0, epsilon=0.5)
        decision = pricer.propose(1.0, reserve=0.0)
        assert not decision.exploratory
        assert decision.price == pytest.approx(0.9)

    def test_conservative_price_with_buffer(self):
        pricer = OneDimensionalPricer(0.9, 1.0, epsilon=0.5, delta=0.05, use_reserve=False)
        decision = pricer.propose(1.0)
        assert decision.price == pytest.approx(0.85)

    def test_negative_feature_direction(self):
        pricer = OneDimensionalPricer(-2.0, 2.0, epsilon=0.01, use_reserve=False)
        decision = pricer.propose(-1.0)
        assert decision.lower_bound == pytest.approx(-2.0)
        assert decision.upper_bound == pytest.approx(2.0)
        pricer.update(decision, accepted=True)
        # Acceptance of price 0 for feature -1 means -θ >= 0, i.e. θ <= 0.
        assert pricer.knowledge.upper <= 1e-9

    def test_zero_feature_never_cuts(self):
        pricer = OneDimensionalPricer(0.0, 2.0, epsilon=0.01, use_reserve=False)
        decision = pricer.propose(0.0)
        pricer.update(decision, accepted=True)
        assert pricer.cuts_applied == 0

    def test_conservative_cut_ablation_switch(self):
        pricer = OneDimensionalPricer(
            0.0, 2.0, epsilon=5.0, use_reserve=True, allow_conservative_cuts=True
        )
        decision = pricer.propose(1.0, reserve=1.5)
        assert not decision.exploratory
        pricer.update(decision, accepted=True)
        assert pricer.cuts_applied == 1

    def test_vector_feature_of_length_one_accepted(self):
        pricer = OneDimensionalPricer(0.0, 2.0, epsilon=0.01)
        decision = pricer.propose(np.array([1.0]), reserve=0.5)
        assert decision.posted

    def test_longer_feature_rejected(self):
        pricer = OneDimensionalPricer(0.0, 2.0, epsilon=0.01)
        with pytest.raises(ValueError):
            pricer.propose(np.array([1.0, 2.0]))

    def test_theorem3_regret_is_logarithmic(self):
        """Cumulative regret of the pure 1-D pricer grows ~log T, not linearly."""
        theta = 1.3
        pricer = OneDimensionalPricer(0.0, 2.0, epsilon=np.log(2000) ** 2 / 2000, use_reserve=False)
        cumulative = 0.0
        for _ in range(2000):
            decision = pricer.propose(1.0)
            value = theta
            sold = decision.price is not None and decision.price <= value
            pricer.update(decision, accepted=sold)
            cumulative += value - (decision.price if sold else 0.0)
        # The always-reject bound would be 2000 * 1.3 = 2600; the bisection
        # pricer must be orders of magnitude below that.
        assert cumulative < 30.0
