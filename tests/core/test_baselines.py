"""Unit tests for the baseline pricers."""

import numpy as np
import pytest

from repro.core.baselines import (
    ConstantMarkupPricer,
    FixedPricePricer,
    OraclePricer,
    RiskAversePricer,
)


class TestRiskAverse:
    def test_posts_reserve(self):
        pricer = RiskAversePricer()
        decision = pricer.propose(np.ones(3), reserve=2.5)
        assert decision.price == pytest.approx(2.5)
        assert not decision.exploratory

    def test_requires_reserve(self):
        with pytest.raises(ValueError):
            RiskAversePricer().propose(np.ones(3))

    def test_update_is_noop(self):
        pricer = RiskAversePricer()
        decision = pricer.propose(np.ones(3), reserve=1.0)
        pricer.update(decision, accepted=False)
        again = pricer.propose(np.ones(3), reserve=1.0)
        assert again.price == pytest.approx(1.0)

    def test_round_indices_increment(self):
        pricer = RiskAversePricer()
        first = pricer.propose(np.ones(2), reserve=1.0)
        second = pricer.propose(np.ones(2), reserve=1.0)
        assert (first.round_index, second.round_index) == (0, 1)


class TestOracle:
    def test_posts_market_value(self):
        pricer = OraclePricer(lambda x: float(np.sum(x)))
        decision = pricer.propose(np.array([1.0, 2.0]))
        assert decision.price == pytest.approx(3.0)

    def test_respects_reserve_when_below_value(self):
        pricer = OraclePricer(lambda x: 5.0)
        decision = pricer.propose(np.ones(2), reserve=2.0)
        assert decision.price == pytest.approx(5.0)

    def test_skips_when_reserve_above_value(self):
        pricer = OraclePricer(lambda x: 1.0)
        decision = pricer.propose(np.ones(2), reserve=2.0)
        assert decision.skipped

    def test_oracle_has_zero_regret(self):
        from repro.core.regret import single_round_regret

        pricer = OraclePricer(lambda x: float(np.sum(x)))
        features = np.array([0.5, 1.5])
        for reserve in (None, 1.0, 5.0):
            decision = pricer.propose(features, reserve=reserve)
            value = float(np.sum(features))
            sold = decision.price is not None and decision.price <= value
            regret = single_round_regret(value, reserve, decision.price, sold)
            assert regret == pytest.approx(0.0)


class TestFixedPrice:
    def test_posts_constant(self):
        pricer = FixedPricePricer(4.2)
        assert pricer.propose(np.ones(2)).price == pytest.approx(4.2)

    def test_respects_reserve(self):
        pricer = FixedPricePricer(1.0)
        assert pricer.propose(np.ones(2), reserve=3.0).price == pytest.approx(3.0)

    def test_rejects_non_finite_price(self):
        with pytest.raises(Exception):
            FixedPricePricer(float("nan"))


class TestConstantMarkup:
    def test_applies_markup(self):
        pricer = ConstantMarkupPricer(1.5)
        assert pricer.propose(np.ones(2), reserve=2.0).price == pytest.approx(3.0)

    def test_markup_below_one_still_respects_reserve(self):
        pricer = ConstantMarkupPricer(0.5)
        assert pricer.propose(np.ones(2), reserve=2.0).price == pytest.approx(2.0)

    def test_requires_reserve(self):
        with pytest.raises(ValueError):
            ConstantMarkupPricer(1.5).propose(np.ones(2))

    def test_rejects_non_positive_markup(self):
        with pytest.raises(ValueError):
            ConstantMarkupPricer(0.0)
