"""Unit tests for the knowledge-set representations."""

import numpy as np
import pytest

from repro.core.ellipsoid import Ellipsoid
from repro.core.knowledge import EllipsoidKnowledge, IntervalKnowledge, PolytopeKnowledge
from repro.exceptions import DimensionMismatchError


class TestIntervalKnowledge:
    def test_initial_bounds(self):
        knowledge = IntervalKnowledge(-1.0, 3.0)
        assert knowledge.dimension == 1
        assert knowledge.width == pytest.approx(4.0)

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            IntervalKnowledge(2.0, 1.0)

    def test_value_bounds_positive_direction(self):
        knowledge = IntervalKnowledge(-1.0, 3.0)
        assert knowledge.value_bounds(2.0) == (pytest.approx(-2.0), pytest.approx(6.0))

    def test_value_bounds_negative_direction_swaps(self):
        knowledge = IntervalKnowledge(-1.0, 3.0)
        lower, upper = knowledge.value_bounds(-1.0)
        assert lower == pytest.approx(-3.0)
        assert upper == pytest.approx(1.0)

    def test_cut_leq_tightens_upper(self):
        knowledge = IntervalKnowledge(0.0, 4.0)
        changed = knowledge.cut(2.0, 4.0, keep="leq")  # 2θ <= 4 -> θ <= 2
        assert changed
        assert knowledge.upper == pytest.approx(2.0)

    def test_cut_geq_tightens_lower(self):
        knowledge = IntervalKnowledge(0.0, 4.0)
        changed = knowledge.cut(2.0, 2.0, keep="geq")  # 2θ >= 2 -> θ >= 1
        assert changed
        assert knowledge.lower == pytest.approx(1.0)

    def test_cut_with_negative_direction(self):
        knowledge = IntervalKnowledge(0.0, 4.0)
        # -θ <= -3  <=>  θ >= 3.
        changed = knowledge.cut(-1.0, -3.0, keep="leq")
        assert changed
        assert knowledge.lower == pytest.approx(3.0)

    def test_uninformative_cut_is_noop(self):
        knowledge = IntervalKnowledge(0.0, 4.0)
        assert not knowledge.cut(1.0, 10.0, keep="leq")
        assert knowledge.upper == pytest.approx(4.0)

    def test_zero_direction_is_noop(self):
        knowledge = IntervalKnowledge(0.0, 4.0)
        assert not knowledge.cut(0.0, 1.0, keep="leq")

    def test_cut_never_inverts_interval(self):
        knowledge = IntervalKnowledge(0.0, 4.0)
        knowledge.cut(1.0, -5.0, keep="leq")  # θ <= -5 conflicts; clamp at lower
        assert knowledge.lower <= knowledge.upper

    def test_contains(self):
        knowledge = IntervalKnowledge(-1.0, 1.0)
        assert knowledge.contains(0.5)
        assert not knowledge.contains(2.0)

    def test_invalid_keep(self):
        with pytest.raises(ValueError):
            IntervalKnowledge(0.0, 1.0).cut(1.0, 0.5, keep="bad")

    def test_multidimensional_direction_rejected(self):
        with pytest.raises(DimensionMismatchError):
            IntervalKnowledge(0.0, 1.0).value_bounds(np.array([1.0, 2.0]))


class TestEllipsoidKnowledge:
    def test_from_radius(self):
        knowledge = EllipsoidKnowledge.from_radius(4, 3.0)
        assert knowledge.dimension == 4
        lower, upper = knowledge.value_bounds(np.array([1.0, 0, 0, 0]))
        assert lower == pytest.approx(-3.0)
        assert upper == pytest.approx(3.0)

    def test_requires_dimension_two(self):
        with pytest.raises(DimensionMismatchError):
            EllipsoidKnowledge(Ellipsoid.ball(1, 1.0))

    def test_cut_counts_and_shrinks_volume(self, rng):
        knowledge = EllipsoidKnowledge.from_radius(3, 2.0)
        initial_volume = knowledge.volume()
        direction = np.array([1.0, 1.0, 0.0])
        changed = knowledge.cut(direction, 0.0, keep="leq")
        assert changed
        assert knowledge.cut_count == 1
        assert knowledge.volume() < initial_volume

    def test_infeasible_cut_skipped(self):
        knowledge = EllipsoidKnowledge.from_radius(3, 1.0)
        changed = knowledge.cut(np.array([1.0, 0, 0]), -5.0, keep="leq")
        assert not changed
        assert knowledge.cut_count == 0

    def test_contains_true_weight_after_consistent_cuts(self, rng):
        theta = np.array([0.5, -0.3, 0.8])
        knowledge = EllipsoidKnowledge.from_radius(3, 2.0)
        for _ in range(50):
            direction = rng.standard_normal(3)
            value = float(direction @ theta)
            # A consistent observation: the value is at most / at least the cut offset.
            if rng.random() < 0.5:
                knowledge.cut(direction, value + 0.05, keep="leq")
            else:
                knowledge.cut(direction, value - 0.05, keep="geq")
            assert knowledge.contains(theta)

    def test_state_arrays(self):
        knowledge = EllipsoidKnowledge.from_radius(3, 1.0)
        arrays = knowledge.state_arrays()
        assert arrays[0].shape == (3,)
        assert arrays[1].shape == (3, 3)


class TestPolytopeKnowledge:
    def test_initial_box_bounds(self):
        knowledge = PolytopeKnowledge.from_radius(2, 2.0)
        lower, upper = knowledge.value_bounds(np.array([1.0, 0.0]))
        assert lower == pytest.approx(-2.0)
        assert upper == pytest.approx(2.0)

    def test_cut_changes_bounds_exactly(self):
        knowledge = PolytopeKnowledge.from_radius(2, 2.0)
        knowledge.cut(np.array([1.0, 0.0]), 0.5, keep="leq")
        lower, upper = knowledge.value_bounds(np.array([1.0, 0.0]))
        assert upper == pytest.approx(0.5)
        assert lower == pytest.approx(-2.0)

    def test_geq_cut(self):
        knowledge = PolytopeKnowledge.from_radius(2, 2.0)
        knowledge.cut(np.array([0.0, 1.0]), -1.0, keep="geq")
        lower, _ = knowledge.value_bounds(np.array([0.0, 1.0]))
        assert lower == pytest.approx(-1.0)

    def test_contains(self):
        knowledge = PolytopeKnowledge.from_radius(2, 1.0)
        knowledge.cut(np.array([1.0, 0.0]), 0.0, keep="leq")
        assert knowledge.contains(np.array([-0.5, 0.5]))
        assert not knowledge.contains(np.array([0.5, 0.5]))

    def test_constraint_limit(self):
        knowledge = PolytopeKnowledge.from_radius(2, 1.0, max_constraints=2)
        knowledge.cut(np.array([1.0, 0.0]), 0.5, keep="leq")
        knowledge.cut(np.array([0.0, 1.0]), 0.5, keep="leq")
        with pytest.raises(RuntimeError):
            knowledge.cut(np.array([1.0, 1.0]), 0.5, keep="leq")

    def test_polytope_bounds_are_tighter_than_ellipsoid(self, rng):
        """The exact polytope is always at least as tight as the Löwner–John ellipsoid."""
        dimension = 3
        radius = 2.0
        polytope = PolytopeKnowledge.from_radius(dimension, radius)
        # The ellipsoid starts from the ball enclosing the same box.
        ellipsoid = EllipsoidKnowledge(Ellipsoid.ball(dimension, radius * np.sqrt(dimension)))
        theta = np.array([0.1, 0.2, -0.3])  # stays feasible under every cut
        for _ in range(10):
            direction = rng.standard_normal(dimension)
            offset = float(direction @ theta) + 0.3
            polytope.cut(direction, offset, keep="leq")
            ellipsoid.cut(direction, offset, keep="leq")
        probe = rng.standard_normal(dimension)
        poly_lower, poly_upper = polytope.value_bounds(probe)
        ell_lower, ell_upper = ellipsoid.value_bounds(probe)
        assert poly_upper <= ell_upper + 1e-6
        assert poly_lower >= ell_lower - 1e-6
