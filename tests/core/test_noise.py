"""Unit tests for the sub-Gaussian noise family and the buffer δ."""

import math

import numpy as np
import pytest

from repro.core.noise import (
    BoundedNoise,
    GaussianNoise,
    NoNoise,
    RademacherNoise,
    UniformNoise,
    sigma_for_buffer,
    uncertainty_buffer,
)


class TestBuffer:
    def test_buffer_formula(self):
        expected = math.sqrt(2 * math.log(2.0)) * 0.1 * math.log(1000)
        assert uncertainty_buffer(0.1, 1000) == pytest.approx(expected)

    def test_buffer_zero_for_single_round(self):
        assert uncertainty_buffer(0.1, 1) == 0.0

    def test_buffer_monotone_in_sigma_and_horizon(self):
        assert uncertainty_buffer(0.2, 1000) > uncertainty_buffer(0.1, 1000)
        assert uncertainty_buffer(0.1, 10_000) > uncertainty_buffer(0.1, 1000)

    def test_buffer_rejects_bad_constant(self):
        with pytest.raises(ValueError):
            uncertainty_buffer(0.1, 100, constant=1.0)

    def test_buffer_rejects_bad_rounds(self):
        with pytest.raises(ValueError):
            uncertainty_buffer(0.1, 0)

    def test_sigma_for_buffer_inverts_buffer(self):
        delta = 0.01
        sigma = sigma_for_buffer(delta, 5000)
        assert uncertainty_buffer(sigma, 5000) == pytest.approx(delta)

    def test_sigma_for_buffer_small_horizon(self):
        assert sigma_for_buffer(0.01, 1) == 0.0


class TestDistributions:
    def test_no_noise_samples_zero(self):
        noise = NoNoise()
        assert noise.sample() == 0.0
        assert np.all(noise.sample(size=5) == 0.0)
        assert noise.buffer(1000) == 0.0

    def test_gaussian_moments(self, rng):
        noise = GaussianNoise(0.5)
        samples = noise.sample(rng, size=20_000)
        assert np.mean(samples) == pytest.approx(0.0, abs=0.02)
        assert np.std(samples) == pytest.approx(0.5, abs=0.02)

    def test_uniform_bounded(self, rng):
        noise = UniformNoise(0.3)
        samples = noise.sample(rng, size=5_000)
        assert np.max(np.abs(samples)) <= 0.3
        assert noise.sigma == pytest.approx(0.3)

    def test_rademacher_values(self, rng):
        noise = RademacherNoise(0.2)
        samples = noise.sample(rng, size=1_000)
        assert set(np.round(np.unique(samples), 10)) == {-0.2, 0.2}
        scalar = noise.sample(rng)
        assert scalar in (-0.2, 0.2)

    def test_bounded_noise_clipped(self, rng):
        noise = BoundedNoise(sigma=1.0, bound=0.5)
        samples = noise.sample(rng, size=2_000)
        assert np.max(np.abs(samples)) <= 0.5
        scalar = noise.sample(rng)
        assert abs(scalar) <= 0.5

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            GaussianNoise(-1.0)

    def test_empirical_subgaussian_tail(self, rng):
        """Pr(|δ| > buffer) is tiny for the buffer computed over the horizon."""
        horizon = 2_000
        noise = GaussianNoise(sigma_for_buffer(0.05, horizon))
        buffer = noise.buffer(horizon)
        samples = noise.sample(rng, size=horizon)
        exceed_fraction = np.mean(np.abs(samples) > buffer)
        assert exceed_fraction <= 1.0 / horizon + 0.002
