"""Property-based tests (hypothesis) for the core invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.cuts import CutKind, loewner_john_cut
from repro.core.ellipsoid import Ellipsoid
from repro.core.knowledge import IntervalKnowledge
from repro.core.pricing import EllipsoidPricer, PricerConfig
from repro.core.regret import single_round_regret, single_round_regret_without_reserve

SETTINGS = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

finite_floats = st.floats(min_value=-50.0, max_value=50.0, allow_nan=False, allow_infinity=False)
positive_floats = st.floats(min_value=0.01, max_value=50.0, allow_nan=False, allow_infinity=False)


def _direction_strategy(dimension):
    return hnp.arrays(
        dtype=float,
        shape=dimension,
        elements=st.floats(min_value=-3.0, max_value=3.0, allow_nan=False, allow_infinity=False),
    ).filter(lambda v: float(np.linalg.norm(v)) > 1e-3)


class TestRegretProperties:
    @SETTINGS
    @given(value=positive_floats, reserve=positive_floats, price=positive_floats)
    def test_regret_bounded_by_market_value(self, value, reserve, price):
        regret = single_round_regret(value, reserve, price)
        assert 0.0 <= regret <= value + 1e-12

    @SETTINGS
    @given(value=positive_floats, reserve=positive_floats, price=positive_floats)
    def test_lemma1_reserve_cannot_increase_regret(self, value, reserve, price):
        """Lemma 1 as a property: regret(max(q, p)) <= regret without reserve at p."""
        constrained = single_round_regret(value, reserve, max(reserve, price))
        unconstrained = single_round_regret_without_reserve(value, price)
        assert constrained <= unconstrained + 1e-12

    @SETTINGS
    @given(value=positive_floats, reserve=positive_floats)
    def test_posting_market_value_is_optimal(self, value, reserve):
        """No posted price achieves lower regret than posting the value itself."""
        optimum = single_round_regret(value, reserve, max(reserve, value))
        for price in (0.5 * value, 0.9 * value, 1.1 * value, 2.0 * value):
            assert optimum <= single_round_regret(value, reserve, max(reserve, price)) + 1e-9


class TestEllipsoidProperties:
    @SETTINGS
    @given(
        direction=_direction_strategy(4),
        offset_fraction=st.floats(min_value=0.05, max_value=0.95),
        keep_leq=st.booleans(),
    )
    def test_cut_keeps_feasible_points_and_shrinks_volume(
        self, direction, offset_fraction, keep_leq
    ):
        ellipsoid = Ellipsoid.ball(4, 2.0)
        lower, upper = ellipsoid.support_interval(direction)
        offset = lower + offset_fraction * (upper - lower)
        keep = "leq" if keep_leq else "geq"
        result = loewner_john_cut(ellipsoid, direction, offset, keep, on_infeasible="skip")
        if not result.updated:
            return
        # Positive definiteness survives the update.
        assert result.ellipsoid.smallest_eigenvalue() > 0.0
        # Central and deep cuts never grow the volume.
        if result.kind in (CutKind.CENTRAL, CutKind.DEEP):
            assert result.ellipsoid.volume() <= ellipsoid.volume() * (1.0 + 1e-9)
        # The kept part of the original ellipsoid stays covered.
        points = ellipsoid.sample(64, seed=0)
        values = points @ direction
        kept = points[values <= offset] if keep == "leq" else points[values >= offset]
        for point in kept:
            assert result.ellipsoid.contains(point, tolerance=1e-6)

    @SETTINGS
    @given(
        center=hnp.arrays(dtype=float, shape=3, elements=finite_floats),
        scales=hnp.arrays(dtype=float, shape=3, elements=st.floats(min_value=0.1, max_value=5.0)),
        direction=_direction_strategy(3),
    )
    def test_support_interval_contains_center_value(self, center, scales, direction):
        ellipsoid = Ellipsoid(center, np.diag(scales**2))
        lower, upper = ellipsoid.support_interval(direction)
        middle = float(direction @ center)
        assert lower - 1e-9 <= middle <= upper + 1e-9
        assert upper - lower == pytest.approx(ellipsoid.width_along(direction))


class TestIntervalProperties:
    @SETTINGS
    @given(
        lower=st.floats(min_value=-10, max_value=9, allow_nan=False),
        width=st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
        direction=st.floats(min_value=-5, max_value=5, allow_nan=False).filter(
            lambda v: abs(v) > 1e-3
        ),
        offset=st.floats(min_value=-30, max_value=30, allow_nan=False),
        keep_leq=st.booleans(),
    )
    def test_interval_cut_is_sound(self, lower, width, direction, offset, keep_leq):
        """Every θ kept by the exact halfspace intersection stays in the interval."""
        knowledge = IntervalKnowledge(lower, lower + width)
        original = (knowledge.lower, knowledge.upper)
        keep = "leq" if keep_leq else "geq"
        knowledge.cut(direction, offset, keep=keep)
        assert knowledge.lower <= knowledge.upper
        # Soundness: points of the original interval satisfying the constraint
        # are still inside the updated interval.
        for theta in np.linspace(original[0], original[1], 9):
            satisfied = direction * theta <= offset if keep == "leq" else direction * theta >= offset
            if satisfied:
                assert knowledge.lower - 1e-9 <= theta <= knowledge.upper + 1e-9


class TestPricerProperties:
    @SETTINGS
    @given(
        theta=hnp.arrays(
            dtype=float,
            shape=3,
            elements=st.floats(min_value=0.05, max_value=1.5, allow_nan=False),
        ),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_knowledge_always_contains_theta_without_noise(self, theta, seed):
        """With consistent (noise-free) feedback the knowledge set never loses θ*."""
        rng = np.random.default_rng(seed)
        dimension = 3
        pricer = EllipsoidPricer(
            PricerConfig(dimension=dimension, radius=4.0, epsilon=0.01, use_reserve=True)
        )
        for _ in range(40):
            features = np.abs(rng.standard_normal(dimension)) + 0.05
            features /= np.linalg.norm(features)
            value = float(features @ theta)
            decision = pricer.propose(features, reserve=0.5 * value)
            if decision.skipped or decision.price is None:
                continue
            pricer.update(decision, accepted=decision.price <= value)
            assert pricer.knowledge.contains(theta)

    @SETTINGS
    @given(
        reserve=st.floats(min_value=0.0, max_value=3.0, allow_nan=False),
        seed=st.integers(min_value=0, max_value=1_000),
    )
    def test_posted_price_respects_reserve(self, reserve, seed):
        rng = np.random.default_rng(seed)
        pricer = EllipsoidPricer(PricerConfig(dimension=3, radius=2.0, epsilon=0.05))
        features = np.abs(rng.standard_normal(3)) + 0.1
        features /= np.linalg.norm(features)
        decision = pricer.propose(features, reserve=reserve)
        if decision.posted:
            assert decision.price >= reserve - 1e-12
        else:
            # Skipping is only allowed when the reserve certainly exceeds the value.
            assert reserve >= decision.upper_bound
