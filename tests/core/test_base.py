"""Unit tests for the shared posted-price mechanism interface."""

import numpy as np
import pytest

from repro.core.base import PostedPriceMechanism, PricingDecision


class _CountingPricer(PostedPriceMechanism):
    """Minimal concrete mechanism used to exercise the base-class plumbing."""

    name = "counting"

    def propose(self, features, reserve=None):
        return PricingDecision(
            features=np.atleast_1d(np.asarray(features, dtype=float)),
            reserve=reserve,
            lower_bound=0.0,
            upper_bound=1.0,
            price=0.5,
            exploratory=True,
            skipped=False,
            round_index=self._next_round(),
        )

    def update(self, decision, accepted):
        return None


class TestPricingDecision:
    def test_width_and_posted(self):
        decision = PricingDecision(
            features=np.array([1.0]),
            reserve=0.2,
            lower_bound=0.5,
            upper_bound=1.5,
            price=1.0,
            exploratory=True,
            skipped=False,
            round_index=0,
        )
        assert decision.width == pytest.approx(1.0)
        assert decision.posted

    def test_skipped_decision_is_not_posted(self):
        decision = PricingDecision(
            features=np.array([1.0]),
            reserve=None,
            lower_bound=0.0,
            upper_bound=1.0,
            price=None,
            exploratory=False,
            skipped=True,
            round_index=3,
        )
        assert not decision.posted

    def test_metadata_defaults_to_empty_dict(self):
        decision = PricingDecision(
            features=np.array([1.0]),
            reserve=None,
            lower_bound=0.0,
            upper_bound=1.0,
            price=0.5,
            exploratory=True,
            skipped=False,
            round_index=0,
        )
        assert decision.metadata == {}
        decision.metadata["note"] = "x"
        assert decision.metadata["note"] == "x"


class TestBaseMechanism:
    def test_round_counter(self):
        pricer = _CountingPricer()
        assert pricer.rounds_seen == 0
        first = pricer.propose(np.array([1.0]))
        second = pricer.propose(np.array([1.0]))
        assert (first.round_index, second.round_index) == (0, 1)
        assert pricer.rounds_seen == 2

    def test_default_state_and_memory_report(self):
        pricer = _CountingPricer()
        assert pricer.state_arrays() == ()
        report = pricer.memory_report()
        assert report.state_bytes == 0
        assert report.state_megabytes == 0.0
