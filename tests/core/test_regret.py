"""Unit tests for the regret accounting of Equation (1)."""

import numpy as np
import pytest

from repro.core.regret import (
    RegretAccumulator,
    regret_ratio,
    single_round_regret,
    single_round_regret_curve,
    single_round_regret_without_reserve,
)


class TestSingleRoundRegret:
    def test_zero_when_reserve_above_value(self):
        assert single_round_regret(market_value=1.0, reserve=2.0, price=3.0) == 0.0

    def test_full_value_lost_on_rejection(self):
        assert single_round_regret(4.0, 1.0, 5.0) == pytest.approx(4.0)

    def test_value_minus_price_on_sale(self):
        assert single_round_regret(4.0, 1.0, 3.0) == pytest.approx(1.0)

    def test_zero_regret_when_price_equals_value(self):
        assert single_round_regret(4.0, 1.0, 4.0) == pytest.approx(0.0)

    def test_skipped_round_counts_as_rejection(self):
        assert single_round_regret(4.0, 1.0, None) == pytest.approx(4.0)

    def test_skipped_round_with_high_reserve_is_free(self):
        assert single_round_regret(4.0, 5.0, None) == pytest.approx(0.0)

    def test_explicit_sold_flag_overrides_comparison(self):
        # A price above the value that is (impossibly) marked sold still earns it.
        assert single_round_regret(4.0, 1.0, 5.0, sold=True) == pytest.approx(-1.0)

    def test_without_reserve_equals_reserve_none(self):
        assert single_round_regret_without_reserve(4.0, 3.0) == single_round_regret(4.0, None, 3.0)

    def test_lemma1_reserve_never_increases_regret(self):
        """Lemma 1: imposing the reserve constraint cannot increase single-round regret."""
        for value in (0.5, 1.0, 3.0):
            for reserve in (0.1, 0.9, 1.5, 4.0):
                for pure_price in (0.2, 0.8, 1.2, 3.5):
                    constrained_price = max(reserve, pure_price)
                    with_reserve = single_round_regret(value, reserve, constrained_price)
                    without = single_round_regret_without_reserve(value, pure_price)
                    assert with_reserve <= without + 1e-12


class TestRegretCurve:
    def test_fig1_shape(self):
        """Fig. 1: regret decreases linearly up to the market value, then jumps."""
        market_value, reserve = 10.0, 4.0
        prices = np.linspace(0.0, 15.0, 151)
        curve = single_round_regret_curve(market_value, reserve, prices)
        below = prices <= market_value
        # Linear decrease on the sold branch.
        assert np.allclose(curve[below], market_value - prices[below])
        # Full loss beyond the market value.
        assert np.allclose(curve[~below], market_value)
        # The minimum regret (zero) is achieved by posting exactly the value.
        assert curve.min() == pytest.approx(0.0)

    def test_no_regret_anywhere_when_reserve_exceeds_value(self):
        curve = single_round_regret_curve(2.0, 3.0, np.linspace(0, 5, 20))
        assert np.allclose(curve, 0.0)


class TestRegretRatio:
    def test_basic_ratio(self):
        assert regret_ratio([1.0, 1.0], [4.0, 4.0]) == pytest.approx(0.25)

    def test_zero_value_returns_zero(self):
        assert regret_ratio([0.0], [0.0]) == 0.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            regret_ratio([1.0], [1.0, 2.0])


class TestAccumulator:
    def test_record_and_totals(self):
        acc = RegretAccumulator()
        acc.record(market_value=5.0, reserve=1.0, price=4.0, sold=True)
        acc.record(market_value=5.0, reserve=1.0, price=6.0, sold=False)
        assert acc.rounds == 2
        assert acc.cumulative_regret == pytest.approx(1.0 + 5.0)
        assert acc.cumulative_revenue == pytest.approx(4.0)
        assert acc.cumulative_market_value == pytest.approx(10.0)
        assert acc.ratio == pytest.approx(0.6)

    def test_curves_are_cumulative(self):
        acc = RegretAccumulator()
        for _ in range(5):
            acc.record(2.0, None, 1.0, True)
        curve = acc.cumulative_regret_curve()
        assert np.allclose(curve, np.arange(1, 6) * 1.0)
        ratios = acc.regret_ratio_curve()
        assert np.allclose(ratios, 0.5)

    def test_ratio_at_prefix(self):
        acc = RegretAccumulator()
        acc.record(2.0, None, 2.0, True)   # zero regret
        acc.record(2.0, None, 3.0, False)  # full regret
        assert acc.ratio_at(1) == pytest.approx(0.0)
        assert acc.ratio_at(2) == pytest.approx(0.5)

    def test_ratio_at_rejects_out_of_range(self):
        acc = RegretAccumulator()
        acc.record(1.0, None, 1.0, True)
        with pytest.raises(ValueError):
            acc.ratio_at(0)
        with pytest.raises(ValueError):
            acc.ratio_at(2)
