"""Unit tests for the SGD contextual pricing baseline."""

import numpy as np
import pytest

from repro.core.models import LinearModel
from repro.core.pricing import EllipsoidPricer, PricerConfig
from repro.core.sgd_pricer import SGDContextualPricer
from repro.core.simulation import MarketSimulator, QueryArrival, compare_pricers


class TestConstruction:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            SGDContextualPricer(dimension=0, radius=1.0)
        with pytest.raises(ValueError):
            SGDContextualPricer(dimension=2, radius=0.0)
        with pytest.raises(ValueError):
            SGDContextualPricer(dimension=2, radius=1.0, learning_rate=0.0)
        with pytest.raises(ValueError):
            SGDContextualPricer(dimension=2, radius=1.0, margin=-1.0)

    def test_initial_estimate_is_zero(self):
        pricer = SGDContextualPricer(dimension=3, radius=2.0)
        assert np.allclose(pricer.estimate, 0.0)


class TestBehaviour:
    def test_price_respects_reserve(self):
        pricer = SGDContextualPricer(dimension=3, radius=2.0)
        decision = pricer.propose(np.ones(3), reserve=1.5)
        assert decision.price >= 1.5

    def test_reserve_ignored_when_disabled(self):
        pricer = SGDContextualPricer(dimension=3, radius=2.0, use_reserve=False, margin=0.0)
        decision = pricer.propose(np.ones(3), reserve=1.5)
        assert decision.price == pytest.approx(0.0)

    def test_acceptance_raises_estimate(self):
        pricer = SGDContextualPricer(dimension=2, radius=5.0)
        features = np.array([1.0, 0.0])
        decision = pricer.propose(features, reserve=0.0)
        pricer.update(decision, accepted=True)
        assert pricer.estimate[0] > 0.0

    def test_rejection_lowers_estimate(self):
        pricer = SGDContextualPricer(dimension=2, radius=5.0)
        features = np.array([1.0, 0.0])
        decision = pricer.propose(features, reserve=0.0)
        pricer.update(decision, accepted=False)
        assert pricer.estimate[0] < 0.0

    def test_estimate_projected_onto_ball(self):
        pricer = SGDContextualPricer(dimension=2, radius=0.5, learning_rate=10.0)
        features = np.array([1.0, 0.0])
        for _ in range(5):
            decision = pricer.propose(features, reserve=0.0)
            pricer.update(decision, accepted=True)
        assert np.linalg.norm(pricer.estimate) <= 0.5 + 1e-9

    def test_learns_scalar_market(self, rng):
        dimension = 4
        theta = np.array([1.0, 0.5, 1.5, 0.3])
        pricer = SGDContextualPricer(dimension=dimension, radius=3.0)
        for _ in range(3000):
            features = np.abs(rng.standard_normal(dimension))
            features /= np.linalg.norm(features)
            value = float(features @ theta)
            decision = pricer.propose(features)
            pricer.update(decision, accepted=decision.price <= value)
        estimate_error = np.linalg.norm(pricer.estimate - theta)
        assert estimate_error < np.linalg.norm(theta)

    def test_ellipsoid_pricer_beats_sgd_on_long_horizon(self, rng):
        dimension = 6
        theta = np.abs(rng.standard_normal(dimension))
        theta *= np.sqrt(2 * dimension) / np.linalg.norm(theta)
        model = LinearModel(theta)
        arrivals = []
        for _ in range(2500):
            features = np.abs(rng.standard_normal(dimension))
            features /= np.linalg.norm(features)
            arrivals.append(
                QueryArrival(features=features, reserve_value=0.6 * float(features @ theta), noise=0.0)
            )
        radius = 2.0 * np.sqrt(dimension)
        ellipsoid = EllipsoidPricer(
            PricerConfig(dimension=dimension, radius=radius, epsilon=dimension**2 / len(arrivals))
        )
        sgd = SGDContextualPricer(dimension=dimension, radius=radius)
        results = compare_pricers(model, [ellipsoid, sgd], arrivals)
        assert results[0].cumulative_regret < results[1].cumulative_regret

    def test_memory_state_is_linear_in_dimension(self):
        pricer = SGDContextualPricer(dimension=100, radius=1.0)
        assert pricer.memory_report().state_bytes == 100 * 8
