"""Unit tests for the online market simulation loop."""

import numpy as np
import pytest

from repro.core.baselines import OraclePricer, RiskAversePricer
from repro.core.models import LinearModel, LogLinearModel
from repro.core.noise import GaussianNoise
from repro.core.pricing import EllipsoidPricer, PricerConfig
from repro.core.simulation import MarketSimulator, QueryArrival, compare_pricers


def _arrivals_from(queries):
    return [QueryArrival(features=f, reserve_value=r, noise=0.0) for f, r in queries]


class TestSimulatorBasics:
    def test_oracle_has_zero_regret(self, linear_market):
        model, queries = linear_market
        pricer = OraclePricer(lambda x: float(x @ model.theta))
        simulator = MarketSimulator(model, pricer)
        result = simulator.run(_arrivals_from(queries))
        assert result.cumulative_regret == pytest.approx(0.0, abs=1e-9)
        assert result.sale_rate() > 0.9

    def test_risk_averse_sells_almost_everything_but_pays_regret(self, linear_market):
        model, queries = linear_market
        pricer = RiskAversePricer()
        result = MarketSimulator(model, pricer).run(_arrivals_from(queries))
        # The reserve is below the market value for (almost) every query, so
        # posting it (almost) always sells — at the cost of a large regret.
        assert result.sale_rate() > 0.95
        assert result.cumulative_regret > 0.0
        assert result.cumulative_revenue > 0.0

    def test_ellipsoid_pricer_beats_risk_averse(self, linear_market):
        model, queries = linear_market
        arrivals = _arrivals_from(queries)
        dimension = model.weight_dimension
        ellipsoid = EllipsoidPricer(
            PricerConfig(dimension=dimension, radius=2 * np.sqrt(dimension), epsilon=0.05)
        )
        results = compare_pricers(model, [ellipsoid, RiskAversePricer()], arrivals)
        assert results[0].cumulative_regret < results[1].cumulative_regret

    def test_round_outcomes_record_everything(self, linear_market):
        model, queries = linear_market
        pricer = RiskAversePricer()
        result = MarketSimulator(model, pricer).run(_arrivals_from(queries[:10]))
        assert result.rounds == 10
        for index, outcome in enumerate(result.outcomes):
            assert outcome.round_index == index
            assert outcome.market_value == pytest.approx(model.link(outcome.link_value))
            assert outcome.posted_price == pytest.approx(outcome.reserve_value)
            assert outcome.sold == (outcome.posted_price <= outcome.market_value)

    def test_latency_tracking(self, linear_market):
        model, queries = linear_market
        pricer = RiskAversePricer()
        simulator = MarketSimulator(model, pricer, track_latency=True)
        result = simulator.run(_arrivals_from(queries[:20]))
        assert result.latency.count == 20
        assert result.latency.mean_milliseconds >= 0.0

    def test_summary_statistics_keys(self, linear_market):
        model, queries = linear_market
        result = MarketSimulator(model, RiskAversePricer()).run(_arrivals_from(queries[:30]))
        stats = result.summary_statistics()
        for key in ("market_value", "reserve_price", "posted_price", "regret", "regret_ratio"):
            assert key in stats
        assert stats["rounds"] == 30


class TestNoiseHandling:
    def test_predrawn_noise_used_verbatim(self):
        model = LinearModel([1.0, 1.0])
        arrival = QueryArrival(features=np.array([1.0, 1.0]), reserve_value=None, noise=0.5)
        pricer = OraclePricer(lambda x: float(np.sum(x)))
        result = MarketSimulator(model, pricer).run([arrival])
        assert result.outcomes[0].market_value == pytest.approx(2.5)

    def test_noise_sampled_when_absent(self):
        model = LinearModel([1.0, 1.0])
        arrival = QueryArrival(features=np.array([1.0, 1.0]), reserve_value=None, noise=None)
        pricer = OraclePricer(lambda x: float(np.sum(x)))
        simulator = MarketSimulator(model, pricer, noise=GaussianNoise(0.1), rng=0)
        result = simulator.run([arrival])
        assert result.outcomes[0].market_value != pytest.approx(2.0)

    def test_same_arrivals_give_identical_market_across_pricers(self, linear_market):
        model, queries = linear_market
        arrivals = _arrivals_from(queries[:50])
        results = compare_pricers(model, [RiskAversePricer(), RiskAversePricer()], arrivals)
        values_a = [o.market_value for o in results[0].outcomes]
        values_b = [o.market_value for o in results[1].outcomes]
        assert values_a == values_b


class TestNonLinearModels:
    def test_log_linear_prices_are_exponentiated(self):
        theta = np.array([0.5, 0.5])
        model = LogLinearModel(theta)
        features = np.array([2.0, 2.0])
        arrival = QueryArrival(features=features, reserve_value=np.exp(1.0), noise=0.0)
        pricer = RiskAversePricer()
        result = MarketSimulator(model, pricer).run([arrival])
        outcome = result.outcomes[0]
        assert outcome.market_value == pytest.approx(np.exp(2.0))
        # The risk-averse price is the reserve, expressed back in real space.
        assert outcome.posted_price == pytest.approx(np.exp(1.0))
        assert outcome.sold

    def test_ellipsoid_pricer_with_log_linear_model_converges(self, rng):
        dimension = 3
        theta = np.array([0.8, 0.4, 0.2])
        model = LogLinearModel(theta)
        pricer = EllipsoidPricer(
            PricerConfig(dimension=dimension, radius=2.0, epsilon=0.02, use_reserve=False)
        )
        arrivals = []
        for _ in range(400):
            features = rng.uniform(0.2, 1.0, size=dimension)
            arrivals.append(QueryArrival(features=features, reserve_value=None, noise=0.0))
        result = MarketSimulator(model, pricer).run(arrivals)
        # The regret ratio over the last rounds must be far below the early one.
        ratios = result.regret_ratio_curve()
        assert ratios[-1] < ratios[49]
