"""Unit tests for the ellipsoid posted price mechanisms (Algorithms 1, 1*, 2, 2*)."""

import numpy as np
import pytest

from repro.core.one_dim import OneDimensionalPricer
from repro.core.pricing import EllipsoidPricer, PricerConfig, make_pricer


def _unit_feature(dimension, index=0):
    features = np.zeros(dimension)
    features[index] = 1.0
    return features


class TestPricerConfig:
    def test_rejects_bad_dimension(self):
        with pytest.raises(ValueError):
            PricerConfig(dimension=0, radius=1.0, epsilon=0.1)

    def test_rejects_bad_radius(self):
        with pytest.raises(ValueError):
            PricerConfig(dimension=3, radius=-1.0, epsilon=0.1)

    def test_rejects_bad_epsilon(self):
        with pytest.raises(ValueError):
            PricerConfig(dimension=3, radius=1.0, epsilon=0.0)

    def test_rejects_negative_delta(self):
        with pytest.raises(ValueError):
            PricerConfig(dimension=3, radius=1.0, epsilon=0.1, delta=-0.1)

    def test_rejects_unknown_knowledge(self):
        with pytest.raises(ValueError):
            PricerConfig(dimension=3, radius=1.0, epsilon=0.1, knowledge="magic")

    def test_theoretical_epsilon_multidimensional(self):
        assert PricerConfig.theoretical_epsilon(10, 1000) == pytest.approx(0.1)
        # The 4nδ floor of Theorem 1.
        assert PricerConfig.theoretical_epsilon(10, 1000, delta=0.01) == pytest.approx(0.4)

    def test_theoretical_epsilon_one_dimensional(self):
        value = PricerConfig.theoretical_epsilon(1, 1000)
        assert value == pytest.approx(np.log(1000) ** 2 / 1000)

    def test_theoretical_epsilon_rejects_bad_rounds(self):
        with pytest.raises(ValueError):
            PricerConfig.theoretical_epsilon(10, 0)


class TestNaming:
    @pytest.mark.parametrize(
        "use_reserve, delta, expected",
        [
            (False, 0.0, "pure version"),
            (False, 0.01, "with uncertainty"),
            (True, 0.0, "with reserve price"),
            (True, 0.01, "with reserve price and uncertainty"),
        ],
    )
    def test_version_names_match_paper(self, use_reserve, delta, expected):
        pricer = EllipsoidPricer(
            PricerConfig(dimension=3, radius=1.0, epsilon=0.1, delta=delta, use_reserve=use_reserve)
        )
        assert pricer.name == expected


class TestProposeBehaviour:
    def test_requires_dimension_two(self):
        with pytest.raises(ValueError):
            EllipsoidPricer(PricerConfig(dimension=1, radius=1.0, epsilon=0.1))

    def test_initial_exploratory_price_is_midpoint(self):
        pricer = EllipsoidPricer(PricerConfig(dimension=3, radius=2.0, epsilon=0.01, use_reserve=False))
        decision = pricer.propose(_unit_feature(3))
        assert decision.exploratory
        assert decision.price == pytest.approx(0.0)  # midpoint of [-2, 2]
        assert decision.lower_bound == pytest.approx(-2.0)
        assert decision.upper_bound == pytest.approx(2.0)

    def test_reserve_lifts_exploratory_price(self):
        pricer = EllipsoidPricer(PricerConfig(dimension=3, radius=2.0, epsilon=0.01))
        decision = pricer.propose(_unit_feature(3), reserve=1.0)
        assert decision.price == pytest.approx(1.0)

    def test_reserve_ignored_by_pure_version(self):
        pricer = EllipsoidPricer(
            PricerConfig(dimension=3, radius=2.0, epsilon=0.01, use_reserve=False)
        )
        decision = pricer.propose(_unit_feature(3), reserve=1.0)
        assert decision.price == pytest.approx(0.0)

    def test_skip_when_reserve_exceeds_upper_bound(self):
        pricer = EllipsoidPricer(PricerConfig(dimension=3, radius=2.0, epsilon=0.01))
        decision = pricer.propose(_unit_feature(3), reserve=5.0)
        assert decision.skipped
        assert decision.price is None
        assert pricer.skipped_rounds == 1

    def test_skip_threshold_includes_uncertainty_buffer(self):
        pricer = EllipsoidPricer(PricerConfig(dimension=3, radius=2.0, epsilon=0.01, delta=0.5))
        # reserve of 2.3 < upper bound (2) + delta (0.5): must still post.
        decision = pricer.propose(_unit_feature(3), reserve=2.3)
        assert not decision.skipped
        # reserve above upper + delta: certain no deal.
        decision = pricer.propose(_unit_feature(3), reserve=2.6)
        assert decision.skipped

    def test_conservative_price_when_width_small(self):
        pricer = EllipsoidPricer(PricerConfig(dimension=3, radius=2.0, epsilon=10.0))
        decision = pricer.propose(_unit_feature(3), reserve=0.1)
        assert not decision.exploratory
        assert decision.price == pytest.approx(max(0.1, -2.0))
        assert pricer.conservative_rounds == 1

    def test_conservative_price_subtracts_buffer(self):
        pricer = EllipsoidPricer(
            PricerConfig(dimension=3, radius=2.0, epsilon=10.0, delta=0.2, use_reserve=False)
        )
        decision = pricer.propose(_unit_feature(3))
        assert decision.price == pytest.approx(-2.2)

    def test_round_counter_increments(self):
        pricer = EllipsoidPricer(PricerConfig(dimension=3, radius=2.0, epsilon=0.01))
        for expected in range(3):
            decision = pricer.propose(_unit_feature(3), reserve=0.0)
            assert decision.round_index == expected
        assert pricer.rounds_seen == 3

    def test_feature_dimension_checked(self):
        pricer = EllipsoidPricer(PricerConfig(dimension=3, radius=2.0, epsilon=0.01))
        with pytest.raises(Exception):
            pricer.propose(np.ones(4))


class TestUpdateBehaviour:
    def test_acceptance_raises_lower_bound(self):
        pricer = EllipsoidPricer(PricerConfig(dimension=3, radius=2.0, epsilon=0.01, use_reserve=False))
        features = _unit_feature(3)
        decision = pricer.propose(features)
        pricer.update(decision, accepted=True)
        lower, upper = pricer.value_bounds(features)
        assert lower > -2.0 + 1e-6
        assert pricer.cuts_applied == 1

    def test_rejection_lowers_upper_bound(self):
        pricer = EllipsoidPricer(PricerConfig(dimension=3, radius=2.0, epsilon=0.01, use_reserve=False))
        features = _unit_feature(3)
        decision = pricer.propose(features)
        pricer.update(decision, accepted=False)
        _, upper = pricer.value_bounds(features)
        assert upper < 2.0 - 1e-6

    def test_conservative_feedback_never_cuts(self):
        pricer = EllipsoidPricer(PricerConfig(dimension=3, radius=2.0, epsilon=10.0))
        features = _unit_feature(3)
        decision = pricer.propose(features, reserve=0.5)
        assert not decision.exploratory
        before = pricer.knowledge.ellipsoid.copy()
        pricer.update(decision, accepted=True)
        assert pricer.knowledge.ellipsoid == before
        assert pricer.cuts_applied == 0

    def test_conservative_cut_allowed_by_ablation_switch(self):
        pricer = EllipsoidPricer(
            PricerConfig(dimension=3, radius=2.0, epsilon=10.0, allow_conservative_cuts=True)
        )
        features = _unit_feature(3)
        decision = pricer.propose(features, reserve=0.5)
        pricer.update(decision, accepted=True)
        assert pricer.cuts_applied == 1

    def test_skipped_decision_never_cuts(self):
        pricer = EllipsoidPricer(PricerConfig(dimension=3, radius=2.0, epsilon=0.01))
        decision = pricer.propose(_unit_feature(3), reserve=10.0)
        pricer.update(decision, accepted=False)
        assert pricer.cuts_applied == 0

    def test_uncertainty_buffer_weakens_cuts(self):
        features = _unit_feature(3)
        sharp = EllipsoidPricer(PricerConfig(dimension=3, radius=2.0, epsilon=0.01, use_reserve=False))
        buffered = EllipsoidPricer(
            PricerConfig(dimension=3, radius=2.0, epsilon=0.01, delta=0.3, use_reserve=False)
        )
        for pricer in (sharp, buffered):
            decision = pricer.propose(features)
            pricer.update(decision, accepted=True)
        sharp_lower, _ = sharp.value_bounds(features)
        buffered_lower, _ = buffered.value_bounds(features)
        # With a buffer the acceptance cut is placed δ lower, so the lower
        # bound improves by less.
        assert buffered_lower < sharp_lower

    def test_theta_stays_in_knowledge_under_consistent_feedback(self, rng):
        dimension = 4
        theta = np.abs(rng.standard_normal(dimension))
        theta *= np.sqrt(2 * dimension) / np.linalg.norm(theta)
        pricer = EllipsoidPricer(
            PricerConfig(dimension=dimension, radius=2 * np.sqrt(dimension), epsilon=1e-3)
        )
        for _ in range(300):
            features = np.abs(rng.standard_normal(dimension))
            features /= np.linalg.norm(features)
            value = float(features @ theta)
            decision = pricer.propose(features, reserve=0.5 * value)
            if decision.skipped or decision.price is None:
                continue
            sold = decision.price <= value
            pricer.update(decision, accepted=sold)
            assert pricer.knowledge.contains(theta)

    def test_exploration_eventually_stops(self, rng):
        dimension = 3
        theta = np.array([0.5, 0.7, 0.2])
        pricer = EllipsoidPricer(PricerConfig(dimension=dimension, radius=2.0, epsilon=0.05, use_reserve=False))
        features_pool = [np.eye(dimension)[i] for i in range(dimension)]
        conservative_seen = False
        for t in range(500):
            features = features_pool[t % dimension]
            value = float(features @ theta)
            decision = pricer.propose(features)
            if not decision.exploratory and not decision.skipped:
                conservative_seen = True
                break
            pricer.update(decision, accepted=decision.price <= value)
        assert conservative_seen


class TestPolytopeBackend:
    def test_polytope_knowledge_backend_works(self):
        pricer = EllipsoidPricer(
            PricerConfig(dimension=2, radius=1.0, epsilon=0.01, knowledge="polytope")
        )
        features = np.array([1.0, 0.0])
        decision = pricer.propose(features, reserve=0.1)
        assert decision.posted
        pricer.update(decision, accepted=True)
        lower, _ = pricer.value_bounds(features)
        assert lower >= decision.price - 1e-9

    def test_initial_ellipsoid_requires_ellipsoid_backend(self):
        from repro.core.ellipsoid import Ellipsoid

        with pytest.raises(ValueError):
            EllipsoidPricer(
                PricerConfig(dimension=2, radius=1.0, epsilon=0.01, knowledge="polytope"),
                initial_ellipsoid=Ellipsoid.ball(2, 1.0),
            )

    def test_initial_ellipsoid_dimension_checked(self):
        from repro.core.ellipsoid import Ellipsoid

        with pytest.raises(ValueError):
            EllipsoidPricer(
                PricerConfig(dimension=3, radius=1.0, epsilon=0.01),
                initial_ellipsoid=Ellipsoid.ball(2, 1.0),
            )

    def test_warm_start_initial_ellipsoid_used(self):
        from repro.core.ellipsoid import Ellipsoid

        warm = Ellipsoid.ball(2, 0.5, center=np.array([1.0, 1.0]))
        pricer = EllipsoidPricer(
            PricerConfig(dimension=2, radius=10.0, epsilon=0.01), initial_ellipsoid=warm
        )
        lower, upper = pricer.value_bounds(np.array([1.0, 0.0]))
        assert lower == pytest.approx(0.5)
        assert upper == pytest.approx(1.5)


class TestFactory:
    def test_factory_returns_one_dimensional_pricer(self):
        pricer = make_pricer(dimension=1, radius=2.0, epsilon=0.1)
        assert isinstance(pricer, OneDimensionalPricer)

    def test_factory_returns_ellipsoid_pricer(self):
        pricer = make_pricer(dimension=5, radius=2.0, epsilon=0.1)
        assert isinstance(pricer, EllipsoidPricer)

    def test_factory_passes_theta_bounds(self):
        pricer = make_pricer(dimension=1, radius=2.0, epsilon=0.1, theta_bounds=(0.0, 1.0))
        assert pricer.knowledge.lower == pytest.approx(0.0)
        assert pricer.knowledge.upper == pytest.approx(1.0)

    def test_memory_report_is_quadratic_in_dimension(self):
        small = make_pricer(dimension=10, radius=1.0, epsilon=0.1)
        large = make_pricer(dimension=100, radius=1.0, epsilon=0.1)
        assert large.memory_report().state_bytes > 50 * small.memory_report().state_bytes
