"""Property-based tests for the market value models (link/feature-map invariants)."""

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.models import (
    KernelizedModel,
    LinearModel,
    LogisticModel,
    LogLinearModel,
    LogLogModel,
)

SETTINGS = settings(
    max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

weights = hnp.arrays(
    dtype=float,
    shape=3,
    elements=st.floats(min_value=-2.0, max_value=2.0, allow_nan=False, allow_infinity=False),
)
positive_features = hnp.arrays(
    dtype=float,
    shape=3,
    elements=st.floats(min_value=0.05, max_value=5.0, allow_nan=False, allow_infinity=False),
)
link_inputs = st.floats(min_value=-20.0, max_value=20.0, allow_nan=False, allow_infinity=False)


class TestLinkFunctions:
    @SETTINGS
    @given(theta=weights, z1=link_inputs, z2=link_inputs)
    def test_links_are_non_decreasing(self, theta, z1, z2):
        """Every supported link g satisfies the paper's monotonicity requirement."""
        low, high = min(z1, z2), max(z1, z2)
        for model in (LinearModel(theta), LogLinearModel(theta), LogisticModel(theta)):
            assert model.link(low) <= model.link(high) + 1e-12

    @SETTINGS
    @given(theta=weights, z=link_inputs)
    def test_link_inverse_roundtrip(self, theta, z):
        for model in (LinearModel(theta), LogLinearModel(theta)):
            assert model.link_inverse(model.link(z)) == pytest.approx(z, rel=1e-9, abs=1e-9)
        logistic = LogisticModel(theta)
        clipped = max(min(z, 30.0), -30.0)
        value = logistic.link(clipped)
        if 0.0 < value < 1.0:
            assert logistic.link_inverse(value) == pytest.approx(clipped, rel=1e-6, abs=1e-6)

    @SETTINGS
    @given(theta=weights, z=link_inputs)
    def test_logistic_values_are_probabilities(self, theta, z):
        assert 0.0 <= LogisticModel(theta).link(z) <= 1.0

    @SETTINGS
    @given(theta=weights, z=link_inputs)
    def test_log_links_are_positive(self, theta, z):
        assert LogLinearModel(theta).link(z) > 0.0


class TestValueConsistency:
    @SETTINGS
    @given(theta=weights, features=positive_features)
    def test_value_equals_link_of_link_value(self, theta, features):
        for model in (
            LinearModel(theta),
            LogLinearModel(theta),
            LogLogModel(theta),
            LogisticModel(theta),
        ):
            assert model.value(features) == pytest.approx(
                model.link(model.link_value(features)), rel=1e-12, abs=1e-12
            )

    @SETTINGS
    @given(theta=weights, features=positive_features, scale=st.floats(min_value=1.0, max_value=3.0))
    def test_linear_model_is_homogeneous(self, theta, features, scale):
        model = LinearModel(theta)
        assert model.value(scale * features) == pytest.approx(scale * model.value(features))

    @SETTINGS
    @given(features=positive_features)
    def test_kernel_features_bounded_by_one(self, features):
        anchors = np.array([[0.5, 0.5, 0.5], [2.0, 2.0, 2.0]])
        model = KernelizedModel(theta=[1.0, 1.0], anchors=anchors, bandwidth=1.0)
        mapped = model.feature_map(features)
        assert np.all(mapped > 0.0)
        assert np.all(mapped <= 1.0 + 1e-12)

    @SETTINGS
    @given(theta=weights, features=positive_features)
    def test_loglog_increasing_features_raise_value_for_positive_weights(self, theta, features):
        positive_theta = np.abs(theta) + 0.01
        model = LogLogModel(positive_theta)
        assert model.value(features * 2.0) >= model.value(features) - 1e-9
