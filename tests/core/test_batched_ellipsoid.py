"""The stacked Löwner–John kernel vs the scalar reference cut."""

import numpy as np
import pytest

from repro.core import batched_ellipsoid
from repro.core.batched_ellipsoid import (
    BACKEND_NAMES,
    BackendUnavailableError,
    HAS_TORCH,
    batched_cut,
    batched_support_intervals,
    block_support_intervals,
    get_backend,
    keep_signs,
    single_cut,
)
from repro.core.cuts import loewner_john_cut
from repro.core.ellipsoid import Ellipsoid, random_ellipsoid


def _random_batch(count, dimension, seed):
    """Random ellipsoids + cut specs spanning every update regime."""
    rng = np.random.default_rng(seed)
    centers = np.empty((count, dimension))
    shapes = np.empty((count, dimension, dimension))
    ellipsoids = []
    for index in range(count):
        ellipsoid = random_ellipsoid(dimension, seed=seed * 1000 + index)
        centers[index] = ellipsoid.center
        shapes[index] = ellipsoid.shape
        ellipsoids.append(ellipsoid)
    directions = rng.standard_normal((count, dimension))
    # Offsets spread around each support interval so the batch hits NOOP,
    # shallow, central, deep, and collapse/infeasible alphas.
    lowers, uppers = batched_support_intervals(centers, shapes, directions)
    mix = rng.random(count) * 2.4 - 0.7  # in [-0.7, 1.7]
    offsets = lowers + mix * (uppers - lowers)
    signs = np.where(rng.random(count) < 0.5, 1.0, -1.0)
    return ellipsoids, centers, shapes, directions, offsets, signs


def _scalar_reference(ellipsoids, directions, offsets, signs):
    centers, shapes, alphas, updated = [], [], [], []
    for ellipsoid, direction, offset, sign in zip(
        ellipsoids, directions, offsets, signs
    ):
        keep = "leq" if sign > 0 else "geq"
        result = loewner_john_cut(
            ellipsoid, direction, float(offset), keep=keep, on_infeasible="skip"
        )
        centers.append(result.ellipsoid.center)
        shapes.append(result.ellipsoid.shape)
        alphas.append(result.alpha)
        updated.append(result.updated)
    return (
        np.array(centers),
        np.array(shapes),
        np.array(alphas),
        np.array(updated, dtype=bool),
    )


class TestBatchedCutMatchesScalar:
    @pytest.mark.parametrize("dimension", [2, 3, 6])
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_all_regimes(self, dimension, seed):
        ellipsoids, centers, shapes, directions, offsets, signs = _random_batch(
            40, dimension, seed
        )
        result = batched_cut(centers, shapes, directions, offsets, signs)
        ref_centers, ref_shapes, ref_alphas, ref_updated = _scalar_reference(
            ellipsoids, directions, offsets, signs
        )
        np.testing.assert_array_equal(result.updated, ref_updated)
        np.testing.assert_allclose(result.alphas, ref_alphas, rtol=1e-12, atol=1e-12)
        np.testing.assert_allclose(result.centers, ref_centers, rtol=1e-10, atol=1e-12)
        np.testing.assert_allclose(result.shapes, ref_shapes, rtol=1e-10, atol=1e-12)

    def test_keep_signs_mapping(self):
        assert keep_signs("leq") == 1.0
        assert keep_signs("geq") == -1.0
        with pytest.raises(ValueError):
            keep_signs("between")

    def test_inputs_not_mutated(self):
        _, centers, shapes, directions, offsets, signs = _random_batch(8, 3, 5)
        centers_before = centers.copy()
        shapes_before = shapes.copy()
        batched_cut(centers, shapes, directions, offsets, signs)
        np.testing.assert_array_equal(centers, centers_before)
        np.testing.assert_array_equal(shapes, shapes_before)


class TestSingleCut:
    """The scalar k=1 fast path mirrors batched_cut item-wise."""

    @pytest.mark.parametrize("dimension", [2, 4, 6])
    @pytest.mark.parametrize("seed", [1, 4])
    def test_matches_batched_kernel(self, dimension, seed):
        _, centers, shapes, directions, offsets, signs = _random_batch(
            30, dimension, seed
        )
        batch = batched_cut(centers, shapes, directions, offsets, signs)
        for index in range(len(centers)):
            scalar = single_cut(
                centers[index],
                shapes[index],
                directions[index],
                float(offsets[index]),
                float(signs[index]),
            )
            if not batch.updated[index]:
                assert scalar is None
                continue
            assert scalar is not None
            new_center, new_shape = scalar
            np.testing.assert_allclose(
                new_center, batch.centers[index], rtol=1e-12, atol=1e-14
            )
            np.testing.assert_allclose(
                new_shape, batch.shapes[index], rtol=1e-12, atol=1e-14
            )
            np.testing.assert_array_equal(new_shape, new_shape.T)

    def test_degenerate_direction_is_none(self):
        ellipsoid = random_ellipsoid(4, seed=17)
        assert single_cut(ellipsoid.center, ellipsoid.shape, np.zeros(4), 0.1, 1.0) is None
        denormal = np.full(4, 1e-170)
        assert (
            single_cut(ellipsoid.center, ellipsoid.shape, denormal, 0.1, 1.0) is None
        )

    def test_inputs_not_mutated(self):
        ellipsoid = random_ellipsoid(3, seed=9)
        center = ellipsoid.center.copy()
        shape = ellipsoid.shape.copy()
        direction = np.array([1.0, -0.5, 0.25])
        middle = float(direction @ center)
        result = single_cut(center, shape, direction, middle, 1.0)
        assert result is not None
        np.testing.assert_array_equal(center, ellipsoid.center)
        np.testing.assert_array_equal(shape, ellipsoid.shape)


class TestDegenerateDirections:
    def test_zero_direction_is_noop_not_nan(self):
        ellipsoid = random_ellipsoid(4, seed=11)
        centers = ellipsoid.center[None, :]
        shapes = ellipsoid.shape[None, :, :]
        direction = np.zeros((1, 4))
        result = batched_cut(centers, shapes, direction, np.array([0.3]), np.array([1.0]))
        assert not result.updated[0]
        assert np.isnan(result.alphas[0])
        np.testing.assert_array_equal(result.centers[0], ellipsoid.center)
        np.testing.assert_array_equal(result.shapes[0], ellipsoid.shape)
        assert np.all(np.isfinite(result.centers))
        assert np.all(np.isfinite(result.shapes))

    def test_denormal_direction_is_noop_not_nan(self):
        # x^T A x underflows to a denormal: positive, but 1/sqrt(gain)
        # overflows — the historical NaN-cut bug class.
        ellipsoid = random_ellipsoid(4, seed=12)
        direction = np.full((1, 4), 1e-170)
        result = batched_cut(
            ellipsoid.center[None, :],
            ellipsoid.shape[None, :, :],
            direction,
            np.array([0.0]),
            np.array([-1.0]),
        )
        assert not result.updated[0]
        assert np.all(np.isfinite(result.centers))
        assert np.all(np.isfinite(result.shapes))

    def test_mixed_batch_degenerate_rows_pass_through(self):
        ellipsoids, centers, shapes, directions, offsets, signs = _random_batch(6, 3, 7)
        directions[2] = 0.0
        directions[4] = 1e-200
        result = batched_cut(centers, shapes, directions, offsets, signs)
        for index in (2, 4):
            assert not result.updated[index]
            np.testing.assert_array_equal(result.centers[index], centers[index])
            np.testing.assert_array_equal(result.shapes[index], shapes[index])
        assert np.all(np.isfinite(result.centers))
        assert np.all(np.isfinite(result.shapes))


class TestSupportIntervals:
    def test_block_matches_scalar_support(self):
        ellipsoid = random_ellipsoid(5, seed=3)
        rng = np.random.default_rng(3)
        features = rng.standard_normal((32, 5))
        lowers, uppers = block_support_intervals(
            ellipsoid.center, ellipsoid.shape, features
        )
        for index, row in enumerate(features):
            lo, hi = ellipsoid.support_interval(row)
            assert lowers[index] == pytest.approx(lo, rel=1e-10, abs=1e-12)
            assert uppers[index] == pytest.approx(hi, rel=1e-10, abs=1e-12)

    def test_batched_matches_scalar_support(self):
        ellipsoids, centers, shapes, directions, _, _ = _random_batch(16, 4, 9)
        lowers, uppers = batched_support_intervals(centers, shapes, directions)
        for index, ellipsoid in enumerate(ellipsoids):
            lo, hi = ellipsoid.support_interval(directions[index])
            assert lowers[index] == pytest.approx(lo, rel=1e-10, abs=1e-12)
            assert uppers[index] == pytest.approx(hi, rel=1e-10, abs=1e-12)

    def test_degenerate_direction_zero_width(self):
        ellipsoid = random_ellipsoid(3, seed=8)
        lowers, uppers = block_support_intervals(
            ellipsoid.center, ellipsoid.shape, np.zeros((1, 3))
        )
        assert lowers[0] == uppers[0]
        assert np.isfinite(lowers[0])


class TestBackendRegistry:
    def test_numpy_backend_always_available(self):
        backend = get_backend("batched")
        assert backend.name == "batched"
        assert backend.batched_cut is batched_cut

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            get_backend("bogus")

    def test_backend_names_cover_registry(self):
        assert "batched" in BACKEND_NAMES
        assert "batched-torch" in BACKEND_NAMES

    @pytest.mark.skipif(HAS_TORCH, reason="torch present: unavailability not testable")
    def test_torch_backend_unavailable_raises(self):
        with pytest.raises(BackendUnavailableError):
            get_backend("batched-torch")


@pytest.mark.skipif(not HAS_TORCH, reason="torch not installed")
class TestTorchBackend:
    def test_torch_matches_numpy(self):
        _, centers, shapes, directions, offsets, signs = _random_batch(24, 4, 13)
        numpy_result = batched_cut(centers, shapes, directions, offsets, signs)
        torch_result = batched_ellipsoid.batched_cut_torch(
            centers, shapes, directions, offsets, signs
        )
        np.testing.assert_array_equal(torch_result.updated, numpy_result.updated)
        np.testing.assert_allclose(
            torch_result.centers, numpy_result.centers, rtol=1e-9, atol=1e-11
        )
        np.testing.assert_allclose(
            torch_result.shapes, numpy_result.shapes, rtol=1e-9, atol=1e-11
        )

    def test_torch_backend_resolves(self):
        backend = get_backend("batched-torch")
        assert backend.name == "batched-torch"
