"""Unit tests for the market value models."""

import math

import numpy as np
import pytest

from repro.core.models import (
    GeneralizedLinearMarketModel,
    KernelizedModel,
    LinearModel,
    LogisticModel,
    LogLinearModel,
    LogLogModel,
)
from repro.exceptions import ModelSpecificationError


class TestLinearModel:
    def test_value_is_dot_product(self):
        model = LinearModel([1.0, 2.0, -0.5])
        assert model.value([1.0, 1.0, 2.0]) == pytest.approx(2.0)

    def test_link_is_identity(self):
        model = LinearModel([1.0])
        assert model.link(3.3) == pytest.approx(3.3)
        assert model.link_inverse(3.3) == pytest.approx(3.3)

    def test_weight_dimension(self):
        assert LinearModel([1.0, 2.0]).weight_dimension == 2

    def test_feature_dimension_checked(self):
        with pytest.raises(Exception):
            LinearModel([1.0, 2.0]).value([1.0, 2.0, 3.0])


class TestLogLinearModel:
    def test_value_is_exp_of_dot_product(self):
        model = LogLinearModel([0.5, 0.5])
        assert model.value([1.0, 1.0]) == pytest.approx(math.exp(1.0))

    def test_link_inverse_is_log(self):
        model = LogLinearModel([1.0])
        assert model.link_inverse(math.e) == pytest.approx(1.0)

    def test_link_inverse_rejects_non_positive(self):
        with pytest.raises(ValueError):
            LogLinearModel([1.0]).link_inverse(0.0)

    def test_monotone_link(self):
        model = LogLinearModel([1.0])
        assert model.link(2.0) > model.link(1.0)


class TestLogLogModel:
    def test_value_uses_log_features(self):
        model = LogLogModel([1.0, 2.0])
        features = [math.e, math.e]
        assert model.value(features) == pytest.approx(math.exp(3.0))

    def test_rejects_non_positive_features(self):
        with pytest.raises(ValueError):
            LogLogModel([1.0, 1.0]).value([1.0, 0.0])


class TestLogisticModel:
    def test_value_is_sigmoid(self):
        model = LogisticModel([1.0])
        assert model.value([0.0]) == pytest.approx(0.5)
        assert model.value([100.0]) == pytest.approx(1.0, abs=1e-6)

    def test_link_is_non_decreasing(self):
        model = LogisticModel([1.0])
        values = [model.link(z) for z in (-3.0, -1.0, 0.0, 1.0, 3.0)]
        assert values == sorted(values)

    def test_link_inverse_roundtrip(self):
        model = LogisticModel([1.0])
        for z in (-2.0, 0.0, 1.5):
            assert model.link_inverse(model.link(z)) == pytest.approx(z)

    def test_link_inverse_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            LogisticModel([1.0]).link_inverse(1.0)


class TestKernelizedModel:
    def test_anchor_feature_map(self):
        anchors = np.array([[0.0, 0.0], [1.0, 1.0]])
        model = KernelizedModel([1.0, 2.0], anchors, bandwidth=1.0)
        mapped = model.feature_map(np.array([0.0, 0.0]))
        assert mapped[0] == pytest.approx(1.0)
        assert mapped[1] == pytest.approx(math.exp(-1.0))

    def test_value_combines_kernels(self):
        anchors = np.array([[0.0], [2.0]])
        model = KernelizedModel([1.0, 1.0], anchors, bandwidth=1.0)
        value = model.value(np.array([0.0]))
        assert value == pytest.approx(1.0 + math.exp(-2.0))

    def test_rejects_bad_anchor_shape(self):
        with pytest.raises(ModelSpecificationError):
            KernelizedModel([1.0], np.array([1.0, 2.0]))

    def test_rejects_bad_bandwidth(self):
        with pytest.raises(ModelSpecificationError):
            KernelizedModel([1.0], np.array([[1.0]]), bandwidth=0.0)

    def test_rejects_wrong_raw_dimension(self):
        anchors = np.array([[0.0, 0.0]])
        model = KernelizedModel([1.0], anchors)
        with pytest.raises(ModelSpecificationError):
            model.value(np.array([1.0]))


class TestGeneralizedModel:
    def test_custom_link_and_feature_map(self):
        model = GeneralizedLinearMarketModel(
            theta=[2.0],
            link=lambda z: z**3,
            link_inverse=lambda v: np.sign(v) * abs(v) ** (1.0 / 3.0),
            feature_map=lambda x: np.array([x[0] + 1.0]),
            name="cubic",
        )
        assert model.value([1.0]) == pytest.approx(64.0)
        assert model.link_inverse(model.link(1.7)) == pytest.approx(1.7)

    def test_link_value_matches_value_through_link(self):
        model = LogLinearModel([0.3, 0.7])
        features = [1.0, 2.0]
        assert model.link(model.link_value(features)) == pytest.approx(model.value(features))
