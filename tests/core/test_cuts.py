"""Unit tests for the Löwner–John cut updates."""

import math

import numpy as np
import pytest

from repro.core.cuts import (
    CutKind,
    classify_alpha,
    cut_position,
    loewner_john_cut,
    volume_ratio_upper_bound,
)
from repro.core.ellipsoid import Ellipsoid, random_ellipsoid
from repro.exceptions import InvalidCutError


class TestCutPosition:
    def test_central_cut_has_zero_alpha(self, unit_ball_3d):
        direction = np.array([1.0, 0.0, 0.0])
        alpha = cut_position(unit_ball_3d, direction, 0.0, keep="leq")
        assert alpha == pytest.approx(0.0)

    def test_alpha_sign_flips_with_keep(self, unit_ball_3d):
        direction = np.array([1.0, 0.0, 0.0])
        leq = cut_position(unit_ball_3d, direction, 0.4, keep="leq")
        geq = cut_position(unit_ball_3d, direction, 0.4, keep="geq")
        assert leq == pytest.approx(-geq)

    def test_alpha_matches_paper_formula(self, small_ellipsoid):
        direction = np.array([0.5, 0.5, -1.0])
        offset = 1.3
        gain = direction @ small_ellipsoid.shape @ direction
        expected = (direction @ small_ellipsoid.center - offset) / math.sqrt(gain)
        assert cut_position(small_ellipsoid, direction, offset, "leq") == pytest.approx(expected)

    def test_invalid_keep_rejected(self, unit_ball_3d):
        with pytest.raises(ValueError):
            cut_position(unit_ball_3d, np.array([1.0, 0.0, 0.0]), 0.0, keep="between")


class TestClassification:
    def test_central(self):
        assert classify_alpha(0.0, 5) is CutKind.CENTRAL

    def test_deep(self):
        assert classify_alpha(0.3, 5) is CutKind.DEEP

    def test_shallow(self):
        assert classify_alpha(-0.1, 5) is CutKind.SHALLOW

    def test_noop_below_minus_one_over_n(self):
        assert classify_alpha(-0.5, 5) is CutKind.NOOP

    def test_requires_dimension_two(self):
        with pytest.raises(ValueError):
            classify_alpha(0.0, 1)


class TestLoewnerJohnCut:
    def test_central_cut_halves_along_direction(self, unit_ball_3d):
        direction = np.array([1.0, 0.0, 0.0])
        result = loewner_john_cut(unit_ball_3d, direction, 0.0, keep="leq")
        assert result.kind is CutKind.CENTRAL
        assert result.updated
        lower, upper = result.ellipsoid.support_interval(direction)
        # The kept halfspace is x1 <= 0; the new ellipsoid must stay within a
        # slightly loosened version of it and must still cover the kept region.
        assert upper <= 0.5 + 1e-9
        assert lower <= -0.9

    def test_cut_retains_kept_region(self, rng):
        ellipsoid = random_ellipsoid(4, seed=1)
        direction = rng.standard_normal(4)
        lower, upper = ellipsoid.support_interval(direction)
        offset = 0.5 * (lower + upper)
        result = loewner_john_cut(ellipsoid, direction, offset, keep="geq")
        points = ellipsoid.sample(400, seed=2)
        kept = points[points @ direction >= offset]
        assert kept.shape[0] > 0
        for point in kept:
            assert result.ellipsoid.contains(point, tolerance=1e-6)

    def test_central_cut_reduces_volume_per_lemma2(self):
        ellipsoid = random_ellipsoid(5, seed=7)
        direction = np.ones(5)
        middle = float(direction @ ellipsoid.center)
        result = loewner_john_cut(ellipsoid, direction, middle, keep="leq")
        ratio = result.ellipsoid.volume() / ellipsoid.volume()
        assert ratio < 1.0
        assert ratio <= volume_ratio_upper_bound(0.0, 5) + 1e-9

    def test_deep_cut_shrinks_more_than_central(self, unit_ball_3d):
        direction = np.array([1.0, 0.0, 0.0])
        central = loewner_john_cut(unit_ball_3d, direction, 0.0, keep="leq")
        deep = loewner_john_cut(unit_ball_3d, direction, -0.2, keep="leq")
        assert deep.kind is CutKind.DEEP
        assert deep.ellipsoid.volume() < central.ellipsoid.volume()

    def test_shallow_cut_is_applied_but_weaker(self, unit_ball_3d):
        direction = np.array([1.0, 0.0, 0.0])
        shallow = loewner_john_cut(unit_ball_3d, direction, 0.2, keep="leq")
        assert shallow.kind is CutKind.SHALLOW
        assert shallow.updated
        assert shallow.ellipsoid.volume() < unit_ball_3d.volume()

    def test_noop_cut_returns_original(self, unit_ball_3d):
        direction = np.array([1.0, 0.0, 0.0])
        # Keeping x1 <= 0.9 cuts off almost nothing: alpha < -1/n.
        result = loewner_john_cut(unit_ball_3d, direction, 0.9, keep="leq")
        assert result.kind is CutKind.NOOP
        assert not result.updated
        assert result.ellipsoid is unit_ball_3d

    def test_infeasible_cut_raises_by_default(self, unit_ball_3d):
        direction = np.array([1.0, 0.0, 0.0])
        with pytest.raises(InvalidCutError):
            loewner_john_cut(unit_ball_3d, direction, -2.0, keep="leq")

    def test_infeasible_cut_skip_mode(self, unit_ball_3d):
        direction = np.array([1.0, 0.0, 0.0])
        result = loewner_john_cut(unit_ball_3d, direction, -2.0, keep="leq", on_infeasible="skip")
        assert not result.updated
        assert result.kind is CutKind.NOOP

    def test_infeasible_cut_clamp_mode_collapses(self, unit_ball_3d):
        direction = np.array([1.0, 0.0, 0.0])
        result = loewner_john_cut(unit_ball_3d, direction, -2.0, keep="leq", on_infeasible="clamp")
        assert result.updated
        # The clamped ellipsoid collapses near the supporting point (-1, 0, 0).
        assert np.allclose(result.ellipsoid.center, [-1.0, 0.0, 0.0], atol=1e-6)

    def test_unknown_infeasible_mode_rejected(self, unit_ball_3d):
        with pytest.raises(ValueError):
            loewner_john_cut(unit_ball_3d, np.array([1.0, 0, 0]), 0.0, "leq", on_infeasible="boom")

    def test_one_dimensional_ellipsoid_rejected(self):
        tiny = Ellipsoid(np.zeros(1), np.eye(1))
        with pytest.raises(InvalidCutError):
            loewner_john_cut(tiny, np.array([1.0]), 0.0, keep="leq")

    def test_positive_definiteness_preserved_over_many_cuts(self, rng):
        ellipsoid = Ellipsoid.ball(6, 10.0)
        for _ in range(200):
            direction = rng.standard_normal(6)
            lower, upper = ellipsoid.support_interval(direction)
            offset = rng.uniform(lower, upper)
            keep = "leq" if rng.random() < 0.5 else "geq"
            result = loewner_john_cut(ellipsoid, direction, offset, keep, on_infeasible="skip")
            ellipsoid = result.ellipsoid
            assert ellipsoid.smallest_eigenvalue() > 0

    def test_acceptance_and_rejection_are_symmetric_for_central_cut(self, unit_ball_3d):
        direction = np.array([0.0, 1.0, 0.0])
        accept = loewner_john_cut(unit_ball_3d, direction, 0.0, keep="geq")
        reject = loewner_john_cut(unit_ball_3d, direction, 0.0, keep="leq")
        assert np.allclose(accept.ellipsoid.center, -reject.ellipsoid.center)
        assert np.allclose(accept.ellipsoid.shape, reject.ellipsoid.shape)


class TestVolumeRatioBound:
    def test_bound_decreases_with_alpha(self):
        assert volume_ratio_upper_bound(0.0, 5) < 1.0
        assert volume_ratio_upper_bound(0.2, 5) < volume_ratio_upper_bound(0.0, 5)

    def test_bound_rejects_out_of_range_alpha(self):
        with pytest.raises(ValueError):
            volume_ratio_upper_bound(-0.9, 5)

    def test_bound_rejects_small_dimension(self):
        with pytest.raises(ValueError):
            volume_ratio_upper_bound(0.0, 1)


class TestDegenerateDirections:
    """Zero/denormal/NaN cut directions must never emit NaN cut parameters.

    A denormal positive gain (``x^T A x`` underflowing below the smallest
    normal double) passes a plain ``> 0`` check but overflows
    ``1/sqrt(gain)`` — the historical bug this sweep fixes.
    """

    def test_zero_direction_raises_in_raise_mode(self, unit_ball_3d):
        with pytest.raises(InvalidCutError):
            loewner_john_cut(unit_ball_3d, np.zeros(3), 0.5, keep="leq")

    def test_zero_direction_noop_in_skip_mode(self, unit_ball_3d):
        result = loewner_john_cut(
            unit_ball_3d, np.zeros(3), 0.5, keep="leq", on_infeasible="skip"
        )
        assert not result.updated
        assert result.kind is CutKind.NOOP
        assert math.isnan(result.alpha)
        assert result.ellipsoid is unit_ball_3d

    def test_denormal_direction_noop_in_skip_mode(self, unit_ball_3d):
        direction = np.full(3, 1e-170)  # gain ~ 3e-340: denormal-underflow zone
        result = loewner_john_cut(
            unit_ball_3d, direction, 0.0, keep="geq", on_infeasible="skip"
        )
        assert not result.updated
        assert np.all(np.isfinite(result.ellipsoid.center))
        assert np.all(np.isfinite(result.ellipsoid.shape))

    def test_denormal_direction_raises_in_raise_mode(self, unit_ball_3d):
        with pytest.raises(InvalidCutError):
            loewner_john_cut(unit_ball_3d, np.full(3, 1e-170), 0.0, keep="leq")

    def test_cut_position_rejects_denormal_gain(self, unit_ball_3d):
        with pytest.raises(InvalidCutError):
            cut_position(unit_ball_3d, np.full(3, 1e-170), 0.0, keep="leq")

    def test_support_interval_zero_width_for_denormal_direction(self):
        ellipsoid = random_ellipsoid(4, seed=21)
        lower, upper = ellipsoid.support_interval(np.full(4, 1e-170))
        assert lower == upper
        assert math.isfinite(lower)


class TestDegenerateDirectionProperties:
    """Property sweep over the tiny-direction scale ladder."""

    def test_no_nan_for_any_tiny_scale(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        ellipsoid = random_ellipsoid(5, seed=33)
        base = np.random.default_rng(33).standard_normal(5)

        @settings(max_examples=60, deadline=None)
        @given(
            exponent=st.integers(min_value=-300, max_value=0),
            keep=st.sampled_from(["leq", "geq"]),
            offset=st.floats(-2.0, 2.0, allow_nan=False),
        )
        def check(exponent, keep, offset):
            direction = base * (10.0 ** exponent)
            result = loewner_john_cut(
                ellipsoid, direction, offset, keep=keep, on_infeasible="skip"
            )
            assert np.all(np.isfinite(result.ellipsoid.center))
            assert np.all(np.isfinite(result.ellipsoid.shape))
            if result.updated:
                assert math.isfinite(result.alpha)
            # NOOP results must hand back the *same* knowledge set.
            if not result.updated:
                assert result.ellipsoid is ellipsoid

        check()
