"""Equivalence suite: the columnar engine vs the sequential reference loop.

The acceptance contract of the engine refactor is that batched transcripts are
*element-wise identical* (exact float equality on seeded runs) to the legacy
sequential loop for every pricer built by ``make_pricer`` — all four ellipsoid
algorithm versions, the one-dimensional pricer, the polytope-knowledge
reference, the conservative-cuts ablation — plus every baseline and the SGD
learner, across the linear and non-linear market value models.
"""

import numpy as np
import pytest

from repro.core.baselines import (
    ConstantMarkupPricer,
    FixedPricePricer,
    OraclePricer,
    RiskAversePricer,
)
from repro.core.models import (
    KernelizedModel,
    LinearModel,
    LogisticModel,
    LogLinearModel,
)
from repro.core.noise import GaussianNoise
from repro.core.pricing import make_pricer
from repro.core.sgd_pricer import SGDContextualPricer
from repro.core.simulation import MarketSimulator, QueryArrival, compare_pricers
from repro.engine import simulate_reference


def assert_transcripts_identical(engine_result, reference_result):
    """Exact element-wise equality of every transcript column."""
    engine, reference = engine_result.transcript, reference_result.transcript
    assert np.array_equal(engine.market_values, reference.market_values)
    assert np.array_equal(engine.link_values, reference.link_values)
    assert np.array_equal(engine.reserve_values, reference.reserve_values, equal_nan=True)
    assert np.array_equal(engine.link_prices, reference.link_prices, equal_nan=True)
    assert np.array_equal(engine.posted_prices, reference.posted_prices, equal_nan=True)
    assert np.array_equal(engine.sold, reference.sold)
    assert np.array_equal(engine.skipped, reference.skipped)
    assert np.array_equal(engine.exploratory, reference.exploratory)
    assert np.array_equal(engine.regrets, reference.regrets)
    assert np.array_equal(
        engine_result.cumulative_regret_curve(), reference_result.cumulative_regret_curve()
    )


def _linear_arrivals(dimension, rounds, seed, with_reserve=True, noise_sigma=0.005):
    rng = np.random.default_rng(seed)
    theta = np.abs(rng.standard_normal(dimension))
    theta *= np.sqrt(2 * dimension) / np.linalg.norm(theta)
    model = LinearModel(theta)
    arrivals = []
    for _ in range(rounds):
        features = np.abs(rng.standard_normal(dimension))
        features /= np.linalg.norm(features)
        reserve = 0.6 * float(features @ theta) if with_reserve else None
        noise = float(rng.normal(0.0, noise_sigma)) if noise_sigma else 0.0
        arrivals.append(QueryArrival(features=features, reserve_value=reserve, noise=noise))
    return model, arrivals


def _run_both(model, pricer_factory, arrivals, track_latency=False):
    engine = MarketSimulator(model, pricer_factory(), track_latency=track_latency).run(arrivals)
    reference = simulate_reference(
        model, pricer_factory(), arrivals, track_latency=track_latency
    )
    return engine, reference


ELLIPSOID_VARIANTS = [
    pytest.param(True, 0.0, id="with reserve price"),
    pytest.param(False, 0.0, id="pure version"),
    pytest.param(True, 0.01, id="with reserve price and uncertainty"),
    pytest.param(False, 0.01, id="with uncertainty"),
]


class TestMakePricerVersions:
    @pytest.mark.parametrize("dimension", [1, 6], ids=["n=1", "n=6"])
    @pytest.mark.parametrize("use_reserve,delta", ELLIPSOID_VARIANTS)
    def test_all_versions_identical(self, dimension, use_reserve, delta):
        model, arrivals = _linear_arrivals(dimension, 600, seed=dimension)
        radius = 2.0 * np.sqrt(dimension)
        epsilon = max(dimension**2 / 600, 4 * dimension * delta, 1e-6)
        factory = lambda: make_pricer(
            dimension=dimension,
            radius=radius,
            epsilon=epsilon,
            delta=delta,
            use_reserve=use_reserve,
        )
        engine, reference = _run_both(model, factory, arrivals)
        assert_transcripts_identical(engine, reference)

    def test_polytope_knowledge_identical(self):
        model, arrivals = _linear_arrivals(4, 80, seed=2)
        factory = lambda: make_pricer(
            dimension=4, radius=4.0, epsilon=0.05, knowledge="polytope"
        )
        engine, reference = _run_both(model, factory, arrivals)
        assert_transcripts_identical(engine, reference)

    def test_conservative_cuts_ablation_identical(self):
        model, arrivals = _linear_arrivals(6, 600, seed=3)
        factory = lambda: make_pricer(
            dimension=6, radius=2.0 * np.sqrt(6), epsilon=0.06, allow_conservative_cuts=True
        )
        engine, reference = _run_both(model, factory, arrivals)
        assert_transcripts_identical(engine, reference)

    def test_pricer_counters_match_sequential_loop(self):
        model, arrivals = _linear_arrivals(6, 600, seed=4)
        build = lambda: make_pricer(dimension=6, radius=2.0 * np.sqrt(6), epsilon=0.06)
        engine_pricer, reference_pricer = build(), build()
        MarketSimulator(model, engine_pricer).run(arrivals)
        simulate_reference(model, reference_pricer, arrivals)
        assert engine_pricer.rounds_seen == reference_pricer.rounds_seen
        assert engine_pricer.exploratory_rounds == reference_pricer.exploratory_rounds
        assert engine_pricer.conservative_rounds == reference_pricer.conservative_rounds
        assert engine_pricer.skipped_rounds == reference_pricer.skipped_rounds
        assert engine_pricer.cuts_applied == reference_pricer.cuts_applied
        assert np.array_equal(
            engine_pricer.knowledge.ellipsoid.center,
            reference_pricer.knowledge.ellipsoid.center,
        )
        assert np.array_equal(
            engine_pricer.knowledge.ellipsoid.shape,
            reference_pricer.knowledge.ellipsoid.shape,
        )


class TestBaselinesAndSGD:
    def test_stateless_baselines_identical(self):
        model, arrivals = _linear_arrivals(5, 400, seed=5)
        theta = model.theta
        factories = [
            RiskAversePricer,
            lambda: FixedPricePricer(1.1),
            lambda: ConstantMarkupPricer(1.5),
            lambda: OraclePricer(lambda x: float(x @ theta)),
        ]
        for factory in factories:
            engine, reference = _run_both(model, factory, arrivals)
            assert_transcripts_identical(engine, reference)

    def test_oracle_skip_rounds_identical(self):
        # Reserves occasionally above the market value force oracle skips.
        rng = np.random.default_rng(11)
        model = LinearModel(np.array([1.0, 1.0]))
        arrivals = [
            QueryArrival(
                features=rng.uniform(0.1, 1.0, size=2),
                reserve_value=float(rng.uniform(0.5, 2.5)),
                noise=0.0,
            )
            for _ in range(200)
        ]
        theta = model.theta
        factory = lambda: OraclePricer(lambda x: float(x @ theta))
        engine, reference = _run_both(model, factory, arrivals)
        assert engine.transcript.skipped.any()
        assert_transcripts_identical(engine, reference)

    @pytest.mark.parametrize("use_reserve", [True, False], ids=["reserve", "no-reserve"])
    def test_sgd_identical(self, use_reserve):
        model, arrivals = _linear_arrivals(5, 500, seed=6)
        factory = lambda: SGDContextualPricer(
            dimension=5, radius=2.0 * np.sqrt(5), use_reserve=use_reserve
        )
        engine, reference = _run_both(model, factory, arrivals)
        assert_transcripts_identical(engine, reference)

    def test_sgd_estimate_matches_sequential_loop(self):
        model, arrivals = _linear_arrivals(5, 500, seed=7)
        engine_pricer = SGDContextualPricer(dimension=5, radius=2.0 * np.sqrt(5))
        reference_pricer = SGDContextualPricer(dimension=5, radius=2.0 * np.sqrt(5))
        MarketSimulator(model, engine_pricer).run(arrivals)
        simulate_reference(model, reference_pricer, arrivals)
        assert np.array_equal(engine_pricer.estimate, reference_pricer.estimate)
        assert engine_pricer.rounds_seen == reference_pricer.rounds_seen


class TestNonLinearModels:
    def _uniform_arrivals(self, rounds, dimension, seed):
        rng = np.random.default_rng(seed)
        return [
            QueryArrival(
                features=rng.uniform(0.2, 1.0, size=dimension), reserve_value=None, noise=0.0
            )
            for _ in range(rounds)
        ]

    def test_log_linear_identical(self):
        model = LogLinearModel(np.array([0.6, 0.3, 0.1]))
        arrivals = self._uniform_arrivals(400, 3, seed=8)
        factory = lambda: make_pricer(dimension=3, radius=2.0, epsilon=0.02, use_reserve=False)
        engine, reference = _run_both(model, factory, arrivals)
        assert_transcripts_identical(engine, reference)

    def test_logistic_identical(self):
        model = LogisticModel(np.array([0.6, 0.3, 0.1]))
        arrivals = self._uniform_arrivals(400, 3, seed=9)
        factory = lambda: make_pricer(dimension=3, radius=2.0, epsilon=0.02, use_reserve=False)
        engine, reference = _run_both(model, factory, arrivals)
        assert_transcripts_identical(engine, reference)

    def test_kernelized_identical(self):
        rng = np.random.default_rng(10)
        anchors = rng.standard_normal((6, 3))
        model = KernelizedModel(np.abs(rng.standard_normal(6)), anchors, bandwidth=1.2)
        arrivals = self._uniform_arrivals(300, 3, seed=10)
        factory = lambda: make_pricer(dimension=6, radius=3.0, epsilon=0.05, use_reserve=False)
        engine, reference = _run_both(model, factory, arrivals)
        assert_transcripts_identical(engine, reference)

    def test_kernelized_feature_map_batch_matches_rows(self):
        rng = np.random.default_rng(13)
        anchors = rng.standard_normal((4, 3))
        model = KernelizedModel(np.ones(4), anchors, bandwidth=0.9)
        raw = rng.standard_normal((64, 3))
        batched = model.feature_map_batch(raw)
        rowwise = np.vstack([model.feature_map(row) for row in raw])
        assert np.array_equal(batched, rowwise)


class TestLatencyAndNoisePaths:
    def test_latency_path_transcript_identical(self):
        # track_latency forces the sequential engine strategy; decisions and
        # prices must be unaffected, and the latency is measured once and
        # reused (column == tracker samples).
        model, arrivals = _linear_arrivals(5, 120, seed=12)
        factory = lambda: make_pricer(dimension=5, radius=2.0 * np.sqrt(5), epsilon=0.05)
        engine, reference = _run_both(model, factory, arrivals, track_latency=True)
        assert engine.latency.count == len(arrivals)
        assert np.array_equal(
            np.array(engine.latency.samples_seconds), engine.transcript.latency_seconds
        )
        assert np.array_equal(engine.transcript.posted_prices, reference.transcript.posted_prices, equal_nan=True)
        assert np.array_equal(engine.transcript.sold, reference.transcript.sold)

    def test_compare_pricers_shares_one_noise_realization(self):
        # Regression for the shared-RNG bug: arrivals without pre-drawn noise
        # must face the *same* realization for every pricer (the Fig. 4
        # same-market protocol), not consume the mutable rng independently.
        rng = np.random.default_rng(14)
        model = LinearModel(np.array([1.0, 2.0]))
        arrivals = [
            QueryArrival(
                features=rng.uniform(0.1, 1.0, size=2),
                reserve_value=0.3,
                noise=None,
            )
            for _ in range(50)
        ]
        results = compare_pricers(
            model,
            [RiskAversePricer(), FixedPricePricer(0.8), RiskAversePricer()],
            arrivals,
            noise=GaussianNoise(0.5),
            rng=99,
        )
        values = [result.transcript.market_values for result in results]
        assert np.array_equal(values[0], values[1])
        assert np.array_equal(values[0], values[2])
        # The noise is genuinely random (not silently zeroed).
        deterministic = [model.value(a.features) for a in arrivals]
        assert not np.allclose(values[0], deterministic)

    def test_engine_is_default_and_reference_available(self):
        model, arrivals = _linear_arrivals(5, 100, seed=15)
        simulator = MarketSimulator(model, make_pricer(dimension=5, radius=4.0, epsilon=0.05))
        result = simulator.run(arrivals)
        reference = MarketSimulator(
            model, make_pricer(dimension=5, radius=4.0, epsilon=0.05)
        ).run_reference(arrivals)
        assert_transcripts_identical(result, reference)
