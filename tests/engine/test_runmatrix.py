"""Tests for the (pricer × seed × scenario) run-matrix executor."""

import multiprocessing

import numpy as np
import pytest

from repro.core.baselines import RiskAversePricer
from repro.core.models import LinearModel
from repro.core.pricing import make_pricer
from repro.core.simulation import MarketSimulator, QueryArrival
from repro.engine import ArrivalBatch, MarketScenario, RunMatrix


def _scenario(seed, rounds=200, dimension=3, name=None):
    rng = np.random.default_rng(seed)
    theta = np.abs(rng.standard_normal(dimension))
    theta *= np.sqrt(2 * dimension) / np.linalg.norm(theta)
    model = LinearModel(theta)
    arrivals = []
    for _ in range(rounds):
        features = np.abs(rng.standard_normal(dimension))
        features /= np.linalg.norm(features)
        arrivals.append(
            QueryArrival(
                features=features, reserve_value=0.6 * float(features @ theta), noise=0.0
            )
        )
    return MarketScenario(
        name=name or ("seed=%d" % seed),
        model=model,
        batch=ArrivalBatch.from_arrivals(arrivals),
        context={"seed": seed},
    )


def _ellipsoid_factory(scenario):
    dimension = scenario.batch.raw_dimension
    return make_pricer(dimension=dimension, radius=2.0 * np.sqrt(dimension), epsilon=0.05)


def _risk_averse_factory(scenario):
    return RiskAversePricer()


def _build_matrix():
    matrix = RunMatrix()
    matrix.add_scenario("A", lambda: _scenario(1, name="A"))
    matrix.add_scenario("B", lambda: _scenario(2, name="B"))
    matrix.add_pricer("ellipsoid", _ellipsoid_factory)
    matrix.add_pricer("risk-averse", _risk_averse_factory)
    matrix.add_cross()
    return matrix


def _expected_cell(seed):
    scenario = _scenario(seed)
    pricer = _ellipsoid_factory(scenario)
    return MarketSimulator(scenario.model, pricer).run(scenario.batch)


class TestDeclaration:
    def test_cells_and_validation(self):
        matrix = _build_matrix()
        assert len(matrix.cells) == 4
        with pytest.raises(ValueError, match="unknown scenario"):
            matrix.add_cell("missing", "ellipsoid")
        with pytest.raises(ValueError, match="unknown pricer"):
            matrix.add_cell("A", "missing")
        with pytest.raises(ValueError, match="already registered"):
            matrix.add_scenario("A", lambda: _scenario(1))

    def test_scenario_sweep_registers_one_scenario_per_seed(self):
        matrix = RunMatrix()
        keys = matrix.add_scenario_sweep("market", _scenario, seeds=(1, 2, 3))
        assert keys == ["market/seed=1", "market/seed=2", "market/seed=3"]
        matrix.add_pricer("risk-averse", _risk_averse_factory)
        matrix.add_cross()
        grid = matrix.run(executor="serial")
        assert len(grid) == 3

    def test_unknown_executor_rejected(self):
        matrix = _build_matrix()
        with pytest.raises(ValueError, match="executor"):
            matrix.run(executor="gpu")


class TestExecution:
    def test_serial_matches_direct_simulation(self):
        grid = _build_matrix().run(executor="serial")
        expected = _expected_cell(1)
        got = grid.get("A", "ellipsoid")
        assert np.array_equal(
            got.transcript.posted_prices, expected.transcript.posted_prices, equal_nan=True
        )
        assert np.array_equal(got.transcript.regrets, expected.transcript.regrets)
        assert got.pricer_name == "ellipsoid"

    def test_thread_matches_serial(self):
        serial = _build_matrix().run(executor="serial")
        threaded = _build_matrix().run(executor="thread", max_workers=2)
        for cell, result in serial:
            other = threaded.get(cell.scenario, cell.pricer)
            assert np.array_equal(
                result.transcript.posted_prices, other.transcript.posted_prices, equal_nan=True
            )
            assert np.array_equal(result.transcript.sold, other.transcript.sold)

    @pytest.mark.skipif(
        "fork" not in multiprocessing.get_all_start_methods(),
        reason="process executor requires fork",
    )
    def test_process_matches_serial(self):
        serial = _build_matrix().run(executor="serial")
        processed = _build_matrix().run(executor="process", max_workers=2)
        for cell, result in serial:
            other = processed.get(cell.scenario, cell.pricer)
            assert np.array_equal(
                result.transcript.posted_prices, other.transcript.posted_prices, equal_nan=True
            )
            assert np.array_equal(result.transcript.regrets, other.transcript.regrets)

    def test_by_scenario_and_by_pricer_views(self):
        grid = _build_matrix().run(executor="serial")
        by_scenario = grid.by_scenario("A")
        assert set(by_scenario) == {"ellipsoid", "risk-averse"}
        by_pricer = grid.by_pricer("ellipsoid")
        assert set(by_pricer) == {"A", "B"}

    def test_built_scenarios_exposed_for_metadata(self):
        matrix = _build_matrix()
        matrix.run(executor="serial")
        assert matrix.built_scenarios["A"].context == {"seed": 1}

    def test_scenarios_share_materialization_across_cells(self):
        # Both pricers of one scenario must replay the identical market.
        grid = _build_matrix().run(executor="serial")
        a_ell = grid.get("A", "ellipsoid").transcript.market_values
        a_risk = grid.get("A", "risk-averse").transcript.market_values
        assert np.array_equal(a_ell, a_risk)

    def test_empty_matrix_runs(self):
        assert len(RunMatrix().run()) == 0

    def test_auto_resolves_serial_for_small_workloads(self):
        matrix = _build_matrix()
        grid = matrix.run(executor="auto")
        assert len(grid) == 4

    def test_run_versions_tolerates_duplicate_version_names(self):
        # Listing the baseline explicitly *and* requesting include_risk_averse
        # must not blow up on duplicate pricer registration.
        from repro.apps.common import RISK_AVERSE, run_versions
        from repro.apps.noisy_linear_query import (
            NoisyLinearQueryConfig,
            build_noisy_query_environment,
        )

        environment = build_noisy_query_environment(
            NoisyLinearQueryConfig(dimension=3, rounds=30, owner_count=40, seed=1)
        )
        results = run_versions(
            environment,
            versions=("pure version", RISK_AVERSE),
            include_risk_averse=True,
            executor="serial",
        )
        assert set(results) == {"pure version", RISK_AVERSE}

    def test_scaling_sweep_keeps_duplicate_points(self):
        from repro.experiments.regret_scaling import run_horizon_scaling

        results = run_horizon_scaling(
            horizons=(40, 40, 80), dimension=3, owner_count=40, seed=1, executor="serial"
        )
        assert [r.rounds for r in results] == [40, 40, 80]
        # Identical sweep points replay the identical seeded market.
        assert results[0].cumulative_regret == results[1].cumulative_regret

    def test_missing_noise_scenario_rejected(self):
        arrivals = [QueryArrival(features=np.array([1.0]), noise=None)]
        with pytest.raises(ValueError, match="undrawn noise"):
            MarketScenario(
                name="bad",
                model=LinearModel([1.0]),
                batch=ArrivalBatch.from_arrivals(arrivals),
            )
