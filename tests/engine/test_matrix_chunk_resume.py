"""Mid-cell crash resume: RunMatrix(checkpoint_dir=...) × shard_rounds.

Cell-level resume (result files) existed before; these tests pin the
chunk-level wiring: when a sharded sweep crashes mid-cell, the completed
chunk boundaries survive as ``*.chunk.npz`` pricer checkpoints and a re-run
resumes *inside* the interrupted cell — re-executing only the rounds after
the last persisted boundary — while producing a transcript bit-identical to
an uninterrupted run.
"""

import glob
import os

import numpy as np
import pytest

from repro.core.base import PostedPriceMechanism, PricingDecision
from repro.core.models import LinearModel
from repro.engine import (
    ArrivalBatch,
    MarketScenario,
    RunCellError,
    RunMatrix,
    prepare,
    run_batch_chunked,
    simulate,
)

ROUNDS = 64
CHUNK = 16


class CountingPricer(PostedPriceMechanism):
    """A deterministic, state-dependent pricer with an injectable crash.

    The posted price depends on both the round counter and the accept count,
    so a resume that lost either would diverge visibly.  ``log`` (shared via
    the factory closure) records every propose call, which is how the tests
    count re-executed rounds; ``fail_at`` raises on the N-th propose call
    across the whole process — the simulated crash.
    """

    name = "counting"

    def __init__(self, log, fail_at=None):
        super().__init__()
        self.log = log
        self.fail_at = fail_at
        self.accepts = 0

    def propose(self, features, reserve=None):
        self.log.append(self._round_index)
        if self.fail_at is not None and len(self.log) >= self.fail_at:
            raise RuntimeError("injected crash at propose call %d" % len(self.log))
        price = 0.5 + 0.01 * self.accepts + 0.001 * self._round_index
        return PricingDecision(
            features=np.atleast_1d(np.asarray(features, dtype=float)),
            reserve=reserve,
            lower_bound=float("-inf"),
            upper_bound=float("inf"),
            price=price,
            exploratory=False,
            skipped=False,
            round_index=self._next_round(),
        )

    def update(self, decision, accepted):
        if accepted:
            self.accepts += 1

    def _extra_state(self):
        return {"accepts": int(self.accepts)}

    def _load_extra_state(self, state):
        self.accepts = int(state["accepts"])


def _market():
    rng = np.random.default_rng(99)
    theta = rng.random(4) + 0.1
    features = rng.random((ROUNDS, 4)) + 0.05
    features /= np.linalg.norm(features, axis=1, keepdims=True)
    reserves = 0.4 * np.array([float(row @ theta) for row in features])
    noise = np.zeros(ROUNDS)
    model = LinearModel(theta)
    batch = ArrivalBatch(features=features, reserve_values=reserves, noise=noise)
    return model, batch


def _matrix(model, batch, log, fail_at=None):
    matrix = RunMatrix()
    matrix.add_scenario("m", MarketScenario(name="m", model=model, batch=batch))
    matrix.add_pricer("counting", lambda scenario: CountingPricer(log, fail_at=fail_at))
    matrix.add_cross()
    return matrix


def _expected(model, batch):
    result = simulate(model, CountingPricer(log=[]), materialized=prepare(model, batch))
    return result.transcript


def _assert_transcripts_equal(actual, expected):
    for name in ("link_prices", "posted_prices", "sold", "skipped", "regrets"):
        left, right = getattr(actual, name), getattr(expected, name)
        assert np.array_equal(left, right, equal_nan=left.dtype.kind == "f"), name


@pytest.mark.parametrize("executor", ["serial", "thread"])
def test_crashed_sharded_sweep_resumes_mid_cell(tmp_path, executor):
    model, batch = _market()
    checkpoint_dir = str(tmp_path)

    crash_log = []
    with pytest.raises(RunCellError):
        _matrix(model, batch, crash_log, fail_at=41).run(
            executor=executor, shard_rounds=CHUNK, checkpoint_dir=checkpoint_dir
        )
    # Chunks [0,16) and [16,32) completed and were persisted before the
    # crash inside [32,48).
    chunk_files = glob.glob(os.path.join(checkpoint_dir, "*.chunk.npz"))
    assert len(chunk_files) == 1
    assert not glob.glob(os.path.join(checkpoint_dir, "*.result.npz"))

    resume_log = []
    grid = _matrix(model, batch, resume_log).run(
        executor=executor, shard_rounds=CHUNK, checkpoint_dir=checkpoint_dir
    )
    # Only the rounds after the last persisted boundary re-ran.
    assert len(resume_log) == ROUNDS - 2 * CHUNK
    assert resume_log[0] == 2 * CHUNK
    _assert_transcripts_equal(grid.get("m", "counting").transcript, _expected(model, batch))
    # The finished cell superseded its chunk file with a result file.
    assert not glob.glob(os.path.join(checkpoint_dir, "*.chunk.npz"))
    assert glob.glob(os.path.join(checkpoint_dir, "*.result.npz"))


def test_completed_sweep_leaves_no_chunk_files(tmp_path):
    model, batch = _market()
    log = []
    grid = _matrix(model, batch, log).run(
        executor="serial", shard_rounds=CHUNK, checkpoint_dir=str(tmp_path)
    )
    assert len(log) == ROUNDS
    assert not glob.glob(os.path.join(str(tmp_path), "*.chunk.npz"))
    _assert_transcripts_equal(grid.get("m", "counting").transcript, _expected(model, batch))


def test_foreign_chunk_file_is_ignored(tmp_path):
    """A chunk file from a different market must not poison the cell."""
    model, batch = _market()
    # Plant a checkpoint taken against a *different* market at the exact
    # path the matrix will look at.
    from repro.engine.runmatrix import RunCell, _cell_chunk_path

    other_rng = np.random.default_rng(7)
    other_features = other_rng.random((ROUNDS, 4)) + 0.05
    other_batch = ArrivalBatch(
        features=other_features,
        reserve_values=np.full(ROUNDS, 0.3),
        noise=np.zeros(ROUNDS),
    )
    planted_path = _cell_chunk_path(str(tmp_path), RunCell(scenario="m", pricer="counting"))
    run_batch_chunked(
        model,
        CountingPricer(log=[]),
        materialized=prepare(model, other_batch),
        chunk_size=CHUNK,
        checkpoint_path=planted_path,
    )
    assert os.path.exists(planted_path)

    log = []
    grid = _matrix(model, batch, log).run(
        executor="serial", shard_rounds=CHUNK, checkpoint_dir=str(tmp_path)
    )
    # The foreign file was detected via the market fingerprint and the cell
    # ran from round zero.
    assert len(log) == ROUNDS
    _assert_transcripts_equal(grid.get("m", "counting").transcript, _expected(model, batch))


def test_sharded_resume_matches_serial_resume_format(tmp_path):
    """A chunk file written by the sharded executor resumes a serial run."""
    model, batch = _market()
    crash_log = []
    with pytest.raises(RunCellError):
        _matrix(model, batch, crash_log, fail_at=41).run(
            executor="thread", shard_rounds=CHUNK, checkpoint_dir=str(tmp_path)
        )
    chunk_files = glob.glob(os.path.join(str(tmp_path), "*.chunk.npz"))
    assert len(chunk_files) == 1
    # Resume the interrupted cell straight through run_batch_chunked.
    log = []
    result = run_batch_chunked(
        model,
        CountingPricer(log),
        materialized=prepare(model, batch),
        chunk_size=CHUNK,
        checkpoint_path=chunk_files[0],
        resume=True,
    )
    assert len(log) == ROUNDS - 2 * CHUNK
    _assert_transcripts_equal(result.transcript, _expected(model, batch))
