"""Checkpoint/restore subsystem tests.

Pins the chunked-execution exactness contract:

* ``state_dict → save → load → load_state`` into a *fresh* pricer, then
  continuing the horizon, must be element-wise identical to the
  uninterrupted run — property-tested over random seeds, horizons, and
  split points for every pricer family and both knowledge-set types (plus
  the polytope reference);
* :func:`repro.engine.run_batch_chunked` must be bit-identical to
  :func:`repro.engine.simulate` for ``chunk_size ∈ {1, 7, T/2, T}``
  (the PR's acceptance criterion);
* the serialisation layer round-trips nested state without pickling and
  rejects foreign or future-versioned artifacts.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.base import PostedPriceMechanism, PricingDecision
from repro.core.baselines import (
    ConstantMarkupPricer,
    FixedPricePricer,
    OraclePricer,
    RiskAversePricer,
)
from repro.core.models import LinearModel
from repro.core.pricing import make_pricer
from repro.core.sgd_pricer import SGDContextualPricer
from repro.engine import (
    CheckpointError,
    run_batch_chunked,
    simulate,
)
from repro.engine.arrivals import ArrivalBatch
from repro.engine.checkpoint import (
    deserialize_state,
    load_checkpoint,
    load_result,
    restore_pricer,
    save_checkpoint,
    save_result,
    serialize_state,
)
from repro.engine.runner import prepare


def _market(seed, dimension, rounds):
    rng = np.random.default_rng(seed)
    theta = rng.random(dimension) + 0.1
    theta *= np.sqrt(2.0 * dimension) / np.linalg.norm(theta)
    features = rng.random((rounds, dimension)) + 0.05
    features /= np.linalg.norm(features, axis=1, keepdims=True)
    reserves = 0.6 * np.array([float(row @ theta) for row in features])
    noise = 0.01 * (rng.random(rounds) - 0.5)
    model = LinearModel(theta)
    batch = ArrivalBatch(features=features, reserve_values=reserves, noise=noise)
    return model, prepare(model, batch), theta


def _families(theta, dimension):
    radius = 2.0 * np.sqrt(dimension)
    families = {
        "sgd": lambda: SGDContextualPricer(dimension=dimension, radius=radius),
        "risk-averse": lambda: RiskAversePricer(),
        "fixed-price": lambda: FixedPricePricer(1.1),
        "constant-markup": lambda: ConstantMarkupPricer(1.4),
        "oracle": lambda: OraclePricer(lambda x: float(x @ theta)),
    }
    if dimension == 1:
        families["one-dim"] = lambda: make_pricer(dimension=1, radius=2.0, epsilon=0.01)
    else:
        families["ellipsoid"] = lambda: make_pricer(
            dimension=dimension, radius=radius, epsilon=0.05
        )
        families["ellipsoid-uncertainty-pure"] = lambda: make_pricer(
            dimension=dimension, radius=radius, epsilon=0.2, delta=0.01, use_reserve=False
        )
    return families


def _assert_same_columns(base, other, context):
    for name in ("link_prices", "posted_prices", "regrets"):
        assert np.array_equal(
            getattr(base.transcript, name), getattr(other.transcript, name), equal_nan=True
        ), "%s: %s diverged" % (context, name)
    for name in ("sold", "skipped", "exploratory"):
        assert np.array_equal(
            getattr(base.transcript, name), getattr(other.transcript, name)
        ), "%s: %s diverged" % (context, name)


def _run_split(model, materialized, factory, split, tmp_path):
    """Run [0, split), checkpoint to disk, restore into a fresh pricer, finish."""
    first = factory()
    head = simulate(model, first, materialized=materialized.slice(0, split))
    path = str(tmp_path / "state.npz")
    save_checkpoint(path, first, split)
    fresh = restore_pricer(factory(), load_checkpoint(path))
    tail = simulate(model, fresh, materialized=materialized.slice(split, materialized.rounds))
    return head, tail


class TestSaveLoadContinueProperty:
    """save → load → continue == uninterrupted, for random (seed, T, split)."""

    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(0, 2**31 - 1),
        rounds=st.integers(16, 96),
        split_fraction=st.floats(0.0, 1.0),
        dimension=st.sampled_from([1, 4]),
    )
    def test_all_families(self, seed, rounds, split_fraction, dimension, tmp_path_factory):
        split = int(round(split_fraction * rounds))
        model, materialized, theta = _market(seed, dimension, rounds)
        tmp_path = tmp_path_factory.mktemp("ckpt")
        for name, factory in _families(theta, dimension).items():
            base = simulate(model, factory(), materialized=materialized)
            head, tail = _run_split(model, materialized, factory, split, tmp_path)
            for column in ("link_prices", "posted_prices", "regrets"):
                combined = np.concatenate(
                    [getattr(head.transcript, column), getattr(tail.transcript, column)]
                )
                assert np.array_equal(
                    getattr(base.transcript, column), combined, equal_nan=True
                ), "%s @ split %d: %s diverged" % (name, split, column)
            combined_sold = np.concatenate([head.transcript.sold, tail.transcript.sold])
            assert np.array_equal(base.transcript.sold, combined_sold), name

    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(0, 2**31 - 1),
        rounds=st.integers(16, 96),
        chunk_size=st.integers(1, 128),
        dimension=st.sampled_from([1, 4]),
    )
    def test_chunked_equals_unchunked(self, seed, rounds, chunk_size, dimension):
        model, materialized, theta = _market(seed, dimension, rounds)
        for name, factory in _families(theta, dimension).items():
            base = simulate(model, factory(), materialized=materialized)
            chunked = run_batch_chunked(
                model, factory(), materialized=materialized, chunk_size=chunk_size
            )
            _assert_same_columns(base, chunked, "%s chunk=%d" % (name, chunk_size))

    def test_end_state_identical_after_restore_and_continue(self):
        # Not just the transcript: the pricer's own state (knowledge set,
        # counters) must match the uninterrupted run's end state.
        model, materialized, theta = _market(7, 4, 80)
        factory = lambda: make_pricer(dimension=4, radius=4.0, epsilon=0.05)
        uninterrupted = factory()
        simulate(model, uninterrupted, materialized=materialized)
        first = factory()
        simulate(model, first, materialized=materialized.slice(0, 37))
        fresh = factory()
        fresh.load_state(deserialize_state(serialize_state(first.state_dict())))
        simulate(model, fresh, materialized=materialized.slice(37, 80))
        assert fresh.rounds_seen == uninterrupted.rounds_seen
        assert fresh.cuts_applied == uninterrupted.cuts_applied
        assert fresh.exploratory_rounds == uninterrupted.exploratory_rounds
        assert np.array_equal(
            fresh.knowledge.ellipsoid.center, uninterrupted.knowledge.ellipsoid.center
        )
        assert np.array_equal(
            fresh.knowledge.ellipsoid.shape, uninterrupted.knowledge.ellipsoid.shape
        )


class TestAcceptanceChunkSizes:
    """The PR acceptance criterion: chunk_size ∈ {1, 7, T/2, T}, every family."""

    ROUNDS = 64

    @pytest.mark.parametrize("chunk_size", [1, 7, 32, 64])
    @pytest.mark.parametrize("dimension", [1, 4], ids=["n=1", "n=4"])
    def test_families(self, dimension, chunk_size):
        model, materialized, theta = _market(11, dimension, self.ROUNDS)
        for name, factory in _families(theta, dimension).items():
            base = simulate(model, factory(), materialized=materialized)
            chunked = run_batch_chunked(
                model, factory(), materialized=materialized, chunk_size=chunk_size
            )
            _assert_same_columns(base, chunked, "%s chunk=%d" % (name, chunk_size))

    @pytest.mark.parametrize("chunk_size", [1, 7, 16, 32])
    def test_polytope_knowledge(self, chunk_size):
        model, materialized, theta = _market(13, 3, 32)
        factory = lambda: make_pricer(
            dimension=3, radius=3.0, epsilon=0.05, knowledge="polytope"
        )
        base = simulate(model, factory(), materialized=materialized)
        chunked = run_batch_chunked(
            model, factory(), materialized=materialized, chunk_size=chunk_size
        )
        _assert_same_columns(base, chunked, "polytope chunk=%d" % chunk_size)


class TestChunkedResumeGuards:
    def test_resume_continues_interrupted_run(self, tmp_path):
        model, materialized, theta = _market(23, 4, 120)
        factory = lambda: make_pricer(dimension=4, radius=4.0, epsilon=0.05)
        base = simulate(model, factory(), materialized=materialized)
        path = str(tmp_path / "run.npz")
        # "Crash" after 80 rounds: run the prefix chunked with checkpoints...
        run_batch_chunked(
            model, factory(), materialized=materialized.slice(0, 80),
            chunk_size=40, checkpoint_path=str(tmp_path / "prefix.npz"),
        )
        # ...then resume the full horizon from its own checkpoint trail.
        run_batch_chunked(
            model, factory(), materialized=materialized,
            chunk_size=40, checkpoint_path=path,
        )
        resumed = run_batch_chunked(
            model, factory(), materialized=materialized,
            chunk_size=40, checkpoint_path=path, resume=True,
        )
        _assert_same_columns(base, resumed, "resume")

    def test_resume_rejects_checkpoint_from_different_market(self, tmp_path):
        from repro.engine import CheckpointError as EngineCheckpointError

        factory = lambda: make_pricer(dimension=4, radius=4.0, epsilon=0.05)
        model_a, materialized_a, _ = _market(29, 4, 60)
        model_b, materialized_b, _ = _market(31, 4, 60)
        path = str(tmp_path / "a.npz")
        run_batch_chunked(
            model_a, factory(), materialized=materialized_a,
            chunk_size=20, checkpoint_path=path,
        )
        with pytest.raises(EngineCheckpointError, match="different market"):
            run_batch_chunked(
                model_b, factory(), materialized=materialized_b,
                chunk_size=20, checkpoint_path=path, resume=True,
            )

    def test_checkpoint_every_amortizes_writes_without_changing_results(self, tmp_path):
        model, materialized, theta = _market(37, 4, 100)
        factory = lambda: make_pricer(dimension=4, radius=4.0, epsilon=0.05)
        base = simulate(model, factory(), materialized=materialized)
        path = str(tmp_path / "sparse.npz")
        sparse = run_batch_chunked(
            model, factory(), materialized=materialized,
            chunk_size=10, checkpoint_path=path, checkpoint_every=4,
        )
        _assert_same_columns(base, sparse, "checkpoint_every=4")
        # The final boundary is always persisted, so a completed run's
        # checkpoint covers the whole horizon regardless of the stride.
        assert load_checkpoint(path).rounds_done == 100

    def test_invalid_checkpoint_every_rejected(self):
        model, materialized, theta = _market(41, 4, 20)
        with pytest.raises(ValueError, match="checkpoint_every"):
            run_batch_chunked(
                model,
                make_pricer(dimension=4, radius=4.0, epsilon=0.05),
                materialized=materialized,
                chunk_size=10,
                checkpoint_every=0,
            )


class _RandomizedPricer(PostedPriceMechanism):
    """Test pricer drawing from an internal RNG every round (RNG-position pin)."""

    name = "randomized"

    def __init__(self, seed=0):
        super().__init__()
        self.rng = np.random.default_rng(seed)

    def propose(self, features, reserve=None):
        price = float(self.rng.random()) * float(np.sum(features))
        return PricingDecision(
            features=np.atleast_1d(np.asarray(features, dtype=float)),
            reserve=reserve,
            lower_bound=float("-inf"),
            upper_bound=float("inf"),
            price=price,
            exploratory=False,
            skipped=False,
            round_index=self._next_round(),
        )

    def update(self, decision, accepted):
        pass


class TestRngPosition:
    def test_rng_position_round_trips(self):
        model, materialized, _theta = _market(17, 3, 60)
        base = simulate(model, _RandomizedPricer(seed=5), materialized=materialized)
        chunked = run_batch_chunked(
            model, _RandomizedPricer(seed=5), materialized=materialized, chunk_size=9
        )
        _assert_same_columns(base, chunked, "randomized chunk=9")

    def test_rng_state_in_snapshot(self):
        pricer = _RandomizedPricer(seed=5)
        pricer.rng.random(17)
        state = pricer.state_dict()
        assert "rng_state" in state
        fresh = _RandomizedPricer(seed=999)
        fresh.load_state(deserialize_state(serialize_state(state)))
        assert fresh.rng.random() == np.random.default_rng(5).random(18)[-1]


class TestSerializationLayer:
    def test_nested_state_round_trip(self):
        state = {
            "round_index": 12,
            "flag": True,
            "nothing": None,
            "label": "x",
            "nested": {"array": np.arange(6, dtype=float).reshape(2, 3), "pi": 3.5},
            "listed": [np.array([True, False]), {"inner": np.array([1.0])}],
        }
        restored = deserialize_state(serialize_state(state))
        assert restored["round_index"] == 12
        assert restored["flag"] is True
        assert restored["nothing"] is None
        assert np.array_equal(restored["nested"]["array"], state["nested"]["array"])
        assert restored["nested"]["array"].dtype == np.float64
        assert np.array_equal(restored["listed"][0], np.array([True, False]))
        assert np.array_equal(restored["listed"][1]["inner"], np.array([1.0]))

    def test_rejects_unserializable_values(self):
        with pytest.raises(CheckpointError, match="not checkpointable"):
            serialize_state({"bad": object()})

    def test_rejects_foreign_bytes(self):
        with pytest.raises(CheckpointError):
            deserialize_state(b"definitely not an npz archive")

    def test_rejects_future_version(self):
        from repro.engine import checkpoint as checkpoint_module

        blob = checkpoint_module._pack(
            {"magic": checkpoint_module.MAGIC, "version": 99, "kind": "state",
             "array_count": 0, "state": {}},
            [],
        )
        with pytest.raises(CheckpointError, match="version"):
            deserialize_state(blob)

    def test_rejects_bad_magic(self):
        from repro.engine import checkpoint as checkpoint_module

        blob = checkpoint_module._pack(
            {"magic": "something-else", "version": 1, "kind": "state",
             "array_count": 0, "state": {}},
            [],
        )
        with pytest.raises(CheckpointError, match="magic"):
            deserialize_state(blob)

    def test_restore_rejects_wrong_pricer_type(self, tmp_path):
        path = str(tmp_path / "c.npz")
        save_checkpoint(path, make_pricer(dimension=3, radius=2.0, epsilon=0.1), 5)
        with pytest.raises(CheckpointError, match="cannot restore"):
            restore_pricer(RiskAversePricer(), load_checkpoint(path))

    def test_checkpoint_meta_round_trips_arrays(self, tmp_path):
        path = str(tmp_path / "c.npz")
        columns = {"link_prices": np.array([1.0, np.nan, 2.0])}
        save_checkpoint(
            path, make_pricer(dimension=3, radius=2.0, epsilon=0.1), 3,
            meta={"columns": columns},
        )
        loaded = load_checkpoint(path)
        assert loaded.rounds_done == 3
        assert loaded.pricer_type == "EllipsoidPricer"
        assert np.array_equal(
            loaded.meta["columns"]["link_prices"], columns["link_prices"], equal_nan=True
        )

    def test_result_round_trip(self, tmp_path):
        model, materialized, theta = _market(19, 3, 40)
        result = simulate(
            model,
            make_pricer(dimension=3, radius=3.0, epsilon=0.05),
            materialized=materialized,
            pricer_name="cell-pricer",
        )
        path = str(tmp_path / "r.npz")
        save_result(path, result)
        loaded = load_result(path)
        assert loaded.pricer_name == "cell-pricer"
        assert loaded.rounds == 40
        _assert_same_columns(result, loaded, "result round-trip")
        assert np.array_equal(
            result.transcript.market_values, loaded.transcript.market_values
        )
        assert result.cumulative_regret == loaded.cumulative_regret


class TestKnowledgeStateDicts:
    def test_interval_round_trip(self):
        from repro.core.knowledge import IntervalKnowledge

        knowledge = IntervalKnowledge(-1.5, 2.5)
        knowledge.cut(1.0, 2.0, keep="leq")
        fresh = IntervalKnowledge(-9.0, 9.0)
        fresh.load_state(knowledge.state_dict())
        assert fresh.lower == knowledge.lower
        assert fresh.upper == knowledge.upper

    def test_kind_mismatch_rejected(self):
        from repro.core.knowledge import EllipsoidKnowledge, IntervalKnowledge

        interval = IntervalKnowledge(0.0, 1.0)
        ellipsoid = EllipsoidKnowledge.from_radius(3, 2.0)
        with pytest.raises(ValueError, match="cannot load"):
            interval.load_state(ellipsoid.state_dict())
        with pytest.raises(ValueError, match="cannot load"):
            ellipsoid.load_state(interval.state_dict())

    def test_polytope_round_trip_preserves_lp_results(self):
        from repro.core.knowledge import PolytopeKnowledge

        rng = np.random.default_rng(3)
        knowledge = PolytopeKnowledge.from_radius(3, 2.0)
        for _ in range(5):
            direction = rng.random(3)
            knowledge.cut(direction, float(rng.random() + 0.5), keep="leq")
        fresh = PolytopeKnowledge.from_radius(3, 2.0)
        fresh.load_state(knowledge.state_dict())
        probe = rng.random(3)
        assert fresh.value_bounds(probe) == knowledge.value_bounds(probe)
        assert fresh.constraint_count == knowledge.constraint_count
