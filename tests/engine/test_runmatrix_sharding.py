"""Run-matrix within-cell sharding, resume-after-crash, and failure identity."""

import multiprocessing
import os

import numpy as np
import pytest

from repro.core.baselines import RiskAversePricer
from repro.core.models import LinearModel
from repro.core.pricing import make_pricer
from repro.engine import ArrivalBatch, MarketScenario, RunCellError, RunMatrix
from repro.engine.records import QueryArrival

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()


def _scenario(seed, rounds=240, dimension=3, name=None):
    rng = np.random.default_rng(seed)
    theta = np.abs(rng.standard_normal(dimension))
    theta *= np.sqrt(2 * dimension) / np.linalg.norm(theta)
    model = LinearModel(theta)
    arrivals = []
    for _ in range(rounds):
        features = np.abs(rng.standard_normal(dimension))
        features /= np.linalg.norm(features)
        arrivals.append(
            QueryArrival(
                features=features, reserve_value=0.6 * float(features @ theta), noise=0.0
            )
        )
    return MarketScenario(
        name=name or ("seed=%d" % seed),
        model=model,
        batch=ArrivalBatch.from_arrivals(arrivals),
        context={"seed": seed},
    )


def _ellipsoid_factory(scenario):
    dimension = scenario.batch.raw_dimension
    return make_pricer(dimension=dimension, radius=2.0 * np.sqrt(dimension), epsilon=0.05)


class _FailingFactory:
    """Picklable factory that always raises (must survive the fork pipe)."""

    def __call__(self, scenario):
        raise ValueError("injected cell failure")


class _CountingFactory:
    """Factory that records how many times it was invoked."""

    def __init__(self):
        self.calls = 0

    def __call__(self, scenario):
        self.calls += 1
        return _ellipsoid_factory(scenario)


def _build_matrix(rounds=240):
    matrix = RunMatrix()
    matrix.add_scenario("A", lambda: _scenario(1, rounds=rounds, name="A"))
    matrix.add_scenario("B", lambda: _scenario(2, rounds=rounds, name="B"))
    matrix.add_pricer("ellipsoid", _ellipsoid_factory)
    matrix.add_pricer("risk-averse", lambda scenario: RiskAversePricer())
    matrix.add_cross()
    return matrix


def _assert_grids_equal(expected, actual):
    for cell, result in expected:
        other = actual.get(cell.scenario, cell.pricer)
        assert np.array_equal(
            result.transcript.link_prices, other.transcript.link_prices, equal_nan=True
        ), cell
        assert np.array_equal(result.transcript.sold, other.transcript.sold), cell
        assert np.array_equal(result.transcript.regrets, other.transcript.regrets), cell


class TestSharding:
    def test_serial_sharded_matches_unsharded(self):
        baseline = _build_matrix().run(executor="serial")
        for shard_rounds in (1, 37, 120, 240, 1000):
            sharded = _build_matrix().run(executor="serial", shard_rounds=shard_rounds)
            _assert_grids_equal(baseline, sharded)

    def test_thread_sharded_matches_serial(self):
        baseline = _build_matrix().run(executor="serial")
        sharded = _build_matrix().run(executor="thread", shard_rounds=64, max_workers=2)
        _assert_grids_equal(baseline, sharded)

    @pytest.mark.skipif(not HAS_FORK, reason="process executor requires fork")
    def test_process_sharded_matches_serial(self):
        baseline = _build_matrix().run(executor="serial")
        sharded = _build_matrix().run(executor="process", shard_rounds=64, max_workers=2)
        _assert_grids_equal(baseline, sharded)

    @pytest.mark.skipif(not HAS_FORK, reason="process executor requires fork")
    def test_single_huge_cell_pipelines_across_workers(self):
        # One cell, many chunks: every chunk after the first resumes from the
        # previous chunk's serialised snapshot on whichever worker is free.
        matrix = RunMatrix()
        matrix.add_scenario("big", lambda: _scenario(5, rounds=400, name="big"))
        matrix.add_pricer("ellipsoid", _ellipsoid_factory)
        matrix.add_cross()
        sharded = matrix.run(executor="process", shard_rounds=50, max_workers=2)

        reference = RunMatrix()
        reference.add_scenario("big", lambda: _scenario(5, rounds=400, name="big"))
        reference.add_pricer("ellipsoid", _ellipsoid_factory)
        reference.add_cross()
        _assert_grids_equal(reference.run(executor="serial"), sharded)

    def test_invalid_shard_rounds_rejected(self):
        with pytest.raises(ValueError, match="shard_rounds"):
            _build_matrix().run(executor="serial", shard_rounds=0)

    def test_track_latency_disables_sharding(self):
        # Latency runs must stay one sequential loop per cell; sharding is
        # silently dropped and the latency column is fully populated.
        grid = _build_matrix(rounds=60).run(
            executor="serial", track_latency=True, shard_rounds=10
        )
        result = grid.get("A", "ellipsoid")
        assert result.latency.count == 60


class TestCheckpointDirResume:
    def test_completed_cells_are_loaded_not_rerun(self, tmp_path):
        checkpoint_dir = str(tmp_path / "grid")
        baseline = _build_matrix().run(executor="serial", checkpoint_dir=checkpoint_dir)
        assert len(os.listdir(checkpoint_dir)) == 4

        rerun_matrix = RunMatrix()
        rerun_matrix.add_scenario("A", lambda: _scenario(1, name="A"))
        rerun_matrix.add_scenario("B", lambda: _scenario(2, name="B"))
        counting = _CountingFactory()
        rerun_matrix.add_pricer("ellipsoid", counting)
        rerun_matrix.add_pricer("risk-averse", lambda scenario: RiskAversePricer())
        rerun_matrix.add_cross()
        rerun = rerun_matrix.run(executor="serial", checkpoint_dir=checkpoint_dir)
        assert counting.calls == 0
        _assert_grids_equal(baseline, rerun)

    def test_partial_sweep_resumes_missing_cells_only(self, tmp_path):
        checkpoint_dir = str(tmp_path / "grid")
        # First pass: fail on the second scenario — the first scenario's
        # cells are persisted before the crash.
        crashing = RunMatrix()
        crashing.add_scenario("A", lambda: _scenario(1, name="A"))
        crashing.add_scenario("B", lambda: _scenario(2, name="B"))
        crashing.add_pricer("ellipsoid", _ellipsoid_factory)
        crashing.add_pricer("bad", _FailingFactory())
        crashing.add_cell("A", "ellipsoid")
        crashing.add_cell("B", "bad")
        with pytest.raises(RunCellError):
            crashing.run(executor="serial", checkpoint_dir=checkpoint_dir)
        assert len(os.listdir(checkpoint_dir)) == 1

        # Second pass with the failure fixed: only the missing cell runs.
        counting = _CountingFactory()
        fixed = RunMatrix()
        fixed.add_scenario("A", lambda: _scenario(1, name="A"))
        fixed.add_scenario("B", lambda: _scenario(2, name="B"))
        fixed.add_pricer("ellipsoid", counting)
        fixed.add_pricer("bad", _ellipsoid_factory)  # "fixed" implementation
        fixed.add_cell("A", "ellipsoid")
        fixed.add_cell("B", "bad")
        grid = fixed.run(executor="serial", checkpoint_dir=checkpoint_dir)
        assert counting.calls == 0  # cell A loaded from disk
        assert len(grid) == 2
        assert grid.get("B", "bad").rounds == 240

    def test_checkpoint_tag_isolates_workloads(self, tmp_path):
        # Same scenario/pricer keys, different workload parameters: without a
        # tag the second sweep would silently reuse the first sweep's cached
        # results; with distinct tags both run and both stay cached.
        checkpoint_dir = str(tmp_path / "grid")
        short = _build_matrix(rounds=60).run(
            executor="serial", checkpoint_dir=checkpoint_dir, checkpoint_tag="T=60"
        )
        long = _build_matrix(rounds=240).run(
            executor="serial", checkpoint_dir=checkpoint_dir, checkpoint_tag="T=240"
        )
        assert long.get("A", "ellipsoid").rounds == 240
        assert short.get("A", "ellipsoid").rounds == 60
        assert len(os.listdir(checkpoint_dir)) == 8
        # Re-running either workload still resolves to its own cached cells.
        again = _build_matrix(rounds=60).run(
            executor="serial", checkpoint_dir=checkpoint_dir, checkpoint_tag="T=60"
        )
        assert again.get("A", "ellipsoid").rounds == 60
        _assert_grids_equal(short, again)

    def test_sharded_run_persists_results_too(self, tmp_path):
        checkpoint_dir = str(tmp_path / "grid")
        baseline = _build_matrix().run(
            executor="serial", shard_rounds=64, checkpoint_dir=checkpoint_dir
        )
        assert len(os.listdir(checkpoint_dir)) == 4
        rerun = _build_matrix().run(executor="serial", checkpoint_dir=checkpoint_dir)
        _assert_grids_equal(baseline, rerun)


class TestFailureIdentity:
    def _matrix_with_bad_cell(self):
        matrix = _build_matrix()
        matrix.add_pricer("bad", _FailingFactory())
        matrix.add_cell("B", "bad")
        return matrix

    def test_serial_failure_names_the_cell(self):
        with pytest.raises(RunCellError) as excinfo:
            self._matrix_with_bad_cell().run(executor="serial")
        error = excinfo.value
        assert error.scenario == "B"
        assert error.pricer == "bad"
        assert "scenario='B'" in str(error)
        assert "pricer='bad'" in str(error)
        assert "injected cell failure" in str(error)
        assert isinstance(error.__cause__, ValueError)

    def test_thread_failure_names_the_cell(self):
        with pytest.raises(RunCellError) as excinfo:
            self._matrix_with_bad_cell().run(executor="thread", max_workers=2)
        assert (excinfo.value.scenario, excinfo.value.pricer) == ("B", "bad")

    @pytest.mark.skipif(not HAS_FORK, reason="process executor requires fork")
    def test_process_failure_names_the_cell(self):
        # The identity must survive the pool's pickle round-trip.
        with pytest.raises(RunCellError) as excinfo:
            self._matrix_with_bad_cell().run(executor="process", max_workers=2)
        assert (excinfo.value.scenario, excinfo.value.pricer) == ("B", "bad")
        assert "injected cell failure" in str(excinfo.value)

    @pytest.mark.skipif(not HAS_FORK, reason="process executor requires fork")
    def test_sharded_process_failure_names_cell_and_chunk(self):
        with pytest.raises(RunCellError) as excinfo:
            self._matrix_with_bad_cell().run(
                executor="process", shard_rounds=64, max_workers=2
            )
        assert (excinfo.value.scenario, excinfo.value.pricer) == ("B", "bad")
        assert "chunk [0, 64)" in str(excinfo.value)

    def test_seed_sweep_failure_identifies_seed(self):
        matrix = RunMatrix()
        matrix.add_scenario_sweep(
            "market", lambda seed: _scenario(seed, rounds=40), seeds=(1, 2, 3)
        )
        def flaky(scenario):
            if scenario.context == {"seed": 2}:
                raise RuntimeError("seed 2 exploded")
            return RiskAversePricer()

        matrix.add_pricer("flaky", flaky)
        matrix.add_cross()
        with pytest.raises(RunCellError) as excinfo:
            matrix.run(executor="serial")
        assert excinfo.value.scenario == "market/seed=2"
        assert "seed 2 exploded" in str(excinfo.value)
