"""The two-tier exactness contract and the ``backend=`` knob plumbing."""

import numpy as np
import pytest

from repro.core.models import LinearModel
from repro.core.pricing import make_pricer
from repro.core.simulation import QueryArrival
from repro.engine import ArrivalBatch, MarketScenario, RunMatrix, simulate
from repro.engine.equivalence import (
    BIT_EXACT_TIER,
    EXACT_BACKENDS,
    KNOWLEDGE_GEOMETRY,
    REGRET_CURVES,
    RELAXED_BACKENDS,
    RELAXED_TIER,
    TRANSCRIPT_AGGREGATES,
    TolerancePolicy,
    assert_bit_exact,
    assert_regret_curves_close,
    assert_states_close,
    assert_transcripts_close,
    decision_flips,
    tier_for_backend,
)
from repro.engine.runner import run_batch_chunked


def _scenario(seed=5, rounds=160, dimension=4):
    rng = np.random.default_rng(seed)
    theta = np.abs(rng.standard_normal(dimension))
    theta *= np.sqrt(2 * dimension) / np.linalg.norm(theta)
    model = LinearModel(theta)
    arrivals = []
    for _ in range(rounds):
        features = np.abs(rng.standard_normal(dimension))
        features /= np.linalg.norm(features)
        arrivals.append(
            QueryArrival(
                features=features,
                reserve_value=0.6 * float(features @ theta),
                noise=0.0,
            )
        )
    return model, ArrivalBatch.from_arrivals(arrivals)


def _pricer(dimension=4):
    return make_pricer(
        dimension=dimension, radius=2.0 * np.sqrt(dimension), epsilon=0.05
    )


class TestTiers:
    def test_exact_backends(self):
        assert tier_for_backend(None) == BIT_EXACT_TIER
        assert tier_for_backend("reference") == BIT_EXACT_TIER

    def test_relaxed_backends(self):
        for name in RELAXED_BACKENDS:
            assert tier_for_backend(name) == RELAXED_TIER

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            tier_for_backend("bogus")

    def test_tiers_are_disjoint(self):
        assert not set(EXACT_BACKENDS) & set(RELAXED_BACKENDS)


class TestTolerancePolicy:
    def test_zero_flip_fraction_means_zero_budget(self):
        policy = TolerancePolicy(name="p", rtol=1e-7, atol=1e-9)
        assert policy.max_flips(10_000) == 0

    def test_flip_budget_rounds_up(self):
        assert TRANSCRIPT_AGGREGATES.max_flips(512) == 1
        assert TRANSCRIPT_AGGREGATES.max_flips(20_000) == 2

    def test_nan_matches_nan(self):
        policy = REGRET_CURVES
        assert policy.isclose([1.0, np.nan], [1.0, np.nan])
        assert not policy.isclose([1.0, np.nan], [1.0, 2.0])

    def test_assert_close_reports_worst_offender(self):
        policy = TolerancePolicy(name="tight", rtol=1e-12, atol=0.0)
        with pytest.raises(AssertionError, match="worst at"):
            policy.assert_close([1.0, 2.0], [1.0, 2.5], "col")

    def test_assert_close_rejects_shape_mismatch(self):
        with pytest.raises(AssertionError, match="shape mismatch"):
            REGRET_CURVES.assert_close(np.zeros(3), np.zeros(4), "col")


class TestTranscriptComparators:
    def test_bit_exact_on_identical_runs(self):
        model, batch = _scenario()
        first = simulate(model, _pricer(), batch)
        second = simulate(model, _pricer(), batch)
        assert_bit_exact(first.transcript, second.transcript)
        assert decision_flips(first.transcript, second.transcript) == 0

    def test_bit_exact_flags_single_ulp(self):
        model, batch = _scenario()
        result = simulate(model, _pricer(), batch)
        columns = {
            name: np.array(getattr(result.transcript, name))
            for name in ("link_prices", "sold")
        }
        perturbed = dict(columns)
        perturbed["link_prices"] = columns["link_prices"].copy()
        index = int(np.flatnonzero(np.isfinite(perturbed["link_prices"]))[0])
        perturbed["link_prices"][index] = np.nextafter(
            perturbed["link_prices"][index], np.inf
        )
        with pytest.raises(AssertionError, match="bit-exact tier violated"):
            assert_bit_exact(perturbed, columns)

    def test_relaxed_tier_rejects_excess_flips(self):
        sold = np.zeros(100, dtype=bool)
        flipped = sold.copy()
        flipped[:5] = True
        with pytest.raises(AssertionError, match="decision flips"):
            assert_transcripts_close({"sold": sold}, {"sold": flipped})

    def test_regret_curves_accept_raw_arrays(self):
        regrets = np.linspace(0.0, 1.0, 50)
        assert_regret_curves_close(regrets, regrets + 1e-12)
        with pytest.raises(AssertionError):
            assert_regret_curves_close(regrets, regrets + 1e-3)


class TestStateComparator:
    def test_scalar_mismatch_is_structural(self):
        pricer_a = _pricer()
        pricer_b = _pricer()
        model, batch = _scenario(rounds=40)
        simulate(model, pricer_a, batch)
        with pytest.raises(AssertionError, match="structural/scalar"):
            assert_states_close(pricer_a.state_dict(), pricer_b.state_dict())

    def test_geometry_within_policy_passes(self):
        model, batch = _scenario(rounds=40)
        pricer_a, pricer_b = _pricer(), _pricer()
        simulate(model, pricer_a, batch)
        simulate(model, pricer_b, batch)
        state = pricer_b.state_dict()
        state["knowledge"]["center"] = state["knowledge"]["center"] * (1 + 1e-9)
        assert_states_close(pricer_a.state_dict(), state, KNOWLEDGE_GEOMETRY)


class TestBackendKnobPlumbing:
    def test_simulate_rejects_unknown_backend(self):
        model, batch = _scenario(rounds=8)
        with pytest.raises(ValueError, match="unknown backend"):
            simulate(model, _pricer(), batch, backend="bogus")

    def test_chunked_rejects_unknown_backend(self):
        model, batch = _scenario(rounds=8)
        with pytest.raises(ValueError, match="unknown backend"):
            run_batch_chunked(model, _pricer(), batch, backend="bogus")

    def test_runmatrix_rejects_unknown_backend(self):
        matrix = RunMatrix()
        model, batch = _scenario(rounds=8)
        matrix.add_scenario(
            "s",
            lambda: MarketScenario(name="s", model=model, batch=batch, context={}),
        )
        matrix.add_pricer("ellipsoid", lambda scenario: _pricer())
        matrix.add_cross()
        with pytest.raises(ValueError, match="unknown backend"):
            matrix.run(backend="bogus")

    def test_reference_backend_is_bit_exact(self):
        model, batch = _scenario()
        default = simulate(model, _pricer(), batch)
        reference = simulate(model, _pricer(), batch, backend="reference")
        assert_bit_exact(reference.transcript, default.transcript)

    def test_batched_backend_through_simulate(self):
        model, batch = _scenario(rounds=240)
        ref_pricer, fast_pricer = _pricer(), _pricer()
        reference = simulate(model, ref_pricer, batch)
        batched = simulate(model, fast_pricer, batch, backend="batched")
        assert decision_flips(batched.transcript, reference.transcript) == 0
        assert_transcripts_close(batched.transcript, reference.transcript)
        assert_regret_curves_close(batched.transcript, reference.transcript)
        assert_states_close(fast_pricer.state_dict(), ref_pricer.state_dict())

    def test_batched_backend_through_chunked(self):
        model, batch = _scenario(rounds=240)
        ref_pricer, fast_pricer = _pricer(), _pricer()
        reference = simulate(model, ref_pricer, batch)
        chunked = run_batch_chunked(
            model, fast_pricer, batch, chunk_size=64, backend="batched"
        )
        assert_transcripts_close(chunked.transcript, reference.transcript)
        assert_states_close(fast_pricer.state_dict(), ref_pricer.state_dict())

    def test_batched_backend_through_runmatrix(self):
        model, batch = _scenario(rounds=160)
        results = {}
        for backend in (None, "batched"):
            matrix = RunMatrix()
            matrix.add_scenario(
                "s",
                lambda: MarketScenario(name="s", model=model, batch=batch, context={}),
            )
            matrix.add_pricer("ellipsoid", lambda scenario: _pricer())
            matrix.add_cross()
            results[backend] = matrix.run(backend=backend)
        ref = results[None].get("s", "ellipsoid").transcript
        fast = results["batched"].get("s", "ellipsoid").transcript
        assert_transcripts_close(fast, ref)

    def test_interval_pricer_ignores_backend(self):
        # dimension-1 pricers have no stacked kernel; backend must be
        # accepted (it is a valid relaxed name) and reproduce bit-exactly.
        rng = np.random.default_rng(9)
        theta = np.array([1.3])
        model = LinearModel(theta)
        arrivals = [
            QueryArrival(
                features=np.array([abs(x) + 0.05]),
                reserve_value=0.5,
                noise=0.0,
            )
            for x in rng.standard_normal(60)
        ]
        batch = ArrivalBatch.from_arrivals(arrivals)
        reference = simulate(
            model, make_pricer(dimension=1, radius=2.0, epsilon=0.01), batch
        )
        batched = simulate(
            model,
            make_pricer(dimension=1, radius=2.0, epsilon=0.01),
            batch,
            backend="batched",
        )
        assert_bit_exact(batched.transcript, reference.transcript)
