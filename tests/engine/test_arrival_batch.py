"""Unit tests for the struct-of-arrays arrival container."""

import numpy as np
import pytest

from repro.core.models import LinearModel, LogLinearModel
from repro.core.noise import GaussianNoise, NoNoise
from repro.engine import ArrivalBatch, QueryArrival, as_batch, materialize


def _mixed_arrivals():
    return [
        QueryArrival(
            features=np.array([1.0, 2.0]),
            reserve_value=0.5,
            noise=0.1,
            metadata={"query_id": 7, "noise_scale": 0.01},
        ),
        QueryArrival(features=np.array([3.0, 4.0]), reserve_value=None, noise=None),
        QueryArrival(features=np.array([0.5, 0.25]), reserve_value=1.25, noise=-0.2),
    ]


class TestRoundTrip:
    def test_arrivals_round_trip_losslessly(self):
        arrivals = _mixed_arrivals()
        batch = ArrivalBatch.from_arrivals(arrivals)
        restored = batch.to_arrivals()
        assert len(restored) == len(arrivals)
        for original, back in zip(arrivals, restored):
            assert np.array_equal(back.features, np.asarray(original.features, dtype=float))
            assert back.reserve_value == original.reserve_value
            assert back.noise == original.noise
            assert back.metadata == original.metadata

    def test_nan_encoding_of_absent_values(self):
        batch = ArrivalBatch.from_arrivals(_mixed_arrivals())
        assert np.isnan(batch.reserve_values[1])
        assert np.isnan(batch.noise[1])
        assert batch.reserve_values[0] == 0.5
        assert batch.has_missing_noise

    def test_metadata_omitted_when_uniformly_empty(self):
        arrivals = [QueryArrival(features=np.array([1.0]), noise=0.0) for _ in range(3)]
        batch = ArrivalBatch.from_arrivals(arrivals)
        assert batch.metadata is None
        assert batch.row(0).metadata == {}

    def test_empty_sequence(self):
        batch = ArrivalBatch.from_arrivals([])
        assert len(batch) == 0
        assert batch.to_arrivals() == []

    def test_ragged_features_rejected(self):
        arrivals = [
            QueryArrival(features=np.array([1.0, 2.0]), noise=0.0),
            QueryArrival(features=np.array([1.0]), noise=0.0),
        ]
        with pytest.raises(ValueError):
            ArrivalBatch.from_arrivals(arrivals)

    def test_as_batch_passthrough(self):
        batch = ArrivalBatch.from_arrivals(_mixed_arrivals())
        assert as_batch(batch) is batch
        rebuilt = as_batch(_mixed_arrivals())
        assert isinstance(rebuilt, ArrivalBatch)


class TestNoiseResolution:
    def test_with_noise_fills_only_missing_entries(self):
        batch = ArrivalBatch.from_arrivals(_mixed_arrivals())
        filled = batch.with_noise(GaussianNoise(0.1), rng=0)
        assert not filled.has_missing_noise
        assert filled.noise[0] == 0.1
        assert filled.noise[2] == -0.2
        assert filled.noise[1] != 0.0

    def test_with_noise_matches_sequential_draw_order(self):
        arrivals = [QueryArrival(features=np.array([1.0]), noise=None) for _ in range(5)]
        batch = ArrivalBatch.from_arrivals(arrivals).with_noise(GaussianNoise(0.3), rng=42)
        expected_rng = np.random.default_rng(42)
        expected = [float(GaussianNoise(0.3).sample(expected_rng)) for _ in range(5)]
        assert np.array_equal(batch.noise, np.array(expected))

    def test_with_noise_is_noop_when_complete(self):
        batch = ArrivalBatch.from_arrivals(
            [QueryArrival(features=np.array([1.0]), noise=0.5)]
        )
        assert batch.with_noise(NoNoise()) is batch


class TestMaterialize:
    def test_materialize_matches_scalar_model_calls(self):
        rng = np.random.default_rng(5)
        theta = np.array([0.4, 0.6])
        model = LogLinearModel(theta)
        arrivals = [
            QueryArrival(
                features=rng.uniform(0.5, 1.5, size=2),
                reserve_value=float(rng.uniform(1.0, 2.0)),
                noise=float(rng.normal(0, 0.01)),
            )
            for _ in range(50)
        ]
        batch = ArrivalBatch.from_arrivals(arrivals)
        materialized = materialize(model, batch)
        for index, arrival in enumerate(arrivals):
            mapped = model.feature_map(arrival.features)
            link_value = float(mapped @ model.theta)
            assert materialized.link_values[index] == link_value
            assert materialized.market_values[index] == model.link(link_value + arrival.noise)
            assert materialized.link_reserves[index] == model.link_inverse(arrival.reserve_value)

    def test_materialize_requires_resolved_noise(self):
        batch = ArrivalBatch.from_arrivals(_mixed_arrivals())
        with pytest.raises(ValueError, match="missing noise"):
            materialize(LinearModel([1.0, 1.0]), batch)

    def test_nan_reserve_stays_nan_in_link_space(self):
        batch = ArrivalBatch.from_arrivals(_mixed_arrivals()).with_noise(NoNoise())
        materialized = materialize(LinearModel([1.0, 1.0]), batch)
        assert np.isnan(materialized.link_reserves[1])
        assert materialized.link_reserves[0] == 0.5
