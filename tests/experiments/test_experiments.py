"""Tests for the experiment harness (scaled-down versions of every table/figure)."""

import numpy as np
import pytest

from repro.experiments.adversarial import run_adversarial_example
from repro.experiments.fig4 import run_fig4
from repro.experiments.fig5 import run_fig5a, run_fig5b, run_fig5c
from repro.experiments.overhead import format_overhead, run_overhead
from repro.experiments.regret_scaling import format_scaling, run_epsilon_ablation, run_horizon_scaling
from repro.experiments.reporting import checkpoints_for, format_series_table, format_table
from repro.experiments.table1 import format_table1, run_table1


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], ["x", 3]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_format_series_table(self):
        text = format_series_table([1, 10], {"s1": [0.5, 0.1], "s2": [0.6, 0.2]})
        assert "rounds" in text
        assert "s1" in text and "s2" in text

    def test_checkpoints_are_increasing_and_bounded(self):
        points = checkpoints_for(1000, 10)
        assert points[0] >= 1
        assert points[-1] == 1000
        assert points == sorted(points)
        assert len(set(points)) == len(points)

    def test_checkpoints_validation(self):
        with pytest.raises(ValueError):
            checkpoints_for(0)
        with pytest.raises(ValueError):
            checkpoints_for(10, 0)


class TestFig4:
    def test_small_fig4_run(self):
        results = run_fig4(dimensions=(1, 5), rounds=150, owner_count=40, seed=1)
        assert set(results) == {1, 5}
        for dimension, result in results.items():
            assert result.rounds == 150
            assert set(result.cumulative_regret) == {
                "pure version",
                "with uncertainty",
                "with reserve price",
                "with reserve price and uncertainty",
            }
            for series in result.cumulative_regret.values():
                assert len(series) == len(result.checkpoints)
                assert all(b >= a - 1e-9 for a, b in zip(series, series[1:]))
            assert "reserve price reduces" in result.format()


class TestTable1:
    def test_small_table1_run(self):
        rows = run_table1(dimensions=(1, 5), rounds=150, owner_count=40, seed=1)
        assert [row.dimension for row in rows] == [1, 5]
        text = format_table1(rows)
        assert "market value" in text
        # The n = 1 row reproduces the paper's constants: value √2, reserve 1.
        assert rows[0].market_value[0] == pytest.approx(np.sqrt(2.0), abs=0.05)
        assert rows[0].reserve_price[0] == pytest.approx(1.0, abs=1e-6)


class TestFig5:
    def test_small_fig5a_run(self):
        result = run_fig5a(dimension=6, rounds=1_500, owner_count=50, seed=2)
        assert "risk-averse baseline" in result.final_ratio
        assert result.reduction_vs_risk_averse() > 0.0
        assert 0.0 <= min(result.final_ratio.values()) <= max(result.final_ratio.values()) <= 1.0

    def test_small_fig5b_run(self):
        result = run_fig5b(
            listing_count=250,
            reserve_log_ratios=(0.4, 0.8),
            seed=3,
            low_dimension_variant=None,
        )
        assert "pure version" in result.regret_ratio
        assert "with reserve price (r=0.4)" in result.regret_ratio
        assert set(result.risk_averse_ratio) == {0.4, 0.8}
        # Posting a reserve closer to the value leaves less on the table.
        assert result.risk_averse_ratio[0.8] < result.risk_averse_ratio[0.4]

    def test_small_fig5c_run(self):
        result = run_fig5c(impression_count=250, training_count=400, dimensions=(32,), seed=4)
        assert "n=32 (sparse)" in result.regret_ratio
        assert "n=32 (dense)" in result.regret_ratio
        assert result.nonzero_weights["n=32 (dense)"] <= 32


class TestOverhead:
    def test_small_overhead_run(self):
        reports = run_overhead(
            noisy_query_rounds=100,
            noisy_query_dimension=20,
            listing_count=120,
            impression_count=100,
            impression_dimension=64,
            owner_count=40,
            include_polytope_ablation=False,
            seed=5,
        )
        assert len(reports) == 4
        text = format_overhead(reports)
        assert "mean ms" in text
        for report in reports:
            assert report.mean_latency_ms >= 0.0
            assert report.state_megabytes < 160.0

    def test_polytope_ablation_is_slower(self):
        reports = run_overhead(
            noisy_query_rounds=80,
            noisy_query_dimension=10,
            listing_count=80,
            impression_count=80,
            impression_dimension=32,
            owner_count=30,
            include_polytope_ablation=True,
            polytope_rounds=40,
            seed=6,
        )
        polytope = [r for r in reports if "[polytope]" in r.version]
        ellipsoid_small = [r for r in reports if "[polytope]" not in r.version and r.dimension <= 10]
        assert polytope and ellipsoid_small
        assert polytope[0].mean_latency_ms > ellipsoid_small[-1].mean_latency_ms


class TestAdversarial:
    def test_lemma8_shape(self):
        results = run_adversarial_example(rounds=400)
        assert set(results) == {"forbidden", "allowed"}
        assert (
            results["allowed"].cumulative_regret
            > 5.0 * results["forbidden"].cumulative_regret
        )
        assert results["allowed"].width_along_second_axis_at_half_time > (
            results["forbidden"].width_along_second_axis_at_half_time
        )

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            run_adversarial_example(rounds=2)
        with pytest.raises(ValueError):
            run_adversarial_example(rounds=100, dimension=1)


class TestScaling:
    def test_horizon_scaling_is_sublinear(self):
        results = run_horizon_scaling(horizons=(200, 800), dimension=8, owner_count=40, seed=7)
        assert results[-1].cumulative_regret < 4.0 * results[0].cumulative_regret
        assert "cumulative regret" in format_scaling(results)

    def test_epsilon_ablation_runs(self):
        results = run_epsilon_ablation(
            epsilon_multipliers=(1.0, 8.0), dimension=8, rounds=300, owner_count=40, seed=8
        )
        assert len(results) == 2
        assert format_scaling([]) == "(empty sweep)"
