"""Output-schema smoke tests for the experiments support modules.

Each module named by the roadmap (``cold_start``, ``adversarial``,
``noise_robustness``, ``reporting``, ``export``) is smoke-run on a tiny grid
and its output *schema* asserted — field names, key sets, value types, and
formatting invariants — so refactors of the result dataclasses cannot
silently break downstream consumers (``run_experiments.py``, the CLI, CSV
exports).
"""

import json
import math

import numpy as np
import pytest

from repro.experiments.adversarial import AdversarialResult, run_adversarial_example
from repro.experiments.cold_start import ColdStartResult, run_cold_start
from repro.experiments.export import (
    read_series_csv,
    write_json,
    write_rows_csv,
    write_series_csv,
)
from repro.experiments.noise_robustness import (
    NoiseRobustnessResult,
    format_noise_robustness,
    run_noise_robustness,
)
from repro.experiments.reporting import checkpoints_for, format_series_table, format_table


class TestColdStartSchema:
    def test_result_schema(self):
        result = run_cold_start(dimension=5, rounds=200, window=50, owner_count=30, seed=3)
        assert isinstance(result, ColdStartResult)
        assert result.dimension == 5
        assert result.window == 50
        assert result.rounds == 200
        version_keys = {
            "pure version",
            "with uncertainty",
            "with reserve price",
            "with reserve price and uncertainty",
        }
        for mapping in (
            result.early_regret_ratio,
            result.early_cumulative_regret,
            result.final_regret_ratio,
        ):
            assert set(mapping) == version_keys
            assert all(isinstance(value, float) for value in mapping.values())
            assert all(math.isfinite(value) for value in mapping.values())
        assert isinstance(result.reserve_cold_start_reduction_percent(), float)
        text = result.format()
        assert "regret ratio @ 50" in text
        assert "regret ratio @ 200" in text


class TestAdversarialSchema:
    def test_result_schema(self):
        results = run_adversarial_example(rounds=200)
        assert set(results) == {"forbidden", "allowed"}
        for key, result in results.items():
            assert isinstance(result, AdversarialResult)
            assert result.allow_conservative_cuts == (key == "allowed")
            assert result.rounds == 200
            assert result.dimension == 2
            assert math.isfinite(result.cumulative_regret)
            assert result.second_half_regret <= result.cumulative_regret + 1e-9
            assert isinstance(result.exploratory_rounds_second_half, int)
            assert result.width_along_second_axis_at_half_time >= 0.0
            line = result.format()
            assert "total regret" in line
            assert "conservative cuts" in line


class TestNoiseRobustnessSchema:
    def test_result_schema(self):
        results = run_noise_robustness(
            sigmas=(0.0, 0.004), use_buffer=True, dimension=4, rounds=150, seed=9
        )
        assert [r.sigma for r in results] == [0.0, 0.004]
        for result in results:
            assert isinstance(result, NoiseRobustnessResult)
            assert result.rounds == 150
            assert result.dimension == 4
            assert isinstance(result.theta_retained, bool)
            cells = result.as_cells()
            assert len(cells) == 5
            assert all(isinstance(cell, str) for cell in cells)
        table = format_noise_robustness(results)
        header = table.splitlines()[0]
        for column in ("sigma", "delta (buffer)", "cumulative regret", "theta retained"):
            assert column in header


class TestReportingSchema:
    def test_format_table_structure(self):
        text = format_table(["name", "value"], [["a", 1.0], ["bb", 2.5]])
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert set(lines[1]) <= {"-", " "}
        # Columns stay aligned: every line is equally wide or shorter.
        assert len(lines[0]) == len(lines[1])

    def test_format_series_table_structure(self):
        text = format_series_table(
            [1, 10, 100], {"alpha": [0.5, 0.2, 0.1], "beta": [0.6, 0.3, 0.2]},
            value_label="regret ratio",
        )
        lines = text.splitlines()
        assert lines[0] == "regret ratio at checkpoints"
        assert lines[1].split()[:1] == ["rounds"]
        assert "alpha" in lines[1] and "beta" in lines[1]
        assert len(lines) == 3 + 3  # title, header, rule, one row per checkpoint

    def test_format_series_table_pads_short_series(self):
        text = format_series_table([1, 10], {"short": [0.5]})
        assert "nan" in text

    def test_checkpoints_schema(self):
        points = checkpoints_for(500, count=8)
        assert all(isinstance(point, int) for point in points)
        assert points[0] >= 1 and points[-1] == 500


class TestExportSchema:
    def test_series_csv_schema(self, tmp_path):
        path = str(tmp_path / "series.csv")
        write_series_csv(path, [1, 2], {"a": [0.1, 0.2], "b": [0.3]}, index_label="t")
        with open(path) as handle:
            lines = handle.read().splitlines()
        assert lines[0] == "t,a,b"
        assert len(lines) == 3
        # Missing tail values serialise as empty cells, read back as NaN.
        checkpoints, series = read_series_csv(path)
        assert checkpoints == [1, 2]
        assert set(series) == {"a", "b"}
        assert math.isnan(series["b"][1])

    def test_rows_csv_schema(self, tmp_path):
        path = str(tmp_path / "rows.csv")
        write_rows_csv(path, ["x", "y"], [[1, "a"], [2, "b"]])
        with open(path) as handle:
            lines = handle.read().splitlines()
        assert lines == ["x,y", "1,a", "2,b"]

    def test_write_json_stringifies_unknown_types(self, tmp_path):
        path = str(tmp_path / "payload.json")
        write_json(path, {"value": np.float64(1.5), "array_like": [1, 2]})
        with open(path) as handle:
            payload = json.load(handle)
        assert payload["array_like"] == [1, 2]
        assert float(payload["value"]) == 1.5

    def test_export_returns_written_path(self, tmp_path):
        path = str(tmp_path / "nested" / "deep" / "file.json")
        assert write_json(path, {"k": 1}) == path
