"""Tests for the extension experiments (cold start, noise robustness, export, CLI)."""

import numpy as np
import pytest

from repro.experiments.cold_start import run_cold_start
from repro.experiments.export import read_series_csv, write_json, write_rows_csv, write_series_csv
from repro.experiments.noise_robustness import format_noise_robustness, run_noise_robustness


class TestColdStart:
    def test_reserve_helps_early(self):
        result = run_cold_start(dimension=10, rounds=500, window=100, owner_count=60, seed=41)
        assert (
            result.early_regret_ratio["with reserve price"]
            <= result.early_regret_ratio["pure version"] + 1e-9
        )
        assert result.reserve_cold_start_reduction_percent() >= 0.0
        text = result.format()
        assert "Cold start" in text
        assert "reserve price reduces" in text

    def test_window_validation(self):
        with pytest.raises(ValueError):
            run_cold_start(dimension=5, rounds=100, window=0, owner_count=40)
        with pytest.raises(ValueError):
            run_cold_start(dimension=5, rounds=100, window=101, owner_count=40)


class TestNoiseRobustness:
    def test_buffer_keeps_theta(self):
        results = run_noise_robustness(
            sigmas=(0.0, 0.005), use_buffer=True, dimension=6, rounds=600, seed=43
        )
        assert len(results) == 2
        assert all(result.theta_retained for result in results)
        assert results[0].delta == 0.0
        assert results[1].delta > 0.0
        table = format_noise_robustness(results)
        assert "theta retained" in table

    def test_without_buffer_delta_is_zero(self):
        results = run_noise_robustness(
            sigmas=(0.01,), use_buffer=False, dimension=6, rounds=400, seed=44
        )
        assert results[0].delta == 0.0


class TestExport:
    def test_series_csv_roundtrip(self, tmp_path):
        path = str(tmp_path / "series.csv")
        checkpoints = [1, 10, 100]
        series = {"a": [0.9, 0.5, 0.1], "b": [1.0, 0.8, 0.3]}
        write_series_csv(path, checkpoints, series)
        read_checkpoints, read_series = read_series_csv(path)
        assert read_checkpoints == checkpoints
        assert np.allclose(read_series["a"], series["a"])
        assert np.allclose(read_series["b"], series["b"])

    def test_rows_csv(self, tmp_path):
        path = str(tmp_path / "sub" / "rows.csv")
        write_rows_csv(path, ["x", "y"], [[1, 2], [3, 4]])
        with open(path) as handle:
            content = handle.read()
        assert "x,y" in content
        assert "3,4" in content

    def test_json(self, tmp_path):
        path = str(tmp_path / "payload.json")
        write_json(path, {"value": 1.5, "nested": {"rounds": 10}})
        import json

        with open(path) as handle:
            payload = json.load(handle)
        assert payload["nested"]["rounds"] == 10


class TestCommandLine:
    def test_parser_knows_all_commands(self):
        from repro.__main__ import build_parser

        parser = build_parser()
        for command in (
            ["fig4"],
            ["fig5a"],
            ["fig5b"],
            ["fig5c"],
            ["table1"],
            ["overhead"],
            ["lemma8"],
            ["cold-start"],
            ["noise-robustness"],
        ):
            args = parser.parse_args(command)
            assert args.command == command[0].replace("_", "-") or args.command == command[0]

    def test_lemma8_command_runs(self, capsys):
        from repro.__main__ import main

        exit_code = main(["lemma8", "--rounds", "200"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "conservative cuts" in captured.out

    def test_cold_start_command_runs(self, capsys):
        from repro.__main__ import main

        exit_code = main(["cold-start", "--dimension", "6", "--rounds", "300", "--window", "50"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "Cold start" in captured.out

    def test_missing_command_is_an_error(self):
        from repro.__main__ import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args([])
