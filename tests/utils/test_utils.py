"""Unit tests for the shared utilities (rng, validation, timing, memory)."""

import numpy as np
import pytest

from repro.exceptions import DimensionMismatchError, InvalidPriceError
from repro.utils.memory import PricerMemoryReport, ndarray_nbytes, process_rss_bytes, report_for_arrays
from repro.utils.rng import as_rng, random_unit_vector, shuffled, spawn_rngs
from repro.utils.timing import OnlineLatencyTracker, Stopwatch
from repro.utils.validation import (
    ensure_finite_array,
    ensure_finite_scalar,
    ensure_positive,
    ensure_price,
    ensure_probability,
    ensure_square_matrix,
    ensure_vector,
)


class TestRng:
    def test_as_rng_accepts_seed_and_generator(self):
        generator = as_rng(3)
        assert isinstance(generator, np.random.Generator)
        assert as_rng(generator) is generator

    def test_same_seed_same_stream(self):
        assert as_rng(5).integers(0, 100, 10).tolist() == as_rng(5).integers(0, 100, 10).tolist()

    def test_spawn_rngs_are_independent(self):
        children = spawn_rngs(7, 3)
        assert len(children) == 3
        draws = [child.integers(0, 1_000_000) for child in children]
        assert len(set(draws)) == 3

    def test_spawn_rngs_rejects_negative_count(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_random_unit_vector(self):
        vector = random_unit_vector(8, seed=0)
        assert np.linalg.norm(vector) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            random_unit_vector(0)

    def test_shuffled_preserves_elements(self):
        items = list(range(20))
        result = shuffled(items, seed=1)
        assert sorted(result) == items


class TestValidation:
    def test_ensure_vector_checks_dimension(self):
        vector = ensure_vector([1.0, 2.0], dimension=2)
        assert vector.dtype == float
        with pytest.raises(DimensionMismatchError):
            ensure_vector([1.0, 2.0], dimension=3)
        with pytest.raises(DimensionMismatchError):
            ensure_vector([[1.0, 2.0]])

    def test_ensure_vector_rejects_nan(self):
        with pytest.raises(ValueError):
            ensure_vector([1.0, float("nan")])

    def test_ensure_finite(self):
        assert ensure_finite_scalar(1.5) == 1.5
        with pytest.raises(ValueError):
            ensure_finite_scalar(float("inf"))
        with pytest.raises(ValueError):
            ensure_finite_array([1.0, float("inf")])

    def test_ensure_positive(self):
        assert ensure_positive(1.0) == 1.0
        assert ensure_positive(0.0, strict=False) == 0.0
        with pytest.raises(ValueError):
            ensure_positive(0.0)
        with pytest.raises(ValueError):
            ensure_positive(-1.0, strict=False)

    def test_ensure_probability(self):
        assert ensure_probability(0.5) == 0.5
        with pytest.raises(ValueError):
            ensure_probability(1.5)

    def test_ensure_price(self):
        assert ensure_price(2.0) == 2.0
        with pytest.raises(InvalidPriceError):
            ensure_price(-1.0)
        with pytest.raises(InvalidPriceError):
            ensure_price(float("nan"))

    def test_ensure_square_matrix(self):
        matrix = ensure_square_matrix(np.eye(3), dimension=3)
        assert matrix.shape == (3, 3)
        with pytest.raises(DimensionMismatchError):
            ensure_square_matrix(np.ones((2, 3)))
        with pytest.raises(DimensionMismatchError):
            ensure_square_matrix(np.eye(3), dimension=2)


class TestTiming:
    def test_stopwatch_measures_elapsed(self):
        with Stopwatch() as stopwatch:
            sum(range(10_000))
        assert stopwatch.elapsed >= 0.0

    def test_latency_tracker_statistics(self):
        tracker = OnlineLatencyTracker()
        for value in (0.001, 0.002, 0.003):
            tracker.record(value)
        assert tracker.count == 3
        assert tracker.mean_milliseconds == pytest.approx(2.0)
        assert tracker.max_milliseconds == pytest.approx(3.0)
        assert tracker.percentile_milliseconds(50) == pytest.approx(2.0)

    def test_latency_tracker_empty(self):
        tracker = OnlineLatencyTracker()
        assert tracker.mean_milliseconds == 0.0
        assert tracker.max_milliseconds == 0.0
        assert tracker.percentile_milliseconds(95) == 0.0

    def test_latency_tracker_rejects_bad_input(self):
        tracker = OnlineLatencyTracker()
        with pytest.raises(ValueError):
            tracker.record(-1.0)
        tracker.record(0.5)
        with pytest.raises(ValueError):
            tracker.percentile_milliseconds(150)


class TestNearestRankPercentile:
    """The documented nearest-rank rule: rank ``ceil(p/100 * count)``."""

    def test_even_count_median_is_the_lower_middle(self):
        from repro.utils.metrics import nearest_rank_percentile

        # The regression that motivated the fix: banker's-rounded linear
        # indexing returned 3 here.
        assert nearest_rank_percentile([1.0, 2.0, 3.0, 4.0], 50) == 2.0

    def test_rank_formula_on_ten_samples(self):
        from repro.utils.metrics import nearest_rank_percentile

        samples = [float(v) for v in range(1, 11)]
        assert nearest_rank_percentile(samples, 0) == 1.0
        assert nearest_rank_percentile(samples, 10) == 1.0
        assert nearest_rank_percentile(samples, 25) == 3.0
        assert nearest_rank_percentile(samples, 50) == 5.0
        assert nearest_rank_percentile(samples, 95) == 10.0
        assert nearest_rank_percentile(samples, 100) == 10.0

    def test_percentile_is_always_an_observed_sample(self):
        from repro.utils.metrics import nearest_rank_percentile

        samples = sorted([0.017, 0.4, 1.5, 2.25, 9.0])
        for percentile in (0, 1, 33, 50, 66, 90, 99, 100):
            assert nearest_rank_percentile(samples, percentile) in samples

    def test_empty_and_out_of_range(self):
        from repro.utils.metrics import nearest_rank_percentile

        assert nearest_rank_percentile([], 50) == 0.0
        with pytest.raises(ValueError):
            nearest_rank_percentile([1.0], -1)
        with pytest.raises(ValueError):
            nearest_rank_percentile([1.0], 101)

    def test_latency_summary_uses_nearest_rank(self):
        from repro.utils.metrics import LatencySummary

        summary = LatencySummary.from_seconds([0.001, 0.002, 0.003, 0.004])
        assert summary.p50_ms == pytest.approx(2.0)
        assert summary.p99_ms == pytest.approx(4.0)
        assert summary.max_ms == pytest.approx(4.0)


class TestMemory:
    def test_ndarray_nbytes(self):
        arrays = [np.zeros((10, 10)), np.zeros(5)]
        assert ndarray_nbytes(arrays) == 10 * 10 * 8 + 5 * 8

    def test_report_for_arrays(self):
        report = report_for_arrays([np.zeros((100, 100))])
        assert isinstance(report, PricerMemoryReport)
        assert report.state_megabytes == pytest.approx(100 * 100 * 8 / (1024 * 1024))

    def test_process_rss_readable_on_linux(self):
        rss = process_rss_bytes()
        if rss is not None:
            assert rss > 1024 * 1024  # more than 1 MiB

    def test_report_process_megabytes_none_safe(self):
        report = PricerMemoryReport(state_bytes=1024, process_rss_bytes=None)
        assert report.process_megabytes is None
