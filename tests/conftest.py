"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.core.ellipsoid import Ellipsoid
from repro.core.models import LinearModel
from repro.core.pricing import EllipsoidPricer, PricerConfig


@pytest.fixture
def rng():
    """A deterministic random generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_ellipsoid():
    """A well-conditioned 3-D ellipsoid used across geometry tests."""
    center = np.array([1.0, -0.5, 2.0])
    shape = np.array(
        [
            [4.0, 0.5, 0.0],
            [0.5, 2.0, 0.3],
            [0.0, 0.3, 1.5],
        ]
    )
    return Ellipsoid(center, shape)


@pytest.fixture
def unit_ball_3d():
    """The unit ball in three dimensions."""
    return Ellipsoid.ball(3, 1.0)


@pytest.fixture
def linear_market(rng):
    """A small linear market: (model, arrivals-as-tuples) with positive values."""
    dimension = 5
    theta = np.abs(rng.standard_normal(dimension))
    theta *= np.sqrt(2 * dimension) / np.linalg.norm(theta)
    model = LinearModel(theta)
    queries = []
    for _ in range(400):
        features = np.abs(rng.standard_normal(dimension))
        features /= np.linalg.norm(features)
        reserve = 0.5 * float(np.sum(features))
        queries.append((features, reserve))
    return model, queries


@pytest.fixture
def default_pricer():
    """An ellipsoid pricer with reserve support in five dimensions."""
    config = PricerConfig(dimension=5, radius=2.0 * np.sqrt(5), epsilon=0.01)
    return EllipsoidPricer(config)
