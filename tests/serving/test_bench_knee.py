"""Knee detection of the serving bench's latency-vs-load sweep.

The sweep runs offered rates low to high and marks each point sustained or
not.  The old rule ("last sustained point wins") reported isolated sustained
blips past saturation — measurement noise — as the service's capacity knee.
``find_knee`` requires corroboration: the knee is the highest sustained rate
whose immediate predecessor was also sustained (or the very first rate).
"""

import importlib.util
import os

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "bench_serving",
    os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "..", "..", "scripts", "bench_serving.py"
    ),
)
bench_serving = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(bench_serving)

T, F = True, False


@pytest.mark.parametrize(
    "sustained, expected",
    [
        # Blip at index 3 after saturation at 2: the knee is the corroborated
        # prefix point, not the blip the old rule reported.
        ([T, T, F, T, F], 1),
        # Two consecutive sustained points past an early dropout corroborate
        # each other — capacity recovered, the pair is believable.
        ([T, F, T, T, F], 3),
        ([F, T, T, F], 2),
        ([T, T, T, F], 2),
        # A lone blip with unsustained neighbours is never a knee.
        ([F, T, F], None),
        # A single swept rate needs no corroboration.
        ([T], 0),
        ([F], None),
        ([], None),
        ([T, T, T, T], 3),
        ([F, F, F], None),
    ],
)
def test_find_knee(sustained, expected):
    assert bench_serving.find_knee(sustained) == expected


def test_parse_sweep_shapes():
    assert bench_serving.parse_sweep("1000:1000:1") == [1000.0]
    rates = bench_serving.parse_sweep("1000:2000:3")
    assert rates == [1000.0, 1500.0, 2000.0]
