"""Snapshot migration between shard counts: layout, exactness, resume.

The golden-family bar: replay **half a horizon on 2 shards**, persist,
migrate the snapshot tree to **3 shards**, resume on the migrated tree, and
the stitched transcript must be bit-identical to the uninterrupted offline
engine — for every golden pricer family.  Plus structural tests: sessions
land in the directory their key hashes to under the new count, wrong
declared source counts are rejected, verification catches corruption, and
the CLI drives the same path.
"""

import importlib.util
import os
import sys

import numpy as np
import pytest

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "golden"))
import golden_specs

from repro.engine import prepare, simulate, stream_rounds
from repro.exceptions import ReshardingError
from repro.serving import (
    FeedbackEvent,
    QuoteRequest,
    SessionKey,
    ShardedRegistry,
    plan_reshard,
    reshard_snapshots,
    shard_of_key,
)
from repro.serving.resharding import SESSION_SUFFIX, discover_shard_dirs, shard_dir

FAMILY = "ellipsoid-reserve"


def _drive(sharded, key, materialized, start, stop):
    """Closed-loop sync replay of rounds [start, stop); returns posted/sold."""
    posted, sold_column = [], []
    for round_ in stream_rounds(materialized.slice(start, stop)):
        response = sharded.quote(
            QuoteRequest(key=key, features=round_.features, reserve=round_.reserve)
        )
        sold = bool(response.posted and response.posted_price <= round_.market_value)
        sharded.feedback(
            FeedbackEvent(key=key, quote_id=response.quote_id, accepted=sold)
        )
        posted.append(np.nan if response.posted_price is None else response.posted_price)
        sold_column.append(sold)
    return posted, sold_column


@pytest.mark.parametrize("family", sorted(golden_specs.GOLDEN_SPECS))
def test_reshard_mid_horizon_matches_offline(tmp_path, family):
    """2 shards → migrate → 3 shards, bit-identical for every golden family."""
    model, batch, theta = golden_specs.build_market(family)
    materialized = prepare(model, batch)
    offline = simulate(
        model, golden_specs.build_pricer(family, theta), materialized=materialized
    )
    rounds = golden_specs.GOLDEN_ROUNDS
    split = rounds // 2
    key = SessionKey("golden", family)

    def factory(_key):
        return model, golden_specs.build_pricer(family, theta)

    source = tmp_path / "n2"
    target = tmp_path / "n3"
    with ShardedRegistry(factory, num_shards=2, snapshot_dir=str(source)) as sharded:
        first_posted, first_sold = _drive(sharded, key, materialized, 0, split)
        assert sharded.persist_all() == 1

    # Migrate with full hydration verification (fresh pricer restored from
    # the migrated file must re-extract the exact source state).
    report = reshard_snapshots(
        str(source), str(target), target_shards=3, factory=factory
    )
    assert report.sessions == 1
    assert report.verified and report.hydration_verified
    move = report.moves[0]
    assert move.key == key
    assert move.source_shard == shard_of_key(key, 2)
    assert move.target_shard == shard_of_key(key, 3)
    assert os.path.exists(move.target_path)

    with ShardedRegistry(factory, num_shards=3, snapshot_dir=str(target)) as sharded:
        second_posted, second_sold = _drive(sharded, key, materialized, split, rounds)
        stats = sharded.stats()
        assert stats["registry"]["hydrations"] == 1
        assert stats["registry"]["created"] == 0

    stitched_posted = np.array(first_posted + second_posted)
    stitched_sold = np.array(first_sold + second_sold)
    assert np.array_equal(
        stitched_posted, offline.transcript.posted_prices[:rounds], equal_nan=True
    ), "%s: posted prices diverged across the reshard" % family
    assert np.array_equal(stitched_sold, offline.transcript.sold[:rounds]), (
        "%s: sales diverged across the reshard" % family
    )


def _populated_tree(tmp_path, keys, num_shards=2):
    """A snapshot tree with one persisted session per key."""
    model, batch, theta = golden_specs.build_market(FAMILY)
    materialized = prepare(model, batch)

    def factory(_key):
        return model, golden_specs.build_pricer(FAMILY, theta)

    source = tmp_path / ("n%d" % num_shards)
    with ShardedRegistry(
        factory, num_shards=num_shards, snapshot_dir=str(source)
    ) as sharded:
        for key in keys:
            _drive(sharded, key, materialized, 0, 4)
        sharded.persist_all()
    return source, factory


def test_reshard_layout_places_every_session_on_its_hash(tmp_path):
    keys = [SessionKey("app", "segment-%d" % index) for index in range(12)]
    source, factory = _populated_tree(tmp_path, keys, num_shards=2)
    target = tmp_path / "n5"
    report = reshard_snapshots(str(source), str(target), target_shards=5)
    assert report.sessions == 12
    assert report.verified and not report.hydration_verified
    # Every target shard dir exists (a restarted registry finds its layout),
    # and every file sits exactly where its key hashes under 5 shards.
    for shard in range(5):
        assert os.path.isdir(shard_dir(str(target), shard))
    placed = 0
    for shard, directory in discover_shard_dirs(str(target)).items():
        for name in os.listdir(directory):
            assert name.endswith(SESSION_SUFFIX)
            placed += 1
    assert placed == 12
    for move in report.moves:
        assert move.target_shard == shard_of_key(move.key, 5)
        assert os.path.dirname(move.target_path) == shard_dir(str(target), move.target_shard)
    assert report.relocated == sum(
        1 for key in keys if shard_of_key(key, 2) != shard_of_key(key, 5)
    )
    histogram = report.target_histogram()
    assert sum(histogram.values()) == 12
    assert report.as_dict()["sessions"] == 12


def test_reshard_rejects_wrong_declared_source_count(tmp_path):
    keys = [SessionKey("app", "segment-%d" % index) for index in range(8)]
    # Guarantee at least one key disagrees between 2- and 3-shard placement.
    assert any(shard_of_key(key, 2) != shard_of_key(key, 3) for key in keys)
    source, _factory = _populated_tree(tmp_path, keys, num_shards=2)
    with pytest.raises(ReshardingError, match="wrong declared shard count"):
        plan_reshard(str(source), str(tmp_path / "out"), target_shards=4, source_shards=3)


def test_reshard_refuses_in_place_and_missing_trees(tmp_path):
    keys = [SessionKey("app", "s")]
    source, _factory = _populated_tree(tmp_path, keys, num_shards=2)
    with pytest.raises(ReshardingError, match="in-place"):
        reshard_snapshots(str(source), str(source), target_shards=3)
    with pytest.raises(ReshardingError, match="does not exist"):
        plan_reshard(str(tmp_path / "nope"), str(tmp_path / "out"), target_shards=3)
    with pytest.raises(ReshardingError, match="not a sharded snapshot tree"):
        empty = tmp_path / "empty"
        empty.mkdir()
        plan_reshard(str(empty), str(tmp_path / "out"), target_shards=3)
    # A non-empty target would let stale files from an earlier migration
    # survive verification — refused outright.
    dirty = tmp_path / "dirty"
    dirty.mkdir()
    (dirty / "leftover.txt").write_text("stale")
    with pytest.raises(ReshardingError, match="not empty"):
        reshard_snapshots(str(source), str(dirty), target_shards=3)
    # Ambiguous layouts ("shard-1" next to "shard-01") would silently
    # shadow one directory's sessions — rejected instead.
    ambiguous = tmp_path / "ambiguous"
    (ambiguous / "shard-1").mkdir(parents=True)
    (ambiguous / "shard-01").mkdir()
    with pytest.raises(ReshardingError, match="appears twice"):
        discover_shard_dirs(str(ambiguous))


def test_verification_catches_corrupted_migration(tmp_path):
    keys = [SessionKey("app", "s")]
    source, _factory = _populated_tree(tmp_path, keys, num_shards=2)
    target = tmp_path / "out"
    report = reshard_snapshots(str(source), str(target), target_shards=3, verify=False)
    # Corrupt the migrated file, then verify: the divergence must be caught.
    move = report.moves[0]
    with open(move.source_path, "rb") as handle:
        data = handle.read()
    with open(move.target_path, "wb") as handle:
        handle.write(data[: len(data) // 2])
    from repro.engine.checkpoint import CheckpointError
    from repro.serving import verify_reshard

    with pytest.raises((ReshardingError, CheckpointError)):
        verify_reshard(report)


def test_reshard_cli_end_to_end(tmp_path, capsys):
    spec = importlib.util.spec_from_file_location(
        "reshard_cli",
        os.path.join(
            os.path.dirname(os.path.abspath(__file__)), "..", "..", "scripts", "reshard.py"
        ),
    )
    cli = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(cli)

    keys = [SessionKey("app", "segment-%d" % index) for index in range(6)]
    source, _factory = _populated_tree(tmp_path, keys, num_shards=2)
    target = tmp_path / "cli-out"
    report_path = tmp_path / "report.json"
    code = cli.main(
        [
            "--source", str(source),
            "--target", str(target),
            "--to-shards", "4",
            "--report", str(report_path),
        ]
    )
    assert code == 0
    output = capsys.readouterr().out
    assert "migrated 6 session(s) from 2 to 4 shard(s)" in output
    assert "verified" in output
    import json

    report = json.loads(report_path.read_text())
    assert report["sessions"] == 6
    assert report["verified"] is True
    # Wrong source count exits non-zero with a diagnostic.
    code = cli.main(
        [
            "--source", str(source),
            "--target", str(tmp_path / "cli-bad"),
            "--to-shards", "4",
            "--from-shards", "7",
        ]
    )
    assert code == 1


def test_mid_copy_failure_leaves_no_half_written_target_tree(tmp_path, monkeypatch):
    """An injected copy failure mid-migration must leave the target slot
    untouched (no partial tree a restarted registry could hydrate from) and
    clean up its staging directory."""
    import repro.serving.resharding as resharding_module

    keys = [SessionKey("app", "segment-%d" % index) for index in range(6)]
    source, _factory = _populated_tree(tmp_path, keys, num_shards=2)
    target = tmp_path / "out"

    real_write = resharding_module._atomic_write
    calls = {"count": 0}

    def failing_write(path, data):
        calls["count"] += 1
        if calls["count"] == 3:
            raise OSError("disk full (injected)")
        real_write(path, data)

    monkeypatch.setattr(resharding_module, "_atomic_write", failing_write)
    with pytest.raises(OSError, match="injected"):
        reshard_snapshots(str(source), str(target), target_shards=3)
    assert calls["count"] == 3
    # No half-written target: the slot does not exist at all.
    assert not os.path.exists(target)
    # No staging leftovers next to it either.
    leftovers = [
        name for name in os.listdir(tmp_path) if name.startswith(".reshard-staging-")
    ]
    assert leftovers == []
    # The same migration succeeds cleanly afterwards.
    monkeypatch.setattr(resharding_module, "_atomic_write", real_write)
    report = reshard_snapshots(str(source), str(target), target_shards=3)
    assert report.verified and report.sessions == 6


def test_hydration_verify_cleans_up_scratch_state(tmp_path, monkeypatch):
    """verify_reshard(factory=...) must leave no temporary hydration state
    behind — on success and when the factory (or the comparison) raises."""
    import glob
    import repro.serving.resharding as resharding_module
    from repro.serving import verify_reshard

    scratch_dirs = []
    real_mkdtemp = resharding_module.tempfile.mkdtemp

    def tracking_mkdtemp(*args, **kwargs):
        path = real_mkdtemp(*args, **kwargs)
        if kwargs.get("prefix", "").startswith(".reshard-verify-") or (
            args and str(args[-1]).startswith(".reshard-verify-")
        ):
            scratch_dirs.append(path)
        return path

    monkeypatch.setattr(resharding_module.tempfile, "mkdtemp", tracking_mkdtemp)

    keys = [SessionKey("app", "segment-%d" % index) for index in range(3)]
    source, factory = _populated_tree(tmp_path, keys, num_shards=2)
    target = tmp_path / "out"
    report = reshard_snapshots(str(source), str(target), target_shards=3, factory=factory)
    assert report.hydration_verified
    assert scratch_dirs, "hydration verification never created scratch state"
    for path in scratch_dirs:
        assert not os.path.exists(path), "scratch state leaked on success"

    # Failure path: a factory that raises mid-verification.
    scratch_dirs.clear()
    calls = {"count": 0}

    def exploding_factory(key):
        calls["count"] += 1
        if calls["count"] == 2:
            raise RuntimeError("factory exploded (injected)")
        return factory(key)

    with pytest.raises(RuntimeError, match="injected"):
        verify_reshard(report, factory=exploding_factory)
    for path in scratch_dirs:
        assert not os.path.exists(path), "scratch state leaked on the error path"
