"""The socket front end and its through-the-wire equivalence contract.

The acceptance bar of the serving front end: a closed-loop replay **through
the socket** (length-prefixed JSON frames, an event-loop drain task, and —
with a sharded backend — a process boundary between the router and the
pricer) produces a transcript exactly equal, float for float, to the offline
engine.  JSON floats round-trip via shortest ``repr``, the backend drives the
identical propose/update protocol, so not a single bit may move.
"""

import os
import sys

import numpy as np
import pytest

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "golden"))
import golden_specs

from repro.engine import prepare, simulate
from repro.exceptions import ServingError
from repro.serving import (
    MicroBatchConfig,
    PricerRegistry,
    QuoteService,
    QuoteSocketClient,
    SessionKey,
    ShardedRegistry,
    serve_closed_loop_socket,
    start_frontend_thread,
)

#: Transcript columns compared exactly (regret included — it is derived from
#: the others, so a mismatch there would flag an accounting divergence).
COLUMNS = ("link_prices", "posted_prices", "sold", "skipped", "exploratory", "regrets")


def _assert_identical(actual, expected, context=""):
    for name in COLUMNS:
        left, right = getattr(actual, name), getattr(expected, name)
        assert np.array_equal(left, right, equal_nan=left.dtype.kind == "f"), (
            "%s column %r diverged" % (context, name)
        )


def _offline(family):
    model, batch, theta = golden_specs.build_market(family)
    materialized = prepare(model, batch)
    result = simulate(
        model, golden_specs.build_pricer(family, theta), materialized=materialized
    )
    return model, theta, materialized, result


def _immediate_config():
    # max_batch=1: every submit closes the window, so the drain task serves
    # the quote on its next wakeup — the closed-loop per-round protocol.
    return MicroBatchConfig(max_batch=1, max_wait_seconds=0.0)


@pytest.mark.parametrize("family", sorted(golden_specs.GOLDEN_SPECS))
def test_closed_loop_through_socket_and_shard_matches_offline(tmp_path, family):
    """One shard behind the asyncio front end on a unix socket: the full
    golden tier must replay bit-identically through wire + process boundary."""
    model, theta, materialized, offline = _offline(family)
    key = SessionKey(app="golden", segment=family)
    with ShardedRegistry(
        lambda _key: (model, golden_specs.build_pricer(family, theta)),
        num_shards=1,
        config=_immediate_config(),
    ) as backend:
        handle = start_frontend_thread(
            backend, unix_path=str(tmp_path / "quotes.sock"), drain_interval=0.0005
        )
        try:
            with QuoteSocketClient(unix_path=handle.address) as client:
                online = serve_closed_loop_socket(client, key, materialized)
        finally:
            handle.stop()
    _assert_identical(online.transcript, offline.transcript, context=family)


def test_closed_loop_through_tcp_socket_with_in_process_service():
    """The front end drives a plain in-process QuoteService over TCP the
    same way (no shard workers) — backend surfaces are interchangeable."""
    family = "ellipsoid-reserve"
    model, theta, materialized, offline = _offline(family)
    key = SessionKey(app="golden", segment=family)
    service = QuoteService(
        PricerRegistry(lambda _key: (model, golden_specs.build_pricer(family, theta))),
        config=_immediate_config(),
    )
    handle = start_frontend_thread(
        service, host="127.0.0.1", port=0, drain_interval=0.0005
    )
    try:
        host, port = handle.address[0], handle.address[1]
        with QuoteSocketClient(host=host, port=port) as client:
            window = materialized.slice(0, 128)
            online = serve_closed_loop_socket(client, key, window)
    finally:
        handle.stop()
    for name in ("link_prices", "posted_prices", "sold", "skipped", "exploratory"):
        assert np.array_equal(
            getattr(online.transcript, name),
            getattr(offline.transcript, name)[:128],
            equal_nan=getattr(online.transcript, name).dtype.kind == "f",
        ), name
    assert service.stats.quotes_served == 128


def test_protocol_housekeeping_ops(tmp_path):
    family = "ellipsoid-reserve"
    model, theta, materialized, _offline_result = _offline(family)
    service = QuoteService(
        PricerRegistry(lambda _key: (model, golden_specs.build_pricer(family, theta))),
        config=_immediate_config(),
    )
    handle = start_frontend_thread(service, unix_path=str(tmp_path / "ops.sock"))
    try:
        with QuoteSocketClient(unix_path=handle.address) as client:
            client.ping()
            key = SessionKey("golden", family)
            result = client.quote(key, materialized.mapped_features[0], reserve=None)
            client.feedback(key, result["quote_id"], accepted=False)
            stats = client.stats()
            assert stats["quotes_served"] == 1
            assert stats["feedback_applied"] == 1
            assert stats["registry"]["created"] == 1
            # The columnar store's counters ride the same frame: one
            # resident ellipsoid session holds its state in a slab row
            # (non-zero resident bytes), no snapshot dir means no segments,
            # and the hydration split is source-exact.
            registry_stats = stats["registry"]
            assert registry_stats["resident_bytes"] > 0
            assert registry_stats["segments"] == 0
            assert registry_stats["segment_bytes"] == 0
            assert registry_stats["clock_rotations"] == 0
            assert registry_stats["clock_hand_steps"] == 0
            assert registry_stats["zero_copy_hydrations"] == 0
            assert registry_stats["legacy_hydrations"] == 0
            assert (
                registry_stats["zero_copy_hydrations"]
                + registry_stats["legacy_hydrations"]
                == registry_stats["hydrations"]
            )
            assert client.flush() == 0  # nothing queued

            # Protocol errors come back as error frames, not hangs.
            with pytest.raises(ServingError):
                client.feedback(key, 999_999, accepted=True)
            client._send({"op": "no-such-op"})
            with pytest.raises(ServingError):
                client._expect("pong")
            # Malformed field *values* (a null quote id) get an error frame
            # too — the connection must not be killed mid-protocol.
            client._send(
                {
                    "op": "feedback",
                    "app": key.app,
                    "segment": key.segment,
                    "quote_id": None,
                    "accepted": True,
                }
            )
            with pytest.raises(ServingError):
                client._expect("feedback_ok")
            # The connection is still usable afterwards.
            client.ping()
    finally:
        handle.stop()


def test_quote_for_unknown_fields_reports_error(tmp_path):
    family = "ellipsoid-reserve"
    model, theta, materialized, _offline_result = _offline(family)
    service = QuoteService(
        PricerRegistry(lambda _key: (model, golden_specs.build_pricer(family, theta))),
        config=_immediate_config(),
    )
    handle = start_frontend_thread(service, unix_path=str(tmp_path / "bad.sock"))
    try:
        with QuoteSocketClient(unix_path=handle.address) as client:
            client._send({"op": "quote", "app": "golden"})  # missing fields
            frame = client.read_frame()
            assert frame["op"] == "error"
            client.ping()  # connection survives a malformed quote
    finally:
        handle.stop()
