"""Property-based tests of the length-prefixed JSON wire protocol.

Two layers:

* **sans-IO** (hypothesis over :class:`FrameDecoder` / ``encode_frame``):
  arbitrary JSON payloads round-trip exactly through encode → decode, at
  *any* chunk boundaries; truncated frames stay buffered without output or
  error; oversized length headers and undecodable bodies raise
  :class:`ServingError` instead of yielding garbage.
* **live socket**: arbitrary field *values* in a ``quote`` op produce a
  ``quote_result`` or an ``error`` frame — never a hung connection; a
  truncated frame followed by a hang-up leaves the server serving other
  clients; an oversized frame length is answered with an error frame; and
  interleaved pipelined responses correlate back to their requests exactly
  once each.

Profiles: CI runs with ``HYPOTHESIS_PROFILE=ci`` (few examples, no
deadline) so the property sweep cannot flake a shared runner on timing.
"""

import os
import socket
import struct
import time

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.pricing import make_pricer
from repro.exceptions import ServingError
from repro.serving import (
    FrameDecoder,
    MicroBatchConfig,
    PricerRegistry,
    QuoteService,
    QuoteSocketClient,
    SessionKey,
    start_frontend_thread,
)
from repro.serving.frontend import FRAME_HEADER, MAX_FRAME_BYTES, encode_frame
from repro.core.models import LinearModel

settings.register_profile("ci", max_examples=25, deadline=None,
                          suppress_health_check=[HealthCheck.too_slow])
settings.register_profile("dev", max_examples=100, deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))


# --------------------------------------------------------------------------- #
# Strategies
# --------------------------------------------------------------------------- #

json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=32),
)
json_values = st.recursive(
    json_scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
    ),
    max_leaves=16,
)
payloads = st.dictionaries(st.text(min_size=1, max_size=12), json_values, max_size=6)


# --------------------------------------------------------------------------- #
# Sans-IO: FrameDecoder round trips
# --------------------------------------------------------------------------- #


@given(payload=payloads)
def test_encode_decode_roundtrip_exact(payload):
    """One frame through encode → decode is the identical payload (JSON
    floats round-trip via shortest repr — this exactness is load-bearing
    for the transcript-equivalence contract)."""
    frames = FrameDecoder().feed(encode_frame(payload))
    assert frames == [payload]


@given(items=st.lists(payloads, min_size=1, max_size=5), data=st.data())
def test_split_points_never_change_the_frames(items, data):
    """A frame stream fed at arbitrary chunk boundaries — mid-header,
    mid-body, many frames at once — decodes to exactly the same sequence."""
    stream = b"".join(encode_frame(item) for item in items)
    decoder = FrameDecoder()
    decoded = []
    position = 0
    while position < len(stream):
        size = data.draw(
            st.integers(min_value=1, max_value=len(stream) - position), label="chunk"
        )
        decoded.extend(decoder.feed(stream[position : position + size]))
        position += size
    assert decoded == items
    assert decoder.buffered == 0


@given(payload=payloads, data=st.data())
def test_truncated_frame_stays_buffered_then_completes(payload, data):
    """A partial frame yields nothing (and raises nothing); feeding the
    remainder completes it exactly — the decoder can never lose sync on a
    slow or bursty peer."""
    frame = encode_frame(payload)
    cut = data.draw(st.integers(min_value=0, max_value=len(frame) - 1), label="cut")
    decoder = FrameDecoder()
    assert decoder.feed(frame[:cut]) == []
    assert decoder.buffered == cut
    assert decoder.feed(frame[cut:]) == [payload]
    assert decoder.buffered == 0


@given(length=st.integers(min_value=MAX_FRAME_BYTES + 1, max_value=2**32 - 1))
def test_oversized_length_header_raises(length):
    decoder = FrameDecoder()
    with pytest.raises(ServingError):
        decoder.feed(FRAME_HEADER.pack(length))


@given(garbage=st.binary(min_size=1, max_size=64))
def test_non_json_body_raises_not_hangs(garbage):
    """Any body that is not valid UTF-8 JSON raises ServingError (framing
    is intact, content is not) — it must never be silently dropped."""
    decoder = FrameDecoder()
    frame = FRAME_HEADER.pack(len(garbage)) + garbage
    try:
        frames = decoder.feed(frame)
    except ServingError:
        return
    # Binary blobs that *happen* to be valid JSON (e.g. b"1") must decode.
    assert len(frames) == 1


def test_decoder_handles_empty_feeds_and_zero_length_frames():
    decoder = FrameDecoder()
    assert decoder.feed(b"") == []
    empty_object = encode_frame({})
    assert decoder.feed(empty_object) == [{}]
    # A zero-length body is undecodable JSON, not a hang.
    with pytest.raises(ServingError):
        decoder.feed(FRAME_HEADER.pack(0))


# --------------------------------------------------------------------------- #
# Live socket: malformed input must answer or hang up — never hang
# --------------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def live_server(tmp_path_factory):
    """One frontend over a real 4-d ellipsoid pricer for the whole module."""
    theta = np.array([1.1, 0.7, 0.4, 0.9])

    def factory(_key):
        return LinearModel(theta), make_pricer(dimension=4, radius=4.0, epsilon=0.05)

    service = QuoteService(
        PricerRegistry(factory),
        config=MicroBatchConfig(max_batch=1, max_wait_seconds=0.0),
    )
    handle = start_frontend_thread(
        service,
        unix_path=str(tmp_path_factory.mktemp("wire") / "wire.sock"),
        drain_interval=0.0005,
    )
    yield handle
    handle.stop()


@given(features=json_values, reserve=json_values)
@settings(suppress_health_check=[HealthCheck.function_scoped_fixture,
                                 HealthCheck.too_slow])
def test_arbitrary_quote_field_values_answer_or_error(live_server, features, reserve):
    """Whatever lands in ``features``/``reserve``, the server answers the
    quote with ``quote_result`` or ``error`` — the connection never hangs
    and is immediately reusable."""
    with QuoteSocketClient(unix_path=live_server.address, timeout=30.0) as client:
        client._send(
            {
                "op": "quote",
                "app": "wire",
                "segment": "fuzz",
                "features": features,
                "reserve": reserve,
                "id": 1,
            }
        )
        frame = client.read_frame()
        assert frame["op"] in ("quote_result", "error")
        if frame["op"] == "quote_result":
            # Settle so the session never accumulates pending decisions.
            client.feedback(SessionKey("wire", "fuzz"), frame["quote_id"], False)
        client.ping()


def test_truncated_frame_then_close_does_not_hang_the_server(live_server):
    """A peer that dies mid-frame must not wedge its handler or the
    frontend: another client connects and quotes immediately after."""
    raw = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    raw.connect(live_server.address)
    frame = encode_frame({"op": "ping"})
    raw.sendall(frame[: len(frame) - 3])  # header + partial body
    raw.close()
    deadline = time.monotonic() + 10
    opened = live_server.frontend.stats.connections_opened
    while time.monotonic() < deadline:
        if live_server.frontend.stats.connections_closed >= opened:
            break
        time.sleep(0.01)
    with QuoteSocketClient(unix_path=live_server.address) as healthy:
        healthy.ping()


def test_oversized_frame_length_gets_error_frame_then_eof(live_server):
    raw = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    raw.settimeout(10)
    raw.connect(live_server.address)
    try:
        raw.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))
        decoder = FrameDecoder()
        frames = []
        while not frames:
            chunk = raw.recv(65536)
            assert chunk, "server closed without an error frame"
            frames.extend(decoder.feed(chunk))
        assert frames[0]["op"] == "error"
        assert frames[0].get("code") == "protocol"
        # The server hangs up after a frame-boundary violation.
        assert raw.recv(65536) == b""
    finally:
        raw.close()


def test_interleaved_pipelined_responses_correlate_exactly_once(live_server):
    """Many interleaved quote/feedback requests on one connection: every
    tag is answered exactly once, no response is lost or duplicated."""
    import asyncio

    from repro.serving import AsyncQuoteClient

    async def _run():
        key = SessionKey("wire", "interleave")
        async with await AsyncQuoteClient.connect(
            unix_path=live_server.address
        ) as client:
            quote_futures = [
                client.submit_quote(key, [0.1 * (i + 1), 0.2, 0.3, 0.4])
                for i in range(20)
            ]
            results = await asyncio.gather(*quote_futures)
            feedback_futures = [
                client.submit_feedback(key, result["quote_id"], accepted=bool(i % 2))
                for i, result in enumerate(results)
            ]
            acks = await asyncio.gather(*feedback_futures)
            return results, acks

    results, acks = asyncio.run(_run())
    assert len({r["quote_id"] for r in results}) == 20
    assert all(a["op"] == "feedback_ok" for a in acks)
