"""Property-based and golden tests of the binary columnar wire format v2.

Three layers:

* **sans-IO codec** (hypothesis over the :mod:`repro.serving.wire` batch
  encoders): arbitrary batches of quotes / results / feedback events
  round-trip bit-exactly through encode → decode (floats travel as raw
  IEEE doubles, so equality is ``==``-on-bits, not approximate), at *any*
  chunk boundaries, interleaved freely with v1 JSON frames on the same
  decoder; truncated and corrupted v2 bodies raise :class:`ServingError`
  instead of yielding garbage.
* **negotiation**: a ``hello`` upgrades the connection on a v2-aware
  server (sync and async clients); against an old server that answers
  ``hello`` with an ``error`` frame the client silently stays on v1 and
  every operation keeps working.
* **golden replay**: all 8 golden families replayed closed-loop through
  the v2 socket path — sync client and async client — are bit-identical
  to the offline engine, the same equivalence contract the v1 tiers pin.

Profiles: CI runs with ``HYPOTHESIS_PROFILE=ci`` (few examples, no
deadline) so the property sweep cannot flake a shared runner on timing.
"""

import asyncio
import os
import socket
import struct
import sys
import threading

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "golden"))
import golden_specs

from repro.engine import prepare, simulate
from repro.exceptions import ServingError
from repro.serving import (
    WIRE_V1,
    WIRE_V2,
    AsyncQuoteClient,
    FrameDecoder,
    MicroBatchConfig,
    PricerRegistry,
    QuoteService,
    QuoteSocketClient,
    SessionKey,
    serve_closed_loop_async,
    serve_closed_loop_socket,
    start_frontend_thread,
)
from repro.serving.wire import (
    FRAME_HEADER,
    V2_HEADER,
    V2_MAGIC,
    encode_feedback_batch,
    encode_feedback_ok_batch,
    encode_frame,
    encode_quote_batch,
    encode_quote_result_batch,
)

settings.register_profile("ci", max_examples=25, deadline=None,
                          suppress_health_check=[HealthCheck.too_slow])
settings.register_profile("dev", max_examples=100, deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))


# --------------------------------------------------------------------------- #
# Strategies
# --------------------------------------------------------------------------- #

keys = st.text(min_size=1, max_size=16)
#: Finite and non-finite doubles alike — v2 carries raw IEEE bits, so NaN
#: and infinities must round-trip too (NaN compared via bit pattern).
doubles = st.floats(allow_nan=True, allow_infinity=True, width=64)
finite_doubles = st.floats(allow_nan=False, allow_infinity=False, width=64)
tags = st.one_of(st.none(), st.integers(min_value=-(2**62), max_value=2**62))

quote_items = st.builds(
    lambda app, segment, features, reserve, tag: {
        "op": "quote",
        "app": app,
        "segment": segment,
        "features": features,
        "reserve": reserve,
        **({"id": tag} if tag is not None else {}),
    },
    app=keys,
    segment=keys,
    features=st.lists(doubles, min_size=0, max_size=8),
    reserve=st.one_of(st.none(), finite_doubles),
    tag=tags,
)

result_items = st.builds(
    lambda app, segment, quote_id, link, posted, exploratory, skipped, rnd, lat, tag: {
        "op": "quote_result",
        "quote_id": quote_id,
        "app": app,
        "segment": segment,
        "link_price": link,
        "posted_price": posted,
        "exploratory": exploratory,
        "skipped": skipped,
        "round_index": rnd,
        "latency_seconds": lat,
        **({"id": tag} if tag is not None else {}),
    },
    app=keys,
    segment=keys,
    quote_id=st.integers(min_value=0, max_value=2**62),
    link=st.one_of(st.none(), doubles),
    posted=st.one_of(st.none(), doubles),
    exploratory=st.booleans(),
    skipped=st.booleans(),
    rnd=st.integers(min_value=-1, max_value=2**40),
    lat=finite_doubles.map(abs),
    tag=tags,
)

feedback_items = st.builds(
    lambda app, segment, quote_id, accepted, tag: {
        "op": "feedback",
        "app": app,
        "segment": segment,
        "quote_id": quote_id,
        "accepted": accepted,
        **({"id": tag} if tag is not None else {}),
    },
    app=keys,
    segment=keys,
    quote_id=st.integers(min_value=0, max_value=2**62),
    accepted=st.booleans(),
    tag=tags,
)


def _bits(value):
    """A float as its IEEE bit pattern (NaN-safe exact comparison)."""
    if value is None:
        return None
    return struct.pack(">d", float(value))


def _assert_quote_roundtrip(sent, received):
    assert received["op"] == "quote"
    assert received["app"] == sent["app"]
    assert received["segment"] == sent["segment"]
    assert received.get("id") == sent.get("id")
    assert _bits(received["reserve"]) == _bits(sent["reserve"])
    decoded = np.asarray(received["features"], dtype=np.float64)
    original = np.asarray(sent["features"], dtype=np.float64)
    assert decoded.shape == original.shape
    assert decoded.tobytes() == original.tobytes()  # bit-exact, NaN included


# --------------------------------------------------------------------------- #
# Sans-IO: codec round trips
# --------------------------------------------------------------------------- #


@given(items=st.lists(quote_items, min_size=0, max_size=6))
def test_quote_batch_roundtrip_bit_exact(items):
    frames = FrameDecoder().feed(encode_quote_batch(items))
    assert len(frames) == 1
    assert frames[0]["op"] == "quote_batch"
    assert len(frames[0]["items"]) == len(items)
    for sent, received in zip(items, frames[0]["items"]):
        _assert_quote_roundtrip(sent, received)


@given(items=st.lists(result_items, min_size=0, max_size=6))
def test_quote_result_batch_roundtrip_bit_exact(items):
    frames = FrameDecoder().feed(encode_quote_result_batch(items))
    assert len(frames) == 1
    assert frames[0]["op"] == "quote_result_batch"
    for sent, received in zip(items, frames[0]["items"]):
        assert received["op"] == "quote_result"
        assert received["quote_id"] == sent["quote_id"]
        assert received["app"] == sent["app"]
        assert received["segment"] == sent["segment"]
        assert _bits(received["link_price"]) == _bits(sent["link_price"])
        assert _bits(received["posted_price"]) == _bits(sent["posted_price"])
        assert received["exploratory"] == sent["exploratory"]
        assert received["skipped"] == sent["skipped"]
        assert received["round_index"] == sent["round_index"]
        assert _bits(received["latency_seconds"]) == _bits(sent["latency_seconds"])
        assert received.get("id") == sent.get("id")


@given(items=st.lists(feedback_items, min_size=0, max_size=6))
def test_feedback_batch_roundtrip_exact(items):
    frames = FrameDecoder().feed(encode_feedback_batch(items))
    assert len(frames) == 1
    assert frames[0]["op"] == "feedback_batch"
    for sent, received in zip(items, frames[0]["items"]):
        assert received["op"] == "feedback"
        assert received["app"] == sent["app"]
        assert received["segment"] == sent["segment"]
        assert received["quote_id"] == sent["quote_id"]
        assert received["accepted"] == sent["accepted"]
        assert received.get("id") == sent.get("id")


@given(batch_tags=st.lists(st.integers(min_value=-(2**62), max_value=2**62),
                           min_size=0, max_size=16))
def test_feedback_ok_batch_roundtrip(batch_tags):
    frames = FrameDecoder().feed(encode_feedback_ok_batch(batch_tags))
    assert len(frames) == 1
    assert [item["id"] for item in frames[0]["items"]] == batch_tags


@given(
    quote_batches=st.lists(st.lists(quote_items, min_size=1, max_size=3),
                           min_size=1, max_size=3),
    json_payload=st.dictionaries(st.text(max_size=6), st.integers(), max_size=3),
    data=st.data(),
)
def test_mixed_v1_v2_stream_at_arbitrary_chunk_boundaries(
    quote_batches, json_payload, data
):
    """v1 JSON and v2 binary frames interleaved on one stream decode in
    order at *any* split points — the NUL discriminator never misfires."""
    stream = b""
    expected_ops = []
    for batch in quote_batches:
        stream += encode_quote_batch(batch)
        expected_ops.append(("quote_batch", len(batch)))
        stream += encode_frame(json_payload)
        expected_ops.append((None, None))
    decoder = FrameDecoder()
    decoded = []
    position = 0
    while position < len(stream):
        size = data.draw(
            st.integers(min_value=1, max_value=len(stream) - position), label="chunk"
        )
        decoded.extend(decoder.feed(stream[position : position + size]))
        position += size
    assert decoder.buffered == 0
    assert len(decoded) == len(expected_ops)
    for frame, (op, count) in zip(decoded, expected_ops):
        if op is None:
            assert frame == json_payload
        else:
            assert frame["op"] == op
            assert len(frame["items"]) == count


@given(items=st.lists(quote_items, min_size=1, max_size=4), data=st.data())
def test_truncated_v2_body_raises_not_garbage(items, data):
    """Any proper prefix of a v2 body (past the length header) either stays
    buffered (frame incomplete) or raises on the completed-but-short frame —
    it never decodes to a wrong batch."""
    frame = encode_quote_batch(items)
    body = frame[FRAME_HEADER.size:]
    cut = data.draw(st.integers(min_value=1, max_value=len(body) - 1), label="cut")
    truncated = FRAME_HEADER.pack(cut) + body[:cut]
    decoder = FrameDecoder()
    try:
        frames = decoder.feed(truncated)
    except ServingError:
        return
    # A cut that lands exactly on a smaller valid encoding cannot exist:
    # the trailing-bytes check makes every strict prefix invalid.
    assert frames == [] or all(f.get("op") != "quote_batch" or
                               len(f["items"]) != len(items) for f in frames)


@given(garbage=st.binary(min_size=0, max_size=64))
def test_nul_prefixed_garbage_raises(garbage):
    """Any NUL-prefixed body that is not a well-formed v2 frame raises
    ServingError — bad magic, bad version, bad opcode, truncation."""
    body = b"\x00" + garbage
    if body.startswith(V2_MAGIC) and len(body) >= V2_HEADER.size:
        _m, version, opcode, _r, _count = V2_HEADER.unpack_from(body)
        if version == WIRE_V2 and opcode in (1, 2, 3, 4):
            return  # potentially well-formed; covered by roundtrip tests
    decoder = FrameDecoder()
    with pytest.raises(ServingError):
        decoder.feed(FRAME_HEADER.pack(len(body)) + body)


def test_trailing_bytes_after_valid_body_raise():
    frame = encode_feedback_ok_batch([1, 2, 3])
    body = frame[FRAME_HEADER.size:] + b"\x00"
    with pytest.raises(ServingError):
        FrameDecoder().feed(FRAME_HEADER.pack(len(body)) + body)


def test_key_index_out_of_range_raises():
    frame = encode_quote_batch(
        [{"op": "quote", "app": "a", "segment": "b", "features": [1.0], "reserve": None}]
    )
    body = bytearray(frame[FRAME_HEADER.size:])
    # The key table of this frame is: u16 count=1, then "a" and "b" with u16
    # lengths; the per-item key index follows. Corrupt it to 7.
    offset = V2_HEADER.size + 2 + (2 + 1) + (2 + 1)
    body[offset:offset + 2] = struct.pack(">H", 7)
    with pytest.raises(ServingError):
        FrameDecoder().feed(FRAME_HEADER.pack(len(body)) + bytes(body))


# --------------------------------------------------------------------------- #
# Negotiation
# --------------------------------------------------------------------------- #


def _immediate_config():
    return MicroBatchConfig(max_batch=1, max_wait_seconds=0.0)


def _service(family, model, theta):
    return QuoteService(
        PricerRegistry(lambda _key: (model, golden_specs.build_pricer(family, theta))),
        config=_immediate_config(),
    )


def _offline(family):
    model, batch, theta = golden_specs.build_market(family)
    materialized = prepare(model, batch)
    result = simulate(
        model, golden_specs.build_pricer(family, theta), materialized=materialized
    )
    return model, theta, materialized, result


def test_sync_client_negotiates_v2_and_serves(tmp_path):
    family = "ellipsoid-reserve"
    model, theta, materialized, _ = _offline(family)
    handle = start_frontend_thread(
        _service(family, model, theta), unix_path=str(tmp_path / "neg.sock")
    )
    try:
        with QuoteSocketClient(unix_path=handle.address, wire=2) as client:
            assert client.wire == WIRE_V2
            key = SessionKey("golden", family)
            result = client.quote(key, materialized.mapped_features[0], reserve=None)
            assert result["op"] == "quote_result"
            client.feedback(key, result["quote_id"], accepted=False)
            client.ping()  # housekeeping stays JSON and still works
        # The wire counters saw binary traffic.
        wire_stats = handle.frontend.wire_stats
        assert wire_stats.frames_in_v2 >= 2
        assert wire_stats.frames_out_v2 >= 2
    finally:
        handle.stop()


def test_async_client_negotiates_v2(tmp_path):
    family = "ellipsoid-reserve"
    model, theta, materialized, _ = _offline(family)
    handle = start_frontend_thread(
        _service(family, model, theta), unix_path=str(tmp_path / "aneg.sock")
    )

    async def _run():
        async with await AsyncQuoteClient.connect(
            unix_path=handle.address, wire=2
        ) as client:
            assert client.wire == WIRE_V2
            key = SessionKey("golden", family)
            result = await client.quote(key, materialized.mapped_features[0])
            await client.feedback(key, result["quote_id"], accepted=False)
            return result

    try:
        result = asyncio.run(_run())
        assert result["op"] == "quote_result"
    finally:
        handle.stop()


def _old_server(unix_path, ready):
    """A pre-v2 server: every hello is answered with an error frame."""
    server = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    server.bind(unix_path)
    server.listen(1)
    ready.set()
    conn, _ = server.accept()
    decoder = FrameDecoder()
    try:
        while True:
            chunk = conn.recv(65536)
            if not chunk:
                break
            for frame in decoder.feed(chunk):
                op = frame.get("op")
                if op == "ping":
                    conn.sendall(
                        encode_frame({"op": "pong", "id": frame.get("id")})
                    )
                else:
                    conn.sendall(
                        encode_frame(
                            {
                                "op": "error",
                                "error": "unknown op %r" % op,
                                "id": frame.get("id"),
                            }
                        )
                    )
    except OSError:
        pass
    finally:
        conn.close()
        server.close()


def test_clients_fall_back_to_v1_against_old_server(tmp_path):
    """A server that answers ``hello`` with an error frame (the pre-v2
    behaviour for an unknown op) leaves both clients on v1, still working."""
    path = str(tmp_path / "old.sock")
    ready = threading.Event()
    thread = threading.Thread(target=_old_server, args=(path, ready), daemon=True)
    thread.start()
    assert ready.wait(5)
    with QuoteSocketClient(unix_path=path, wire=2) as client:
        assert client.wire == WIRE_V1
        client.ping()
    thread.join(5)

    ready2 = threading.Event()
    path2 = str(tmp_path / "old2.sock")
    thread2 = threading.Thread(target=_old_server, args=(path2, ready2), daemon=True)
    thread2.start()
    assert ready2.wait(5)

    async def _run():
        async with await AsyncQuoteClient.connect(unix_path=path2, wire=2) as client:
            assert client.wire == WIRE_V1
            await client.ping()

    asyncio.run(_run())
    thread2.join(5)


def test_v1_client_unchanged_against_v2_server(tmp_path):
    """A plain v1 client (no hello) works against the new server and sees
    pure JSON responses."""
    family = "ellipsoid-reserve"
    model, theta, materialized, _ = _offline(family)
    handle = start_frontend_thread(
        _service(family, model, theta), unix_path=str(tmp_path / "v1.sock")
    )
    try:
        with QuoteSocketClient(unix_path=handle.address) as client:
            assert client.wire == WIRE_V1
            key = SessionKey("golden", family)
            result = client.quote(key, materialized.mapped_features[0], reserve=None)
            client.feedback(key, result["quote_id"], accepted=False)
        assert handle.frontend.wire_stats.frames_out_v2 == 0
    finally:
        handle.stop()


# --------------------------------------------------------------------------- #
# Golden replay through the v2 socket path
# --------------------------------------------------------------------------- #

COLUMNS = ("link_prices", "posted_prices", "sold", "skipped", "exploratory", "regrets")


def _assert_identical(actual, expected, context=""):
    for name in COLUMNS:
        left, right = getattr(actual, name), getattr(expected, name)
        assert np.array_equal(left, right, equal_nan=left.dtype.kind == "f"), (
            "%s column %r diverged" % (context, name)
        )


@pytest.mark.parametrize("family", sorted(golden_specs.GOLDEN_SPECS))
def test_golden_families_bit_identical_through_v2_sync_client(tmp_path, family):
    model, theta, materialized, offline = _offline(family)
    key = SessionKey(app="golden", segment=family)
    handle = start_frontend_thread(
        _service(family, model, theta),
        unix_path=str(tmp_path / "v2sync.sock"),
        drain_interval=0.0005,
    )
    try:
        with QuoteSocketClient(unix_path=handle.address, wire=2) as client:
            assert client.wire == WIRE_V2
            online = serve_closed_loop_socket(client, key, materialized)
    finally:
        handle.stop()
    _assert_identical(online.transcript, offline.transcript, context=family)


@pytest.mark.parametrize("family", sorted(golden_specs.GOLDEN_SPECS))
def test_golden_families_bit_identical_through_v2_async_client(tmp_path, family):
    model, theta, materialized, offline = _offline(family)
    key = SessionKey(app="golden", segment=family)
    handle = start_frontend_thread(
        _service(family, model, theta),
        unix_path=str(tmp_path / "v2async.sock"),
        drain_interval=0.0005,
    )

    async def _replay():
        async with await AsyncQuoteClient.connect(
            unix_path=handle.address, wire=2, coalesce_writes=True
        ) as client:
            assert client.wire == WIRE_V2
            return await serve_closed_loop_async(client, key, materialized)

    try:
        online = asyncio.run(_replay())
    finally:
        handle.stop()
    _assert_identical(online.transcript, offline.transcript, context=family)


def test_batch_submit_primitives_roundtrip(tmp_path):
    """submit_quotes/submit_feedbacks fire whole batches as single frames
    and every future resolves exactly once."""
    family = "ellipsoid-reserve"
    model, theta, materialized, _ = _offline(family)
    service = QuoteService(
        PricerRegistry(lambda _key: (model, golden_specs.build_pricer(family, theta))),
        config=MicroBatchConfig(max_batch=8, max_wait_seconds=0.0005),
    )
    handle = start_frontend_thread(
        service, unix_path=str(tmp_path / "batch.sock"), drain_interval=0.0005
    )

    async def _run():
        key = SessionKey("golden", family)
        async with await AsyncQuoteClient.connect(
            unix_path=handle.address, wire=2
        ) as client:
            futures = client.submit_quotes(
                (key, materialized.mapped_features[i], None) for i in range(12)
            )
            results = await asyncio.gather(*futures)
            acks = await asyncio.gather(
                *client.submit_feedbacks(
                    (key, r["quote_id"], bool(i % 2)) for i, r in enumerate(results)
                )
            )
            return results, acks

    try:
        results, acks = asyncio.run(_run())
    finally:
        handle.stop()
    assert len({r["quote_id"] for r in results}) == 12
    assert all(r["op"] == "quote_result" for r in results)
    assert all(a["op"] == "feedback_ok" for a in acks)
