"""Micro-batch window semantics and the coalesced feedback path."""

import numpy as np
import pytest

from repro.core.baselines import RiskAversePricer
from repro.core.models import LinearModel
from repro.core.pricing import make_pricer
from repro.exceptions import ServingError
from repro.serving import (
    FeedbackEvent,
    MicroBatchConfig,
    PricerRegistry,
    QuoteRequest,
    QuoteService,
    SessionKey,
)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def advance(self, seconds):
        self.now += seconds

    def __call__(self):
        return self.now


class CountingRiskAverse(RiskAversePricer):
    """Instrumented stateless pricer: counts batched protocol entry points."""

    def __init__(self):
        super().__init__()
        self.propose_calls = 0
        self.propose_batch_calls = 0
        self.update_batch_calls = 0

    def propose(self, features, reserve=None):
        self.propose_calls += 1
        return super().propose(features, reserve=reserve)

    def propose_batch(self, features, reserves):
        self.propose_batch_calls += 1
        return super().propose_batch(features, reserves)

    def update_batch(self, decisions, accepted):
        self.update_batch_calls += 1
        return super().update_batch(decisions, accepted)


def _model(dimension=3):
    return LinearModel(np.full(dimension, 1.0))


def _service(pricer_factory, max_batch=8, max_wait_seconds=0.010):
    clock = FakeClock()
    registry = PricerRegistry(lambda key: (_model(), pricer_factory()))
    service = QuoteService(
        registry,
        config=MicroBatchConfig(max_batch=max_batch, max_wait_seconds=max_wait_seconds),
        clock=clock,
    )
    return service, clock


def _request(key, reserve=0.4):
    return QuoteRequest(key=key, features=np.array([0.5, 0.3, 0.2]), reserve=reserve)


def test_window_holds_until_time_bound():
    service, clock = _service(CountingRiskAverse)
    key = SessionKey("app", "s")
    for _ in range(3):
        service.submit(_request(key))
    assert service.poll() == []  # window open: under both bounds
    assert service.queued == 3
    clock.advance(0.011)
    responses = service.poll()
    assert len(responses) == 3
    assert service.queued == 0


def test_window_closes_on_size_bound():
    service, clock = _service(CountingRiskAverse, max_batch=4)
    key = SessionKey("app", "s")
    for _ in range(4):
        service.submit(_request(key))
    # No time has passed, but the size bound fires the drain.
    responses = service.poll()
    assert len(responses) == 4


def test_stateless_session_coalesces_into_one_propose_batch():
    service, clock = _service(CountingRiskAverse, max_batch=4)
    key = SessionKey("app", "s")
    quote_ids = [service.submit(_request(key, reserve=0.3 + 0.1 * i)) for i in range(4)]
    responses = service.poll()
    pricer = service.registry.peek(key).pricer
    assert pricer.propose_batch_calls == 1
    assert pricer.propose_calls == 0
    assert service.stats.batched_proposals == 1
    # Element-wise identical to the sequential protocol: the risk-averse
    # baseline posts the reserve.
    assert [r.link_price for r in responses] == [0.3 + 0.1 * i for i in range(4)]
    assert [r.round_index for r in responses] == [0, 1, 2, 3]

    # The coalesced feedback path goes through update_batch, once.
    events = [
        FeedbackEvent(key=key, quote_id=quote_id, accepted=True) for quote_id in quote_ids
    ]
    service.feedback_batch(events)
    assert pricer.update_batch_calls == 1
    assert not service.registry.peek(key).pending
    assert service.stats.feedback_applied == 4


def test_learning_session_proposes_sequentially():
    service, clock = _service(
        lambda: make_pricer(dimension=3, radius=3.0, epsilon=0.1), max_batch=3
    )
    key = SessionKey("app", "ellipsoid")
    for _ in range(3):
        service.submit(_request(key))
    responses = service.poll()
    assert len(responses) == 3
    # Feedback-dependent pricers have no propose_batch; the drain used the
    # object protocol and every quote has a pending decision.
    assert len(service.registry.peek(key).pending) == 3
    service.feedback_batch(
        [FeedbackEvent(key=key, quote_id=r.quote_id, accepted=False) for r in responses]
    )
    assert not service.registry.peek(key).pending


def test_drain_groups_by_session_preserving_order():
    service, clock = _service(CountingRiskAverse, max_batch=8)
    key_a, key_b = SessionKey("app", "a"), SessionKey("app", "b")
    order = [key_a, key_b, key_a, key_b]
    ids = [service.submit(_request(key)) for key in order]
    responses = service.flush()
    assert len(responses) == 4
    # Grouped by session, first-come order within each group.
    assert [r.key for r in responses] == [key_a, key_a, key_b, key_b]
    assert [r.quote_id for r in responses] == [ids[0], ids[2], ids[1], ids[3]]
    # One columnar call per session, not per request.
    assert service.registry.peek(key_a).pricer.propose_batch_calls == 1
    assert service.registry.peek(key_b).pricer.propose_batch_calls == 1


def test_quote_returns_own_response_and_parks_the_rest():
    service, clock = _service(CountingRiskAverse)
    key = SessionKey("app", "s")
    parked_id = service.submit(_request(key))
    response = service.quote(_request(key, reserve=0.9))
    assert response.link_price == 0.9
    # The co-drained request is waiting in the outbox.
    rest = service.poll()
    assert [r.quote_id for r in rest] == [parked_id]


def test_per_quote_latency_includes_queueing_delay():
    service, clock = _service(CountingRiskAverse, max_wait_seconds=0.005)
    key = SessionKey("app", "s")
    service.submit(_request(key))
    clock.advance(0.006)
    (response,) = service.poll()
    assert response.latency_seconds == pytest.approx(0.006)
    assert service.stats.latency.count == 1


def test_feedback_for_unknown_quote_raises():
    service, clock = _service(CountingRiskAverse)
    key = SessionKey("app", "s")
    response = service.quote(_request(key))
    service.feedback(FeedbackEvent(key=key, quote_id=response.quote_id, accepted=True))
    with pytest.raises(ServingError):
        service.feedback(FeedbackEvent(key=key, quote_id=response.quote_id, accepted=True))
    with pytest.raises(ServingError):
        service.feedback(FeedbackEvent(key=key, quote_id=999, accepted=False))


def test_feedback_batch_rejects_bad_ids_without_stranding_valid_outcomes():
    """A bad quote id anywhere in the window must leave every pending
    decision settleable — no half-applied group."""
    service, clock = _service(CountingRiskAverse, max_batch=4)
    key = SessionKey("app", "s")
    ids = [service.submit(_request(key)) for _ in range(3)]
    service.flush()
    session = service.registry.peek(key)
    assert len(session.pending) == 3

    bad = [FeedbackEvent(key=key, quote_id=ids[0], accepted=True),
           FeedbackEvent(key=key, quote_id=999, accepted=True)]
    with pytest.raises(ServingError):
        service.feedback_batch(bad)
    assert len(session.pending) == 3  # nothing was popped
    assert session.pricer.update_batch_calls == 0

    duplicated = [FeedbackEvent(key=key, quote_id=ids[0], accepted=True),
                  FeedbackEvent(key=key, quote_id=ids[0], accepted=False)]
    with pytest.raises(ServingError):
        service.feedback_batch(duplicated)
    assert len(session.pending) == 3

    service.feedback_batch(
        [FeedbackEvent(key=key, quote_id=quote_id, accepted=True) for quote_id in ids]
    )
    assert not session.pending


def test_drain_failure_requeues_untouched_groups_and_names_lost_quotes():
    class FlakyPricer(CountingRiskAverse):
        supports_batch_propose = False  # force the sequential path

        def propose(self, features, reserve=None):
            if self.propose_calls == 1:
                self.propose_calls += 1
                raise RuntimeError("pricer blew up")
            return super().propose(features, reserve=reserve)

    clock = FakeClock()
    built = {}

    def factory(key):
        built[key] = FlakyPricer() if key.segment == "flaky" else CountingRiskAverse()
        return _model(), built[key]

    service = QuoteService(
        PricerRegistry(factory),
        config=MicroBatchConfig(max_batch=16, max_wait_seconds=0.01),
        clock=clock,
    )
    flaky, healthy = SessionKey("app", "flaky"), SessionKey("app", "healthy")
    ids = [service.submit(_request(key)) for key in (flaky, flaky, flaky, healthy, healthy)]
    with pytest.raises(ServingError) as excinfo:
        service.flush()
    # The first flaky quote was served before the failure; the two unserved
    # flaky quote ids are named in the error.
    assert str(ids[1]) in str(excinfo.value) and str(ids[2]) in str(excinfo.value)
    responses = service.poll()  # the emitted response survives in the outbox
    assert [r.quote_id for r in responses] == [ids[0]]
    # The healthy group went back to the queue, in order, and serves cleanly.
    assert service.queued == 2
    clock.advance(0.02)
    assert [r.quote_id for r in service.poll()] == [ids[3], ids[4]]


class ThrowingLinkModel(LinearModel):
    """A value model whose link translation blows up on the N-th call."""

    def __init__(self, theta, fail_on_call):
        super().__init__(theta)
        self.fail_on_call = fail_on_call
        self.link_calls = 0

    def link(self, z):
        self.link_calls += 1
        if self.link_calls == self.fail_on_call:
            raise RuntimeError("link translation blew up")
        return super().link(z)


def test_batched_drain_failure_counts_emitted_quotes():
    """A ``model.link`` failure mid-emission of a *batched* group must report
    only the unserved quotes as lost — the already-emitted responses stay in
    the outbox, their pending entries stay settleable, and the served counter
    matches the emissions."""
    clock = FakeClock()
    model = ThrowingLinkModel(np.full(3, 1.0), fail_on_call=3)
    registry = PricerRegistry(lambda key: (model, CountingRiskAverse()))
    service = QuoteService(
        registry,
        config=MicroBatchConfig(max_batch=16, max_wait_seconds=0.01),
        clock=clock,
    )
    key = SessionKey("app", "s")
    ids = [service.submit(_request(key, reserve=0.3 + 0.1 * i)) for i in range(4)]

    with pytest.raises(ServingError) as excinfo:
        service.flush()
    error = excinfo.value
    # The batch proposal succeeded; emission 3 of 4 failed in the link call.
    assert registry.peek(key).pricer.propose_batch_calls == 1
    assert error.lost_quote_ids == [ids[2], ids[3]]
    assert error.key == key
    assert service.stats.quotes_served == 2

    # The two emitted responses survive and their pending entries settle.
    responses = service.poll()
    assert [r.quote_id for r in responses] == [ids[0], ids[1]]
    session = registry.peek(key)
    assert sorted(session.pending) == [ids[0], ids[1]]
    service.feedback_batch(
        [FeedbackEvent(key=key, quote_id=quote_id, accepted=True) for quote_id in ids[:2]]
    )
    assert not session.pending


class AlwaysFailingPricer(CountingRiskAverse):
    supports_batch_propose = False

    def propose(self, features, reserve=None):
        raise RuntimeError("pricer always fails")


def _flaky_healthy_service():
    clock = FakeClock()

    def factory(key):
        pricer = AlwaysFailingPricer() if key.segment == "flaky" else CountingRiskAverse()
        return _model(), pricer

    service = QuoteService(
        PricerRegistry(factory),
        config=MicroBatchConfig(max_batch=16, max_wait_seconds=0.01),
        clock=clock,
    )
    return service, clock, SessionKey("app", "flaky"), SessionKey("app", "healthy")


def test_quote_is_cancelled_when_an_earlier_group_fails():
    """Drain order: the failing group precedes the caller's.  The caller's
    requeued request must be cancelled and named in the error — never served
    later into the outbox with nobody collecting it."""
    service, clock, flaky, healthy = _flaky_healthy_service()
    flaky_id = service.submit(_request(flaky))

    request = _request(healthy)
    with pytest.raises(ServingError) as excinfo:
        service.quote(request)
    error = excinfo.value
    # The caller's cancelled quote leads the lost list; the failing group's
    # quote (also never served) is reported right behind it.
    cancelled_id = error.lost_quote_ids[0]
    assert cancelled_id != flaky_id
    assert flaky_id in error.lost_quote_ids
    assert str(cancelled_id) in str(error)
    assert error.response is None

    # Cancelled means gone: nothing queued, and no orphan response ever
    # surfaces on a later drain.
    assert service.queued == 0
    clock.advance(1.0)
    assert service.poll() == []

    # Retrying the *same* request object is safe (submit never mutated it)
    # and now succeeds — the flaky group is no longer in front.
    assert request.quote_id is None
    response = service.quote(request)
    assert response.key == healthy
    assert response.quote_id not in (flaky_id, cancelled_id)


def test_quote_served_before_a_later_group_fails_rides_on_the_error():
    """Drain order: the caller's group precedes the failing one.  The drain
    error must hand the caller's already-emitted response over instead of
    stranding it in the outbox."""
    service, clock, flaky, healthy = _flaky_healthy_service()
    parked_id = service.submit(_request(healthy))
    flaky_id = service.submit(_request(flaky))

    with pytest.raises(ServingError) as excinfo:
        service.quote(_request(healthy, reserve=0.7))
    error = excinfo.value
    assert error.lost_quote_ids == [flaky_id]
    assert error.response is not None
    assert error.response.link_price == 0.7
    assert error.response.quote_id not in (parked_id, flaky_id)

    # Only the parked co-drained response remains for poll collectors.
    assert [r.quote_id for r in service.poll()] == [parked_id]


def test_quote_cancellation_with_same_key_request_ahead_in_queue():
    """Cancelling the synchronous caller's requeued request must work even
    when another request of the *same key* sits ahead of it in the queue
    (index-based removal — equality would compare numpy feature arrays)."""
    service, clock, flaky, healthy = _flaky_healthy_service()
    service.submit(_request(flaky))
    parked_id = service.submit(_request(healthy))

    with pytest.raises(ServingError) as excinfo:
        service.quote(_request(healthy, reserve=0.8))
    error = excinfo.value
    cancelled_id = error.lost_quote_ids[0]
    assert parked_id not in error.lost_quote_ids
    assert error.requeued_quote_ids == [parked_id]

    # Only the parked request remains queued; the cancelled one never
    # surfaces again.
    assert service.queued == 1
    clock.advance(1.0)
    assert [r.quote_id for r in service.poll()] == [parked_id]
    assert cancelled_id not in [r.quote_id for r in service.poll()]


def test_drain_error_names_requeued_quote_ids():
    service, clock, flaky, healthy = _flaky_healthy_service()
    ids = [service.submit(_request(key)) for key in (flaky, healthy, healthy)]
    with pytest.raises(ServingError) as excinfo:
        service.flush()
    error = excinfo.value
    assert error.lost_quote_ids == [ids[0]]
    assert error.requeued_quote_ids == [ids[1], ids[2]]
    assert service.queued == 2
    clock.advance(1.0)
    assert [r.quote_id for r in service.poll()] == [ids[1], ids[2]]


def test_submit_leaves_the_caller_request_unmutated():
    """Resubmitting one request object must yield independent quotes — the
    service stamps ids on private copies, never on the caller's object."""
    service, clock = _service(CountingRiskAverse, max_batch=8)
    key = SessionKey("app", "s")
    request = _request(key)
    clock.advance(0.5)
    first = service.submit(request)
    second = service.submit(request)
    assert first != second
    assert request.quote_id is None  # untouched
    assert request.enqueued_at == 0.0  # untouched

    responses = service.flush()
    assert sorted(r.quote_id for r in responses) == [first, second]
    session = service.registry.peek(key)
    assert sorted(session.pending) == [first, second]
    service.feedback_batch(
        [FeedbackEvent(key=key, quote_id=quote_id, accepted=True) for quote_id in (first, second)]
    )
    assert not session.pending


def test_backward_clock_latency_is_clamped_consistently():
    """An injected clock stepping backwards must not produce a negative
    response latency, and the response must agree with the recorded stats."""
    service, clock = _service(CountingRiskAverse)
    key = SessionKey("app", "s")
    clock.advance(5.0)
    service.submit(_request(key))
    clock.advance(-1.0)  # clock artifact: drain observes an earlier time
    (response,) = service.flush()
    assert response.latency_seconds == 0.0
    assert service.stats.latency.samples_seconds == [0.0]


def test_feedback_requires_a_resident_session():
    service, clock = _service(CountingRiskAverse)
    with pytest.raises(ServingError):
        service.feedback(
            FeedbackEvent(key=SessionKey("app", "never-served"), quote_id=0, accepted=True)
        )
    assert service.registry.resident_count == 0  # the lookup created nothing


def test_config_validation():
    with pytest.raises(ValueError):
        MicroBatchConfig(max_batch=0)
    with pytest.raises(ValueError):
        MicroBatchConfig(max_wait_seconds=-1.0)
