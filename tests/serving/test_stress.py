"""Concurrency/fault stress tier for the socket frontend.

The async serving path must stay correct and **bounded** under hostile
concurrency: many pipelined clients, clients that stop reading, clients
that disconnect mid-flight, and shutdown with quotes in flight.  The
assertions are structural, not eyeballed — the waiter map and the
per-connection budgets are proved bounded through the frontend's own
counters (``peak_waiters`` is recorded under the same lock as the
admission check), and quote ids are collected end-to-end to prove nothing
is stranded or double-served.

The backend here is a deliberately dumb echo pricer (optionally slow) —
the stress tier pins the *transport and accounting* layer; transcript
exactness is pinned by the golden tiers.
"""

import asyncio
import threading
import time

import numpy as np
import pytest

from repro.core.base import PricingDecision
from repro.exceptions import BackpressureError, ServingError
from repro.serving import (
    AsyncQuoteClient,
    MicroBatchConfig,
    PricerRegistry,
    QuoteService,
    QuoteSocketClient,
    SessionKey,
    start_frontend_thread,
)
from repro.serving.frontend import FRAME_HEADER, encode_frame


class EchoModel:
    def link(self, price):
        return price


class EchoPricer:
    """Stateless stub: prices every query at its first feature (optionally slowly)."""

    supports_batch_propose = False

    def __init__(self, delay: float = 0.0):
        self.rounds_seen = 0
        self.delay = delay

    def propose(self, features, reserve=None):
        if self.delay:
            time.sleep(self.delay)
        index = self.rounds_seen
        self.rounds_seen += 1
        price = float(np.atleast_1d(np.asarray(features, dtype=float))[0])
        return PricingDecision(
            features=np.atleast_1d(np.asarray(features, dtype=float)),
            reserve=reserve,
            lower_bound=0.0,
            upper_bound=float("inf"),
            price=price,
            exploratory=False,
            skipped=False,
            round_index=index,
        )

    def update(self, decision, accepted):
        pass


def _service(delay: float = 0.0, max_batch: int = 16) -> QuoteService:
    registry = PricerRegistry(lambda _key: (EchoModel(), EchoPricer(delay=delay)))
    return QuoteService(
        registry, config=MicroBatchConfig(max_batch=max_batch, max_wait_seconds=0.0)
    )


def _start(tmp_path, service, **frontend_options):
    return start_frontend_thread(
        service,
        unix_path=str(tmp_path / "stress.sock"),
        drain_interval=0.0005,
        **frontend_options,
    )


KEY = SessionKey("stress", "segment")


# --------------------------------------------------------------------------- #
# Pipelined clients: threads + asyncio, exact id accounting
# --------------------------------------------------------------------------- #


def test_pipelined_and_threaded_clients_no_stranded_or_double_served(tmp_path):
    """3 pipelined asyncio clients + 2 blocking thread clients hammer one
    frontend; every quote is answered exactly once and the waiter map ends
    empty."""
    service = _service()
    handle = _start(tmp_path, service)
    quotes_per_async_client, async_clients = 60, 3
    quotes_per_thread, threads = 40, 2
    seen_lock = threading.Lock()
    seen_ids = []

    async def _async_session(worker: int):
        key = SessionKey("stress", "async-%d" % worker)
        async with await AsyncQuoteClient.connect(unix_path=handle.address) as client:
            futures = [
                client.submit_quote(key, [float(i), 1.0], reserve=None)
                for i in range(quotes_per_async_client)
            ]
            results = await asyncio.gather(*futures)
            await asyncio.gather(
                *[
                    client.submit_feedback(key, r["quote_id"], accepted=True)
                    for r in results
                ]
            )
            with seen_lock:
                seen_ids.extend(r["quote_id"] for r in results)

    async def _async_main():
        await asyncio.gather(*[_async_session(w) for w in range(async_clients)])

    def _thread_session(worker: int):
        key = SessionKey("stress", "thread-%d" % worker)
        with QuoteSocketClient(unix_path=handle.address) as client:
            for i in range(quotes_per_thread):
                result = client.quote(key, [float(i), 2.0])
                client.feedback(key, result["quote_id"], accepted=False)
                with seen_lock:
                    seen_ids.append(result["quote_id"])

    workers = [
        threading.Thread(target=_thread_session, args=(w,)) for w in range(threads)
    ]
    for worker in workers:
        worker.start()
    try:
        asyncio.run(_async_main())
    finally:
        for worker in workers:
            worker.join(timeout=30)
    total = async_clients * quotes_per_async_client + threads * quotes_per_thread
    try:
        assert len(seen_ids) == total
        # No double-serving: every answered quote id is unique.
        assert len(set(seen_ids)) == total
        # No stranding: every submitted quote was served and settled.
        assert service.stats.quotes_served == total
        assert service.stats.feedback_applied == total
        # The waiter map drained completely — nothing leaked.
        assert handle.frontend.waiter_count == 0
        assert handle.frontend.stats.rejected == 0
    finally:
        handle.stop()


# --------------------------------------------------------------------------- #
# Bounded waiter map and per-connection budgets
# --------------------------------------------------------------------------- #


def _window_service(max_wait_seconds: float = 0.2) -> QuoteService:
    """A service whose micro-batch window stays open for a while.

    Admitted quotes accumulate in the waiter map until the time bound
    closes the window, which makes the backpressure bounds deterministic to
    exercise: a pipelined flood races far ahead of the first drain.
    """
    registry = PricerRegistry(lambda _key: (EchoModel(), EchoPricer()))
    return QuoteService(
        registry,
        config=MicroBatchConfig(max_batch=10_000, max_wait_seconds=max_wait_seconds),
    )


def test_waiter_map_bound_is_provably_enforced(tmp_path):
    """Flood an open micro-batch window with far more pipelined quotes than
    ``max_waiters``: exactly the excess is rejected with BackpressureError,
    the recorded peak never exceeds the bound, and every admitted quote is
    still served once the window closes."""
    bound, flood = 6, 48
    service = _window_service()
    handle = _start(tmp_path, service, max_waiters=bound)

    async def _flood():
        async with await AsyncQuoteClient.connect(unix_path=handle.address) as client:
            futures = [
                client.submit_quote(KEY, [float(i)]) for i in range(flood)
            ]
            return await asyncio.gather(*futures, return_exceptions=True)

    try:
        outcomes = asyncio.run(_flood())
        served = [o for o in outcomes if isinstance(o, dict)]
        rejected = [o for o in outcomes if isinstance(o, BackpressureError)]
        unexpected = [
            o for o in outcomes if not isinstance(o, (dict, BackpressureError))
        ]
        assert unexpected == []
        assert len(served) + len(rejected) == flood
        assert len(rejected) > 0  # the flood genuinely hit the bound
        # Bounded, asserted, not eyeballed: the peak is recorded under the
        # admission lock, so this is exact.
        assert handle.frontend.stats.peak_waiters <= bound
        assert handle.frontend.stats.rejected_waiter_map == len(rejected)
        # Every admitted quote was served exactly once.
        assert len({r["quote_id"] for r in served}) == len(served)
        assert handle.frontend.waiter_count == 0
    finally:
        handle.stop()


def test_per_connection_budget_spares_other_connections(tmp_path):
    """One greedy pipelined connection exhausts its budget and is rejected;
    a second connection on the same frontend is still admitted."""
    budget, flood = 4, 24
    service = _window_service()
    handle = _start(
        tmp_path, service, max_outstanding_per_connection=budget, max_waiters=1024
    )

    async def _run():
        greedy = await AsyncQuoteClient.connect(unix_path=handle.address)
        polite = await AsyncQuoteClient.connect(unix_path=handle.address)
        try:
            futures = [greedy.submit_quote(KEY, [float(i)]) for i in range(flood)]
            # The polite client's single quote must be admitted even while
            # the greedy connection is saturated (its own budget is fresh).
            polite_key = SessionKey("stress", "polite")
            polite_result = await polite.quote(polite_key, [7.0])
            outcomes = await asyncio.gather(*futures, return_exceptions=True)
            return polite_result, outcomes
        finally:
            await greedy.close()
            await polite.close()

    try:
        polite_result, outcomes = asyncio.run(_run())
        assert polite_result["quote_id"] >= 0
        rejected = [o for o in outcomes if isinstance(o, BackpressureError)]
        served = [o for o in outcomes if isinstance(o, dict)]
        assert len(served) + len(rejected) == flood
        assert len(served) <= budget + 1  # admitted while below the budget only
        assert len(rejected) > 0
        assert handle.frontend.stats.rejected_connection_budget == len(rejected)
        assert handle.frontend.waiter_count == 0
    finally:
        handle.stop()


# --------------------------------------------------------------------------- #
# Slow readers and mid-flight disconnects
# --------------------------------------------------------------------------- #


def _wait_until(predicate, timeout=10.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


def test_slow_reader_is_aborted_and_server_survives(tmp_path):
    """A client that submits thousands of quotes but never reads must be
    disconnected once its responses exceed the write-buffer bound — and a
    healthy client on the same frontend keeps working."""
    service = _service()
    handle = _start(tmp_path, service, max_write_buffer_bytes=32 * 1024)
    import socket as socket_module

    slow = socket_module.socket(socket_module.AF_UNIX, socket_module.SOCK_STREAM)
    slow.connect(handle.address)
    slow.settimeout(30)
    try:
        # ~4000 responses at ~150B apiece ≫ kernel socket buffer + 32 KiB
        # transport bound, so the abort must trigger; the client never reads.
        payload = {"op": "quote", "app": "stress", "segment": "slow",
                   "features": [1.0, 2.0], "reserve": None}
        try:
            for index in range(4000):
                payload["id"] = index
                slow.sendall(encode_frame(payload))
        except (BrokenPipeError, ConnectionResetError):
            pass  # aborted mid-flood — exactly the point
        assert _wait_until(lambda: handle.frontend.stats.slow_reader_disconnects == 1)
        # Its waiters were dropped, not leaked.
        assert _wait_until(lambda: handle.frontend.waiter_count == 0)
        with QuoteSocketClient(unix_path=handle.address) as healthy:
            healthy.ping()
            result = healthy.quote(SessionKey("stress", "healthy"), [3.0])
            stats = healthy.stats()
            assert stats["frontend"]["slow_reader_disconnects"] == 1
            assert result["posted_price"] == 3.0
    finally:
        slow.close()
        handle.stop()


def test_mid_flight_disconnect_cleans_waiters(tmp_path):
    """A client that submits quotes and hangs up before reading leaves no
    waiter-map residue; the backend still serves (and discards) them."""
    service = _service(delay=0.01)
    handle = _start(tmp_path, service)

    async def _hit_and_run():
        client = await AsyncQuoteClient.connect(unix_path=handle.address)
        futures = [client.submit_quote(KEY, [float(i)]) for i in range(5)]
        await client.drain()  # frames actually on the wire
        # Wait until the frontend registered at least one waiter, so the
        # disconnect genuinely races in-flight quotes.
        for _ in range(1000):
            if handle.frontend.waiter_count > 0:
                break
            await asyncio.sleep(0.001)
        await client.close()
        # Every abandoned future must be resolved (served or failed by the
        # hang-up) — retrieving them also keeps the event loop quiet.
        outcomes = await asyncio.gather(*futures, return_exceptions=True)
        assert all(isinstance(o, (dict, ServingError)) for o in outcomes)

    try:
        asyncio.run(_hit_and_run())
        assert _wait_until(lambda: handle.frontend.waiter_count == 0)
        # Quotes parsed before the hang-up are served (and their responses
        # discarded); frames still unparsed when the connection died are
        # shed — either way nothing may linger in the waiter map.
        assert _wait_until(lambda: 1 <= service.stats.quotes_served <= 5)
        assert _wait_until(
            lambda: handle.frontend.stats.connections_closed
            == handle.frontend.stats.connections_opened
        )
        with QuoteSocketClient(unix_path=handle.address) as healthy:
            healthy.ping()
    finally:
        handle.stop()


# --------------------------------------------------------------------------- #
# Clean shutdown
# --------------------------------------------------------------------------- #


def test_clean_shutdown_with_quotes_in_flight(tmp_path):
    """Stopping the frontend with pipelined quotes outstanding must return
    promptly and fail every pending client future — no hangs, no leaks."""
    service = _service(delay=0.02)
    handle = _start(tmp_path, service)

    async def _submit_then_die():
        client = await AsyncQuoteClient.connect(unix_path=handle.address)
        futures = [client.submit_quote(KEY, [float(i)]) for i in range(10)]
        await client.drain()
        stopped = asyncio.get_running_loop().run_in_executor(None, handle.stop)
        outcomes = await asyncio.gather(*futures, return_exceptions=True)
        await stopped
        # Submitting on the dead connection must fail fast, not hang: no
        # reader is left to ever resolve a new future.
        if any(isinstance(o, ServingError) for o in outcomes):
            with pytest.raises(ServingError):
                client.submit_quote(KEY, [99.0])
        await client.close()
        return outcomes

    begin = time.monotonic()
    outcomes = asyncio.run(_submit_then_die())
    elapsed = time.monotonic() - begin
    assert elapsed < 15.0, "shutdown with in-flight quotes took %.1fs" % elapsed
    # Every future resolved — served before the stop, or failed by the
    # hang-up — none is left pending forever.
    assert all(isinstance(o, (dict, ServingError)) for o in outcomes)
    assert handle.frontend.waiter_count == 0
    assert not handle.thread.is_alive()


def test_stats_frame_reports_frontend_bounds(tmp_path):
    service = _service()
    handle = _start(
        tmp_path,
        service,
        max_waiters=123,
        max_outstanding_per_connection=45,
        max_write_buffer_bytes=6789,
    )
    try:
        with QuoteSocketClient(unix_path=handle.address) as client:
            frontend = client.stats()["frontend"]
        assert frontend["limits"] == {
            "max_waiters": 123,
            "max_outstanding_per_connection": 45,
            "max_write_buffer_bytes": 6789,
        }
        assert frontend["connections_open"] == 1
        assert frontend["waiters"] == 0
    finally:
        handle.stop()
