"""The columnar session store: golden round-trips in both snapshot formats,
legacy → segment migration, clock-hand eviction, and row materialization.

The acceptance bar of the store refactor: every golden family's state must
survive persist → evict → hydrate **bit-identically** whether the snapshot
lives in a per-session ``.session.npz`` file or an mmap segment record, a
directory holding both formats at once must read correctly (the migration
story), and the clock hand must pick the same victims the old LRU scan did
for plain access patterns while honouring the pinned/pending exemptions.
"""

import json
import os
import sys

import numpy as np
import pytest

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "golden"))
import golden_specs

from repro.engine import load_checkpoint, prepare, simulate, stream_rounds
from repro.engine.checkpoint import flatten_state
from repro.exceptions import ServingError
from repro.serving import (
    FeedbackEvent,
    PricerRegistry,
    QuoteRequest,
    QuoteService,
    SessionKey,
    export_segments_to_legacy,
    list_segment_sessions,
)
from repro.serving.resharding import state_equal
from repro.serving.store import SEGMENT_DIR, SEGMENT_INDEX, SESSION_SUFFIX

ALL_FAMILIES = sorted(golden_specs.GOLDEN_SPECS)


def _market(family):
    model, batch, theta = golden_specs.build_market(family)
    return model, prepare(model, batch), theta


def _factory(family, model, theta):
    return lambda key: (model, golden_specs.build_pricer(family, theta))


def _drive(service, key, materialized, start, stop):
    """Serve rounds [start, stop) closed-loop for one session."""
    for round_ in stream_rounds(materialized, start, stop):
        response = service.quote(
            QuoteRequest(key=key, features=round_.features, reserve=round_.reserve)
        )
        sold = response.posted and response.posted_price <= round_.market_value
        service.feedback(
            FeedbackEvent(key=key, quote_id=response.quote_id, accepted=sold)
        )


# --------------------------------------------------------------------------- #
# Golden round-trips: both formats, all families, bit-identical
# --------------------------------------------------------------------------- #


@pytest.mark.parametrize("snapshot_format", ["legacy", "segment"])
@pytest.mark.parametrize("family", ALL_FAMILIES)
def test_golden_roundtrip_bit_identical(tmp_path, family, snapshot_format):
    model, materialized, theta = _market(family)
    registry = PricerRegistry(
        _factory(family, model, theta),
        snapshot_dir=str(tmp_path),
        snapshot_format=snapshot_format,
    )
    service = QuoteService(registry)
    key = SessionKey("golden", family)
    _drive(service, key, materialized, 0, 24)

    before = registry.session(key).pricer.state_dict()
    registry.flush()
    assert registry.evict(key)
    assert key not in registry

    session = registry.session(key)
    assert session.hydrated
    assert state_equal(session.pricer.state_dict(), before)

    # Hydration source accounting is exact per format.
    if snapshot_format == "segment":
        assert registry.stats.zero_copy_hydrations == 1
        assert registry.stats.legacy_hydrations == 0
        assert registry.stats.segments >= 1
        assert registry.stats.segment_bytes >= 0
    else:
        assert registry.stats.zero_copy_hydrations == 0
        assert registry.stats.legacy_hydrations == 1
        assert registry.stats.segments == 0
    assert (
        registry.stats.zero_copy_hydrations + registry.stats.legacy_hydrations
        == registry.stats.hydrations
    )
    registry.close()


def test_segment_thrashing_transcript_matches_offline(tmp_path):
    """max_sessions=1 with two alternating sessions in *segment* format:
    every access thrashes through persist → evict → zero-copy hydrate, and
    both transcripts must still equal an uninterrupted offline run exactly."""
    family = "ellipsoid-reserve"
    model, materialized, theta = _market(family)
    registry = PricerRegistry(
        _factory(family, model, theta),
        snapshot_dir=str(tmp_path),
        max_sessions=1,
        snapshot_format="segment",
    )
    service = QuoteService(registry)
    keys = [SessionKey("app", "alpha"), SessionKey("app", "beta")]

    rounds = 48
    transcripts = {key: {"prices": [], "sold": []} for key in keys}
    for round_ in stream_rounds(materialized, 0, rounds):
        for key in keys:
            response = service.quote(
                QuoteRequest(key=key, features=round_.features, reserve=round_.reserve)
            )
            sold = response.posted and response.posted_price <= round_.market_value
            service.feedback(
                FeedbackEvent(key=key, quote_id=response.quote_id, accepted=sold)
            )
            transcripts[key]["prices"].append(
                np.nan if response.posted_price is None else response.posted_price
            )
            transcripts[key]["sold"].append(bool(sold))

    assert registry.stats.evictions > 0
    assert registry.stats.zero_copy_hydrations > 0
    assert registry.stats.legacy_hydrations == 0
    # No per-session files: all snapshot traffic went through segments.
    assert not [
        name for name in os.listdir(str(tmp_path)) if name.endswith(SESSION_SUFFIX)
    ]

    offline = simulate(
        model,
        golden_specs.build_pricer(family, theta),
        materialized=materialized.slice(0, rounds),
    )
    for key in keys:
        assert np.array_equal(
            np.array(transcripts[key]["prices"]),
            offline.transcript.posted_prices,
            equal_nan=True,
        )
        assert np.array_equal(
            np.array(transcripts[key]["sold"]), offline.transcript.sold
        )
    registry.close()


# --------------------------------------------------------------------------- #
# Migration: legacy files and segment records coexisting in one directory
# --------------------------------------------------------------------------- #


def test_legacy_to_segment_migration_and_mixed_directory(tmp_path):
    family = "ellipsoid-reserve"
    model, materialized, theta = _market(family)
    key_old = SessionKey("app", "from-legacy")
    key_new = SessionKey("app", "segment-native")

    # Era 1: a legacy-format store persists key_old the old way.
    legacy = PricerRegistry(
        _factory(family, model, theta), snapshot_dir=str(tmp_path)
    )
    service = QuoteService(legacy)
    _drive(service, key_old, materialized, 0, 16)
    expected_old = legacy.session(key_old).pricer.state_dict()
    legacy.flush()
    legacy_path = legacy.snapshot_path(key_old)
    assert os.path.exists(legacy_path)
    legacy.close()

    # Era 2: the same directory reopened in segment format.  key_old
    # hydrates from its legacy file; key_new is born straight into segments.
    store = PricerRegistry(
        _factory(family, model, theta),
        snapshot_dir=str(tmp_path),
        snapshot_format="segment",
    )
    service = QuoteService(store)
    session_old = store.session(key_old)
    assert session_old.hydrated
    assert store.stats.legacy_hydrations == 1
    assert state_equal(session_old.pricer.state_dict(), expected_old)

    _drive(service, key_new, materialized, 0, 16)
    expected_new = store.session(key_new).pricer.state_dict()
    store.flush()

    # Persisting through the segment store retires the stale legacy file —
    # the segment record is now the one authoritative copy.
    assert not os.path.exists(legacy_path)
    resident = set(list_segment_sessions(str(tmp_path)))
    assert resident == {key_old, key_new}

    assert store.evict(key_old) and store.evict(key_new)
    rehydrated_old = store.session(key_old)
    rehydrated_new = store.session(key_new)
    assert store.stats.zero_copy_hydrations == 2
    assert state_equal(rehydrated_old.pricer.state_dict(), expected_old)
    assert state_equal(rehydrated_new.pricer.state_dict(), expected_new)
    store.close()


def test_export_segments_to_legacy_bridges_offline_resharder(tmp_path):
    family = "sgd"
    model, materialized, theta = _market(family)
    keys = [SessionKey("app", "a"), SessionKey("app", "b")]
    expected = {}

    store = PricerRegistry(
        _factory(family, model, theta),
        snapshot_dir=str(tmp_path),
        snapshot_format="segment",
    )
    service = QuoteService(store)
    for key in keys:
        _drive(service, key, materialized, 0, 12)
        expected[key] = store.session(key).pricer.state_dict()
    store.flush()
    store.close()

    assert export_segments_to_legacy(str(tmp_path)) == 2
    assert list_segment_sessions(str(tmp_path)) == {}

    # The exported files are ordinary checkpoints a legacy store hydrates.
    legacy = PricerRegistry(
        _factory(family, model, theta), snapshot_dir=str(tmp_path)
    )
    for key in keys:
        session = legacy.session(key)
        assert session.hydrated
        assert state_equal(session.pricer.state_dict(), expected[key])
    assert legacy.stats.legacy_hydrations == 2


def test_export_session_tombstones_segment_record(tmp_path):
    family = "ellipsoid-reserve"
    model, materialized, theta = _market(family)
    key = SessionKey("app", "moving")
    store = PricerRegistry(
        _factory(family, model, theta),
        snapshot_dir=str(tmp_path),
        snapshot_format="segment",
    )
    service = QuoteService(store)
    _drive(service, key, materialized, 0, 8)
    expected = store.session(key).pricer.state_dict()
    store.flush()
    assert key in list_segment_sessions(str(tmp_path))

    path = store.export_session(key)
    assert os.path.exists(path)
    assert key not in store
    assert key not in list_segment_sessions(str(tmp_path))
    assert store.stats.exports == 1
    assert store.stats.evictions == 0
    assert state_equal(load_checkpoint(path).state, expected)
    store.close()


def test_materialize_legacy_rewrites_cold_segment_record(tmp_path):
    family = "ellipsoid-reserve"
    model, materialized, theta = _market(family)
    key = SessionKey("app", "cold")
    store = PricerRegistry(
        _factory(family, model, theta),
        snapshot_dir=str(tmp_path),
        snapshot_format="segment",
    )
    service = QuoteService(store)
    _drive(service, key, materialized, 0, 8)
    expected = store.session(key).pricer.state_dict()
    store.flush()
    assert store.evict(key)

    path = store.materialize_legacy(key)
    assert path is not None and os.path.exists(path)
    assert key not in list_segment_sessions(str(tmp_path))
    assert state_equal(load_checkpoint(path).state, expected)

    # Hydration now comes from the rewritten file.
    session = store.session(key)
    assert session.hydrated
    assert store.stats.legacy_hydrations == 1
    assert state_equal(session.pricer.state_dict(), expected)
    store.close()


# --------------------------------------------------------------------------- #
# Segment log mechanics
# --------------------------------------------------------------------------- #


def test_segment_files_rotate_at_max_bytes(tmp_path):
    family = "ellipsoid-reserve"
    model, materialized, theta = _market(family)
    store = PricerRegistry(
        _factory(family, model, theta),
        snapshot_dir=str(tmp_path),
        snapshot_format="segment",
        segment_max_bytes=64,  # the minimum: every append rolls to a fresh segment
    )
    service = QuoteService(store)
    keys = [SessionKey("app", "s%d" % i) for i in range(3)]
    for key in keys:
        _drive(service, key, materialized, 0, 4)
    store.flush()
    assert store.stats.segments >= 2
    segment_dir = os.path.join(str(tmp_path), SEGMENT_DIR)
    assert len([n for n in os.listdir(segment_dir) if n.endswith(".seg")]) >= 2
    assert store.stats.segment_bytes > 0
    assert set(list_segment_sessions(str(tmp_path))) == set(keys)
    store.close()


def test_torn_index_tail_is_tolerated(tmp_path):
    """A crash mid-append leaves a partial final index line; replay must
    keep every complete record and drop only the torn tail."""
    family = "ellipsoid-reserve"
    model, materialized, theta = _market(family)
    key = SessionKey("app", "survivor")
    store = PricerRegistry(
        _factory(family, model, theta),
        snapshot_dir=str(tmp_path),
        snapshot_format="segment",
    )
    service = QuoteService(store)
    _drive(service, key, materialized, 0, 12)
    expected = store.session(key).pricer.state_dict()
    store.flush()
    store.close()

    index_path = os.path.join(str(tmp_path), SEGMENT_DIR, SEGMENT_INDEX)
    with open(index_path, "ab") as handle:
        handle.write(b'{"slug": "torn-mid-wri')  # no trailing newline

    reopened = PricerRegistry(
        _factory(family, model, theta),
        snapshot_dir=str(tmp_path),
        snapshot_format="segment",
    )
    session = reopened.session(key)
    assert session.hydrated
    assert reopened.stats.zero_copy_hydrations == 1
    assert state_equal(session.pricer.state_dict(), expected)
    reopened.close()


# --------------------------------------------------------------------------- #
# Clock-hand eviction
# --------------------------------------------------------------------------- #


def test_clock_hand_gives_recently_touched_sessions_a_second_chance():
    family = "ellipsoid-reserve"
    model, materialized, theta = _market(family)
    registry = PricerRegistry(_factory(family, model, theta), max_sessions=2)
    key_a, key_b, key_c = (SessionKey("app", name) for name in "abc")
    registry.session(key_a)
    registry.session(key_b)
    registry.session(key_a)  # sets a's reference bit
    registry.session(key_c)  # over capacity: the hand clears a, evicts b
    assert key_a in registry
    assert key_b not in registry
    assert key_c in registry
    assert registry.stats.evictions == 1
    assert registry.stats.clock_hand_steps >= 2


def test_clock_skips_pinned_sessions(tmp_path):
    family = "ellipsoid-reserve"
    model, materialized, theta = _market(family)
    registry = PricerRegistry(
        _factory(family, model, theta), snapshot_dir=str(tmp_path), max_sessions=1
    )
    key_a, key_b = SessionKey("app", "a"), SessionKey("app", "b")
    registry.session(key_a)
    registry.pin(key_a)
    registry.session(key_b)
    # Both the pinned session and the just-created one are exempt: the
    # store runs over budget rather than dropping either.
    assert registry.resident_count == 2
    assert registry.stats.evictions == 0
    registry.unpin(key_a)
    registry.session(SessionKey("app", "c"))
    assert registry.stats.evictions >= 1
    assert registry.resident_count <= 2


def test_slab_rows_are_recycled_and_gauges_track_residency():
    family = "ellipsoid-reserve"
    model, materialized, theta = _market(family)
    registry = PricerRegistry(_factory(family, model, theta), max_sessions=4)
    keys = [SessionKey("app", "r%d" % i) for i in range(4)]
    for key in keys:
        registry.session(key)
    slabs = registry.store._slabs
    assert len(slabs) == 1
    (slab,) = slabs.values()
    peak_capacity = slab.capacity
    peak_bytes = registry.stats.resident_bytes
    assert peak_bytes > 0

    for key in keys:
        assert registry.evict(key)
    assert registry.stats.resident_bytes == 0

    # Re-admitting recycles freed rows: the slab never grows past its peak.
    for key in keys:
        registry.session(key)
    assert slab.capacity == peak_capacity
    assert registry.stats.resident_bytes == peak_bytes


# --------------------------------------------------------------------------- #
# Contiguous row materialization
# --------------------------------------------------------------------------- #


def test_materialize_rows_gathers_contiguous_batches(tmp_path):
    family = "ellipsoid-reserve"
    model, materialized, theta = _market(family)
    registry = PricerRegistry(_factory(family, model, theta))
    service = QuoteService(registry)
    keys = [SessionKey("app", "m%d" % i) for i in range(3)]
    for i, key in enumerate(keys):
        _drive(service, key, materialized, 0, 4 * (i + 1))

    rows = service.materialize_rows(keys)
    assert len(rows) == 3
    assert rows.pricer_type == type(registry.session(keys[0]).pricer).__name__
    for i, key in enumerate(keys):
        skeleton, leaves = flatten_state(registry.session(key).pricer.state_dict())
        assert json.loads(rows.skeletons[i]) == json.loads(json.dumps(skeleton))
        for column, leaf in zip(rows.arrays, leaves):
            assert column.flags["C_CONTIGUOUS"]
            assert column.shape == (3,) + leaf.shape
            assert np.array_equal(column[i], leaf)


def test_scatter_rows_writes_batched_updates_back(tmp_path):
    family = "ellipsoid-reserve"
    model, materialized, theta = _market(family)
    registry = PricerRegistry(_factory(family, model, theta))
    service = QuoteService(registry)
    keys = [SessionKey("app", "w%d" % i) for i in range(3)]
    for key in keys:
        _drive(service, key, materialized, 0, 8)

    rows = service.materialize_rows(keys)
    # A batched engine step over the stacked arrays: one vectorised mutation
    # touching every session's leaves at once.
    for column in rows.arrays:
        column += 1.0
    assert service.scatter_rows(rows) == 3

    for i, key in enumerate(keys):
        _skeleton, leaves = flatten_state(registry.session(key).pricer.state_dict())
        for column, leaf in zip(rows.arrays, leaves):
            assert np.array_equal(column[i], leaf)

    # And the write-back is durable through a snapshot round-trip.
    expected = registry.session(keys[0]).pricer.state_dict()
    registry2 = PricerRegistry(
        _factory(family, model, theta), snapshot_dir=str(tmp_path)
    )
    session = registry2.session(keys[0])
    session.pricer.load_state(expected)
    registry2.flush()
    assert registry2.evict(keys[0])
    assert state_equal(registry2.session(keys[0]).pricer.state_dict(), expected)


def test_materialize_rows_rejects_mixed_families_and_cold_keys():
    family = "ellipsoid-reserve"
    model_e, materialized, theta_e = _market(family)
    model_f, _mat_f, theta_f = _market("fixed-price")

    def factory(key):
        if key.segment.startswith("fixed"):
            return model_f, golden_specs.build_pricer("fixed-price", theta_f)
        return model_e, golden_specs.build_pricer(family, theta_e)

    registry = PricerRegistry(factory)
    key_e = SessionKey("app", "ellipsoid")
    key_f = SessionKey("app", "fixed")
    registry.session(key_e)
    registry.session(key_f)
    with pytest.raises(ServingError):
        registry.materialize_rows([key_e, key_f])
    with pytest.raises(ServingError):
        registry.materialize_rows([SessionKey("app", "never-seen")])
    with pytest.raises(ServingError):
        registry.materialize_rows([])


def test_service_scatter_refuses_sessions_with_pending_quotes():
    family = "ellipsoid-reserve"
    model, materialized, theta = _market(family)
    registry = PricerRegistry(_factory(family, model, theta))
    service = QuoteService(registry)
    key = SessionKey("app", "inflight")
    _drive(service, key, materialized, 0, 4)
    rows = service.materialize_rows([key])

    round_ = next(iter(stream_rounds(materialized, 4, 5)))
    response = service.quote(
        QuoteRequest(key=key, features=round_.features, reserve=round_.reserve)
    )
    with pytest.raises(ServingError):
        service.scatter_rows(rows)
    service.feedback(
        FeedbackEvent(key=key, quote_id=response.quote_id, accepted=False)
    )


def test_materialize_rows_without_refresh_leaves_accounting_untouched():
    """A read-only materialize must not perturb stats, gauges, or clock bits."""
    family = "ellipsoid-reserve"
    model, materialized, theta = _market(family)
    registry = PricerRegistry(_factory(family, model, theta))
    service = QuoteService(registry)
    keys = [SessionKey("app", "acct%d" % i) for i in range(3)]
    for key in keys:
        _drive(service, key, materialized, 0, 4)

    store = registry.store
    stats_before = registry.stats.as_dict()
    bits_before = [row.referenced for row in store._ring if row is not None]
    hand_before = store._hand

    rows = service.materialize_rows(keys, refresh=False)
    assert len(rows) == 3

    assert registry.stats.as_dict() == stats_before
    assert [row.referenced for row in store._ring if row is not None] == bits_before
    assert store._hand == hand_before
    stats = registry.stats
    assert stats.opened == stats.created + stats.hydrations


def test_materialize_refresh_keeps_resident_bytes_gauge_fresh():
    """A refresh-capture that migrates a row between family slabs (the state
    layout grew) must leave ``resident_bytes`` equal to the recomputed sum."""
    family = "ellipsoid-reserve"
    model, materialized, theta = _market(family)

    def factory(key):
        pricer = golden_specs.build_pricer(family, theta)
        pricer.knowledge = __import__(
            "repro.core.knowledge", fromlist=["PolytopeKnowledge"]
        ).PolytopeKnowledge.from_radius(theta.shape[0], 2.0 * np.sqrt(theta.shape[0]))
        return model, pricer

    registry = PricerRegistry(factory)
    service = QuoteService(registry)
    key = SessionKey("app", "grower")
    _drive(service, key, materialized, 0, 2)

    # Growing the constraint set changes the flattened array shapes, so the
    # refresh-capture inside materialize_rows migrates the row to a new
    # family slab.
    _drive(service, key, materialized, 2, 6)
    rows = registry.materialize_rows([key], refresh=True)
    assert len(rows) == 1

    store = registry.store
    recomputed = int(
        sum(slab.used * slab.row_nbytes for slab in store._slabs.values())
    )
    assert registry.stats.resident_bytes == recomputed
