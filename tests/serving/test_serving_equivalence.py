"""The serving transcript-equivalence contract.

A closed-loop serving session replaying a seeded arrival stream must produce
a transcript **exactly equal (float-for-float)** to the offline engine's
``run_batch``/``simulate`` result — for every golden pricer family.  This is
the serving extension of the engine exactness contract: the same market,
streamed as quote requests with per-round feedback, must not move a single
bit anywhere in the transcript.

Also pinned here: a session split across two service lifetimes (persist →
hydrate from the checkpoint snapshot) stitches to the identical transcript,
so checkpoint-backed sessions are exact, not approximate.
"""

import os
import sys

import numpy as np
import pytest

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "golden"))
import golden_specs

from repro.engine import prepare, simulate
from repro.serving import PricerRegistry, QuoteService, SessionKey, serve_closed_loop

#: Transcript columns compared exactly (regret included — it is derived from
#: the others, so a mismatch there would flag an accounting divergence).
COLUMNS = ("link_prices", "posted_prices", "sold", "skipped", "exploratory", "regrets")


def _assert_identical(actual, expected, context=""):
    for name in COLUMNS:
        left, right = getattr(actual, name), getattr(expected, name)
        assert np.array_equal(left, right, equal_nan=left.dtype.kind == "f"), (
            "%s column %r diverged" % (context, name)
        )


def _serving_setup(family, model, theta):
    key = SessionKey(app="golden", segment=family)
    registry = PricerRegistry(
        lambda _key: (model, golden_specs.build_pricer(family, theta))
    )
    return key, QuoteService(registry)


@pytest.mark.parametrize("family", sorted(golden_specs.GOLDEN_SPECS))
def test_closed_loop_session_matches_offline_engine(family):
    model, batch, theta = golden_specs.build_market(family)
    materialized = prepare(model, batch)
    offline = simulate(
        model, golden_specs.build_pricer(family, theta), materialized=materialized
    )
    key, service = _serving_setup(family, model, theta)
    online = serve_closed_loop(service, key, materialized)
    _assert_identical(online.transcript, offline.transcript, context=family)
    assert service.stats.quotes_served == materialized.rounds
    assert service.stats.feedback_applied == materialized.rounds
    session = service.registry.peek(key)
    assert session is not None
    assert not session.pending  # every quote settled
    assert session.rounds_seen == materialized.rounds


@pytest.mark.parametrize("family", ["ellipsoid-reserve", "sgd", "one-dim"])
def test_hydrated_session_continues_bit_identically(tmp_path, family):
    """persist at round k, restart the service, serve [k, T) — exact stitch."""
    model, batch, theta = golden_specs.build_market(family)
    materialized = prepare(model, batch)
    offline = simulate(
        model, golden_specs.build_pricer(family, theta), materialized=materialized
    )
    split = materialized.rounds // 3

    key = SessionKey(app="golden", segment=family)
    factory = lambda _key: (model, golden_specs.build_pricer(family, theta))

    first_registry = PricerRegistry(factory, snapshot_dir=str(tmp_path))
    first = serve_closed_loop(
        QuoteService(first_registry), key, materialized.slice(0, split)
    )
    assert first_registry.flush() == 1

    second_registry = PricerRegistry(factory, snapshot_dir=str(tmp_path))
    second_service = QuoteService(second_registry)
    second = serve_closed_loop(
        second_service, key, materialized.slice(split, materialized.rounds)
    )
    session = second_registry.peek(key)
    assert session.hydrated
    assert second_registry.stats.hydrations == 1

    for name in ("link_prices", "posted_prices", "sold", "skipped", "exploratory"):
        stitched = np.concatenate(
            [getattr(first.transcript, name), getattr(second.transcript, name)]
        )
        reference = getattr(offline.transcript, name)
        assert np.array_equal(stitched, reference, equal_nan=reference.dtype.kind == "f"), name
