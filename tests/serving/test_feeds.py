"""Traffic-feed determinism and the dataset replay path."""

import numpy as np
import pytest

from repro.core.baselines import RiskAversePricer
from repro.engine import simulate
from repro.exceptions import DatasetError
from repro.serving import (
    FeedbackEvent,
    PricerRegistry,
    QuoteService,
    ReplayFeed,
    SessionKey,
    SyntheticFeed,
    dataset_arrival_features,
    dataset_replay_market,
    replay_feed,
    serve_closed_loop,
)

ROUNDS = 96


@pytest.mark.parametrize("dataset", ["loans", "ad_clicks", "listings"])
def test_dataset_features_are_seed_deterministic(dataset):
    first = dataset_arrival_features(dataset, rounds=ROUNDS, seed=11)
    second = dataset_arrival_features(dataset, rounds=ROUNDS, seed=11)
    assert first.shape[0] == ROUNDS
    assert np.array_equal(first, second)
    other_seed = dataset_arrival_features(dataset, rounds=ROUNDS, seed=12)
    assert not np.array_equal(first, other_seed)
    # Unit-norm rows (zero rows are left untouched by convention).
    norms = np.linalg.norm(first, axis=1)
    assert np.allclose(norms[norms > 0], 1.0)


def test_unknown_dataset_is_rejected():
    with pytest.raises(DatasetError):
        dataset_arrival_features("movielens", rounds=8, seed=0)
    with pytest.raises(DatasetError):
        dataset_arrival_features("loans", rounds=0, seed=0)


@pytest.mark.parametrize("dataset", ["loans", "ad_clicks", "listings"])
def test_replay_feed_is_reiterable_and_identical(dataset):
    feed, model = replay_feed(dataset, rounds=ROUNDS, seed=3)
    assert len(feed) == ROUNDS
    first = [(req.features.copy(), req.reserve, value) for req, value in feed]
    second = [(req.features.copy(), req.reserve, value) for req, value in feed]
    assert len(first) == ROUNDS
    for (features_a, reserve_a, value_a), (features_b, reserve_b, value_b) in zip(
        first, second
    ):
        assert np.array_equal(features_a, features_b)
        assert reserve_a == reserve_b
        assert value_a == value_b


def test_replay_market_is_seed_deterministic():
    first, _ = dataset_replay_market("loans", rounds=ROUNDS, seed=5)
    second, _ = dataset_replay_market("loans", rounds=ROUNDS, seed=5)
    assert np.array_equal(first.market_values, second.market_values)
    assert np.array_equal(first.link_reserves, second.link_reserves)
    assert np.array_equal(first.mapped_features, second.mapped_features)


def test_closed_loop_dataset_replay_matches_offline_run():
    """Serving a dataset replay feed reproduces the offline transcript."""
    feed, model = replay_feed("listings", rounds=ROUNDS, seed=8)
    offline = simulate(model, RiskAversePricer(), materialized=feed.materialized)

    registry = PricerRegistry(lambda key: (model, RiskAversePricer()))
    online = serve_closed_loop(QuoteService(registry), feed.key, feed.materialized)
    for name in ("link_prices", "posted_prices", "sold", "skipped", "regrets"):
        left = getattr(online.transcript, name)
        right = getattr(offline.transcript, name)
        assert np.array_equal(left, right, equal_nan=left.dtype.kind == "f"), name


def test_synthetic_feed_is_reiterable_and_identical():
    feed = SyntheticFeed(
        key=SessionKey("synthetic", "s"), dimension=6, rounds=32, seed=21
    )
    first = [(req.features.copy(), req.reserve) for req in feed]
    second = [(req.features.copy(), req.reserve) for req in feed]
    assert len(first) == 32
    for (features_a, reserve_a), (features_b, reserve_b) in zip(first, second):
        assert np.array_equal(features_a, features_b)
        assert reserve_a == reserve_b
    # Requests are link-space unit vectors with positive reserves.
    assert all(np.isclose(np.linalg.norm(f), 1.0) for f, _ in first)
    assert all(r > 0 for _, r in first)


def test_synthetic_feed_open_loop_drive():
    """An open-loop burst: quotes only, feedback settled by the caller later."""
    feed = SyntheticFeed(key=SessionKey("synthetic", "s"), dimension=4, rounds=16, seed=2)
    from repro.core.models import LinearModel

    registry = PricerRegistry(
        lambda key: (LinearModel(np.full(4, 1.0)), RiskAversePricer())
    )
    service = QuoteService(registry)
    for request in feed:
        service.submit(request)
    responses = service.flush()
    assert len(responses) == 16
    session = registry.peek(feed.key)
    assert len(session.pending) == 16  # open loop: nothing settled yet
    service.feedback_batch(
        [
            FeedbackEvent(key=feed.key, quote_id=r.quote_id, accepted=True)
            for r in responses
        ]
    )
    assert not session.pending
