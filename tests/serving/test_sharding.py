"""Cross-process session sharding: routing, dispatch, and exactness.

The sharded service must behave like N independent in-process services glued
by a deterministic key→shard map: per-session protocol order preserved,
quote ids globally unique, failure accounting intact across the pipe, and a
closed-loop replay bit-identical to the offline engine for sessions living
on different workers.
"""

import os
import sys

import numpy as np
import pytest

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "golden"))
import golden_specs

from repro.engine import prepare, simulate, stream_rounds
from repro.exceptions import ServingError
from repro.serving import (
    FeedbackEvent,
    MicroBatchConfig,
    QuoteRequest,
    SessionKey,
    ShardedRegistry,
    shard_of_key,
)

FAMILY = "ellipsoid-reserve"


def _market():
    model, batch, theta = golden_specs.build_market(FAMILY)
    return model, prepare(model, batch), theta


def _sharded(model, theta, num_shards=2, **kwargs):
    return ShardedRegistry(
        lambda key: (model, golden_specs.build_pricer(FAMILY, theta)),
        num_shards=num_shards,
        **kwargs,
    )


def _keys_on_distinct_shards(num_shards, count):
    """Session keys guaranteed to cover ``count`` distinct shards."""
    keys, seen = [], set()
    index = 0
    while len(keys) < count:
        key = SessionKey("app", "segment-%d" % index)
        shard = shard_of_key(key, num_shards)
        if shard not in seen:
            seen.add(shard)
            keys.append(key)
        index += 1
    return keys


def test_shard_of_key_is_stable_and_covers_shards():
    key = SessionKey("app", "segment")
    assert shard_of_key(key, 4) == shard_of_key(SessionKey("app", "segment"), 4)
    assert 0 <= shard_of_key(key, 4) < 4
    shards = {shard_of_key(SessionKey("app", "s%d" % i), 4) for i in range(64)}
    assert shards == {0, 1, 2, 3}


def test_pickled_serving_error_keeps_accounting_fields():
    import pickle

    error = ServingError(
        "boom",
        key=SessionKey("app", "s"),
        lost_quote_ids=[3, 5],
        requeued_quote_ids=[7],
    )
    clone = pickle.loads(pickle.dumps(error))
    assert str(clone) == "boom"
    assert clone.key == SessionKey("app", "s")
    assert clone.lost_quote_ids == [3, 5]
    assert clone.requeued_quote_ids == [7]


def test_submit_flush_feedback_roundtrip_across_shards():
    model, materialized, theta = _market()
    with _sharded(model, theta, num_shards=2) as sharded:
        keys = _keys_on_distinct_shards(2, 2)
        assert sharded.shard_of(keys[0]) != sharded.shard_of(keys[1])
        round_ = next(iter(stream_rounds(materialized, 0, 1)))

        ids = sharded.submit_many(
            [
                QuoteRequest(key=key, features=round_.features, reserve=round_.reserve)
                for key in keys
            ]
        )
        assert len(set(ids)) == 2  # globally unique across shards
        responses = sharded.flush()
        assert sorted(r.quote_id for r in responses) == sorted(ids)
        by_id = {r.quote_id: r for r in responses}
        events = [
            FeedbackEvent(
                key=by_id[quote_id].key,
                quote_id=quote_id,
                accepted=bool(
                    by_id[quote_id].posted
                    and by_id[quote_id].posted_price <= round_.market_value
                ),
            )
            for quote_id in ids
        ]
        sharded.feedback_batch(events)
        stats = sharded.stats()
        assert stats["quotes_served"] == 2
        assert stats["feedback_applied"] == 2
        assert stats["sessions_resident"] == 2
        assert stats["latency"]["count"] == 2


def test_feedback_with_mismatched_quote_id_is_rejected_before_dispatch():
    model, materialized, theta = _market()
    with _sharded(model, theta, num_shards=2) as sharded:
        keys = _keys_on_distinct_shards(2, 2)
        round_ = next(iter(stream_rounds(materialized, 0, 1)))
        quote_id = sharded.submit(
            QuoteRequest(key=keys[0], features=round_.features, reserve=round_.reserve)
        )
        sharded.flush()
        # keys[1] lives on the other shard: its ids can never equal quote_id
        # modulo the shard count.
        with pytest.raises(ServingError):
            sharded.feedback(
                FeedbackEvent(key=keys[1], quote_id=quote_id, accepted=True)
            )
        # The legitimate settlement still works.
        sharded.feedback(FeedbackEvent(key=keys[0], quote_id=quote_id, accepted=False))


def test_closed_loop_replay_across_shards_matches_offline_engine():
    """Two sessions on two different worker processes, replayed closed-loop
    via the batched replay dispatch — both transcripts must equal the
    offline engine's run of the same market."""
    model, materialized, theta = _market()
    offline = simulate(
        model, golden_specs.build_pricer(FAMILY, theta), materialized=materialized
    )
    rounds = 96
    window = materialized.slice(0, rounds)
    with _sharded(model, theta, num_shards=2) as sharded:
        keys = _keys_on_distinct_shards(2, 2)
        pairs = []
        for round_ in stream_rounds(window):
            for key in keys:
                pairs.append(
                    (
                        QuoteRequest(
                            key=key, features=round_.features, reserve=round_.reserve
                        ),
                        round_.market_value,
                    )
                )
        served = sharded.replay_closed_loop(pairs, window=16)
        assert served == rounds * len(keys)
        stats = sharded.stats()
        assert stats["quotes_served"] == rounds * len(keys)
        # Each worker priced its session exactly like the offline loop: the
        # per-shard latency sample counts add up and every quote settled.
        assert stats["feedback_applied"] == rounds * len(keys)

    # Offline comparison through the synchronous quote path on a fresh
    # sharded service (responses carry the prices to compare).
    with _sharded(model, theta, num_shards=2) as sharded:
        key = _keys_on_distinct_shards(2, 2)[1]
        posted = np.full(rounds, np.nan)
        sold_column = np.zeros(rounds, dtype=bool)
        for round_ in stream_rounds(window):
            response = sharded.quote(
                QuoteRequest(key=key, features=round_.features, reserve=round_.reserve)
            )
            if response.posted:
                sold = response.posted_price <= round_.market_value
                posted[round_.index] = response.posted_price
                sold_column[round_.index] = sold
            else:
                sold = False
            sharded.feedback(
                FeedbackEvent(key=key, quote_id=response.quote_id, accepted=sold)
            )
        assert np.array_equal(
            posted, offline.transcript.posted_prices[:rounds], equal_nan=True
        )
        assert np.array_equal(sold_column, offline.transcript.sold[:rounds])


def test_per_shard_snapshot_dirs_hydrate_bit_identically(tmp_path):
    """Persist on one sharded service, restart, continue — the stitched
    replay equals the uninterrupted offline transcript, and the snapshot
    files live under their shard's directory."""
    model, materialized, theta = _market()
    offline = simulate(
        model, golden_specs.build_pricer(FAMILY, theta), materialized=materialized
    )
    rounds, split = 96, 40
    key = _keys_on_distinct_shards(2, 2)[0]
    shard = shard_of_key(key, 2)

    def _drive(sharded, start, stop):
        posted = []
        for round_ in stream_rounds(materialized.slice(start, stop)):
            response = sharded.quote(
                QuoteRequest(key=key, features=round_.features, reserve=round_.reserve)
            )
            sold = bool(response.posted and response.posted_price <= round_.market_value)
            sharded.feedback(
                FeedbackEvent(key=key, quote_id=response.quote_id, accepted=sold)
            )
            posted.append(np.nan if response.posted_price is None else response.posted_price)
        return posted

    with _sharded(model, theta, num_shards=2, snapshot_dir=str(tmp_path)) as sharded:
        first = _drive(sharded, 0, split)
        assert sharded.persist_all() == 1
    shard_dir = tmp_path / ("shard-%02d" % shard)
    assert any(name.endswith(".session.npz") for name in os.listdir(shard_dir))

    with _sharded(model, theta, num_shards=2, snapshot_dir=str(tmp_path)) as sharded:
        second = _drive(sharded, split, rounds)
        stats = sharded.stats()
        assert stats["registry"]["hydrations"] == 1
        assert stats["registry"]["created"] == 0

    stitched = np.array(first + second)
    assert np.array_equal(
        stitched, offline.transcript.posted_prices[:rounds], equal_nan=True
    )


def test_worker_drain_failure_carries_global_ids_and_spares_other_shards():
    """A failing session on one shard must not lose the other shard's
    responses, and the error's quote ids must be global."""

    class FailingPricer:
        supports_batch_propose = False
        rounds_seen = 0

        def propose(self, features, reserve=None):
            raise RuntimeError("shard-side pricer failure")

    model, materialized, theta = _market()

    def factory(key):
        if key.segment.startswith("bad"):
            return model, FailingPricer()
        return model, golden_specs.build_pricer(FAMILY, theta)

    with ShardedRegistry(
        factory,
        num_shards=2,
        config=MicroBatchConfig(max_batch=64, max_wait_seconds=0.0),
    ) as sharded:
        good_key = SessionKey("app", "good")
        bad_index = 0
        while True:
            bad_key = SessionKey("app", "bad-%d" % bad_index)
            if sharded.shard_of(bad_key) != sharded.shard_of(good_key):
                break
            bad_index += 1
        round_ = next(iter(stream_rounds(materialized, 0, 1)))
        good_id, bad_id = sharded.submit_many(
            [
                QuoteRequest(key=good_key, features=round_.features, reserve=round_.reserve),
                QuoteRequest(key=bad_key, features=round_.features, reserve=round_.reserve),
            ]
        )
        with pytest.raises(ServingError) as excinfo:
            sharded.flush()
        assert excinfo.value.lost_quote_ids == [bad_id]
        # The healthy shard's response was parked, not dropped.
        responses = sharded.poll()
        assert [r.quote_id for r in responses] == [good_id]
        # Lost and served quotes are both gone from the queue-depth
        # accounting: no shard is polled for them ever again.
        assert all(not handle.outstanding for handle in sharded._shards)
        assert sharded.poll() == []
        sharded.feedback(
            FeedbackEvent(key=good_key, quote_id=good_id, accepted=False)
        )


def test_sharded_registry_validates_configuration():
    model, materialized, theta = _market()
    with pytest.raises(ValueError):
        ShardedRegistry(lambda key: (model, None), num_shards=0)
