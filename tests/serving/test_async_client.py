"""The pipelined async client and its through-the-wire equivalence contract.

The acceptance bar of the async serving path: a **closed-loop replay
through the pipelined client** (length-prefixed JSON over a unix socket,
request tags correlating out-of-order responses, the event-loop drain task
in between) produces a transcript exactly equal, float for float, to the
offline engine for every golden pricer family — the same contract the
blocking client is pinned to, now through the asyncio path the load
driver uses.
"""

import asyncio
import os
import sys

import numpy as np
import pytest

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "golden"))
import golden_specs

from repro.engine import prepare, simulate
from repro.exceptions import ServingError
from repro.serving import (
    AsyncQuoteClient,
    MicroBatchConfig,
    PricerRegistry,
    QuoteService,
    SessionKey,
    serve_closed_loop_async,
    start_frontend_thread,
)

COLUMNS = ("link_prices", "posted_prices", "sold", "skipped", "exploratory", "regrets")


def _offline(family):
    model, batch, theta = golden_specs.build_market(family)
    materialized = prepare(model, batch)
    result = simulate(
        model, golden_specs.build_pricer(family, theta), materialized=materialized
    )
    return model, theta, materialized, result


def _immediate_config():
    return MicroBatchConfig(max_batch=1, max_wait_seconds=0.0)


@pytest.mark.parametrize("family", sorted(golden_specs.GOLDEN_SPECS))
def test_closed_loop_through_async_client_matches_offline(tmp_path, family):
    """All 8 golden families replayed closed-loop through AsyncQuoteClient
    must be bit-identical to the offline engine."""
    model, theta, materialized, offline = _offline(family)
    key = SessionKey(app="golden", segment=family)
    service = QuoteService(
        PricerRegistry(lambda _key: (model, golden_specs.build_pricer(family, theta))),
        config=_immediate_config(),
    )
    handle = start_frontend_thread(
        service, unix_path=str(tmp_path / "async.sock"), drain_interval=0.0005
    )

    async def _replay():
        async with await AsyncQuoteClient.connect(unix_path=handle.address) as client:
            return await serve_closed_loop_async(client, key, materialized)

    try:
        online = asyncio.run(_replay())
    finally:
        handle.stop()
    for name in COLUMNS:
        left = getattr(online.transcript, name)
        right = getattr(offline.transcript, name)
        assert np.array_equal(left, right, equal_nan=left.dtype.kind == "f"), (
            "%s column %r diverged through the async client" % (family, name)
        )


def test_async_client_concurrent_sessions_one_connection(tmp_path):
    """Two sessions driven by concurrent tasks multiplexed over one
    pipelined connection each replay a window bit-identically — per-session
    closed-loop order is what matters, not connection-global order."""
    family = "ellipsoid-reserve"
    model, theta, materialized, offline = _offline(family)
    window = materialized.slice(0, 96)
    service = QuoteService(
        PricerRegistry(lambda _key: (model, golden_specs.build_pricer(family, theta))),
        config=MicroBatchConfig(max_batch=4, max_wait_seconds=0.0005),
    )
    handle = start_frontend_thread(
        service, unix_path=str(tmp_path / "multi.sock"), drain_interval=0.0005
    )

    async def _replay():
        async with await AsyncQuoteClient.connect(unix_path=handle.address) as client:
            return await asyncio.gather(
                serve_closed_loop_async(
                    client, SessionKey("golden", "left"), window
                ),
                serve_closed_loop_async(
                    client, SessionKey("golden", "right"), window
                ),
            )

    try:
        left, right = asyncio.run(_replay())
    finally:
        handle.stop()
    for online in (left, right):
        assert np.array_equal(
            online.transcript.posted_prices,
            offline.transcript.posted_prices[:96],
            equal_nan=True,
        )
        assert np.array_equal(online.transcript.sold, offline.transcript.sold[:96])


def test_async_client_rejects_double_address_and_closed_use():
    with pytest.raises(ValueError):
        asyncio.run(AsyncQuoteClient.connect())
    with pytest.raises(ValueError):
        # host without a port must be the documented ValueError, not a
        # TypeError from int(None).
        asyncio.run(AsyncQuoteClient.connect(host="127.0.0.1"))
    from repro.serving import QuoteSocketClient

    with pytest.raises(ValueError):
        QuoteSocketClient(host="127.0.0.1")

    async def _closed_use(tmp_sock):
        client = await AsyncQuoteClient.connect(unix_path=tmp_sock)
        await client.close()
        with pytest.raises(ServingError):
            client.submit_quote(SessionKey("a", "b"), [1.0])

    # A real socket is needed just to connect before closing.
    import tempfile

    from repro.serving import MicroBatchConfig as _Config

    service = QuoteService(
        PricerRegistry(lambda _key: (None, None)), config=_Config(max_batch=1)
    )
    with tempfile.TemporaryDirectory() as tmp:
        handle = start_frontend_thread(service, unix_path=os.path.join(tmp, "x.sock"))
        try:
            asyncio.run(_closed_use(handle.address))
        finally:
            handle.stop()
