"""PricerRegistry lifecycle: hydration, write-behind cadence, LRU eviction."""

import os
import sys

import numpy as np
import pytest

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "golden"))
import golden_specs

from repro.engine import load_checkpoint, prepare, simulate
from repro.serving import (
    FeedbackEvent,
    PricerRegistry,
    QuoteRequest,
    QuoteService,
    SessionKey,
)

FAMILY = "ellipsoid-reserve"


def _market():
    model, batch, theta = golden_specs.build_market(FAMILY)
    return model, prepare(model, batch), theta


def _factory(model, theta):
    return lambda key: (model, golden_specs.build_pricer(FAMILY, theta))


def _drive(service, key, materialized, start, stop):
    """Serve rounds [start, stop) closed-loop for one session."""
    from repro.engine import stream_rounds

    for round_ in stream_rounds(materialized, start, stop):
        response = service.quote(
            QuoteRequest(key=key, features=round_.features, reserve=round_.reserve)
        )
        sold = response.posted and response.posted_price <= round_.market_value
        service.feedback(FeedbackEvent(key=key, quote_id=response.quote_id, accepted=sold))


def test_sessions_are_created_once_and_touched_on_access():
    model, materialized, theta = _market()
    registry = PricerRegistry(_factory(model, theta))
    key_a, key_b = SessionKey("app", "a"), SessionKey("app", "b")
    session_a = registry.session(key_a)
    registry.session(key_b)
    assert registry.resident_count == 2
    assert registry.stats.created == 2
    assert registry.session(key_a) is session_a
    assert registry.stats.created == 2
    # key_a is now most-recently-used
    assert registry.resident_keys == [key_b, key_a]


def test_write_behind_cadence_persists_every_nth_update(tmp_path):
    model, materialized, theta = _market()
    registry = PricerRegistry(
        _factory(model, theta), snapshot_dir=str(tmp_path), persist_every=5
    )
    service = QuoteService(registry)
    key = SessionKey("app", "cadence")
    path = registry.snapshot_path(key)

    _drive(service, key, materialized, 0, 4)
    assert not os.path.exists(path)  # below the cadence
    _drive(service, key, materialized, 4, 12)
    # Persisted at updates 5 and 10; the snapshot trails the live session by
    # at most persist_every updates.
    assert os.path.exists(path)
    assert load_checkpoint(path).rounds_done == 10
    assert registry.stats.persists == 2

    registry.flush()
    assert load_checkpoint(path).rounds_done == 12


def test_lru_eviction_persists_and_rehydrates_exactly(tmp_path):
    """max_sessions=1 with two alternating sessions: every access thrashes
    through persist → evict → hydrate, and both transcripts must still be
    bit-identical to uninterrupted offline runs."""
    model, materialized, theta = _market()
    registry = PricerRegistry(
        _factory(model, theta), snapshot_dir=str(tmp_path), max_sessions=1
    )
    service = QuoteService(registry)
    keys = [SessionKey("app", "alpha"), SessionKey("app", "beta")]

    rounds = 48
    from repro.engine import stream_rounds

    transcripts = {key: {"prices": [], "sold": []} for key in keys}
    for round_ in stream_rounds(materialized, 0, rounds):
        for key in keys:
            response = service.quote(
                QuoteRequest(key=key, features=round_.features, reserve=round_.reserve)
            )
            sold = response.posted and response.posted_price <= round_.market_value
            service.feedback(
                FeedbackEvent(key=key, quote_id=response.quote_id, accepted=sold)
            )
            transcripts[key]["prices"].append(
                np.nan if response.posted_price is None else response.posted_price
            )
            transcripts[key]["sold"].append(bool(sold))

    assert registry.resident_count == 1
    assert registry.stats.evictions > 0
    assert registry.stats.hydrations > 0

    # Both sessions saw the same market and must match the offline run.
    offline = simulate(
        model,
        golden_specs.build_pricer(FAMILY, theta),
        materialized=materialized.slice(0, rounds),
    )
    for key in keys:
        assert np.array_equal(
            np.array(transcripts[key]["prices"]),
            offline.transcript.posted_prices,
            equal_nan=True,
        )
        assert np.array_equal(
            np.array(transcripts[key]["sold"]), offline.transcript.sold
        )


def test_sessions_with_pending_quotes_are_not_evicted(tmp_path):
    model, materialized, theta = _market()
    registry = PricerRegistry(
        _factory(model, theta), snapshot_dir=str(tmp_path), max_sessions=1
    )
    service = QuoteService(registry)
    key_a, key_b = SessionKey("app", "a"), SessionKey("app", "b")

    # Leave an unsettled quote on session a.
    from repro.engine import stream_rounds

    round_ = next(iter(stream_rounds(materialized, 0, 1)))
    service.quote(QuoteRequest(key=key_a, features=round_.features, reserve=round_.reserve))
    assert registry.peek(key_a).pending

    # Creating session b exceeds capacity, but a's in-flight decision
    # protects it: the registry temporarily runs over budget.
    registry.session(key_b)
    assert registry.resident_count == 2
    assert registry.stats.evictions == 0


def test_eviction_without_snapshot_dir_drops_state():
    model, materialized, theta = _market()
    registry = PricerRegistry(_factory(model, theta), max_sessions=1)
    key_a, key_b = SessionKey("app", "a"), SessionKey("app", "b")
    registry.session(key_a)
    registry.session(key_b)
    assert registry.resident_count == 1
    assert key_a not in registry
    assert registry.stats.evictions == 1
    assert registry.stats.persists == 0


def test_explicit_evict_refuses_sessions_with_pending_quotes(tmp_path):
    from repro.exceptions import ServingError

    model, materialized, theta = _market()
    registry = PricerRegistry(_factory(model, theta), snapshot_dir=str(tmp_path))
    service = QuoteService(registry)
    key = SessionKey("app", "inflight")

    from repro.engine import stream_rounds

    round_ = next(iter(stream_rounds(materialized, 0, 1)))
    response = service.quote(
        QuoteRequest(key=key, features=round_.features, reserve=round_.reserve)
    )
    with pytest.raises(ServingError):
        registry.evict(key)
    assert key in registry  # still resident, decision preserved

    service.feedback(FeedbackEvent(key=key, quote_id=response.quote_id, accepted=False))
    assert registry.evict(key)
    assert key not in registry


def test_hydrations_are_not_double_counted_as_creations(tmp_path):
    """`created` counts fresh sessions only; a session rebuilt from a
    snapshot counts as a hydration, and `opened` is their disjoint sum."""
    model, materialized, theta = _market()
    registry = PricerRegistry(_factory(model, theta), snapshot_dir=str(tmp_path))
    service = QuoteService(registry)
    key = SessionKey("app", "stats")

    _drive(service, key, materialized, 0, 4)
    assert registry.stats.created == 1
    assert registry.stats.hydrations == 0
    registry.flush()
    assert registry.evict(key)

    # Re-entry hydrates from the snapshot: no new creation is counted.
    registry.session(key)
    assert registry.stats.created == 1
    assert registry.stats.hydrations == 1
    assert registry.stats.opened == 2
    as_dict = registry.stats.as_dict()
    assert as_dict["created"] == 1
    assert as_dict["hydrations"] == 1
    assert as_dict["opened"] == 2


def test_registry_validates_configuration():
    model, materialized, theta = _market()
    with pytest.raises(ValueError):
        PricerRegistry(_factory(model, theta), max_sessions=0)
    with pytest.raises(ValueError):
        PricerRegistry(_factory(model, theta), persist_every=-1)
