"""Online live resharding: bit-exactness under traffic, chaos recovery.

The tentpole bar: all golden pricer families replay **bit-identically**
through a mid-stream 2→3 shard migration under live socket traffic, with
zero lost quotes proven by exact quote-id accounting.  Plus: migrations
move cold (snapshot-only) sessions as well as resident ones, a shard worker
SIGKILLed mid-migration recovers bit-exactly from its write-behind
snapshots, and a pipelined v2-wire client submitting to a session *while it
moves shards* sees order-preserving results with the waiter bound intact.
"""

import asyncio
import os
import signal
import sys
import threading
import time

import numpy as np
import pytest

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "golden"))
import golden_specs

from repro.exceptions import RebalanceError, ServingError
from repro.engine import prepare, simulate, stream_rounds
from repro.serving import (
    AsyncQuoteClient,
    FeedbackEvent,
    LiveRebalancer,
    MicroBatchConfig,
    QuoteRequest,
    SessionKey,
    ShardedRegistry,
    frame_sold_at,
    rebalance_live,
    shard_of_key,
    start_frontend_thread,
)

FAMILIES = sorted(golden_specs.GOLDEN_SPECS)
FAMILY = "ellipsoid-reserve"


def _family_workloads():
    """(model, materialized, theta) per golden family."""
    return {
        family: (lambda m, b, t: (m, prepare(m, b), t))(*golden_specs.build_market(family))
        for family in FAMILIES
    }


def _single_market():
    model, batch, theta = golden_specs.build_market(FAMILY)
    return model, prepare(model, batch), theta


def _drive_sync(sharded, key, materialized, start, stop, posted, retries=0):
    """Closed-loop sync rounds [start, stop) with optional retry-on-kill.

    A retried quote re-proposes from the session's write-behind snapshot, so
    the transcript stays bit-identical (pinned by the chaos test below).
    """
    for round_ in stream_rounds(materialized.slice(start, stop)):
        for attempt in range(retries + 1):
            try:
                response = sharded.quote(
                    QuoteRequest(key=key, features=round_.features, reserve=round_.reserve)
                )
                sold = bool(
                    response.posted and response.posted_price <= round_.market_value
                )
                sharded.feedback(
                    FeedbackEvent(key=key, quote_id=response.quote_id, accepted=sold)
                )
                break
            except ServingError:
                if attempt == retries:
                    raise
                time.sleep(0.05)
        posted.append(np.nan if response.posted_price is None else response.posted_price)


# --------------------------------------------------------------------------- #
# The tentpole: golden families through a live 2→3 migration over the socket
# --------------------------------------------------------------------------- #


def test_golden_families_bit_exact_through_live_migration_over_socket(tmp_path):
    """Every golden family serves as one session; a 2→3 migration runs
    mid-stream while pipelined v2-wire traffic keeps flowing.  Each family's
    posted-price transcript must equal the offline engine's bit-for-bit,
    every submitted quote id must resolve exactly once (zero lost), and the
    routing table must end committed at 3 hash shards with no overrides."""
    workloads = _family_workloads()
    rounds = 32
    offline = {
        family: simulate(
            model, golden_specs.build_pricer(family, theta), materialized=materialized
        )
        for family, (model, materialized, theta) in workloads.items()
    }
    keys = {family: SessionKey(app="golden", segment=family) for family in FAMILIES}

    def factory(key):
        model, _materialized, theta = workloads[key.segment]
        return model, golden_specs.build_pricer(key.segment, theta)

    sharded = ShardedRegistry(
        factory,
        num_shards=2,
        config=MicroBatchConfig(max_batch=4 * len(FAMILIES), max_wait_seconds=0.002),
        snapshot_dir=str(tmp_path),
        persist_every=1,
    )
    handle = start_frontend_thread(
        sharded, unix_path=str(tmp_path / "quotes.sock"), drain_interval=0.0005
    )
    migration_result = {}

    def migrate():
        try:
            migration_result["report"] = rebalance_live(sharded, 3)
        except Exception as exc:  # pragma: no cover - surfaced by the assert below
            migration_result["error"] = exc

    migration = threading.Thread(target=migrate)
    rows = {
        family: list(stream_rounds(workloads[family][1].slice(0, rounds)))
        for family in FAMILIES
    }

    async def drive():
        client = await AsyncQuoteClient.connect(
            unix_path=handle.address, wire=2, coalesce_writes=True
        )
        posted = {family: [] for family in FAMILIES}
        seen_ids = set()
        try:
            for index in range(rounds):
                if index == rounds // 2:
                    migration.start()
                futures = [
                    (family, rows[family][index],
                     client.submit_quote(
                         keys[family],
                         rows[family][index].features,
                         rows[family][index].reserve,
                     ))
                    for family in FAMILIES
                ]
                feedbacks = []
                for family, row, future in futures:
                    result = await future
                    assert result["quote_id"] not in seen_ids, "duplicate quote id"
                    seen_ids.add(result["quote_id"])
                    posted[family].append(
                        np.nan
                        if result.get("posted_price") is None
                        else result["posted_price"]
                    )
                    feedbacks.append(
                        client.submit_feedback(
                            keys[family],
                            result["quote_id"],
                            frame_sold_at(result, row.market_value),
                        )
                    )
                for feedback in feedbacks:
                    await feedback
        finally:
            await client.close()
        return posted, seen_ids

    try:
        posted, seen_ids = asyncio.run(drive())
        migration.join(timeout=60.0)
        assert not migration.is_alive(), "migration did not finish"
        assert "error" not in migration_result, migration_result.get("error")
        stats = sharded.stats()
        final_shards = {family: sharded.shard_of(keys[family]) for family in FAMILIES}
    finally:
        handle.stop()
        sharded.close()

    # Exact quote-id accounting: every submitted quote resolved exactly once.
    assert len(seen_ids) == rounds * len(FAMILIES)
    report = migration_result["report"]
    assert report.relocated > 0, "migration moved nothing — not a live test"
    assert stats["routing"] == {
        "version": stats["routing"]["version"],
        "hash_shards": 3,
        "overrides": 0,
        "moving": 0,
    }
    assert stats["rebalance"]["sessions_moved"] == report.sessions
    assert stats["rebalance"]["moves_failed"] == 0
    for family in FAMILIES:
        assert np.array_equal(
            np.array(posted[family]),
            offline[family].transcript.posted_prices[:rounds],
            equal_nan=True,
        ), "family %s diverged through the live migration" % family
    # Every session ends on the shard its key hashes to under 3 shards.
    for family in FAMILIES:
        assert final_shards[family] == shard_of_key(keys[family], 3)


# --------------------------------------------------------------------------- #
# Structural: resident + cold sessions, placement, report
# --------------------------------------------------------------------------- #


def test_rebalance_moves_cold_and_resident_sessions(tmp_path):
    """Cold sessions (snapshot file only, nothing resident) must migrate
    alongside hot ones — and continue bit-identically when touched after
    the migration."""
    model, materialized, theta = _single_market()
    offline = simulate(
        model, golden_specs.build_pricer(FAMILY, theta), materialized=materialized
    )
    factory = lambda key: (model, golden_specs.build_pricer(FAMILY, theta))
    cold_key = SessionKey("app", "cold")
    hot_keys = [SessionKey("app", "hot-%d" % index) for index in range(4)]
    posted_cold = []

    # Era 1: create the cold session's snapshot, then shut down.
    with ShardedRegistry(
        factory, num_shards=2, snapshot_dir=str(tmp_path), persist_every=1
    ) as sharded:
        _drive_sync(sharded, cold_key, materialized, 0, 10, posted_cold)

    # Era 2: fresh service, cold session untouched; hot sessions live.
    with ShardedRegistry(
        factory, num_shards=2, snapshot_dir=str(tmp_path), persist_every=1
    ) as sharded:
        for key in hot_keys:
            _drive_sync(sharded, key, materialized, 0, 6, [])
        report = rebalance_live(sharded, 3)
        moved_keys = {move.key for move in report.moves}
        expected = {
            key
            for key in [cold_key] + hot_keys
            if shard_of_key(key, 2) != shard_of_key(key, 3)
        }
        assert moved_keys == expected
        by_key = {move.key: move for move in report.moves}
        if cold_key in by_key:
            assert not by_key[cold_key].resident and by_key[cold_key].file_moved
        for key in hot_keys:
            if key in by_key:
                assert by_key[key].resident
        # Same-shard rehome is a recorded no-op.
        unmoved = next(
            (k for k in [cold_key] + hot_keys if shard_of_key(k, 2) == shard_of_key(k, 3)),
            None,
        )
        if unmoved is not None:
            assert sharded.rehome_session(unmoved, sharded.shard_of(unmoved))["moved"] is False
        # The cold session resumes bit-identically on its new shard.
        _drive_sync(sharded, cold_key, materialized, 10, 20, posted_cold)
        assert sharded.num_shards == 3
    assert np.array_equal(
        np.array(posted_cold), offline.transcript.posted_prices[:20], equal_nan=True
    )


def test_rebalance_requires_snapshot_dir():
    model, _materialized, theta = _single_market()
    factory = lambda key: (model, golden_specs.build_pricer(FAMILY, theta))
    with ShardedRegistry(factory, num_shards=2) as sharded:
        with pytest.raises(RebalanceError, match="snapshot_dir"):
            LiveRebalancer(sharded, 3)
        with pytest.raises(RebalanceError, match="snapshot_dir"):
            sharded.rehome_session(SessionKey("app", "s"), 1)


def test_commit_refuses_stranded_overrides(tmp_path):
    """commit_routing must reject a divisor under which an override would be
    stranded — the override can only clear when it matches the hash."""
    model, materialized, theta = _single_market()
    factory = lambda key: (model, golden_specs.build_pricer(FAMILY, theta))
    with ShardedRegistry(
        factory, num_shards=2, snapshot_dir=str(tmp_path), persist_every=1
    ) as sharded:
        key = SessionKey("app", "strand")
        _drive_sync(sharded, key, materialized, 0, 3, [])
        sharded.add_shard()
        wrong = next(
            shard
            for shard in range(3)
            if shard != sharded.shard_of(key) and shard != shard_of_key(key, 3)
        )
        sharded.rehome_session(key, wrong)
        with pytest.raises(RebalanceError, match="hashes to"):
            sharded.commit_routing(3)


# --------------------------------------------------------------------------- #
# Columnar store: segment-format shards through a live migration
# --------------------------------------------------------------------------- #


def test_segment_format_live_migration_bit_exact(tmp_path):
    """A sharded service whose stores snapshot into mmap segments must
    migrate 2→3 (and back down 3→2) with every session — resident and
    cold-in-segment — continuing bit-identically, scale-in included (the
    trailing shard can only retire once its segment index is empty)."""
    model, materialized, theta = _single_market()
    offline = simulate(
        model, golden_specs.build_pricer(FAMILY, theta), materialized=materialized
    )
    factory = lambda key: (model, golden_specs.build_pricer(FAMILY, theta))
    # One cold session guaranteed to relocate under the new divisor (it
    # travels as a legacy export) and one guaranteed to stay put (its
    # segment record survives the migration and must hydrate zero-copy).
    cold_move = next(
        key
        for index in range(1000)
        for key in [SessionKey("app", "cold-move-%d" % index)]
        if shard_of_key(key, 2) != shard_of_key(key, 3)
    )
    cold_stay = next(
        key
        for index in range(1000)
        for key in [SessionKey("app", "cold-stay-%d" % index)]
        if shard_of_key(key, 2) == shard_of_key(key, 3)
    )
    hot_keys = [SessionKey("app", "hot-seg-%d" % index) for index in range(4)]
    posted = {key: [] for key in [cold_move, cold_stay] + hot_keys}

    # Era 1: the cold sessions exist only as segment records afterwards.
    with ShardedRegistry(
        factory,
        num_shards=2,
        snapshot_dir=str(tmp_path),
        persist_every=1,
        snapshot_format="segment",
    ) as sharded:
        _drive_sync(sharded, cold_move, materialized, 0, 10, posted[cold_move])
        _drive_sync(sharded, cold_stay, materialized, 0, 10, posted[cold_stay])

    with ShardedRegistry(
        factory,
        num_shards=2,
        snapshot_dir=str(tmp_path),
        persist_every=1,
        snapshot_format="segment",
    ) as sharded:
        for key in hot_keys:
            _drive_sync(sharded, key, materialized, 0, 6, posted[key])
        report = rebalance_live(sharded, 3)
        expected_moves = {
            key
            for key in [cold_move] + hot_keys
            if shard_of_key(key, 2) != shard_of_key(key, 3)
        }
        assert {move.key for move in report.moves} == expected_moves
        assert cold_stay not in {move.key for move in report.moves}
        assert sharded.num_shards == 3
        # Hot sessions continue, the cold ones resume — all bit-exact.
        # cold_stay hydrates straight off its untouched segment record.
        for key in hot_keys:
            _drive_sync(sharded, key, materialized, 6, 12, posted[key])
        _drive_sync(sharded, cold_move, materialized, 10, 12, posted[cold_move])
        _drive_sync(sharded, cold_stay, materialized, 10, 12, posted[cold_stay])
        # Scale back in: every session leaves shard 2 as a legacy export,
        # its segment record tombstoned, so the retirement check passes.
        report_down = rebalance_live(sharded, 2)
        assert sharded.num_shards == 2
        assert {move.key for move in report_down.moves} == expected_moves
        for key in hot_keys:
            _drive_sync(sharded, key, materialized, 12, 16, posted[key])
        _drive_sync(sharded, cold_move, materialized, 12, 16, posted[cold_move])
        _drive_sync(sharded, cold_stay, materialized, 12, 16, posted[cold_stay])
        stats = sharded.stats()
        assert stats["routing"]["hash_shards"] == 2
        assert stats["registry"]["zero_copy_hydrations"] > 0
    for key, prices in posted.items():
        assert np.array_equal(
            np.array(prices),
            offline.transcript.posted_prices[: len(prices)],
            equal_nan=True,
        ), "session %s diverged through the segment-format migration" % (key,)


# --------------------------------------------------------------------------- #
# The commit-window race: new keys must not strand on the old placement
# --------------------------------------------------------------------------- #


def test_commit_window_blocks_new_admissions_until_routing_is_live(tmp_path):
    """Regression for the residual rebalance race: a brand-new session key
    admitted *between* the final empty sweep and commit_routing used to land
    on the old hash placement, stranded and unserved by the new divisor.
    The commit now runs under the routing freeze, so the racing admission
    must block until the new placement is live and land on its 3-shard
    home — serving bit-identically."""
    model, materialized, theta = _single_market()
    offline = simulate(
        model, golden_specs.build_pricer(FAMILY, theta), materialized=materialized
    )
    factory = lambda key: (model, golden_specs.build_pricer(FAMILY, theta))
    racer = next(
        key
        for index in range(1000)
        for key in [SessionKey("app", "racer-%d" % index)]
        if shard_of_key(key, 2) != shard_of_key(key, 3)
    )
    posted = []
    entered = threading.Event()
    admitted = threading.Event()

    with ShardedRegistry(
        factory, num_shards=2, snapshot_dir=str(tmp_path), persist_every=1
    ) as sharded:
        for index in range(3):
            _drive_sync(
                sharded, SessionKey("app", "seed-%d" % index), materialized, 0, 4, []
            )

        def admit():
            entered.set()
            _drive_sync(sharded, racer, materialized, 0, 8, posted)
            admitted.set()

        racer_thread = threading.Thread(target=admit)

        def before_commit():
            # Invoked with the freeze held, after the final empty plan and
            # immediately before commit: race the admission in right here.
            racer_thread.start()
            assert entered.wait(5.0)
            time.sleep(0.25)
            # The admission is parked on the router lock — were the window
            # still open, the quote would have been served on the 2-shard
            # placement by now.
            assert not admitted.is_set(), "admission slipped into the commit window"

        rebalance_live(sharded, 3, before_commit=before_commit)
        racer_thread.join(timeout=30.0)
        assert not racer_thread.is_alive()
        assert admitted.is_set()
        # The racer was admitted under the *new* routing: no override, no
        # stranding, straight onto its 3-shard hash home.
        assert sharded.shard_of(racer) == shard_of_key(racer, 3)
        stats = sharded.stats()
        assert stats["routing"]["hash_shards"] == 3
        assert stats["routing"]["overrides"] == 0
    assert np.array_equal(
        np.array(posted), offline.transcript.posted_prices[:8], equal_nan=True
    )


# --------------------------------------------------------------------------- #
# Chaos: SIGKILL a shard worker mid-migration
# --------------------------------------------------------------------------- #


def test_chaos_kill_mid_migration_recovers_bit_exactly(tmp_path):
    """A shard worker SIGKILLed right after receiving a migrated session
    (and respawned) must recover every session bit-exactly from write-behind
    snapshots while the migration completes and traffic continues."""
    model, materialized, theta = _single_market()
    offline = simulate(
        model, golden_specs.build_pricer(FAMILY, theta), materialized=materialized
    )
    factory = lambda key: (model, golden_specs.build_pricer(FAMILY, theta))
    keys = [SessionKey("chaos", "seg-%d" % index) for index in range(5)]
    sharded = ShardedRegistry(
        factory, num_shards=2, snapshot_dir=str(tmp_path), persist_every=1
    )
    chaos_log = []

    def chaos_hook(count, move):
        if count == 1:
            victim = move.target
            process = sharded._shards[victim].process
            os.kill(process.pid, signal.SIGKILL)
            process.join(5.0)
            lost = sharded.respawn_shard(victim)
            chaos_log.append((victim, lost))

    rebalancer = LiveRebalancer(sharded, 3, after_move=chaos_hook)
    migration_result = {}

    def migrate():
        try:
            migration_result["report"] = rebalancer.run()
        except Exception as exc:
            migration_result["error"] = exc

    posted = {key: [] for key in keys}
    with sharded:
        for key in keys:
            _drive_sync(sharded, key, materialized, 0, 8, posted[key])
        migration = threading.Thread(target=migrate)
        migration.start()
        # Traffic continues during the migration and the kill; quotes that
        # land on the dying shard are retried and must re-propose the exact
        # same prices from the write-behind snapshots.
        for key in keys:
            _drive_sync(sharded, key, materialized, 8, 20, posted[key], retries=80)
        migration.join(timeout=60.0)
        assert not migration.is_alive()
        assert "error" not in migration_result, migration_result.get("error")
        assert chaos_log, "the chaos hook never fired"
        for key in keys:
            _drive_sync(sharded, key, materialized, 20, 28, posted[key], retries=80)
        stats = sharded.stats()
        assert stats["routing"]["hash_shards"] == 3
    for key in keys:
        assert np.array_equal(
            np.array(posted[key]),
            offline.transcript.posted_prices[:28],
            equal_nan=True,
        ), "session %s diverged through the chaos migration" % (key,)


# --------------------------------------------------------------------------- #
# Pipelined v2 client submitting to a session while it moves (S4)
# --------------------------------------------------------------------------- #


def test_pipelined_v2_client_during_move_is_order_preserving(tmp_path):
    """A coalescing v2-wire client keeps a burst of pipelined quotes in
    flight against a session while it is rehomed: every quote resolves,
    results arrive order-preserving (strictly consecutive round indexes in
    submission order), and the frontend's waiter bound stays exact."""
    model, materialized, theta = _single_market()
    factory = lambda key: (model, golden_specs.build_pricer(FAMILY, theta))
    key = SessionKey("app", "pipelined")
    max_waiters = 64
    sharded = ShardedRegistry(
        factory,
        num_shards=2,
        config=MicroBatchConfig(max_batch=8, max_wait_seconds=0.001),
        snapshot_dir=str(tmp_path),
        persist_every=1,
    )
    handle = start_frontend_thread(
        sharded,
        unix_path=str(tmp_path / "quotes.sock"),
        drain_interval=0.0005,
        max_waiters=max_waiters,
    )
    mover_result = {}

    def mover():
        try:
            sharded.add_shard()
            target = next(
                shard for shard in range(3) if shard != sharded.shard_of(key)
            )
            mover_result["move"] = sharded.rehome_session(key, target)
        except Exception as exc:
            mover_result["error"] = exc

    rows = list(stream_rounds(materialized.slice(0, 24)))
    move_thread = threading.Thread(target=mover)

    async def drive():
        client = await AsyncQuoteClient.connect(
            unix_path=handle.address, wire=2, coalesce_writes=True
        )
        results = []
        try:
            for burst_start in range(0, len(rows), 4):
                if burst_start == 8:
                    move_thread.start()
                burst = rows[burst_start : burst_start + 4]
                futures = [
                    client.submit_quote(key, row.features, row.reserve) for row in burst
                ]
                resolved = [await future for future in futures]
                for row, result in zip(burst, resolved):
                    await client.submit_feedback(
                        key, result["quote_id"], frame_sold_at(result, row.market_value)
                    )
                results.extend(resolved)
            stats_frame = await client.stats()
        finally:
            await client.close()
        return results, stats_frame

    try:
        results, stats_frame = asyncio.run(drive())
        move_thread.join(timeout=30.0)
        assert not move_thread.is_alive()
        assert "error" not in mover_result, mover_result.get("error")
        assert mover_result["move"]["moved"] is True
    finally:
        handle.stop()
        sharded.close()

    # Order-preserving: the session saw its quotes in submission order,
    # straight through the move (round indexes strictly consecutive).
    assert [result["round_index"] for result in results] == list(range(len(rows)))
    assert len({result["quote_id"] for result in results}) == len(rows)
    assert stats_frame["frontend"]["peak_waiters"] <= max_waiters
    # The stats frame carries the rebalance block for observability.
    assert stats_frame["rebalance"]["sessions_moved"] == 1
