"""Cross-session stacked feedback (relaxed tier) vs the per-session loop."""

import numpy as np
import pytest

from repro.core.batched_ellipsoid import BackendUnavailableError, HAS_TORCH
from repro.core.models import LinearModel
from repro.core.pricing import make_pricer
from repro.core.sgd_pricer import SGDContextualPricer
from repro.engine.equivalence import assert_states_close
from repro.serving import (
    FeedbackEvent,
    MicroBatchConfig,
    PricerRegistry,
    QuoteRequest,
    QuoteService,
    SessionKey,
)

DIM = 4
THETA = np.full(DIM, 0.8)


def _factory(key):
    return LinearModel(THETA.copy()), make_pricer(
        dimension=DIM, radius=2.0, epsilon=0.05, delta=0.0
    )


def _sgd_factory(key):
    return LinearModel(THETA.copy()), SGDContextualPricer(dimension=DIM, radius=2.0)


def _service(backend, factory=_factory):
    registry = PricerRegistry(factory)
    service = QuoteService(
        registry,
        config=MicroBatchConfig(max_batch=512, max_wait_seconds=10.0),
        backend=backend,
    )
    return registry, service


def _drive(registry, service, n_sessions=10, windows=20, seed=42, reserve=0.1):
    """Windows of one quote per session with deterministic market feedback."""
    keys = [SessionKey("app", "s%02d" % index) for index in range(n_sessions)]
    rng = np.random.default_rng(seed)
    for _ in range(windows):
        issued = {}
        for key in keys:
            features = rng.random(DIM)
            features /= features.sum()
            quote_id = service.submit(
                QuoteRequest(key=key, features=features, reserve=reserve)
            )
            issued[key] = (quote_id, features)
        responses = {r.quote_id: r for r in service.flush()}
        events = []
        for key in keys:
            quote_id, features = issued[key]
            response = responses[quote_id]
            if response.skipped or response.posted_price is None:
                accepted = False
            else:
                accepted = response.posted_price <= float(features @ THETA)
            events.append(FeedbackEvent(key=key, quote_id=quote_id, accepted=accepted))
        service.feedback_batch(events)
    return keys


class TestStackedFeedbackParity:
    def test_states_match_reference_loop(self):
        ref_registry, ref_service = _service(None)
        bat_registry, bat_service = _service("batched")
        keys = _drive(ref_registry, ref_service)
        _drive(bat_registry, bat_service)
        assert bat_service.stats.batched_updates > 0
        assert bat_service.stats.feedback_applied == ref_service.stats.feedback_applied
        for key in keys:
            reference = ref_registry.peek(key).pricer
            batched = bat_registry.peek(key).pricer
            # Scalar skeleton (cut counters, round counts) must match
            # exactly; geometry within the relaxed policy.
            assert_states_close(
                batched.state_dict(), reference.state_dict(), label=str(key)
            )

    def test_stacked_update_covers_all_eligible_sessions(self):
        bat_registry, bat_service = _service("batched")
        _drive(bat_registry, bat_service, n_sessions=8, windows=5)
        stats = bat_service.stats
        # Every window whose sessions all cut exactly once becomes one
        # stacked update over all eight sessions.
        assert stats.batched_update_sessions >= stats.batched_updates * 2
        assert stats.feedback_applied == 8 * 5

    def test_write_behind_persists_post_cut_state(self, tmp_path):
        registry = PricerRegistry(
            _factory, snapshot_dir=str(tmp_path), persist_every=1
        )
        service = QuoteService(
            registry,
            config=MicroBatchConfig(max_batch=512, max_wait_seconds=10.0),
            backend="batched",
        )
        keys = _drive(registry, service, n_sessions=4, windows=3)
        assert service.stats.batched_updates > 0
        for key in keys:
            live_state = registry.peek(key).pricer.state_dict()
            registry.evict(key)
            reloaded = registry.session(key).pricer
            assert_states_close(
                reloaded.state_dict(), live_state, label="reload %s" % (key,)
            )


class TestFallbacks:
    def test_zero_cut_window_uses_reference_loop(self):
        registry, service = _service("batched")
        # A reserve far above any attainable value skips every round: no
        # cut-requiring event, so nothing to stack.
        _drive(registry, service, n_sessions=3, windows=4, reserve=100.0)
        assert service.stats.batched_updates == 0
        assert service.stats.feedback_applied == 3 * 4

    def test_multi_cut_group_uses_reference_loop(self):
        registry, service = _service("batched")
        key = SessionKey("app", "multi")
        rng = np.random.default_rng(3)
        first = rng.random(DIM)
        second = rng.random(DIM)
        id_a = service.submit(QuoteRequest(key=key, features=first, reserve=0.1))
        id_b = service.submit(QuoteRequest(key=key, features=second, reserve=0.1))
        service.flush()
        service.feedback_batch(
            [
                FeedbackEvent(key=key, quote_id=id_a, accepted=True),
                FeedbackEvent(key=key, quote_id=id_b, accepted=False),
            ]
        )
        assert service.stats.batched_updates == 0
        assert service.stats.feedback_applied == 2
        assert registry.peek(key).pricer.cuts_applied == 2

    def test_partial_window_keeps_reference_loop(self):
        # Feedback for one of two in-flight quotes: pending would stay
        # non-empty, so the scatter precondition fails — must fall back.
        registry, service = _service("batched")
        key = SessionKey("app", "partial")
        rng = np.random.default_rng(4)
        id_a = service.submit(
            QuoteRequest(key=key, features=rng.random(DIM), reserve=0.1)
        )
        service.submit(QuoteRequest(key=key, features=rng.random(DIM), reserve=0.1))
        service.flush()
        service.feedback_batch([FeedbackEvent(key=key, quote_id=id_a, accepted=True)])
        assert service.stats.batched_updates == 0
        assert len(registry.peek(key).pending) == 1

    def test_non_ellipsoid_family_uses_reference_loop(self):
        registry, service = _service("batched", factory=_sgd_factory)
        keys = _drive(registry, service, n_sessions=3, windows=3)
        assert service.stats.batched_updates == 0
        assert service.stats.feedback_applied == 3 * 3
        ref_registry, ref_service = _service(None, factory=_sgd_factory)
        _drive(ref_registry, ref_service, n_sessions=3, windows=3)
        for key in keys:
            np.testing.assert_array_equal(
                registry.peek(key).pricer.estimate,
                ref_registry.peek(key).pricer.estimate,
            )


class TestBackendConstruction:
    def test_unknown_backend_fails_at_construction(self):
        registry = PricerRegistry(_factory)
        with pytest.raises(ValueError):
            QuoteService(registry, backend="bogus")

    @pytest.mark.skipif(HAS_TORCH, reason="torch present: unavailability not testable")
    def test_missing_torch_fails_at_construction(self):
        registry = PricerRegistry(_factory)
        with pytest.raises(BackendUnavailableError):
            QuoteService(registry, backend="batched-torch")

    def test_reference_backend_has_no_math_backend(self):
        registry, service = _service("reference")
        assert service._math_backend is None
