"""Shard-worker lifecycle: wedged close, dead-shard accounting, respawn.

Regression tier for the shard-lifecycle bugfix sweep:

* ``close(timeout=...)`` must never hang or leak a worker — even one wedged
  in an infinite pricer call with SIGTERM ignored (the escalation ladder
  must reach SIGKILL), and repeated ``close()`` is a no-op;
* a shard worker dying mid-batch must fail **only its own** events: the
  complete set of its in-flight quote ids is reported lost exactly once,
  responses and outcomes routed to healthy shards are still returned, and
  subsequent polls return normally instead of re-raising forever;
* ``respawn_shard`` brings a killed worker back: its sessions re-hydrate
  from their write-behind snapshots bit-identically.
"""

import asyncio
import os
import signal
import sys
import threading
import time

import numpy as np
import pytest

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "golden"))
import golden_specs

from repro.core.baselines import FixedPricePricer
from repro.engine import prepare, simulate, stream_rounds
from repro.exceptions import ServingError
from repro.serving import (
    AsyncQuoteClient,
    FeedbackEvent,
    MicroBatchConfig,
    QuoteRequest,
    SessionKey,
    ShardedRegistry,
    shard_of_key,
    start_frontend_thread,
)

FAMILY = "ellipsoid-reserve"


def _market():
    model, batch, theta = golden_specs.build_market(FAMILY)
    return model, prepare(model, batch), theta


def _sharded(model, theta, num_shards=2, **kwargs):
    return ShardedRegistry(
        lambda key: (model, golden_specs.build_pricer(FAMILY, theta)),
        num_shards=num_shards,
        **kwargs,
    )


def _keys_on_distinct_shards(num_shards, count):
    keys, seen = [], set()
    index = 0
    while len(keys) < count:
        key = SessionKey("app", "segment-%d" % index)
        shard = shard_of_key(key, num_shards)
        if shard not in seen:
            seen.add(shard)
            keys.append(key)
        index += 1
    return keys


def _kill_shard(sharded, shard):
    process = sharded._shards[shard].process
    os.kill(process.pid, signal.SIGKILL)
    process.join(5.0)


# --------------------------------------------------------------------------- #
# close() on a wedged worker
# --------------------------------------------------------------------------- #


class _WedgedPricer(FixedPricePricer):
    """Ignores SIGTERM and never returns from propose — the worst worker."""

    def propose(self, features, reserve=None):
        signal.signal(signal.SIGTERM, signal.SIG_IGN)
        time.sleep(3600.0)


def _wedge_factory(key):
    # Runs inside the worker: make terminate() (SIGTERM) ineffective so only
    # the kill() rung of the escalation ladder can reap the process.
    signal.signal(signal.SIGTERM, signal.SIG_IGN)
    return None, _WedgedPricer(price=1.0)


def test_close_escalates_to_kill_on_wedged_worker():
    """A worker stuck in an infinite propose with SIGTERM ignored must not
    make close() hang (the router thread blocks in the pipe read holding the
    router lock) or leak the process."""
    sharded = ShardedRegistry(_wedge_factory, num_shards=1)
    key = SessionKey("wedge", "s0")

    def _wedged_quote():
        try:
            sharded.quote(QuoteRequest(key=key, features=np.zeros(3), reserve=None))
        except ServingError:
            pass  # the kill surfaces as a dead-shard error — expected

    thread = threading.Thread(target=_wedged_quote, daemon=True)
    thread.start()
    time.sleep(0.5)  # let the worker enter the infinite propose
    processes = [handle.process for handle in sharded._shards]
    start = time.monotonic()
    sharded.close(timeout=0.3)
    elapsed = time.monotonic() - start
    assert elapsed < 10.0, "close() hung for %.1fs on a wedged worker" % elapsed
    for process in processes:
        process.join(5.0)
        assert not process.is_alive(), "close() leaked a wedged worker"
    # Idempotent: a second (and third) close is a prompt no-op.
    start = time.monotonic()
    sharded.close()
    sharded.close(timeout=0.1)
    assert time.monotonic() - start < 1.0
    thread.join(5.0)


def test_close_is_idempotent_on_healthy_workers():
    model, _materialized, theta = _market()
    sharded = _sharded(model, theta, num_shards=2)
    sharded.close()
    sharded.close()
    for handle in sharded._shards:
        assert not handle.process.is_alive()


# --------------------------------------------------------------------------- #
# Dead shard mid-batch: partial-failure accounting
# --------------------------------------------------------------------------- #


def test_dead_shard_reports_complete_lost_ids_once_and_spares_others():
    """Killing a worker with quotes in flight loses exactly its quotes (all
    of them, reported once); healthy shards' responses are parked on the
    error and surface on the next poll, which then returns normally."""
    model, materialized, theta = _market()
    keys = _keys_on_distinct_shards(3, 3)
    round_ = next(iter(stream_rounds(materialized.slice(0, 1))))
    config = MicroBatchConfig(max_batch=64, max_wait_seconds=60.0)
    with _sharded(model, theta, num_shards=3, config=config) as sharded:
        ids = {
            key: [
                sharded.submit(
                    QuoteRequest(key=key, features=round_.features, reserve=round_.reserve)
                )
                for _ in range(2)
            ]
            for key in keys
        }
        victim = keys[1]
        victim_shard = sharded.shard_of(victim)
        _kill_shard(sharded, victim_shard)
        with pytest.raises(ServingError) as excinfo:
            sharded.flush()
        assert sorted(excinfo.value.lost_quote_ids) == sorted(ids[victim])
        responses = sharded.poll()
        assert {response.quote_id for response in responses} == {
            quote_id for key in keys if key != victim for quote_id in ids[key]
        }
        # The dead shard poisons nothing: polling is clean from here on.
        assert sharded.poll() == []
        assert all(not handle.outstanding for handle in sharded._shards)
        # And the dead shard refuses new work with actionable advice.
        with pytest.raises(ServingError, match="respawn_shard"):
            sharded.submit(
                QuoteRequest(key=victim, features=round_.features, reserve=round_.reserve)
            )


def test_feedback_many_returns_outcomes_for_shards_after_the_dead_one():
    """feedback_many across three shards with the middle one killed: the
    dead shard's events carry the error, every healthy shard's outcomes are
    still returned, aligned with the input order."""
    model, materialized, theta = _market()
    keys = _keys_on_distinct_shards(3, 3)
    round_ = next(iter(stream_rounds(materialized.slice(0, 1))))
    with _sharded(model, theta, num_shards=3) as sharded:
        responses = {}
        for key in keys:
            sharded.submit(
                QuoteRequest(key=key, features=round_.features, reserve=round_.reserve)
            )
            (response,) = [r for r in sharded.flush() if r.key == key]
            responses[key] = response
        victim = keys[1]
        _kill_shard(sharded, sharded.shard_of(victim))
        events = [
            FeedbackEvent(
                key=key,
                quote_id=responses[key].quote_id,
                accepted=bool(
                    responses[key].posted
                    and responses[key].posted_price <= round_.market_value
                ),
            )
            for key in keys
        ]
        outcomes = sharded.feedback_many(events)
        assert len(outcomes) == 3
        assert outcomes[0] is None
        assert isinstance(outcomes[1], ServingError)
        assert outcomes[2] is None


def test_submit_many_keeps_healthy_shard_accounting_when_one_is_dead():
    """submit_many spanning a dead shard raises, but the healthy shards'
    requests were enqueued and their responses drain normally."""
    model, materialized, theta = _market()
    keys = _keys_on_distinct_shards(3, 3)
    round_ = next(iter(stream_rounds(materialized.slice(0, 1))))
    with _sharded(model, theta, num_shards=3) as sharded:
        victim = keys[1]
        _kill_shard(sharded, sharded.shard_of(victim))
        requests = [
            QuoteRequest(key=key, features=round_.features, reserve=round_.reserve)
            for key in keys
        ]
        with pytest.raises(ServingError):
            sharded.submit_many(requests)
        responses = sharded.flush()
        assert {response.key for response in responses} == {keys[0], keys[2]}


def test_respawn_write_off_surfaces_on_the_next_poll():
    """Quotes written off by a direct ``respawn_shard`` (no poll touched the
    dead pipe first) must surface as a structured error on the next poll —
    a concurrently-polling serving loop (the socket frontend's drain task)
    would otherwise leave their waiters hanging forever."""
    model, materialized, theta = _market()
    keys = _keys_on_distinct_shards(2, 2)
    round_ = next(iter(stream_rounds(materialized.slice(0, 1))))
    config = MicroBatchConfig(max_batch=64, max_wait_seconds=60.0)
    with _sharded(model, theta, num_shards=2, config=config) as sharded:
        ids = [
            sharded.submit(
                QuoteRequest(key=key, features=round_.features, reserve=round_.reserve)
            )
            for key in keys
        ]
        victim_shard = sharded.shard_of(keys[0])
        _kill_shard(sharded, victim_shard)
        lost = sharded.respawn_shard(victim_shard)
        assert lost == [ids[0]]
        with pytest.raises(ServingError) as excinfo:
            sharded.poll()
        assert excinfo.value.lost_quote_ids == [ids[0]]
        # Reported once: the healthy shard's response still drains normally.
        responses = sharded.flush()
        assert [response.quote_id for response in responses] == [ids[1]]


def test_partial_submit_failure_spares_healthy_quotes_through_the_socket(tmp_path):
    """A coalesced quote batch spanning a dead shard fails only the dead
    shard's quotes: the healthy quotes were enqueued backend-side, so their
    futures must resolve with real results — failing them would strand
    their (served, never-fed-back) decisions pending forever, wedging any
    later quiesce of those sessions."""
    model, materialized, theta = _market()
    keys = _keys_on_distinct_shards(3, 3)
    round_ = next(iter(stream_rounds(materialized.slice(0, 1))))
    address = os.path.join(str(tmp_path), "quotes.sock")
    with _sharded(model, theta, num_shards=3) as sharded:
        victim = keys[1]
        _kill_shard(sharded, sharded.shard_of(victim))
        handle = start_frontend_thread(sharded, unix_path=address, drain_interval=0.001)
        try:
            async def burst():
                client = await AsyncQuoteClient.connect(
                    unix_path=address, wire=2, coalesce_writes=True
                )
                try:
                    futures = client.submit_quotes(
                        [(key, round_.features, round_.reserve) for key in keys]
                    )
                    results = await asyncio.gather(*futures, return_exceptions=True)
                    for key, result in zip(keys, results):
                        if isinstance(result, Exception):
                            continue
                        await client.submit_feedback(
                            key, result["quote_id"], accepted=True
                        )
                    return results
                finally:
                    await client.close()

            results = asyncio.run(burst())
        finally:
            handle.stop()
        assert isinstance(results[1], ServingError)
        for index in (0, 2):
            assert not isinstance(results[index], Exception), results[index]
            assert results[index]["posted_price"] is not None
        # Feedback settled, so nothing is left pending on the healthy shards
        # (a stranded decision would wedge any later quiesce of the session).
        for index in (0, 2):
            shard = sharded.shard_of(keys[index])
            info = sharded._roundtrip(
                sharded._shards[shard], "session_info", keys[index]
            )
            assert info["pending"] == 0


def test_respawn_shard_rehydrates_bit_identically(tmp_path):
    """Kill a worker between rounds and respawn it: the session continues
    from its write-behind snapshot bit-identically to the offline engine."""
    model, materialized, theta = _market()
    offline = simulate(
        model, golden_specs.build_pricer(FAMILY, theta), materialized=materialized
    )
    key = SessionKey("app", "respawn")
    posted = []
    with _sharded(
        model, theta, num_shards=2, snapshot_dir=str(tmp_path), persist_every=1
    ) as sharded:
        def drive(start, stop):
            for round_ in stream_rounds(materialized.slice(start, stop)):
                response = sharded.quote(
                    QuoteRequest(key=key, features=round_.features, reserve=round_.reserve)
                )
                sold = bool(
                    response.posted and response.posted_price <= round_.market_value
                )
                sharded.feedback(
                    FeedbackEvent(key=key, quote_id=response.quote_id, accepted=sold)
                )
                posted.append(
                    np.nan if response.posted_price is None else response.posted_price
                )

        drive(0, 12)
        shard = sharded.shard_of(key)
        _kill_shard(sharded, shard)
        lost = sharded.respawn_shard(shard)
        assert lost == []  # nothing was in flight between rounds
        drive(12, 24)
        stats = sharded.stats()
        assert stats["registry"]["hydrations"] >= 1
    assert np.array_equal(
        np.array(posted), offline.transcript.posted_prices[:24], equal_nan=True
    )
