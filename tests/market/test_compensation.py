"""Unit tests for compensation contracts."""

import math

import pytest

from repro.market.compensation import (
    CappedLinearCompensation,
    LinearCompensation,
    TanhCompensation,
)


class TestTanhCompensation:
    def test_zero_leakage_zero_compensation(self):
        assert TanhCompensation(base_rate=2.0).compensation(0.0) == 0.0

    def test_saturates_at_base_rate(self):
        contract = TanhCompensation(base_rate=2.0, sensitivity=1.0)
        assert contract.compensation(100.0) == pytest.approx(2.0, abs=1e-6)

    def test_matches_tanh_formula(self):
        contract = TanhCompensation(base_rate=3.0, sensitivity=0.5)
        assert contract.compensation(2.0) == pytest.approx(3.0 * math.tanh(1.0))

    def test_monotone_in_leakage(self):
        contract = TanhCompensation(base_rate=1.0)
        values = [contract.compensation(eps) for eps in (0.0, 0.5, 1.0, 2.0, 5.0)]
        assert values == sorted(values)

    def test_rejects_negative_leakage(self):
        with pytest.raises(ValueError):
            TanhCompensation(base_rate=1.0).compensation(-0.1)

    def test_rejects_bad_sensitivity(self):
        with pytest.raises(ValueError):
            TanhCompensation(base_rate=1.0, sensitivity=0.0)


class TestLinearCompensation:
    def test_linear_in_leakage(self):
        contract = LinearCompensation(rate=2.5)
        assert contract.compensation(2.0) == pytest.approx(5.0)

    def test_zero_rate_allowed(self):
        assert LinearCompensation(rate=0.0).compensation(3.0) == 0.0

    def test_rejects_negative_rate(self):
        with pytest.raises(ValueError):
            LinearCompensation(rate=-1.0)


class TestCappedLinearCompensation:
    def test_caps_large_leakage(self):
        contract = CappedLinearCompensation(rate=1.0, cap=2.0)
        assert contract.compensation(10.0) == pytest.approx(2.0)
        assert contract.compensation(1.0) == pytest.approx(1.0)
