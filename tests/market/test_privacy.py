"""Unit tests for privacy leakage quantification."""

import numpy as np
import pytest

from repro.market.privacy import LeakageQuantifier, laplace_privacy_leakage
from repro.market.queries import NoisyLinearQuery


class TestLaplaceLeakage:
    def test_formula(self):
        leakage = laplace_privacy_leakage([1.0, -2.0, 0.0], noise_scale=2.0)
        assert np.allclose(leakage, [0.5, 1.0, 0.0])

    def test_data_ranges_scale_leakage(self):
        leakage = laplace_privacy_leakage([1.0, 1.0], noise_scale=1.0, data_ranges=[2.0, 0.5])
        assert np.allclose(leakage, [2.0, 0.5])

    def test_more_noise_means_less_leakage(self):
        precise = laplace_privacy_leakage([1.0], noise_scale=0.1)
        noisy = laplace_privacy_leakage([1.0], noise_scale=10.0)
        assert precise[0] > noisy[0]

    def test_rejects_zero_noise(self):
        with pytest.raises(ValueError):
            laplace_privacy_leakage([1.0], noise_scale=0.0)

    def test_rejects_negative_ranges(self):
        with pytest.raises(ValueError):
            laplace_privacy_leakage([1.0], noise_scale=1.0, data_ranges=[-1.0])


class TestLeakageQuantifier:
    def test_cap_applied(self):
        quantifier = LeakageQuantifier(leakage_cap=1.0)
        query = NoisyLinearQuery(weights=np.array([5.0, 0.1]), noise_scale=0.01)
        leakages = quantifier.leakages(query)
        assert np.max(leakages) <= 1.0

    def test_no_cap(self):
        quantifier = LeakageQuantifier(leakage_cap=None)
        query = NoisyLinearQuery(weights=np.array([5.0]), noise_scale=0.01)
        assert quantifier.leakages(query)[0] == pytest.approx(500.0)

    def test_data_ranges_dimension_checked(self):
        quantifier = LeakageQuantifier(data_ranges=[1.0, 1.0])
        query = NoisyLinearQuery(weights=np.array([1.0, 1.0, 1.0]), noise_scale=1.0)
        with pytest.raises(ValueError):
            quantifier.leakages(query)

    def test_rejects_bad_cap(self):
        with pytest.raises(ValueError):
            LeakageQuantifier(leakage_cap=0.0)
