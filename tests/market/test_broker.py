"""Integration-style tests for the data broker."""

import numpy as np
import pytest

from repro.core.pricing import PricerConfig, make_pricer
from repro.market.broker import DataBroker
from repro.market.consumers import FixedValuationConsumer, ThresholdConsumer
from repro.market.features import CompensationFeatureExtractor
from repro.market.owners import OwnerPopulation
from repro.market.queries import QueryGenerator


@pytest.fixture
def broker():
    owners = OwnerPopulation.from_records(np.linspace(1.0, 4.0, 50), seed=0)
    dimension = 6
    pricer = make_pricer(
        dimension=dimension,
        radius=2.0 * np.sqrt(dimension),
        epsilon=0.05,
        use_reserve=True,
    )
    extractor = CompensationFeatureExtractor(dimension=dimension)
    return DataBroker(owners, pricer, extractor, seed=1)


class TestPrepareQuery:
    def test_prepare_query_returns_consistent_pieces(self, broker):
        query = QueryGenerator(owner_count=50, seed=2).generate()
        compensations, extraction, reserve = broker.prepare_query(query)
        assert compensations.shape == (50,)
        assert np.all(compensations >= 0)
        assert extraction.features.shape == (6,)
        assert reserve == pytest.approx(float(np.sum(extraction.features)))


class TestTrade:
    def test_sold_trade_flows_money(self, broker):
        query = QueryGenerator(owner_count=50, seed=3).generate()
        consumer = FixedValuationConsumer(10.0)  # accepts any reasonable price
        record = broker.trade(query, consumer)
        assert record.sold
        assert record.revenue == pytest.approx(record.posted_price)
        assert record.total_compensation_paid == pytest.approx(record.reserve_price)
        assert record.noisy_answer is not None
        assert record.profit == pytest.approx(record.revenue - record.reserve_price)

    def test_unsold_trade_flows_nothing(self, broker):
        query = QueryGenerator(owner_count=50, seed=4).generate()
        consumer = FixedValuationConsumer(-1.0)  # rejects every price
        record = broker.trade(query, consumer)
        assert not record.sold
        assert record.revenue == 0.0
        assert record.total_compensation_paid == 0.0
        assert record.noisy_answer is None

    def test_cumulative_accounting(self, broker):
        generator = QueryGenerator(owner_count=50, seed=5)
        rng = np.random.default_rng(6)
        weights = np.abs(rng.standard_normal(6))
        weights *= np.sqrt(12) / np.linalg.norm(weights)
        consumer = ThresholdConsumer(lambda features: float(features @ weights))
        for _ in range(20):
            broker.trade(generator.generate(), consumer)
        assert len(broker.trades) == 20
        assert broker.sale_count == sum(1 for t in broker.trades if t.sold)
        assert broker.cumulative_revenue == pytest.approx(
            sum(t.revenue for t in broker.trades)
        )
        assert broker.cumulative_profit == pytest.approx(
            sum(t.profit for t in broker.trades)
        )
        # The broker never sells below the reserve, so profit is non-negative.
        assert broker.cumulative_profit >= -1e-9

    def test_pricer_learns_through_broker(self, broker):
        """The broker's pricer refines its knowledge set from trade feedback."""
        generator = QueryGenerator(owner_count=50, seed=7)
        consumer = FixedValuationConsumer(5.0)
        initial_volume = broker.pricer.knowledge.volume()
        for _ in range(10):
            broker.trade(generator.generate(), consumer)
        assert broker.pricer.knowledge.volume() < initial_volume
