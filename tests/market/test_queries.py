"""Unit tests for noisy linear queries and the query generator."""

import numpy as np
import pytest

from repro.exceptions import DatasetError
from repro.market.queries import NoisyLinearQuery, QueryGenerator


class TestNoisyLinearQuery:
    def test_true_answer(self):
        query = NoisyLinearQuery(weights=np.array([1.0, -1.0, 2.0]), noise_scale=1.0)
        assert query.true_answer([1.0, 2.0, 3.0]) == pytest.approx(5.0)

    def test_noisy_answer_differs_from_true(self):
        query = NoisyLinearQuery(weights=np.array([1.0, 1.0]), noise_scale=10.0)
        answers = {query.noisy_answer([1.0, 1.0], rng=seed) for seed in range(5)}
        assert len(answers) > 1

    def test_noise_scale_must_be_positive(self):
        with pytest.raises(ValueError):
            NoisyLinearQuery(weights=np.array([1.0]), noise_scale=0.0)

    def test_owner_count(self):
        assert NoisyLinearQuery(weights=np.ones(7), noise_scale=1.0).owner_count == 7

    def test_data_dimension_checked(self):
        query = NoisyLinearQuery(weights=np.ones(3), noise_scale=1.0)
        with pytest.raises(Exception):
            query.true_answer([1.0, 2.0])


class TestQueryGenerator:
    def test_generates_requested_owner_count(self):
        generator = QueryGenerator(owner_count=12, seed=0)
        query = generator.generate()
        assert query.owner_count == 12

    def test_noise_scale_on_grid(self):
        generator = QueryGenerator(owner_count=5, max_noise_exponent=2, seed=0)
        allowed = {10.0**k for k in range(-2, 3)}
        for query in generator.stream(50):
            assert query.noise_scale in allowed

    def test_query_ids_sequential(self):
        generator = QueryGenerator(owner_count=5, seed=0)
        ids = [query.query_id for query in generator.stream(5)]
        assert ids == [0, 1, 2, 3, 4]

    def test_reproducible_with_seed(self):
        first = [q.weights for q in QueryGenerator(owner_count=4, seed=3).stream(3)]
        second = [q.weights for q in QueryGenerator(owner_count=4, seed=3).stream(3)]
        for a, b in zip(first, second):
            assert np.allclose(a, b)

    def test_uniform_only_style(self):
        generator = QueryGenerator(owner_count=100, weight_styles=("uniform",), seed=1)
        for query in generator.stream(10):
            assert np.max(np.abs(query.weights)) <= 1.0

    def test_invalid_style_rejected(self):
        with pytest.raises(DatasetError):
            QueryGenerator(owner_count=5, weight_styles=("gamma",))

    def test_empty_styles_rejected(self):
        with pytest.raises(DatasetError):
            QueryGenerator(owner_count=5, weight_styles=())

    def test_invalid_owner_count_rejected(self):
        with pytest.raises(DatasetError):
            QueryGenerator(owner_count=0)

    def test_negative_stream_count_rejected(self):
        generator = QueryGenerator(owner_count=5, seed=0)
        with pytest.raises(DatasetError):
            list(generator.stream(-1))
