"""Unit tests (incl. property tests) for the compensation feature construction."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.market.features import CompensationFeatureExtractor

SETTINGS = settings(
    max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

compensation_lists = st.lists(
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False), min_size=1, max_size=60
)


class TestAggregation:
    def test_single_partition_is_total(self):
        extractor = CompensationFeatureExtractor(dimension=1, normalise=False)
        extraction = extractor.extract([1.0, 2.0, 3.0])
        assert extraction.features[0] == pytest.approx(6.0)
        assert extraction.total_compensation == pytest.approx(6.0)

    def test_one_partition_per_owner(self):
        extractor = CompensationFeatureExtractor(dimension=3, normalise=False)
        extraction = extractor.extract([3.0, 1.0, 2.0])
        # Sorted descending, one owner per feature.
        assert np.allclose(extraction.features, [3.0, 2.0, 1.0])

    def test_padding_when_fewer_owners_than_features(self):
        extractor = CompensationFeatureExtractor(dimension=5, normalise=False)
        extraction = extractor.extract([2.0, 1.0])
        assert np.allclose(extraction.features, [2.0, 1.0, 0.0, 0.0, 0.0])

    def test_partition_sums_preserve_total(self):
        extractor = CompensationFeatureExtractor(dimension=4, normalise=False)
        compensations = np.arange(1.0, 11.0)
        extraction = extractor.extract(compensations)
        assert np.sum(extraction.features) == pytest.approx(np.sum(compensations))

    def test_ascending_option(self):
        extractor = CompensationFeatureExtractor(dimension=2, normalise=False, descending=False)
        extraction = extractor.extract([5.0, 1.0, 2.0, 4.0])
        assert extraction.features[0] <= extraction.features[1]

    def test_negative_compensation_rejected(self):
        with pytest.raises(ValueError):
            CompensationFeatureExtractor(dimension=2).extract([1.0, -0.1])

    def test_bad_dimension_rejected(self):
        with pytest.raises(ValueError):
            CompensationFeatureExtractor(dimension=0)


class TestNormalisationAndReserve:
    def test_normalised_features_have_unit_norm(self):
        extractor = CompensationFeatureExtractor(dimension=4)
        extraction = extractor.extract(np.arange(1.0, 21.0))
        assert np.linalg.norm(extraction.features) == pytest.approx(1.0)

    def test_all_zero_compensations_stay_zero(self):
        extractor = CompensationFeatureExtractor(dimension=3)
        extraction = extractor.extract([0.0, 0.0])
        assert np.allclose(extraction.features, 0.0)
        assert extraction.scale == pytest.approx(1.0)

    def test_reserve_price_in_normalised_scale_is_feature_sum(self):
        extractor = CompensationFeatureExtractor(dimension=4)
        extraction = extractor.extract(np.arange(1.0, 9.0))
        reserve = extractor.reserve_price(extraction)
        assert reserve == pytest.approx(float(np.sum(extraction.features)))

    def test_reserve_price_raw_scale(self):
        extractor = CompensationFeatureExtractor(dimension=4)
        compensations = np.arange(1.0, 9.0)
        extraction = extractor.extract(compensations)
        reserve = extractor.reserve_price(extraction, use_normalised_scale=False)
        assert reserve == pytest.approx(float(np.sum(compensations)))

    def test_scale_times_features_recovers_partition_sums(self):
        extractor = CompensationFeatureExtractor(dimension=3)
        compensations = np.array([4.0, 2.0, 2.0, 1.0, 1.0, 0.5])
        extraction = extractor.extract(compensations)
        raw = extractor.aggregate(compensations)
        assert np.allclose(extraction.features * extraction.scale, raw)


class TestProperties:
    @SETTINGS
    @given(compensations=compensation_lists, dimension=st.integers(min_value=1, max_value=12))
    def test_total_preserved_and_norm_bounded(self, compensations, dimension):
        extractor = CompensationFeatureExtractor(dimension=dimension, normalise=False)
        extraction = extractor.extract(compensations)
        assert extraction.features.shape == (dimension,)
        assert np.all(extraction.features >= 0.0)
        assert np.sum(extraction.features) == pytest.approx(np.sum(compensations), rel=1e-9, abs=1e-9)

    @SETTINGS
    @given(compensations=compensation_lists, dimension=st.integers(min_value=1, max_value=12))
    def test_normalised_norm_is_one_or_zero(self, compensations, dimension):
        extractor = CompensationFeatureExtractor(dimension=dimension)
        extraction = extractor.extract(compensations)
        norm = np.linalg.norm(extraction.features)
        # Totals so small that the norm underflows to zero are left unscaled.
        if np.sum(compensations) > 1e-6:
            assert norm == pytest.approx(1.0)
        else:
            assert norm <= 1.0 + 1e-9

    @SETTINGS
    @given(compensations=compensation_lists)
    def test_reserve_never_exceeds_sqrt_n_in_normalised_scale(self, compensations):
        """q = Σ x_i <= √n when ||x|| = 1 (Cauchy–Schwarz), the paper's S = 1 setting."""
        dimension = 6
        extractor = CompensationFeatureExtractor(dimension=dimension)
        extraction = extractor.extract(compensations)
        reserve = extractor.reserve_price(extraction)
        assert reserve <= np.sqrt(dimension) + 1e-9
