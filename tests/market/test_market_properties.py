"""Property-based tests for the data market substrate."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.market.compensation import TanhCompensation
from repro.market.features import CompensationFeatureExtractor
from repro.market.privacy import laplace_privacy_leakage
from repro.market.queries import NoisyLinearQuery

SETTINGS = settings(
    max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

query_weights = hnp.arrays(
    dtype=float,
    shape=st.integers(min_value=1, max_value=30),
    elements=st.floats(min_value=-5.0, max_value=5.0, allow_nan=False, allow_infinity=False),
)
noise_scales = st.floats(min_value=0.01, max_value=100.0, allow_nan=False, allow_infinity=False)
leakages = st.floats(min_value=0.0, max_value=50.0, allow_nan=False, allow_infinity=False)


class TestPrivacyProperties:
    @SETTINGS
    @given(weights=query_weights, noise_scale=noise_scales)
    def test_leakage_non_negative_and_scales_inversely_with_noise(self, weights, noise_scale):
        leakage = laplace_privacy_leakage(weights, noise_scale)
        assert np.all(leakage >= 0.0)
        more_noise = laplace_privacy_leakage(weights, noise_scale * 10.0)
        assert np.all(more_noise <= leakage + 1e-12)

    @SETTINGS
    @given(weights=query_weights, noise_scale=noise_scales)
    def test_leakage_is_homogeneous_in_weights(self, weights, noise_scale):
        base = laplace_privacy_leakage(weights, noise_scale)
        doubled = laplace_privacy_leakage(2.0 * np.asarray(weights), noise_scale)
        assert np.allclose(doubled, 2.0 * base)


class TestCompensationProperties:
    @SETTINGS
    @given(
        base_rate=st.floats(min_value=0.01, max_value=10.0),
        first=leakages,
        second=leakages,
    )
    def test_tanh_contract_is_monotone_and_bounded(self, base_rate, first, second):
        contract = TanhCompensation(base_rate=base_rate)
        low, high = min(first, second), max(first, second)
        assert contract.compensation(low) <= contract.compensation(high) + 1e-12
        assert 0.0 <= contract.compensation(high) <= base_rate + 1e-12


class TestQueryProperties:
    @SETTINGS
    @given(weights=query_weights, noise_scale=noise_scales, seed=st.integers(0, 1_000))
    def test_noisy_answer_centers_on_true_answer(self, weights, noise_scale, seed):
        query = NoisyLinearQuery(weights=np.asarray(weights), noise_scale=noise_scale)
        data = np.ones(query.owner_count)
        rng = np.random.default_rng(seed)
        noisy = np.array([query.noisy_answer(data, rng=rng) for _ in range(200)])
        true_answer = query.true_answer(data)
        # Laplace noise is zero-mean; the empirical mean stays within a few
        # standard errors of the true answer.
        standard_error = noise_scale * np.sqrt(2.0) / np.sqrt(200)
        assert abs(np.mean(noisy) - true_answer) < 6.0 * standard_error + 1e-9


class TestFeaturePipelineProperties:
    @SETTINGS
    @given(
        weights=query_weights,
        noise_scale=noise_scales,
        dimension=st.integers(min_value=1, max_value=8),
        base_rate=st.floats(min_value=0.1, max_value=5.0),
    )
    def test_full_pipeline_produces_valid_pricer_inputs(
        self, weights, noise_scale, dimension, base_rate
    ):
        """Leakage → compensation → features never produces invalid pricer inputs."""
        leakage = laplace_privacy_leakage(weights, noise_scale)
        contract = TanhCompensation(base_rate=base_rate)
        compensations = np.array([contract.compensation(float(l)) for l in leakage])
        extractor = CompensationFeatureExtractor(dimension=dimension)
        extraction = extractor.extract(compensations)
        reserve = extractor.reserve_price(extraction)
        assert extraction.features.shape == (dimension,)
        assert np.all(np.isfinite(extraction.features))
        assert np.all(extraction.features >= 0.0)
        assert np.isfinite(reserve)
        assert reserve >= 0.0
        assert np.linalg.norm(extraction.features) <= 1.0 + 1e-9
