"""Unit tests for data owners and the owner population."""

import numpy as np
import pytest

from repro.exceptions import DatasetError
from repro.market.compensation import LinearCompensation, TanhCompensation
from repro.market.owners import DataOwner, OwnerPopulation


class TestDataOwner:
    def test_compensation_uses_contract(self):
        owner = DataOwner(owner_id=0, data=3.5, contract=LinearCompensation(2.0))
        assert owner.compensation_for(1.5) == pytest.approx(3.0)


class TestOwnerPopulation:
    def test_from_records_generates_tanh_contracts(self):
        population = OwnerPopulation.from_records([1.0, 2.0, 3.0], seed=0)
        assert len(population) == 3
        for owner in population:
            assert isinstance(owner.contract, TanhCompensation)

    def test_data_vector(self):
        population = OwnerPopulation.from_records([1.0, 2.0, 3.0], seed=0)
        assert np.allclose(population.data_vector, [1.0, 2.0, 3.0])

    def test_empty_population_rejected(self):
        with pytest.raises(DatasetError):
            OwnerPopulation([])
        with pytest.raises(DatasetError):
            OwnerPopulation.from_records([])

    def test_explicit_contracts_respected(self):
        contracts = [LinearCompensation(1.0), LinearCompensation(2.0)]
        population = OwnerPopulation.from_records([0.0, 0.0], contracts=contracts)
        compensations = population.compensations([1.0, 1.0])
        assert np.allclose(compensations, [1.0, 2.0])

    def test_contract_count_mismatch_rejected(self):
        with pytest.raises(DatasetError):
            OwnerPopulation.from_records([1.0, 2.0], contracts=[LinearCompensation(1.0)])

    def test_base_rates_respected(self):
        population = OwnerPopulation.from_records([0.0, 0.0], base_rates=[1.0, 5.0])
        large_leak = population.compensations([50.0, 50.0])
        assert large_leak[0] == pytest.approx(1.0, abs=1e-6)
        assert large_leak[1] == pytest.approx(5.0, abs=1e-6)

    def test_compensations_shape_checked(self):
        population = OwnerPopulation.from_records([1.0, 2.0], seed=0)
        with pytest.raises(DatasetError):
            population.compensations([1.0])

    def test_negative_leakage_rejected(self):
        population = OwnerPopulation.from_records([1.0, 2.0], seed=0)
        with pytest.raises(DatasetError):
            population.compensations([1.0, -1.0])

    def test_vectorised_path_matches_scalar_path(self):
        """The tanh fast path must agree with per-owner contract evaluation."""
        base_rates = [0.5, 1.5, 2.5]
        population = OwnerPopulation.from_records([0.0, 0.0, 0.0], base_rates=base_rates)
        leakages = np.array([0.3, 1.2, 4.0])
        fast = population.compensations(leakages)
        slow = np.array(
            [owner.compensation_for(leak) for owner, leak in zip(population, leakages)]
        )
        assert np.allclose(fast, slow)

    def test_mixed_contracts_fall_back_to_scalar_path(self):
        contracts = [TanhCompensation(1.0), LinearCompensation(2.0)]
        population = OwnerPopulation.from_records([0.0, 0.0], contracts=contracts)
        compensations = population.compensations([1.0, 1.0])
        assert compensations[1] == pytest.approx(2.0)

    def test_indexing(self):
        population = OwnerPopulation.from_records([1.0, 2.0], seed=0)
        assert population[1].data == pytest.approx(2.0)
