"""Unit tests for data consumer behaviour."""

import numpy as np
import pytest

from repro.market.consumers import FixedValuationConsumer, ThresholdConsumer


class TestThresholdConsumer:
    def test_accepts_price_below_valuation(self):
        consumer = ThresholdConsumer(lambda x: float(np.sum(x)))
        assert consumer.accepts(np.array([1.0, 2.0]), 2.5)
        assert not consumer.accepts(np.array([1.0, 2.0]), 3.5)

    def test_boundary_price_accepted(self):
        consumer = ThresholdConsumer(lambda x: 2.0)
        assert consumer.accepts(np.zeros(1), 2.0)

    def test_noisy_valuation_varies(self):
        consumer = ThresholdConsumer(lambda x: 1.0, noise_sigma=0.5, seed=0)
        valuations = {consumer.valuation(np.zeros(1)) for _ in range(5)}
        assert len(valuations) > 1

    def test_negative_noise_sigma_rejected(self):
        with pytest.raises(ValueError):
            ThresholdConsumer(lambda x: 1.0, noise_sigma=-1.0)

    def test_non_finite_price_rejected(self):
        consumer = ThresholdConsumer(lambda x: 1.0)
        with pytest.raises(ValueError):
            consumer.accepts(np.zeros(1), float("inf"))


class TestFixedValuationConsumer:
    def test_constant_valuation(self):
        consumer = FixedValuationConsumer(3.0)
        assert consumer.valuation(np.array([1.0])) == pytest.approx(3.0)
        assert consumer.accepts(np.array([99.0]), 2.0)
        assert not consumer.accepts(np.array([99.0]), 4.0)
