"""Columnar simulation runner.

:func:`simulate` drives one posted price mechanism through a batch of arrivals
and returns a transcript-backed result.  Three execution strategies are
dispatched in order:

1. **Vectorised** — pricers that set ``supports_batch_propose`` (the stateless
   baselines) decide the whole horizon in one ``propose_batch`` call; sales
   and feedback are then computed as array operations.
2. **Pricer fast path** — learning pricers whose ``run_batch`` hook returns
   ``True`` (the ellipsoid, one-dimensional, and SGD pricers) run a lean loop
   with the exact per-round arithmetic of propose/update.
3. **Loop fallback** — any other pricer is driven through the classic
   propose/update object protocol, identical to the legacy sequential
   simulator, writing straight into transcript columns.

All three strategies consume the same :class:`~repro.engine.arrivals.
MaterializedArrivals`, so the environment (feature map, link values, noise,
reserve translation) is computed once per market no matter how many pricers
replay it.  Latency tracking always uses the loop fallback: per-round
wall-clock only makes sense around real ``propose``/``update`` calls.
"""

from __future__ import annotations

import hashlib
import os
import time
from typing import Optional

import numpy as np

from repro.core.noise import NoNoise
from repro.engine.arrivals import MaterializedArrivals, as_batch, materialize
from repro.engine.results import SimulationResult
from repro.engine.transcript import Transcript
from repro.utils.rng import RngLike
from repro.utils.timing import OnlineLatencyTracker


def prepare(model, arrivals, noise=None, rng: RngLike = None) -> MaterializedArrivals:
    """Resolve noise and apply the model to an arrival sequence or batch.

    Missing per-round noise is pre-drawn here — *before* any pricer runs — so
    every pricer simulated over the returned materialisation faces the same
    realization of the market.
    """
    batch = as_batch(arrivals)
    noise_model = noise if noise is not None else NoNoise()
    batch = batch.with_noise(noise_model, rng)
    return materialize(model, batch)


def simulate(
    model,
    pricer,
    arrivals=None,
    noise=None,
    rng: RngLike = None,
    track_latency: bool = False,
    materialized: Optional[MaterializedArrivals] = None,
    pricer_name: Optional[str] = None,
    backend: Optional[str] = None,
) -> SimulationResult:
    """Simulate one pricer over a batch of arrivals (columnar engine).

    Parameters
    ----------
    model / pricer:
        The market value model and the posted price mechanism under test.
    arrivals:
        Arrival sequence or :class:`ArrivalBatch`; ignored when
        ``materialized`` is supplied.
    noise / rng:
        Noise model and random source used to pre-draw missing per-round noise.
    track_latency:
        Record per-round wall-clock time spent inside the pricer (forces the
        sequential loop fallback, since batched paths have no per-round
        boundary to time).
    materialized:
        Pre-computed :class:`MaterializedArrivals`, shared across pricers by
        :func:`repro.core.simulation.compare_pricers` and the run-matrix
        executor.
    backend:
        Math-backend selector (see :mod:`repro.engine.equivalence`).
        ``None`` / ``"reference"`` stay in the bit-exact tier; ``"batched"``
        (numpy) and ``"batched-torch"`` run relaxed-tier block-vectorised
        pricer paths.  Unknown names raise ``ValueError`` here, before any
        round runs.  Latency tracking forces the sequential loop regardless.
    """
    _validate_backend(backend)
    if materialized is None:
        if arrivals is None:
            raise ValueError("either arrivals or materialized must be provided")
        materialized = prepare(model, arrivals, noise=noise, rng=rng)
    transcript = Transcript.for_materialized(materialized)
    latency = OnlineLatencyTracker()

    if track_latency:
        _run_loop(model, pricer, materialized, transcript, latency=latency)
    else:
        _dispatch(model, pricer, materialized, transcript, backend=backend)

    transcript.finalize_regrets()
    return SimulationResult(
        pricer_name=pricer_name or getattr(pricer, "name", type(pricer).__name__),
        transcript=transcript,
        latency=latency,
    )


def run_batch_chunked(
    model,
    pricer,
    arrivals=None,
    noise=None,
    rng: RngLike = None,
    chunk_size: int = 4096,
    materialized: Optional[MaterializedArrivals] = None,
    pricer_name: Optional[str] = None,
    checkpoint_path: Optional[str] = None,
    resume: bool = False,
    checkpoint_every: int = 1,
    checkpoint_final: bool = True,
    backend: Optional[str] = None,
) -> SimulationResult:
    """Execute one horizon as a sequence of chunks through checkpoints.

    The horizon is split into ``ceil(T / chunk_size)`` chunks.  Each chunk is
    driven through the same strategy dispatch as :func:`simulate` over a
    zero-copy slice of the materialised market; at every chunk boundary the
    pricer's state is pushed through a full ``state_dict → serialise →
    deserialise → load_state`` round-trip, so the continuation always resumes
    from the serialised snapshot.  The result is **bit-identical** to the
    unchunked run for every chunk size (pinned by the checkpoint property
    tests and the golden-transcript tier).

    Parameters
    ----------
    chunk_size:
        Rounds per chunk (the final chunk may be shorter).
    checkpoint_path:
        Optional file updated atomically at checkpoint boundaries with the
        pricer state, the number of completed rounds, the partial transcript
        columns, and a fingerprint of the materialised market — everything
        needed to resume after a crash.
    resume:
        When true and ``checkpoint_path`` exists, restore the pricer state
        and the completed-round columns from it and continue from where the
        interrupted run stopped.  ``pricer`` must then be a freshly
        constructed instance with the interrupted run's configuration; a
        checkpoint taken against a *different market* is rejected via the
        stored fingerprint.
    checkpoint_every:
        Persist the checkpoint every N-th chunk boundary (the final boundary
        is always written).  Each write contains the whole completed prefix,
        so total checkpoint I/O is ``O(T² / (chunk_size · N))`` — raise N on
        huge horizons with small chunks.
    checkpoint_final:
        Whether to persist the final boundary (default true).  The run
        matrix passes false: it writes the cell's result file immediately
        after this function returns and deletes the chunk checkpoint, so a
        full-horizon final write would never be read.

    Latency tracking is intentionally unsupported here: per-round timing
    forces the sequential loop and gains nothing from chunking — use
    :func:`simulate` with ``track_latency=True``.
    """
    from repro.engine import checkpoint as checkpoint_module

    _validate_backend(backend)
    if chunk_size < 1:
        raise ValueError("chunk_size must be at least 1, got %d" % chunk_size)
    if checkpoint_every < 1:
        raise ValueError("checkpoint_every must be at least 1, got %d" % checkpoint_every)
    if materialized is None:
        if arrivals is None:
            raise ValueError("either arrivals or materialized must be provided")
        materialized = prepare(model, arrivals, noise=noise, rng=rng)
    rounds = materialized.rounds
    transcript = Transcript.for_materialized(materialized)
    fingerprint = (
        _market_fingerprint(materialized) if checkpoint_path is not None else None
    )

    start = 0
    if resume and checkpoint_path is not None and os.path.exists(checkpoint_path):
        loaded = checkpoint_module.load_checkpoint(checkpoint_path)
        stored_fingerprint = loaded.meta.get("market_fingerprint")
        if stored_fingerprint is not None and stored_fingerprint != fingerprint:
            raise checkpoint_module.CheckpointError(
                "checkpoint %r was taken against a different market "
                "(fingerprint %s != %s); refusing to resume"
                % (checkpoint_path, stored_fingerprint, fingerprint)
            )
        checkpoint_module.restore_pricer(pricer, loaded)
        start = int(loaded.rounds_done)
        if start > rounds:
            raise checkpoint_module.CheckpointError(
                "checkpoint has %d completed rounds but the horizon is %d"
                % (start, rounds)
            )
        stored = loaded.meta.get("columns", {})
        for name in _DECISION_COLUMNS:
            column = stored.get(name)
            if column is None or column.shape[0] != start:
                raise checkpoint_module.CheckpointError(
                    "checkpoint column %r is missing or mis-sized" % name
                )
            getattr(transcript, name)[:start] = column

    chunk_index = 0
    while start < rounds:
        stop = min(start + chunk_size, rounds)
        chunk = materialized.slice(start, stop)
        chunk_transcript = Transcript.for_materialized(chunk)
        _dispatch(model, pricer, chunk, chunk_transcript, backend=backend)
        for name in _DECISION_COLUMNS:
            getattr(transcript, name)[start:stop] = getattr(chunk_transcript, name)
        start = stop
        chunk_index += 1
        if start < rounds:
            # Resume the next chunk from the serialised snapshot, never from
            # live in-memory state, so incomplete snapshots cannot hide.
            checkpoint_module.roundtrip_state(pricer)
        if checkpoint_path is not None and (
            (start == rounds and checkpoint_final)
            or (start < rounds and chunk_index % checkpoint_every == 0)
        ):
            columns = {
                name: getattr(transcript, name)[:start].copy()
                for name in _DECISION_COLUMNS
            }
            checkpoint_module.save_checkpoint(
                checkpoint_path,
                pricer,
                start,
                meta={"columns": columns, "market_fingerprint": fingerprint},
            )

    transcript.finalize_regrets()
    return SimulationResult(
        pricer_name=pricer_name or getattr(pricer, "name", type(pricer).__name__),
        transcript=transcript,
        latency=OnlineLatencyTracker(),
    )


#: Transcript columns written by the pricer strategies (the environment
#: columns are pre-filled by :meth:`Transcript.for_materialized`, regret is
#: finalised vectorised at the end).
_DECISION_COLUMNS = ("link_prices", "posted_prices", "sold", "skipped", "exploratory")


def _market_fingerprint(materialized: MaterializedArrivals) -> str:
    """A cheap identity digest of one materialised market.

    Stored inside chunked-run checkpoints and verified on resume, so a
    checkpoint taken against one market can never be silently continued on
    another (which would stitch two unrelated half-transcripts together).
    Computed once per run from the realised values and reserves — the two
    columns every decision depends on.
    """
    digest = hashlib.sha1()
    digest.update(b"%d:%d:" % (materialized.rounds, materialized.dimension))
    digest.update(np.ascontiguousarray(materialized.market_values).tobytes())
    digest.update(np.ascontiguousarray(materialized.link_reserves).tobytes())
    return digest.hexdigest()


# --------------------------------------------------------------------------- #
# Strategies
# --------------------------------------------------------------------------- #


def _validate_backend(backend: Optional[str]) -> None:
    """Reject unknown ``backend=`` values before any round runs."""
    from repro.engine.equivalence import tier_for_backend

    tier_for_backend(backend)  # raises ValueError on unknown names


def _dispatch(
    model,
    pricer,
    materialized: MaterializedArrivals,
    transcript: Transcript,
    backend: Optional[str] = None,
) -> None:
    """Strategy dispatch shared by :func:`simulate` and the chunked runner."""
    if getattr(pricer, "supports_batch_propose", False):
        _run_vectorized(model, pricer, materialized, transcript)
    elif not pricer.run_batch(model, materialized, transcript, backend=backend):
        _run_loop(model, pricer, materialized, transcript, latency=None)


def _run_vectorized(model, pricer, materialized: MaterializedArrivals, transcript: Transcript) -> None:
    """Whole-horizon array path for feedback-independent pricers."""
    decisions = pricer.propose_batch(materialized.mapped_features, materialized.link_reserves)
    if decisions.rounds != materialized.rounds:
        raise ValueError(
            "propose_batch returned %d decisions for %d rounds"
            % (decisions.rounds, materialized.rounds)
        )
    posted = model.link_batch(decisions.link_prices)
    sold = posted <= materialized.market_values
    sold &= ~decisions.skipped
    pricer.update_batch(decisions, sold)
    transcript.link_prices[:] = decisions.link_prices
    transcript.posted_prices[:] = posted
    transcript.sold[:] = sold
    transcript.skipped[:] = decisions.skipped
    transcript.exploratory[:] = decisions.exploratory


def _run_loop(
    model,
    pricer,
    materialized: MaterializedArrivals,
    transcript: Transcript,
    latency: Optional[OnlineLatencyTracker],
) -> None:
    """Sequential propose/update fallback (exact legacy round protocol)."""
    mapped = materialized.mapped_features
    market_values = materialized.market_values
    link_reserves = materialized.link_reserves
    timed = latency is not None
    rounds = materialized.rounds
    for index in range(rounds):
        link_reserve = link_reserves[index]
        reserve = None if np.isnan(link_reserve) else float(link_reserve)

        start = time.perf_counter() if timed else 0.0
        decision = pricer.propose(mapped[index], reserve=reserve)
        elapsed_propose = (time.perf_counter() - start) if timed else 0.0

        if decision.skipped or decision.price is None:
            sold = False
        else:
            link_price = float(decision.price)
            posted_price = model.link(link_price)
            sold = posted_price <= market_values[index]
            transcript.link_prices[index] = link_price
            transcript.posted_prices[index] = posted_price
            transcript.sold[index] = sold

        start = time.perf_counter() if timed else 0.0
        pricer.update(decision, accepted=sold)
        elapsed_update = (time.perf_counter() - start) if timed else 0.0

        if timed:
            # Measured once and reused for both the tracker and the column.
            elapsed = elapsed_propose + elapsed_update
            latency.record(elapsed)
            transcript.latency_seconds[index] = elapsed

        transcript.skipped[index] = decision.skipped
        transcript.exploratory[index] = decision.exploratory
