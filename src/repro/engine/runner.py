"""Columnar simulation runner.

:func:`simulate` drives one posted price mechanism through a batch of arrivals
and returns a transcript-backed result.  Three execution strategies are
dispatched in order:

1. **Vectorised** — pricers that set ``supports_batch_propose`` (the stateless
   baselines) decide the whole horizon in one ``propose_batch`` call; sales
   and feedback are then computed as array operations.
2. **Pricer fast path** — learning pricers whose ``run_batch`` hook returns
   ``True`` (the ellipsoid, one-dimensional, and SGD pricers) run a lean loop
   with the exact per-round arithmetic of propose/update.
3. **Loop fallback** — any other pricer is driven through the classic
   propose/update object protocol, identical to the legacy sequential
   simulator, writing straight into transcript columns.

All three strategies consume the same :class:`~repro.engine.arrivals.
MaterializedArrivals`, so the environment (feature map, link values, noise,
reserve translation) is computed once per market no matter how many pricers
replay it.  Latency tracking always uses the loop fallback: per-round
wall-clock only makes sense around real ``propose``/``update`` calls.
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from repro.core.noise import NoNoise
from repro.engine.arrivals import MaterializedArrivals, as_batch, materialize
from repro.engine.results import SimulationResult
from repro.engine.transcript import Transcript
from repro.utils.rng import RngLike
from repro.utils.timing import OnlineLatencyTracker


def prepare(model, arrivals, noise=None, rng: RngLike = None) -> MaterializedArrivals:
    """Resolve noise and apply the model to an arrival sequence or batch.

    Missing per-round noise is pre-drawn here — *before* any pricer runs — so
    every pricer simulated over the returned materialisation faces the same
    realization of the market.
    """
    batch = as_batch(arrivals)
    noise_model = noise if noise is not None else NoNoise()
    batch = batch.with_noise(noise_model, rng)
    return materialize(model, batch)


def simulate(
    model,
    pricer,
    arrivals=None,
    noise=None,
    rng: RngLike = None,
    track_latency: bool = False,
    materialized: Optional[MaterializedArrivals] = None,
    pricer_name: Optional[str] = None,
) -> SimulationResult:
    """Simulate one pricer over a batch of arrivals (columnar engine).

    Parameters
    ----------
    model / pricer:
        The market value model and the posted price mechanism under test.
    arrivals:
        Arrival sequence or :class:`ArrivalBatch`; ignored when
        ``materialized`` is supplied.
    noise / rng:
        Noise model and random source used to pre-draw missing per-round noise.
    track_latency:
        Record per-round wall-clock time spent inside the pricer (forces the
        sequential loop fallback, since batched paths have no per-round
        boundary to time).
    materialized:
        Pre-computed :class:`MaterializedArrivals`, shared across pricers by
        :func:`repro.core.simulation.compare_pricers` and the run-matrix
        executor.
    """
    if materialized is None:
        if arrivals is None:
            raise ValueError("either arrivals or materialized must be provided")
        materialized = prepare(model, arrivals, noise=noise, rng=rng)
    transcript = Transcript.for_materialized(materialized)
    latency = OnlineLatencyTracker()

    if track_latency:
        _run_loop(model, pricer, materialized, transcript, latency=latency)
    elif getattr(pricer, "supports_batch_propose", False):
        _run_vectorized(model, pricer, materialized, transcript)
    elif not pricer.run_batch(model, materialized, transcript):
        _run_loop(model, pricer, materialized, transcript, latency=None)

    transcript.finalize_regrets()
    return SimulationResult(
        pricer_name=pricer_name or getattr(pricer, "name", type(pricer).__name__),
        transcript=transcript,
        latency=latency,
    )


# --------------------------------------------------------------------------- #
# Strategies
# --------------------------------------------------------------------------- #


def _run_vectorized(model, pricer, materialized: MaterializedArrivals, transcript: Transcript) -> None:
    """Whole-horizon array path for feedback-independent pricers."""
    decisions = pricer.propose_batch(materialized.mapped_features, materialized.link_reserves)
    if decisions.rounds != materialized.rounds:
        raise ValueError(
            "propose_batch returned %d decisions for %d rounds"
            % (decisions.rounds, materialized.rounds)
        )
    posted = model.link_batch(decisions.link_prices)
    sold = posted <= materialized.market_values
    sold &= ~decisions.skipped
    pricer.update_batch(decisions, sold)
    transcript.link_prices[:] = decisions.link_prices
    transcript.posted_prices[:] = posted
    transcript.sold[:] = sold
    transcript.skipped[:] = decisions.skipped
    transcript.exploratory[:] = decisions.exploratory


def _run_loop(
    model,
    pricer,
    materialized: MaterializedArrivals,
    transcript: Transcript,
    latency: Optional[OnlineLatencyTracker],
) -> None:
    """Sequential propose/update fallback (exact legacy round protocol)."""
    mapped = materialized.mapped_features
    market_values = materialized.market_values
    link_reserves = materialized.link_reserves
    timed = latency is not None
    rounds = materialized.rounds
    for index in range(rounds):
        link_reserve = link_reserves[index]
        reserve = None if np.isnan(link_reserve) else float(link_reserve)

        start = time.perf_counter() if timed else 0.0
        decision = pricer.propose(mapped[index], reserve=reserve)
        elapsed_propose = (time.perf_counter() - start) if timed else 0.0

        if decision.skipped or decision.price is None:
            sold = False
        else:
            link_price = float(decision.price)
            posted_price = model.link(link_price)
            sold = posted_price <= market_values[index]
            transcript.link_prices[index] = link_price
            transcript.posted_prices[index] = posted_price
            transcript.sold[index] = sold

        start = time.perf_counter() if timed else 0.0
        pricer.update(decision, accepted=sold)
        elapsed_update = (time.perf_counter() - start) if timed else 0.0

        if timed:
            # Measured once and reused for both the tracker and the column.
            elapsed = elapsed_propose + elapsed_update
            latency.record(elapsed)
            transcript.latency_seconds[index] = elapsed

        transcript.skipped[index] = decision.skipped
        transcript.exploratory[index] = decision.exploratory
