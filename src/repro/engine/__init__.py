"""Columnar simulation engine.

This package is the performance core of the repository: it materialises whole
horizons of query arrivals as contiguous arrays (:mod:`repro.engine.arrivals`),
records simulation transcripts as preallocated columns
(:mod:`repro.engine.transcript`), drives pricers through batched or lean
sequential strategies (:mod:`repro.engine.runner`), and fans
(pricer × seed × scenario) experiment grids across workers
(:mod:`repro.engine.runmatrix`).

The engine is *provably transcript-identical* to the legacy sequential loop,
which is preserved verbatim in :mod:`repro.engine.reference` and pinned by the
equivalence test suite — see ``docs/architecture.md`` for the layering and the
exactness contract.
"""

from repro.engine.arrivals import ArrivalBatch, MaterializedArrivals, as_batch, materialize
from repro.engine.checkpoint import (
    CheckpointError,
    PricerCheckpoint,
    deserialize_state,
    load_checkpoint,
    load_result,
    restore_pricer,
    save_checkpoint,
    save_result,
    serialize_state,
)
from repro.engine.equivalence import (
    KNOWLEDGE_GEOMETRY,
    REGRET_CURVES,
    TRANSCRIPT_AGGREGATES,
    TolerancePolicy,
    assert_bit_exact,
    assert_regret_curves_close,
    assert_states_close,
    assert_transcripts_close,
    tier_for_backend,
)
from repro.engine.records import QueryArrival, RoundOutcome
from repro.engine.reference import simulate_reference
from repro.engine.results import SimulationResult
from repro.engine.runmatrix import (
    MarketScenario,
    RunCell,
    RunCellError,
    RunMatrix,
    RunMatrixResult,
)
from repro.engine.runner import prepare, run_batch_chunked, simulate
from repro.engine.streaming import StreamedRound, stream_rounds
from repro.engine.transcript import Transcript, TranscriptRows

__all__ = [
    "ArrivalBatch",
    "CheckpointError",
    "KNOWLEDGE_GEOMETRY",
    "REGRET_CURVES",
    "TRANSCRIPT_AGGREGATES",
    "TolerancePolicy",
    "assert_bit_exact",
    "assert_regret_curves_close",
    "assert_states_close",
    "assert_transcripts_close",
    "tier_for_backend",
    "MaterializedArrivals",
    "MarketScenario",
    "PricerCheckpoint",
    "QueryArrival",
    "RoundOutcome",
    "RunCell",
    "RunCellError",
    "RunMatrix",
    "RunMatrixResult",
    "SimulationResult",
    "StreamedRound",
    "Transcript",
    "TranscriptRows",
    "as_batch",
    "deserialize_state",
    "load_checkpoint",
    "load_result",
    "materialize",
    "prepare",
    "restore_pricer",
    "run_batch_chunked",
    "save_checkpoint",
    "save_result",
    "serialize_state",
    "simulate",
    "simulate_reference",
    "stream_rounds",
]
