"""The two-tier exactness contract, centralised.

The repo pins correctness at two distinct strengths:

**Bit-exact tier** — the default. The reference per-round path (and every
dispatch that reduces to it: vectorised paths proven element-wise identical,
chunked resume, socket/shard serving) must reproduce the committed golden
transcripts *byte for byte*. ``backend=None`` / ``backend="reference"`` run in
this tier; nothing here may introduce a tolerance.

**Relaxed tier** — an ``rtol``-gated equivalence admitting fast math backends
(``"batched"`` numpy, ``"batched-torch"``) whose gemm/einsum contraction
orders round differently from the scalar reference. The relaxed tier checks
three things: regret curves, final knowledge-set geometry, and transcript
aggregates (with an explicit — normally zero — decision-flip budget for the
boolean columns).

Every tolerance lives in this module. Tests and benches must not scatter
their own ``np.allclose`` calls for backend comparisons — a new backend is
admitted by passing :func:`assert_transcripts_close`,
:func:`assert_regret_curves_close` and :func:`assert_states_close` over all
eight golden families, while :func:`assert_bit_exact` continues to hold on
the default path.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping, Optional

import numpy as np

#: Backend names running in the bit-exact tier (``None`` means "default").
EXACT_BACKENDS = (None, "reference")
#: Backend names admitted under the relaxed tier only.
RELAXED_BACKENDS = ("batched", "batched-torch")

BIT_EXACT_TIER = "bit-exact"
RELAXED_TIER = "relaxed"

#: Transcript columns compared element-wise as floats (``NaN`` = absent).
FLOAT_COLUMNS = (
    "link_values",
    "market_values",
    "reserve_values",
    "link_prices",
    "posted_prices",
    "regrets",
)
#: Transcript columns compared as decisions (subject to the flip budget).
BOOL_COLUMNS = ("sold", "skipped", "exploratory")


def tier_for_backend(backend: Optional[str]) -> str:
    """Which exactness tier a ``backend=`` knob value is held to."""
    if backend in EXACT_BACKENDS:
        return BIT_EXACT_TIER
    if backend in RELAXED_BACKENDS:
        return RELAXED_TIER
    raise ValueError(
        "unknown backend %r; expected one of %r"
        % (backend, tuple(EXACT_BACKENDS) + tuple(RELAXED_BACKENDS))
    )


@dataclass(frozen=True)
class TolerancePolicy:
    """One named tolerance of the relaxed tier.

    ``rtol``/``atol`` bound element-wise float disagreement (``NaN`` matches
    ``NaN`` — the transcript encodes "absent" as NaN).  ``flip_fraction``
    bounds the fraction of rounds whose boolean decisions (sold / skipped /
    exploratory) may differ; backends are expected to hit zero flips on the
    golden families, but the budget makes the allowance explicit rather than
    accidental.
    """

    name: str
    rtol: float
    atol: float
    flip_fraction: float = 0.0

    def max_flips(self, rounds: int) -> int:
        """Absolute decision-flip budget for a ``rounds``-long transcript."""
        if self.flip_fraction <= 0.0:
            return 0
        return int(math.ceil(self.flip_fraction * rounds))

    def isclose(self, actual, expected) -> bool:
        """Whether two float arrays agree under this policy (NaN == NaN)."""
        return bool(
            np.allclose(
                np.asarray(actual, dtype=float),
                np.asarray(expected, dtype=float),
                rtol=self.rtol,
                atol=self.atol,
                equal_nan=True,
            )
        )

    def assert_close(self, actual, expected, label: str) -> None:
        """Raise ``AssertionError`` with a worst-offender report on mismatch."""
        actual = np.asarray(actual, dtype=float)
        expected = np.asarray(expected, dtype=float)
        if actual.shape != expected.shape:
            raise AssertionError(
                "%s: shape mismatch %s vs %s under policy %s"
                % (label, actual.shape, expected.shape, self.name)
            )
        if self.isclose(actual, expected):
            return
        with np.errstate(invalid="ignore"):
            mismatch = ~np.isclose(
                actual, expected, rtol=self.rtol, atol=self.atol, equal_nan=True
            )
        gap = np.where(mismatch, np.abs(actual - expected), 0.0)
        gap = np.where(np.isnan(gap), np.inf, gap)
        worst = int(np.argmax(gap))
        index = np.unravel_index(worst, actual.shape)
        raise AssertionError(
            "%s: %d/%d elements outside policy %s (rtol=%g atol=%g); worst at "
            "%s: actual=%r expected=%r"
            % (
                label,
                int(np.count_nonzero(mismatch)),
                actual.size,
                self.name,
                self.rtol,
                self.atol,
                tuple(int(i) for i in index),
                float(actual[index]),
                float(expected[index]),
            )
        )


# --------------------------------------------------------------------------- #
# The relaxed tier's named tolerances
# --------------------------------------------------------------------------- #

#: Cumulative regret curves (Fig. 4/5).  Cumulative sums average out per-round
#: rounding, so the bound is tight.
REGRET_CURVES = TolerancePolicy(name="regret-curves", rtol=1e-7, atol=1e-9)

#: Final knowledge-set geometry (ellipsoid centers/shape matrices, interval
#: bounds).  Hundreds of sequential rank-one updates compound contraction-order
#: rounding, so the bound is looser than the curve bound.
KNOWLEDGE_GEOMETRY = TolerancePolicy(name="knowledge-geometry", rtol=1e-6, atol=1e-9)

#: Element-wise transcript columns (prices, per-round regret) plus the boolean
#: decision columns.  The flip budget is deliberately tiny: one flipped
#: decision per 10k rounds is tolerated in principle, and measured to be zero
#: on all eight golden families.
TRANSCRIPT_AGGREGATES = TolerancePolicy(
    name="transcript-aggregates", rtol=1e-7, atol=1e-9, flip_fraction=1e-4
)


# --------------------------------------------------------------------------- #
# Comparators
# --------------------------------------------------------------------------- #


def transcript_columns(transcript) -> Dict[str, np.ndarray]:
    """The comparable columns of a transcript (or pass a mapping through).

    Accepts a :class:`~repro.engine.transcript.Transcript`, an ``.npz``-style
    mapping (the golden fixtures), or a plain dict of column arrays.
    """
    if hasattr(transcript, "keys"):
        return {name: np.asarray(transcript[name]) for name in transcript.keys()}
    return {
        name: getattr(transcript, name) for name in FLOAT_COLUMNS + BOOL_COLUMNS
    }


def assert_bit_exact(actual, expected, label: str = "transcript") -> None:
    """Bit-exact tier: every shared column must match byte for byte.

    ``NaN`` placements must coincide exactly; boolean columns must be
    identical.  This is the assertion the default path is held to.
    """
    actual_columns = transcript_columns(actual)
    expected_columns = transcript_columns(expected)
    for name in sorted(set(actual_columns) & set(expected_columns)):
        left = actual_columns[name]
        right = expected_columns[name]
        if left.shape != right.shape:
            raise AssertionError(
                "%s[%s]: shape mismatch %s vs %s" % (label, name, left.shape, right.shape)
            )
        if left.dtype.kind == "f" or right.dtype.kind == "f":
            same = np.array_equal(left, right, equal_nan=True)
        else:
            same = np.array_equal(left, right)
        if not same:
            mismatch = np.flatnonzero(
                ~_elementwise_equal(np.atleast_1d(left), np.atleast_1d(right))
            )
            raise AssertionError(
                "%s[%s]: %d elements differ (first at %d) — bit-exact tier violated"
                % (label, name, mismatch.size, int(mismatch[0]) if mismatch.size else -1)
            )


def _elementwise_equal(left: np.ndarray, right: np.ndarray) -> np.ndarray:
    if left.dtype.kind == "f" or right.dtype.kind == "f":
        left = np.asarray(left, dtype=float)
        right = np.asarray(right, dtype=float)
        return (left == right) | (np.isnan(left) & np.isnan(right))
    return left == right


def decision_flips(actual, expected) -> int:
    """Rounds whose boolean decisions differ between two transcripts."""
    actual_columns = transcript_columns(actual)
    expected_columns = transcript_columns(expected)
    flips = None
    for name in BOOL_COLUMNS:
        if name not in actual_columns or name not in expected_columns:
            continue
        differs = np.asarray(actual_columns[name], dtype=bool) != np.asarray(
            expected_columns[name], dtype=bool
        )
        flips = differs if flips is None else (flips | differs)
    return int(np.count_nonzero(flips)) if flips is not None else 0


def assert_transcripts_close(
    actual,
    expected,
    policy: TolerancePolicy = TRANSCRIPT_AGGREGATES,
    label: str = "transcript",
) -> None:
    """Relaxed tier: element-wise transcript agreement under ``policy``.

    Boolean decision columns may differ on at most ``policy.max_flips``
    rounds; float columns are compared on the non-flipped rounds only (a
    flipped decision legitimately changes that round's prices/regret), under
    the policy's ``rtol``/``atol`` with ``NaN`` treated as equal.
    """
    actual_columns = transcript_columns(actual)
    expected_columns = transcript_columns(expected)
    shared_bool = [
        name
        for name in BOOL_COLUMNS
        if name in actual_columns and name in expected_columns
    ]
    flip_mask = None
    for name in shared_bool:
        differs = np.asarray(actual_columns[name], dtype=bool) != np.asarray(
            expected_columns[name], dtype=bool
        )
        flip_mask = differs if flip_mask is None else (flip_mask | differs)
    if flip_mask is not None:
        rounds = flip_mask.shape[0]
        flips = int(np.count_nonzero(flip_mask))
        budget = policy.max_flips(rounds)
        if flips > budget:
            raise AssertionError(
                "%s: %d decision flips over %d rounds exceeds the %s budget of %d"
                % (label, flips, rounds, policy.name, budget)
            )
        stable = ~flip_mask
    else:
        stable = None
    for name in FLOAT_COLUMNS:
        if name not in actual_columns or name not in expected_columns:
            continue
        left = np.asarray(actual_columns[name], dtype=float)
        right = np.asarray(expected_columns[name], dtype=float)
        if stable is not None and left.shape == stable.shape:
            left = left[stable]
            right = right[stable]
        policy.assert_close(left, right, "%s[%s]" % (label, name))


def assert_regret_curves_close(
    actual,
    expected,
    policy: TolerancePolicy = REGRET_CURVES,
    label: str = "cumulative regret",
) -> None:
    """Relaxed tier: cumulative regret curves agree under ``policy``.

    Accepts transcripts (cumulated here) or already-cumulated curve arrays.
    """
    actual_curve = (
        actual.cumulative_regret_curve()
        if hasattr(actual, "cumulative_regret_curve")
        else np.cumsum(np.asarray(actual, dtype=float))
    )
    expected_curve = (
        expected.cumulative_regret_curve()
        if hasattr(expected, "cumulative_regret_curve")
        else np.cumsum(np.asarray(expected, dtype=float))
    )
    policy.assert_close(actual_curve, expected_curve, label)


def assert_states_close(
    actual_state: Mapping,
    expected_state: Mapping,
    policy: TolerancePolicy = KNOWLEDGE_GEOMETRY,
    label: str = "state",
) -> None:
    """Relaxed tier: two pricer ``state_dict`` trees agree under ``policy``.

    Scalar leaves (round counters, cut counts) must match exactly — a backend
    that miscounts cuts is wrong, not imprecise; ndarray leaves (ellipsoid
    centers/shapes, interval bounds) are compared under the policy.
    """
    from repro.engine.checkpoint import flatten_state

    actual_skeleton, actual_arrays = flatten_state(dict(actual_state))
    expected_skeleton, expected_arrays = flatten_state(dict(expected_state))
    if actual_skeleton != expected_skeleton:
        raise AssertionError(
            "%s: structural/scalar mismatch between states: %r vs %r"
            % (label, actual_skeleton, expected_skeleton)
        )
    if len(actual_arrays) != len(expected_arrays):
        raise AssertionError(
            "%s: %d vs %d array leaves" % (label, len(actual_arrays), len(expected_arrays))
        )
    for index, (left, right) in enumerate(zip(actual_arrays, expected_arrays)):
        policy.assert_close(left, right, "%s[array %d]" % (label, index))


def assert_knowledge_close(
    actual,
    expected,
    policy: TolerancePolicy = KNOWLEDGE_GEOMETRY,
    label: str = "knowledge",
) -> None:
    """Relaxed tier: two knowledge sets' geometry agrees under ``policy``."""
    assert_states_close(
        actual.state_dict(), expected.state_dict(), policy=policy, label=label
    )
