"""Checkpoint/restore for pricer state and simulation results.

This module is the persistence layer behind within-cell horizon sharding
(:func:`repro.engine.runner.run_batch_chunked`, the run-matrix
``shard_rounds`` mode) and resume-after-crash for long sweeps
(``RunMatrix.run(checkpoint_dir=...)``).

Two artifact kinds are supported, both stored as a single ``.npz`` file with a
JSON header — **no pickling**, so checkpoints are inspectable, portable, and
safe to load:

* **pricer checkpoints** — a versioned snapshot of one pricer's mutable state
  (:meth:`~repro.core.base.PostedPriceMechanism.state_dict`: knowledge-set
  arrays, learner state, bookkeeping counters, round index, RNG position)
  plus the number of horizon rounds already executed and arbitrary metadata
  (which may itself contain arrays, e.g. partial transcript columns);
* **result files** — the transcript columns of one completed simulation cell,
  used by the run matrix to skip already-finished cells when a sweep is
  re-launched after a crash.

Serialisation walks the state mapping: ``numpy.ndarray`` leaves become npz
entries referenced from the JSON header by index; scalars, strings, booleans,
``None``, lists, and nested dicts are stored in the header directly.  The
header carries a magic string and a format version so future layout changes
can stay backward-compatible.

Exactness contract: arrays are stored losslessly (``float64``/``bool``
verbatim), so a ``state_dict → serialize → deserialize → load_state``
round-trip is bit-identical — this is what makes chunked execution
transcript-identical to uninterrupted runs (see ``docs/architecture.md``).
"""

from __future__ import annotations

import io
import json
import os
import tempfile
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.engine.results import SimulationResult
from repro.engine.transcript import Transcript

#: Magic string identifying repro checkpoint artifacts.
MAGIC = "repro-checkpoint"

#: Current on-disk format version.  Bump on layout changes; ``load_*`` rejects
#: versions it does not understand instead of mis-reading them.
FORMAT_VERSION = 1

_PRICER_KIND = "pricer-state"
_RESULT_KIND = "simulation-result"

#: Transcript columns persisted by result files, in a fixed order.
_TRANSCRIPT_COLUMNS = (
    "link_values",
    "market_values",
    "reserve_values",
    "link_prices",
    "posted_prices",
    "sold",
    "skipped",
    "exploratory",
    "regrets",
    "latency_seconds",
)


class CheckpointError(RuntimeError):
    """A checkpoint artifact is missing, malformed, or incompatible."""


@dataclass
class PricerCheckpoint:
    """An in-memory pricer checkpoint (what the files round-trip)."""

    pricer_type: str
    rounds_done: int
    state: dict
    meta: dict = field(default_factory=dict)
    version: int = FORMAT_VERSION


# --------------------------------------------------------------------------- #
# State (nested dict with ndarray leaves) <-> JSON header + npz arrays
# --------------------------------------------------------------------------- #


def _encode(value, arrays: list):
    """Replace ndarray leaves with ``{"__ndarray__": index}`` placeholders."""
    if isinstance(value, np.ndarray):
        arrays.append(value)
        return {"__ndarray__": len(arrays) - 1}
    if isinstance(value, dict):
        if "__ndarray__" in value:
            raise CheckpointError("state dicts must not use the reserved key '__ndarray__'")
        return {str(key): _encode(item, arrays) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_encode(item, arrays) for item in value]
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise CheckpointError(
        "state value of type %s is not checkpointable (use arrays, scalars, "
        "strings, lists, or dicts)" % type(value).__name__
    )


def _decode(value, arrays):
    if isinstance(value, dict):
        if set(value.keys()) == {"__ndarray__"}:
            return arrays[int(value["__ndarray__"])]
        return {key: _decode(item, arrays) for key, item in value.items()}
    if isinstance(value, list):
        return [_decode(item, arrays) for item in value]
    return value


def _pack(header: dict, arrays: list) -> bytes:
    buffer = io.BytesIO()
    payload = {"__header__": np.frombuffer(json.dumps(header).encode("utf-8"), dtype=np.uint8)}
    for index, array in enumerate(arrays):
        payload["array_%d" % index] = np.asarray(array)
    np.savez_compressed(buffer, **payload)
    return buffer.getvalue()


def _unpack(data: bytes):
    try:
        archive = np.load(io.BytesIO(data), allow_pickle=False)
    except Exception as exc:
        raise CheckpointError("not a repro checkpoint archive: %s" % exc) from exc
    with archive:
        if "__header__" not in archive.files:
            raise CheckpointError("checkpoint archive has no header")
        header = json.loads(bytes(archive["__header__"].tobytes()).decode("utf-8"))
        if header.get("magic") != MAGIC:
            raise CheckpointError("bad checkpoint magic %r" % header.get("magic"))
        version = int(header.get("version", -1))
        if version != FORMAT_VERSION:
            raise CheckpointError(
                "unsupported checkpoint format version %d (this build reads %d)"
                % (version, FORMAT_VERSION)
            )
        count = int(header.get("array_count", 0))
        arrays = [archive["array_%d" % index] for index in range(count)]
    return header, arrays


def flatten_state(state: dict):
    """Split a state mapping into ``(skeleton, arrays)``.

    The *skeleton* is the JSON-safe nested structure with every
    ``numpy.ndarray`` leaf replaced by an index placeholder; *arrays* is the
    leaf list in deterministic traversal order.  For a given pricer family
    the ``(dtype, shape)`` sequence of the leaves is fixed — this is the
    per-family array manifest the columnar session store
    (:mod:`repro.serving.store`) derives its slab schema from, so slab rows,
    snapshot segments, and ``.npz`` checkpoints all share one flattening.
    """
    arrays: list = []
    return _encode(state, arrays), arrays


def unflatten_state(skeleton, arrays) -> dict:
    """Inverse of :func:`flatten_state` (bit-identical array round-trip)."""
    return _decode(skeleton, list(arrays))


def serialize_state(state: dict) -> bytes:
    """Serialise a :meth:`state_dict` mapping to self-contained bytes."""
    arrays: list = []
    encoded = _encode(state, arrays)
    header = {
        "magic": MAGIC,
        "version": FORMAT_VERSION,
        "kind": "state",
        "array_count": len(arrays),
        "state": encoded,
    }
    return _pack(header, arrays)


def deserialize_state(data: bytes) -> dict:
    """Inverse of :func:`serialize_state` (bit-identical array round-trip)."""
    header, arrays = _unpack(data)
    return _decode(header["state"], arrays)


# --------------------------------------------------------------------------- #
# Pricer checkpoints
# --------------------------------------------------------------------------- #


def snapshot_pricer(pricer, rounds_done: int, meta: Optional[dict] = None) -> PricerCheckpoint:
    """Snapshot a pricer after ``rounds_done`` horizon rounds."""
    if rounds_done < 0:
        raise ValueError("rounds_done must be non-negative, got %d" % rounds_done)
    return PricerCheckpoint(
        pricer_type=type(pricer).__name__,
        rounds_done=int(rounds_done),
        state=pricer.state_dict(),
        meta=dict(meta or {}),
    )


def checkpoint_to_bytes(checkpoint: PricerCheckpoint) -> bytes:
    """Serialise a :class:`PricerCheckpoint` (meta may contain arrays too)."""
    arrays: list = []
    header = {
        "magic": MAGIC,
        "version": FORMAT_VERSION,
        "kind": _PRICER_KIND,
        "pricer_type": checkpoint.pricer_type,
        "rounds_done": int(checkpoint.rounds_done),
        "state": _encode(checkpoint.state, arrays),
        "meta": _encode(checkpoint.meta, arrays),
        "array_count": 0,  # patched below once arrays are final
    }
    header["array_count"] = len(arrays)
    return _pack(header, arrays)


def checkpoint_from_bytes(data: bytes) -> PricerCheckpoint:
    header, arrays = _unpack(data)
    if header.get("kind") != _PRICER_KIND:
        raise CheckpointError("expected a pricer checkpoint, found kind %r" % header.get("kind"))
    return PricerCheckpoint(
        pricer_type=str(header["pricer_type"]),
        rounds_done=int(header["rounds_done"]),
        state=_decode(header["state"], arrays),
        meta=_decode(header["meta"], arrays),
        version=int(header["version"]),
    )


def save_checkpoint(path: str, pricer, rounds_done: int, meta: Optional[dict] = None) -> str:
    """Snapshot ``pricer`` and write it to ``path`` atomically.

    The file is written to a temporary sibling and renamed into place, so a
    crash mid-write never leaves a truncated checkpoint behind.
    """
    data = checkpoint_to_bytes(snapshot_pricer(pricer, rounds_done, meta))
    _atomic_write(path, data)
    return path


def save_state_checkpoint(
    path: str, pricer_type: str, rounds_done: int, state: dict, meta: Optional[dict] = None
) -> str:
    """Write a pricer checkpoint from an already-extracted state mapping.

    The run-matrix sharded executor holds serialised pricer state in the
    parent (workers return it over the pool pipe) without ever holding the
    pricer itself; this entry point lets it persist mid-cell progress in the
    exact on-disk format :func:`save_checkpoint` produces, so the file is
    interchangeable with one written by ``run_batch_chunked`` — either side
    can resume the other's interrupted cell.
    """
    if rounds_done < 0:
        raise ValueError("rounds_done must be non-negative, got %d" % rounds_done)
    checkpoint = PricerCheckpoint(
        pricer_type=str(pricer_type),
        rounds_done=int(rounds_done),
        state=state,
        meta=dict(meta or {}),
    )
    _atomic_write(path, checkpoint_to_bytes(checkpoint))
    return path


def load_checkpoint(path: str) -> PricerCheckpoint:
    """Read a pricer checkpoint written by :func:`save_checkpoint`."""
    with open(path, "rb") as handle:
        return checkpoint_from_bytes(handle.read())


def restore_pricer(pricer, checkpoint: PricerCheckpoint):
    """Load ``checkpoint`` into a freshly constructed, same-type pricer."""
    if type(pricer).__name__ != checkpoint.pricer_type:
        raise CheckpointError(
            "checkpoint was taken from %r, cannot restore into %r"
            % (checkpoint.pricer_type, type(pricer).__name__)
        )
    pricer.load_state(checkpoint.state)
    return pricer


def roundtrip_state(pricer) -> None:
    """Push the pricer's state through serialise → deserialise → load.

    Used at every chunk boundary of the chunked runner: the continuation
    always resumes from the *serialised* snapshot, so any state the snapshot
    missed shows up immediately as a transcript divergence in the equivalence
    tests rather than lurking until a real crash-resume.
    """
    pricer.load_state(deserialize_state(serialize_state(pricer.state_dict())))


# --------------------------------------------------------------------------- #
# Simulation results (run-matrix resume-after-crash)
# --------------------------------------------------------------------------- #


def save_result(path: str, result: SimulationResult) -> str:
    """Persist one cell's transcript-backed result (atomic write).

    Latency tracker samples are persisted via the transcript's
    ``latency_seconds`` column; the in-memory tracker object is rebuilt from
    it on load when any sample is non-zero.
    """
    arrays: list = []
    columns = {
        name: _encode(getattr(result.transcript, name), arrays)
        for name in _TRANSCRIPT_COLUMNS
    }
    header = {
        "magic": MAGIC,
        "version": FORMAT_VERSION,
        "kind": _RESULT_KIND,
        "pricer_name": result.pricer_name,
        "rounds": int(result.rounds),
        "latency_count": int(result.latency.count),
        "columns": columns,
        "array_count": len(arrays),
    }
    _atomic_write(path, _pack(header, arrays))
    return path


def load_result(path: str) -> SimulationResult:
    """Read a result file written by :func:`save_result`."""
    with open(path, "rb") as handle:
        header, arrays = _unpack(handle.read())
    if header.get("kind") != _RESULT_KIND:
        raise CheckpointError("expected a result file, found kind %r" % header.get("kind"))
    rounds = int(header["rounds"])
    transcript = Transcript(rounds)
    columns = {name: _decode(value, arrays) for name, value in header["columns"].items()}
    for name in _TRANSCRIPT_COLUMNS:
        column = columns.get(name)
        if column is None or column.shape[0] != rounds:
            raise CheckpointError("result file column %r is missing or mis-sized" % name)
        getattr(transcript, name)[:] = column
    result = SimulationResult(pricer_name=str(header["pricer_name"]), transcript=transcript)
    if int(header.get("latency_count", 0)) > 0:
        for value in transcript.latency_seconds:
            result.latency.record(float(value))
    return result


def _atomic_write(path: str, data: bytes) -> None:
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    descriptor, temp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(descriptor, "wb") as handle:
            handle.write(data)
        os.replace(temp_path, path)
    except BaseException:
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise
