"""Reference sequential simulator (the legacy object-per-round loop).

This is the original ``MarketSimulator._play_round`` inner loop, kept verbatim
as the ground truth the columnar engine is validated against: it recomputes
every model quantity scalar per round, drives the pricer through the
object-level propose/update protocol, and accounts regret with the scalar
:class:`~repro.core.regret.RegretAccumulator`.  The equivalence test suite
asserts that :func:`repro.engine.runner.simulate` produces element-wise
identical transcripts to this loop for every pricer and model.

It is intentionally slow — use :func:`repro.engine.runner.simulate` (or
:class:`repro.core.simulation.MarketSimulator`) everywhere else.
"""

from __future__ import annotations

import time
from typing import Iterable

import numpy as np

from repro.core.noise import NoNoise
from repro.core.regret import RegretAccumulator
from repro.engine.records import QueryArrival
from repro.engine.results import SimulationResult
from repro.engine.transcript import Transcript
from repro.exceptions import SimulationError
from repro.utils.rng import RngLike, as_rng
from repro.utils.timing import OnlineLatencyTracker


def simulate_reference(
    model,
    pricer,
    arrivals: Iterable[QueryArrival],
    noise=None,
    rng: RngLike = None,
    track_latency: bool = False,
) -> SimulationResult:
    """Run the sequential reference loop and return a transcript-backed result."""
    arrivals = list(arrivals)
    noise_model = noise if noise is not None else NoNoise()
    generator = as_rng(rng)
    accumulator = RegretAccumulator()
    latency = OnlineLatencyTracker()
    transcript = Transcript(len(arrivals))

    for round_index, arrival in enumerate(arrivals):
        mapped_features = model.feature_map(arrival.features)
        link_value = float(mapped_features @ model.theta)
        noise_value = arrival.noise
        if noise_value is None:
            noise_value = float(noise_model.sample(generator))
        market_value = model.link(link_value + noise_value)

        reserve_value = arrival.reserve_value
        link_reserve = None
        if reserve_value is not None:
            link_reserve = model.link_inverse(reserve_value)

        start = time.perf_counter() if track_latency else 0.0
        decision = pricer.propose(mapped_features, reserve=link_reserve)
        elapsed_propose = (time.perf_counter() - start) if track_latency else 0.0

        if decision.skipped or decision.price is None:
            posted_price = None
            link_price = None
            sold = False
        else:
            link_price = float(decision.price)
            posted_price = model.link(link_price)
            sold = posted_price <= market_value

        start = time.perf_counter() if track_latency else 0.0
        pricer.update(decision, accepted=sold)
        elapsed_update = (time.perf_counter() - start) if track_latency else 0.0

        if track_latency:
            elapsed = elapsed_propose + elapsed_update
            latency.record(elapsed)
            transcript.latency_seconds[round_index] = elapsed

        regret = accumulator.record(
            market_value=market_value,
            reserve=reserve_value,
            price=posted_price,
            sold=sold,
        )
        if not np.isfinite(regret):
            raise SimulationError(
                "non-finite regret %r in round %d; inconsistent market state"
                % (regret, round_index)
            )

        transcript.link_values[round_index] = link_value
        transcript.market_values[round_index] = market_value
        if reserve_value is not None:
            transcript.reserve_values[round_index] = reserve_value
        if link_price is not None:
            transcript.link_prices[round_index] = link_price
            transcript.posted_prices[round_index] = posted_price
        transcript.sold[round_index] = sold
        transcript.skipped[round_index] = decision.skipped
        transcript.exploratory[round_index] = decision.exploratory
        transcript.regrets[round_index] = regret

    return SimulationResult(
        pricer_name=getattr(pricer, "name", type(pricer).__name__),
        transcript=transcript,
        latency=latency,
        _accumulator=accumulator,
    )
