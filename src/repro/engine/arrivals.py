"""Struct-of-arrays arrival container and its model-space materialisation.

The legacy simulator consumed one :class:`~repro.engine.records.QueryArrival`
object per round; at production horizons the per-object allocation and the
re-application of the feature map for every pricer dominated the wall-clock.
:class:`ArrivalBatch` stores a whole horizon as contiguous NumPy columns and
:func:`materialize` applies the market value model once, so any number of
pricers (the four algorithm versions, the baselines, every cell of a run
matrix) replay the identical market from shared arrays.

Exactness contract: all per-round model quantities (feature map, link value,
market value, link-space reserve) are computed with the *same scalar calls* the
sequential reference loop makes, in the same round order.  This is what makes
the batched engine transcript bit-identical to the legacy loop — vectorised
BLAS/exp kernels are not guaranteed to round identically to their scalar
counterparts, so they are deliberately not used here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.engine.records import QueryArrival
from repro.utils.rng import RngLike, as_rng


@dataclass
class ArrivalBatch:
    """A full horizon of query arrivals as struct-of-arrays columns.

    Attributes
    ----------
    features:
        Raw feature matrix, shape ``(rounds, raw_dimension)``.
    reserve_values:
        Real-space reserve prices, shape ``(rounds,)``; ``NaN`` encodes "no
        reserve price this round" (the ``reserve_value=None`` arrivals).
    noise:
        Pre-drawn link-space noise δ_t, shape ``(rounds,)``; ``NaN`` encodes
        "not drawn yet" (resolved by :meth:`with_noise` before simulation).
    metadata:
        Optional per-round metadata dictionaries (``None`` when no arrival
        carried metadata, so the common case stays allocation-free).
    """

    features: np.ndarray
    reserve_values: np.ndarray
    noise: np.ndarray
    metadata: Optional[List[dict]] = None

    def __post_init__(self) -> None:
        self.features = np.asarray(self.features, dtype=float)
        self.reserve_values = np.asarray(self.reserve_values, dtype=float)
        self.noise = np.asarray(self.noise, dtype=float)
        if self.features.ndim != 2:
            raise ValueError(
                "features must be a (rounds, dimension) matrix, got shape %s"
                % (self.features.shape,)
            )
        rounds = self.features.shape[0]
        for name, column in (("reserve_values", self.reserve_values), ("noise", self.noise)):
            if column.shape != (rounds,):
                raise ValueError(
                    "%s must have shape (%d,), got %s" % (name, rounds, column.shape)
                )
        if self.metadata is not None and len(self.metadata) != rounds:
            raise ValueError(
                "metadata must have one entry per round (%d), got %d"
                % (rounds, len(self.metadata))
            )

    # ------------------------------------------------------------------ #
    # Construction / round-tripping
    # ------------------------------------------------------------------ #

    @classmethod
    def from_arrivals(cls, arrivals: Iterable[QueryArrival]) -> "ArrivalBatch":
        """Stack an arrival sequence into contiguous columns.

        ``None`` reserve prices and noise values are encoded as ``NaN``;
        metadata dictionaries are preserved verbatim so the batch round-trips
        through :meth:`to_arrivals` without information loss.
        """
        materialised = list(arrivals)
        if not materialised:
            return cls(
                features=np.empty((0, 0)),
                reserve_values=np.empty(0),
                noise=np.empty(0),
            )
        rows = [np.atleast_1d(np.asarray(a.features, dtype=float)) for a in materialised]
        dimension = rows[0].shape[0]
        for index, row in enumerate(rows):
            if row.ndim != 1 or row.shape[0] != dimension:
                raise ValueError(
                    "arrival %d has feature shape %s, expected (%d,)"
                    % (index, row.shape, dimension)
                )
        features = np.vstack(rows)
        reserve_values = np.array(
            [np.nan if a.reserve_value is None else float(a.reserve_value) for a in materialised]
        )
        noise = np.array(
            [np.nan if a.noise is None else float(a.noise) for a in materialised]
        )
        metadata: Optional[List[dict]] = None
        if any(a.metadata for a in materialised):
            metadata = [dict(a.metadata) for a in materialised]
        return cls(
            features=features, reserve_values=reserve_values, noise=noise, metadata=metadata
        )

    def to_arrivals(self) -> List[QueryArrival]:
        """Rebuild the object-level arrival sequence (lossless round-trip)."""
        arrivals: List[QueryArrival] = []
        for index in range(len(self)):
            arrivals.append(self.row(index))
        return arrivals

    def row(self, index: int) -> QueryArrival:
        """The object-level view of one arrival."""
        reserve = self.reserve_values[index]
        noise = self.noise[index]
        return QueryArrival(
            features=self.features[index].copy(),
            reserve_value=None if np.isnan(reserve) else float(reserve),
            noise=None if np.isnan(noise) else float(noise),
            metadata=dict(self.metadata[index]) if self.metadata is not None else {},
        )

    # ------------------------------------------------------------------ #
    # Properties
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return self.features.shape[0]

    @property
    def rounds(self) -> int:
        """Number of arrivals in the batch."""
        return len(self)

    @property
    def raw_dimension(self) -> int:
        """Dimension of the raw (pre-feature-map) feature vectors."""
        return self.features.shape[1]

    @property
    def has_missing_noise(self) -> bool:
        """Whether any round still needs its noise drawn."""
        return bool(np.any(np.isnan(self.noise)))

    def slice(self, start: int, stop: int) -> "ArrivalBatch":
        """The sub-horizon ``[start, stop)`` as a zero-copy column view.

        Used by the chunked runner: slicing shares the underlying arrays, so
        sharding a horizon never duplicates the market.
        """
        start, stop = _check_slice(start, stop, len(self))
        return ArrivalBatch(
            features=self.features[start:stop],
            reserve_values=self.reserve_values[start:stop],
            noise=self.noise[start:stop],
            metadata=self.metadata[start:stop] if self.metadata is not None else None,
        )

    # ------------------------------------------------------------------ #
    # Noise resolution
    # ------------------------------------------------------------------ #

    def with_noise(self, noise_model, rng: RngLike = None) -> "ArrivalBatch":
        """Pre-draw the missing noise values and return the completed batch.

        Rounds that already carry a pre-drawn δ_t keep it verbatim; only the
        ``NaN`` entries are sampled, in round order, with one scalar
        ``noise_model.sample(rng)`` call each — the exact draw sequence the
        sequential loop used.  Pre-drawing at materialisation time is what
        guarantees that every pricer replayed over this batch faces the *same*
        noise realization (the Fig. 4 same-market protocol).

        Returns ``self`` unchanged when nothing is missing.
        """
        if not self.has_missing_noise:
            return self
        generator = as_rng(rng)
        filled = self.noise.copy()
        for index in range(filled.shape[0]):
            if np.isnan(filled[index]):
                filled[index] = float(noise_model.sample(generator))
        return ArrivalBatch(
            features=self.features,
            reserve_values=self.reserve_values,
            noise=filled,
            metadata=self.metadata,
        )


@dataclass
class MaterializedArrivals:
    """An :class:`ArrivalBatch` with the market value model applied.

    All columns are computed once per (model, batch) pair and shared by every
    pricer simulated over the batch.

    Attributes
    ----------
    batch:
        The underlying arrival batch (noise fully resolved).
    mapped_features:
        Link-space feature matrix ``φ(x_t)``, shape ``(rounds, dimension)``.
    link_values:
        Deterministic link-space values ``φ(x_t)^T θ*``.
    market_values:
        Realised real-space market values ``g(φ(x_t)^T θ* + δ_t)``.
    link_reserves:
        Reserve prices translated to link space (``NaN`` where absent).
    """

    batch: ArrivalBatch
    mapped_features: np.ndarray
    link_values: np.ndarray
    market_values: np.ndarray
    link_reserves: np.ndarray

    @property
    def rounds(self) -> int:
        """Number of materialised rounds."""
        return len(self.batch)

    @property
    def dimension(self) -> int:
        """Link-space feature dimension seen by the pricers."""
        return self.mapped_features.shape[1]

    def slice(self, start: int, stop: int) -> "MaterializedArrivals":
        """The sub-horizon ``[start, stop)`` as a zero-copy column view.

        The per-round quantities of round ``t`` are identical between the
        full and the sliced materialisation — they were computed once, up
        front — which is one half of the chunked-execution exactness
        argument (the other half is the pricer state snapshot).
        """
        start, stop = _check_slice(start, stop, self.rounds)
        return MaterializedArrivals(
            batch=self.batch.slice(start, stop),
            mapped_features=self.mapped_features[start:stop],
            link_values=self.link_values[start:stop],
            market_values=self.market_values[start:stop],
            link_reserves=self.link_reserves[start:stop],
        )


def _check_slice(start: int, stop: int, rounds: int):
    start, stop = int(start), int(stop)
    if not 0 <= start <= stop <= rounds:
        raise ValueError(
            "invalid slice [%d, %d) of a %d-round horizon" % (start, stop, rounds)
        )
    return start, stop


def materialize(model, batch: ArrivalBatch) -> MaterializedArrivals:
    """Apply the market value model to a whole batch of arrivals.

    The batch must have its noise resolved (see :meth:`ArrivalBatch.with_noise`);
    a batch with missing noise raises ``ValueError`` because the realised
    market values would silently become ``NaN``.
    """
    if batch.has_missing_noise:
        raise ValueError(
            "cannot materialize a batch with missing noise; call with_noise() first"
        )
    rounds = len(batch)
    mapped = model.feature_map_batch(batch.features)
    theta = model.theta
    link_values = np.empty(rounds)
    market_values = np.empty(rounds)
    noise = batch.noise
    # Scalar per-round arithmetic, identical to the sequential reference loop
    # (vectorised dot products / link kernels do not round identically).
    for index in range(rounds):
        link_value = float(mapped[index] @ theta)
        link_values[index] = link_value
        market_values[index] = model.link(link_value + noise[index])
    link_reserves = np.full(rounds, np.nan)
    reserve_values = batch.reserve_values
    for index in range(rounds):
        reserve = reserve_values[index]
        if not np.isnan(reserve):
            link_reserves[index] = model.link_inverse(reserve)
    return MaterializedArrivals(
        batch=batch,
        mapped_features=mapped,
        link_values=link_values,
        market_values=market_values,
        link_reserves=link_reserves,
    )


def as_batch(arrivals) -> ArrivalBatch:
    """Coerce an arrival sequence (or an existing batch) into an :class:`ArrivalBatch`."""
    if isinstance(arrivals, ArrivalBatch):
        return arrivals
    if isinstance(arrivals, Sequence):
        return ArrivalBatch.from_arrivals(arrivals)
    return ArrivalBatch.from_arrivals(list(arrivals))
