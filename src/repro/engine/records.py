"""Row-level records of the simulation engine.

:class:`QueryArrival` is the object-level view of one consumer arrival and
:class:`RoundOutcome` the object-level view of one simulated round.  The
columnar engine stores full horizons as struct-of-arrays containers
(:class:`repro.engine.arrivals.ArrivalBatch` and
:class:`repro.engine.transcript.Transcript`); these dataclasses remain the
stable row API — arrivals round-trip through the batch container and outcomes
are materialised lazily from transcript columns.

Both classes are re-exported from :mod:`repro.core.simulation` for backwards
compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np


@dataclass(frozen=True)
class QueryArrival:
    """One consumer arrival: a query's raw features, reserve price, and noise.

    Attributes
    ----------
    features:
        Raw feature vector of the query (before the model's feature map).
    reserve_value:
        Reserve price in *real* price space, or ``None`` when the scenario has
        no reserve price (e.g. the impression application).
    noise:
        Optional pre-drawn link-space noise δ_t.  Pre-drawing the noise in the
        arrival sequence lets several algorithm versions be compared on an
        identical realization of the market (as in Fig. 4).
    metadata:
        Free-form extra information (query id, owner ids, ...).
    """

    features: np.ndarray
    reserve_value: Optional[float] = None
    noise: Optional[float] = None
    metadata: dict = field(default_factory=dict)


@dataclass
class RoundOutcome:
    """Everything that happened in one round of data trading."""

    round_index: int
    link_value: float
    market_value: float
    reserve_value: Optional[float]
    posted_price: Optional[float]
    link_price: Optional[float]
    sold: bool
    skipped: bool
    exploratory: bool
    regret: float
    latency_seconds: float = 0.0
