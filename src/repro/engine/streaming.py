"""Streaming hand-off from the columnar engine to the serving layer.

The offline engine consumes a whole :class:`~repro.engine.arrivals.
MaterializedArrivals` at once; the online serving subsystem
(:mod:`repro.serving`) consumes the *same* market one round at a time — a
quote request per arrival, feedback after each outcome.  :func:`stream_rounds`
is the bridge: it walks a materialisation in round order and yields one
:class:`StreamedRound` per arrival, carrying exactly the per-round quantities
the engine's sequential loop reads (the mapped feature row, the link-space
reserve translated to ``None`` where absent, and the realised market value).

Because materialisation computes every per-round quantity once, up front, the
floats a streamed round carries are bit-identical to the ones the offline
loop sees — this is one half of the serving transcript-equivalence contract
(the other half is that the serving feedback path drives the identical
propose/update protocol).
"""

from __future__ import annotations

from typing import Iterator, NamedTuple, Optional

import numpy as np

from repro.engine.arrivals import MaterializedArrivals


class StreamedRound(NamedTuple):
    """One arrival of a materialised market, in serving-friendly form.

    Attributes
    ----------
    index:
        Round index within the streamed window (0-based).
    features:
        The link-space mapped feature row ``φ(x_t)`` (a view into the
        materialised matrix — treat as read-only).
    reserve:
        Link-space reserve price, or ``None`` when the round has no reserve
        (the ``NaN`` encoding of the columnar batch, resolved here exactly
        like the engine's sequential loop resolves it).
    market_value:
        The realised real-space market value ``g(φ(x_t)^T θ* + δ_t)`` — what
        a closed-loop feed compares the posted price against.
    link_value:
        The deterministic link-space value ``φ(x_t)^T θ*``.
    """

    index: int
    features: np.ndarray
    reserve: Optional[float]
    market_value: float
    link_value: float


def stream_rounds(
    materialized: MaterializedArrivals, start: int = 0, stop: Optional[int] = None
) -> Iterator[StreamedRound]:
    """Yield the rounds ``[start, stop)`` of a materialised market in order.

    The reserve translation (``NaN`` → ``None``, else ``float``) matches the
    engine loop's per-round handling, so a pricer driven from this stream
    receives byte-for-byte the arguments the offline simulator would pass.
    """
    rounds = materialized.rounds
    if stop is None:
        stop = rounds
    start, stop = int(start), int(stop)
    if not 0 <= start <= stop <= rounds:
        raise ValueError(
            "invalid stream window [%d, %d) of a %d-round horizon" % (start, stop, rounds)
        )
    mapped = materialized.mapped_features
    link_reserves = materialized.link_reserves
    market_values = materialized.market_values
    link_values = materialized.link_values
    for index in range(start, stop):
        link_reserve = link_reserves[index]
        yield StreamedRound(
            index=index - start,
            features=mapped[index],
            reserve=None if np.isnan(link_reserve) else float(link_reserve),
            market_value=float(market_values[index]),
            link_value=float(link_values[index]),
        )
