"""Columnar simulation transcript.

The legacy transcript was a ``List[RoundOutcome]`` — one Python object and a
dozen boxed floats per round.  :class:`Transcript` keeps the same information
as preallocated NumPy columns (prices, sales, regret, latency), which is what
lets the engine write a 100k-round horizon without a single per-round
allocation and compute every derived curve (Fig. 4 / Fig. 5) vectorised.

:class:`RoundOutcome` remains available as a *lazy row view*
(:meth:`Transcript.row` / :class:`TranscriptRows`), so all call sites that
iterate ``result.outcomes`` keep working unchanged.
"""

from __future__ import annotations

from typing import Iterator, List, Union

import numpy as np

from repro.core.regret import batch_regrets
from repro.engine.records import RoundOutcome
from repro.exceptions import SimulationError


class Transcript:
    """Preallocated struct-of-arrays record of a full simulation run.

    ``NaN`` encodes "absent" in the float columns: a ``NaN`` reserve means the
    round had no reserve price, a ``NaN`` posted/link price means the pricer
    skipped the round.
    """

    __slots__ = (
        "link_values",
        "market_values",
        "reserve_values",
        "link_prices",
        "posted_prices",
        "sold",
        "skipped",
        "exploratory",
        "regrets",
        "latency_seconds",
    )

    def __init__(self, rounds: int) -> None:
        if rounds < 0:
            raise ValueError("rounds must be non-negative, got %d" % rounds)
        self.link_values = np.empty(rounds)
        self.market_values = np.empty(rounds)
        self.reserve_values = np.full(rounds, np.nan)
        self.link_prices = np.full(rounds, np.nan)
        self.posted_prices = np.full(rounds, np.nan)
        self.sold = np.zeros(rounds, dtype=bool)
        self.skipped = np.zeros(rounds, dtype=bool)
        self.exploratory = np.zeros(rounds, dtype=bool)
        self.regrets = np.zeros(rounds)
        self.latency_seconds = np.zeros(rounds)

    @classmethod
    def for_materialized(cls, materialized) -> "Transcript":
        """A transcript with the environment columns pre-filled from a
        :class:`~repro.engine.arrivals.MaterializedArrivals`."""
        transcript = cls(materialized.rounds)
        transcript.link_values[:] = materialized.link_values
        transcript.market_values[:] = materialized.market_values
        transcript.reserve_values[:] = materialized.batch.reserve_values
        return transcript

    # ------------------------------------------------------------------ #
    # Finalisation
    # ------------------------------------------------------------------ #

    def finalize_regrets(self) -> None:
        """Compute the regret column vectorised (Equation (1)) and validate it.

        Regret is pure accounting — it never feeds back into pricing decisions
        — so it is computed in one vectorised pass after the pricer loop.
        """
        self.regrets = batch_regrets(
            self.market_values, self.reserve_values, self.posted_prices, self.sold
        )
        if not np.all(np.isfinite(self.regrets)):
            bad = int(np.flatnonzero(~np.isfinite(self.regrets))[0])
            raise SimulationError(
                "non-finite regret %r in round %d; inconsistent market state"
                % (float(self.regrets[bad]), bad)
            )

    # ------------------------------------------------------------------ #
    # Derived columns
    # ------------------------------------------------------------------ #

    @property
    def rounds(self) -> int:
        """Number of recorded rounds."""
        return self.market_values.shape[0]

    def __len__(self) -> int:
        return self.rounds

    @property
    def revenues(self) -> np.ndarray:
        """Per-round broker revenue (the posted price on sold rounds, else 0)."""
        return np.where(self.sold, np.where(np.isnan(self.posted_prices), 0.0, self.posted_prices), 0.0)

    def cumulative_regret_curve(self) -> np.ndarray:
        """Cumulative regret after each round (the curves of Fig. 4)."""
        return np.cumsum(self.regrets)

    def regret_ratio_curve(self) -> np.ndarray:
        """Regret ratio after each round (the curves of Fig. 5)."""
        cumulative_regret = np.cumsum(self.regrets)
        cumulative_value = np.cumsum(self.market_values)
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.where(cumulative_value > 0, cumulative_regret / cumulative_value, 0.0)

    # ------------------------------------------------------------------ #
    # Lazy row views
    # ------------------------------------------------------------------ #

    def row(self, index: int) -> RoundOutcome:
        """Materialise the object-level view of one round."""
        rounds = self.rounds
        if index < 0:
            index += rounds
        if not 0 <= index < rounds:
            raise IndexError("round index %d out of range [0, %d)" % (index, rounds))
        reserve = self.reserve_values[index]
        link_price = self.link_prices[index]
        posted = self.posted_prices[index]
        return RoundOutcome(
            round_index=index,
            link_value=float(self.link_values[index]),
            market_value=float(self.market_values[index]),
            reserve_value=None if np.isnan(reserve) else float(reserve),
            posted_price=None if np.isnan(posted) else float(posted),
            link_price=None if np.isnan(link_price) else float(link_price),
            sold=bool(self.sold[index]),
            skipped=bool(self.skipped[index]),
            exploratory=bool(self.exploratory[index]),
            regret=float(self.regrets[index]),
            latency_seconds=float(self.latency_seconds[index]),
        )

    def rows(self) -> "TranscriptRows":
        """A lazy, sequence-like view producing :class:`RoundOutcome` rows."""
        return TranscriptRows(self)


class TranscriptRows:
    """Sequence adapter exposing a :class:`Transcript` as lazy ``RoundOutcome`` rows.

    Supports ``len``, iteration, integer indexing (including negative), and
    slicing (which returns a list of rows), mirroring the legacy
    ``List[RoundOutcome]`` API without holding any per-round objects.
    """

    __slots__ = ("_transcript",)

    def __init__(self, transcript: Transcript) -> None:
        self._transcript = transcript

    def __len__(self) -> int:
        return self._transcript.rounds

    def __getitem__(self, index: Union[int, slice]) -> Union[RoundOutcome, List[RoundOutcome]]:
        if isinstance(index, slice):
            return [self._transcript.row(i) for i in range(*index.indices(len(self)))]
        return self._transcript.row(index)

    def __iter__(self) -> Iterator[RoundOutcome]:
        for index in range(len(self)):
            yield self._transcript.row(index)

    def __bool__(self) -> bool:
        return len(self) > 0
