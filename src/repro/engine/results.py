"""Transcript-backed simulation results.

:class:`SimulationResult` keeps the exact public API of the legacy
object-per-round result (``outcomes``, ``accumulator``, the curve and summary
methods) while storing everything in a columnar
:class:`~repro.engine.transcript.Transcript`.  ``outcomes`` is a lazy row view
and ``accumulator`` an adapter built on first access, so existing experiment
and test code keeps working while the hot path stays allocation-free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.regret import RegretAccumulator
from repro.engine.transcript import Transcript, TranscriptRows
from repro.utils.timing import OnlineLatencyTracker


@dataclass
class SimulationResult:
    """Transcript of a full simulation run."""

    pricer_name: str
    transcript: Transcript
    latency: OnlineLatencyTracker = field(default_factory=OnlineLatencyTracker)
    _accumulator: Optional[RegretAccumulator] = field(
        default=None, repr=False, compare=False
    )

    @property
    def outcomes(self) -> TranscriptRows:
        """Lazy per-round :class:`~repro.engine.records.RoundOutcome` views."""
        return self.transcript.rows()

    @property
    def accumulator(self) -> RegretAccumulator:
        """Legacy accumulator adapter (built lazily from the columns)."""
        if self._accumulator is None:
            self._accumulator = RegretAccumulator.from_arrays(
                self.transcript.regrets,
                self.transcript.revenues,
                self.transcript.market_values,
            )
        return self._accumulator

    @property
    def rounds(self) -> int:
        """Number of simulated rounds."""
        return self.transcript.rounds

    @property
    def cumulative_regret(self) -> float:
        """Total regret over the run."""
        return float(np.sum(self.transcript.regrets))

    @property
    def cumulative_revenue(self) -> float:
        """Total broker revenue over the run."""
        return float(np.sum(self.transcript.revenues))

    @property
    def regret_ratio(self) -> float:
        """Final regret ratio (cumulative regret / cumulative market value)."""
        total_value = float(np.sum(self.transcript.market_values))
        if total_value <= 0.0:
            return 0.0
        return float(np.sum(self.transcript.regrets)) / total_value

    def cumulative_regret_curve(self) -> np.ndarray:
        """Cumulative regret after each round (Fig. 4 series)."""
        return self.transcript.cumulative_regret_curve()

    def regret_ratio_curve(self) -> np.ndarray:
        """Regret ratio after each round (Fig. 5 series)."""
        return self.transcript.regret_ratio_curve()

    def sale_rate(self) -> float:
        """Fraction of rounds in which a deal occurred."""
        if self.rounds == 0:
            return 0.0
        return float(np.count_nonzero(self.transcript.sold)) / self.rounds

    def summary_statistics(self) -> dict:
        """Mean/standard deviation of per-round quantities (Table I columns)."""
        transcript = self.transcript
        reserves = transcript.reserve_values[~np.isnan(transcript.reserve_values)]
        posted = transcript.posted_prices[~np.isnan(transcript.posted_prices)]

        def _mean_std(values: np.ndarray) -> tuple:
            if values.size == 0:
                return (0.0, 0.0)
            return (float(np.mean(values)), float(np.std(values)))

        return {
            "rounds": self.rounds,
            "market_value": _mean_std(transcript.market_values),
            "reserve_price": _mean_std(reserves),
            "posted_price": _mean_std(posted),
            "regret": _mean_std(transcript.regrets),
            "regret_ratio": self.regret_ratio,
            "cumulative_regret": self.cumulative_regret,
            "cumulative_revenue": self.cumulative_revenue,
            "sale_rate": self.sale_rate(),
        }
