"""Run-matrix executor: fan (pricer × seed × scenario) cells across workers.

Every figure and table of the paper is a grid of independent simulation cells
— one market scenario (environment + seed) replayed by one pricer.  The
:class:`RunMatrix` executor materialises each scenario's arrivals **once** and
fans the cells across workers:

* ``serial`` — run in the calling process (the default on single-core hosts),
* ``thread`` — a :class:`~concurrent.futures.ThreadPoolExecutor`; useful when
  the per-cell work is dominated by BLAS calls that release the GIL,
* ``process`` — a fork-based :class:`~concurrent.futures.ProcessPoolExecutor`.
  Scenarios are built and materialised in the parent before the fork, so the
  (read-only) arrival arrays are shared with every worker through
  copy-on-write; only the scenario/pricer keys cross the pipe going in and the
  columnar results coming back.
* ``auto`` — ``process`` when more than one CPU is available and the platform
  supports ``fork``, otherwise ``serial``.

Seeds live in the scenario: a seed sweep registers one scenario per seed (see
:meth:`RunMatrix.add_scenario_sweep`), which keeps a cell fully described by
the ``(scenario, pricer)`` key pair.

Two orthogonal extensions ride on the pricer checkpoint subsystem
(:mod:`repro.engine.checkpoint`):

* **within-cell horizon sharding** (``shard_rounds``) — one huge-``T`` cell is
  executed as a chain of chunks; each chunk may run on a different worker,
  resuming from the previous chunk's serialised state snapshot, and the chunk
  chains of different cells are pipelined across the pool so a long-horizon
  sweep keeps every core busy even when a single cell dominates;
* **resume-after-crash** (``checkpoint_dir``) — each completed cell's result
  is persisted; re-running the same matrix skips finished cells and reloads
  their transcripts from disk.
"""

from __future__ import annotations

import hashlib
import itertools
import multiprocessing
import os
import re
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, ThreadPoolExecutor, wait
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.engine import checkpoint as checkpoint_store
from repro.engine.arrivals import ArrivalBatch, MaterializedArrivals, as_batch, materialize
from repro.engine.results import SimulationResult
from repro.engine.runner import (
    _DECISION_COLUMNS,
    _dispatch,
    _market_fingerprint,
    _validate_backend,
    run_batch_chunked,
    simulate,
)
from repro.engine.transcript import Transcript


class RunCellError(RuntimeError):
    """One run-matrix cell failed; carries the failing cell's identity.

    Worker pools strip tracebacks down to the raised exception, so a bare
    pool error is useless for locating the failing (pricer, seed, scenario)
    cell of a large sweep.  Every executor therefore wraps cell failures in
    this exception, whose message and attributes name the cell.  The seed is
    part of the scenario key (``add_scenario_sweep`` registers
    ``prefix/seed=N`` keys), so the triple is fully identified.
    """

    def __init__(self, scenario: str, pricer: str, message: str) -> None:
        super().__init__(scenario, pricer, message)
        self.scenario = scenario
        self.pricer = pricer

    def __str__(self) -> str:
        return "run-matrix cell (scenario=%r, pricer=%r) failed: %s" % (
            self.scenario,
            self.pricer,
            self.args[2],
        )


@dataclass
class MarketScenario:
    """One fully-specified market: a model plus a (noise-resolved) arrival batch.

    ``context`` carries arbitrary caller data (e.g. the originating
    :class:`~repro.apps.common.AppEnvironment`) so pricer factories can read
    hyper-parameters like the knowledge-ball radius or ε.
    """

    name: str
    model: Any
    batch: ArrivalBatch
    context: Any = None

    def __post_init__(self) -> None:
        self.batch = as_batch(self.batch)
        if self.batch.has_missing_noise:
            raise ValueError(
                "scenario %r has arrivals with undrawn noise; resolve it with "
                "ArrivalBatch.with_noise() so every cell replays the same market"
                % self.name
            )


ScenarioBuilder = Callable[[], MarketScenario]
PricerFactory = Callable[[MarketScenario], Any]


@dataclass(frozen=True)
class RunCell:
    """One cell of the run matrix: a scenario replayed by a pricer."""

    scenario: str
    pricer: str


class RunMatrixResult:
    """Results of a run-matrix execution, keyed by ``(scenario, pricer)``."""

    def __init__(self, results: Dict[RunCell, SimulationResult]) -> None:
        self._results = results

    def __len__(self) -> int:
        return len(self._results)

    def __iter__(self):
        return iter(self._results.items())

    def get(self, scenario: str, pricer: str) -> SimulationResult:
        """The result of one cell."""
        return self._results[RunCell(scenario=scenario, pricer=pricer)]

    def by_scenario(self, scenario: str) -> Dict[str, SimulationResult]:
        """All results of one scenario, keyed by pricer name."""
        return {
            cell.pricer: result
            for cell, result in self._results.items()
            if cell.scenario == scenario
        }

    def by_pricer(self, pricer: str) -> Dict[str, SimulationResult]:
        """All results of one pricer, keyed by scenario name."""
        return {
            cell.scenario: result
            for cell, result in self._results.items()
            if cell.pricer == pricer
        }


class RunMatrix:
    """Declarative (pricer × seed × scenario) experiment grid.

    Example
    -------
    >>> matrix = RunMatrix()
    >>> matrix.add_scenario("n=20", lambda: build_scenario(dimension=20))
    ... # doctest: +SKIP
    >>> matrix.add_pricer("pure version", lambda s: make_pricer(...))
    ... # doctest: +SKIP
    >>> results = matrix.run(executor="auto")  # doctest: +SKIP
    """

    def __init__(self) -> None:
        self._scenario_builders: Dict[str, ScenarioBuilder] = {}
        self._pricer_factories: Dict[str, PricerFactory] = {}
        self._cells: List[RunCell] = []
        self._built_scenarios: Dict[str, MarketScenario] = {}
        self._checkpoint_tag = ""

    # ------------------------------------------------------------------ #
    # Declaration
    # ------------------------------------------------------------------ #

    def add_scenario(self, key: str, builder) -> None:
        """Register a scenario under ``key``.

        ``builder`` is either a :class:`MarketScenario` or a zero-argument
        callable returning one (built lazily, once, when first needed).
        """
        if key in self._scenario_builders:
            raise ValueError("scenario %r already registered" % key)
        if isinstance(builder, MarketScenario):
            scenario = builder
            self._scenario_builders[key] = lambda: scenario
        else:
            self._scenario_builders[key] = builder

    def add_scenario_sweep(
        self, prefix: str, builder_for_seed: Callable[[int], MarketScenario], seeds: Iterable[int]
    ) -> List[str]:
        """Register one scenario per seed and return the generated keys."""
        keys = []
        for seed in seeds:
            key = "%s/seed=%d" % (prefix, seed)
            self.add_scenario(key, _SeededBuilder(builder_for_seed, seed))
            keys.append(key)
        return keys

    def add_pricer(self, key: str, factory: PricerFactory) -> None:
        """Register a pricer factory under ``key``.

        The factory receives the cell's :class:`MarketScenario` and must
        return a fresh pricer (cells never share pricer state).
        """
        if key in self._pricer_factories:
            raise ValueError("pricer %r already registered" % key)
        self._pricer_factories[key] = factory

    def add_cell(self, scenario: str, pricer: str) -> None:
        """Add one (scenario, pricer) cell to the grid."""
        if scenario not in self._scenario_builders:
            raise ValueError("unknown scenario %r" % scenario)
        if pricer not in self._pricer_factories:
            raise ValueError("unknown pricer %r" % pricer)
        self._cells.append(RunCell(scenario=scenario, pricer=pricer))

    def add_cross(
        self,
        scenarios: Optional[Sequence[str]] = None,
        pricers: Optional[Sequence[str]] = None,
    ) -> None:
        """Add the full cross product of the given (default: all) keys."""
        for scenario in scenarios if scenarios is not None else self._scenario_builders:
            for pricer in pricers if pricers is not None else self._pricer_factories:
                self.add_cell(scenario, pricer)

    @property
    def cells(self) -> Tuple[RunCell, ...]:
        """The declared cells, in declaration order."""
        return tuple(self._cells)

    @property
    def built_scenarios(self) -> Dict[str, MarketScenario]:
        """Scenarios built by :meth:`run` so far (for metadata access)."""
        return dict(self._built_scenarios)

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def run(
        self,
        executor: str = "auto",
        max_workers: Optional[int] = None,
        track_latency: bool = False,
        shard_rounds: Optional[int] = None,
        checkpoint_dir: Optional[str] = None,
        checkpoint_tag: Optional[str] = None,
        chunk_checkpoint_every: int = 1,
        backend: Optional[str] = None,
    ) -> RunMatrixResult:
        """Execute every declared cell and return the result grid.

        ``backend`` selects the math backend for every cell (see
        :mod:`repro.engine.equivalence`): ``None`` / ``"reference"`` keep the
        bit-exact tier, ``"batched"`` / ``"batched-torch"`` run the
        relaxed-tier block-vectorised pricer paths.  The knob reaches every
        executor, including sharded chunks and forked process workers.

        ``track_latency`` forces per-round timing, and with it the serial
        executor: the per-round wall-clock the paper reports (Section V-D)
        must not include CPU contention from sibling worker cells, so latency
        runs are serialised across cells as well as within them (sharding is
        disabled for the same reason).

        ``shard_rounds`` enables within-cell horizon sharding: every cell's
        horizon is executed as a chain of ``shard_rounds``-sized chunks
        through pricer state checkpoints.  Under a parallel executor the
        chunk chains of different cells are pipelined across the pool —
        worker N resumes a cell from the serialised snapshot worker N-1
        produced — so one huge-``T`` cell no longer serialises the whole
        sweep behind a single core.  Sharded transcripts are bit-identical
        to unsharded ones (the chunked-execution exactness contract).

        ``checkpoint_dir`` persists every completed cell's result under the
        given directory and, on a re-run, loads finished cells from disk
        instead of re-simulating them — crash/resume for minutes-long sweeps.
        Combined with ``shard_rounds`` the resume is additionally *mid-cell*:
        every chunk boundary of an unfinished cell is persisted as a pricer
        checkpoint (``*.chunk.npz``, the ``run_batch_chunked`` format), so a
        crashed sweep re-runs only the chunks after the last completed
        boundary of the interrupted cell instead of the whole huge-``T``
        horizon.  Chunk files are deleted once their cell's result file is
        written; a stale or foreign chunk file (workload changed under the
        same keys without a ``checkpoint_tag``) is detected via the stored
        market fingerprint and ignored.  Each chunk write persists the whole
        completed prefix, so ``chunk_checkpoint_every=N`` persists only every
        N-th boundary — raise it on huge horizons with small chunks (the
        ``run_batch_chunked(checkpoint_every=...)`` trade-off).
        Cells restored from disk do not re-build their scenario, so results
        are matched purely by file name: pass ``checkpoint_tag`` — a string
        fingerprinting the workload parameters (dimension, horizon, δ, …) —
        whenever the same scenario/pricer keys can describe different
        workloads (e.g. a smoke pass and a full pass sharing one directory).
        The tag is baked into every cell's file name, so a mismatched run
        never silently reuses a foreign result.
        """
        if not self._cells:
            return RunMatrixResult({})
        self._validate_executor(executor)
        _validate_backend(backend)
        if shard_rounds is not None and shard_rounds < 1:
            raise ValueError("shard_rounds must be at least 1, got %d" % shard_rounds)
        if chunk_checkpoint_every < 1:
            raise ValueError(
                "chunk_checkpoint_every must be at least 1, got %d" % chunk_checkpoint_every
            )
        if track_latency:
            executor = "serial"
            shard_rounds = None

        self._checkpoint_tag = checkpoint_tag or ""
        results: Dict[RunCell, SimulationResult] = {}
        if checkpoint_dir is not None:
            os.makedirs(checkpoint_dir, exist_ok=True)
            for cell in self._cells:
                path = _cell_result_path(checkpoint_dir, cell, self._checkpoint_tag)
                if os.path.exists(path):
                    results[cell] = checkpoint_store.load_result(path)
        pending = [cell for cell in self._cells if cell not in results]
        if not pending:
            return RunMatrixResult({cell: results[cell] for cell in self._cells})

        needed = []
        for cell in pending:
            if cell.scenario not in needed:
                needed.append(cell.scenario)

        if executor == "auto" and not self._parallel_worthwhile():
            executor = "serial"
        if executor == "serial":
            # Lazy per-scenario execution: each scenario is built, materialised,
            # replayed by its cells, and its materialisation dropped before the
            # next one — peak memory is one market, not the whole grid.
            for key in needed:
                scenario = self._scenario_builders[key]()
                self._built_scenarios[key] = scenario
                materialized = materialize(scenario.model, scenario.batch)
                for cell in pending:
                    if cell.scenario == key:
                        result = self._run_cell(
                            (scenario, materialized),
                            cell,
                            track_latency,
                            shard_rounds,
                            chunk_checkpoint_path=self._chunk_path(
                                cell, shard_rounds, checkpoint_dir
                            ),
                            chunk_checkpoint_every=chunk_checkpoint_every,
                            backend=backend,
                        )
                        self._store(results, cell, result, checkpoint_dir)
            return RunMatrixResult({cell: results[cell] for cell in self._cells})

        # Parallel executors: build + materialise every scenario up front —
        # thread workers share the arrays directly, process workers inherit
        # them copy-on-write through the fork.
        prepared: Dict[str, Tuple[MarketScenario, MaterializedArrivals]] = {}
        for key in needed:
            scenario = self._scenario_builders[key]()
            prepared[key] = (scenario, materialize(scenario.model, scenario.batch))
            self._built_scenarios[key] = scenario

        if executor == "auto":
            workload = sum(prepared[cell.scenario][1].rounds for cell in pending)
            executor = "process" if workload >= self.AUTO_PROCESS_THRESHOLD else "serial"
            if executor == "serial":
                for cell in pending:
                    result = self._run_cell(
                        prepared[cell.scenario],
                        cell,
                        track_latency,
                        shard_rounds,
                        chunk_checkpoint_path=self._chunk_path(
                            cell, shard_rounds, checkpoint_dir
                        ),
                        chunk_checkpoint_every=chunk_checkpoint_every,
                        backend=backend,
                    )
                    self._store(results, cell, result, checkpoint_dir)
                return RunMatrixResult({cell: results[cell] for cell in self._cells})

        if executor == "thread":
            with ThreadPoolExecutor(max_workers=max_workers) as pool:
                if shard_rounds is not None:
                    self._run_sharded(
                        pool,
                        pending,
                        shard_rounds,
                        results,
                        checkpoint_dir,
                        submit=lambda cell, start, stop, blob: pool.submit(
                            _run_chunk,
                            prepared[cell.scenario],
                            self._pricer_factories[cell.pricer],
                            cell,
                            start,
                            stop,
                            blob,
                            backend,
                        ),
                        rounds_of=lambda cell: prepared[cell.scenario][1].rounds,
                        transcript_for=lambda cell: Transcript.for_materialized(
                            prepared[cell.scenario][1]
                        ),
                        materialized_of=lambda cell: prepared[cell.scenario][1],
                        chunk_checkpoint_every=chunk_checkpoint_every,
                    )
                else:
                    futures = {
                        cell: pool.submit(
                            self._run_cell,
                            prepared[cell.scenario],
                            cell,
                            track_latency,
                            None,
                            backend=backend,
                        )
                        for cell in pending
                    }
                    for cell, future in futures.items():
                        self._store(results, cell, future.result(), checkpoint_dir)
            return RunMatrixResult({cell: results[cell] for cell in self._cells})

        # Fork-based process pool: expose the prepared scenarios and factories
        # through a module-level registry so workers reach them via
        # copy-on-write and only the run token + cell keys are pickled.  The
        # registry is keyed per run, so overlapping runs (nested matrices,
        # threads) never clobber each other's state.
        token = "%d-%d" % (os.getpid(), next(_RUN_TOKENS))
        _WORKER_STATES[token] = (prepared, dict(self._pricer_factories), track_latency, backend)
        try:
            context = multiprocessing.get_context("fork")
            workers = max_workers or min(len(pending), os.cpu_count() or 1)
            with ProcessPoolExecutor(max_workers=workers, mp_context=context) as pool:
                if shard_rounds is not None:
                    self._run_sharded(
                        pool,
                        pending,
                        shard_rounds,
                        results,
                        checkpoint_dir,
                        submit=lambda cell, start, stop, blob: pool.submit(
                            _run_chunk_in_worker, token, cell, start, stop, blob
                        ),
                        rounds_of=lambda cell: prepared[cell.scenario][1].rounds,
                        transcript_for=lambda cell: Transcript.for_materialized(
                            prepared[cell.scenario][1]
                        ),
                        materialized_of=lambda cell: prepared[cell.scenario][1],
                        chunk_checkpoint_every=chunk_checkpoint_every,
                    )
                else:
                    futures = {
                        cell: pool.submit(_run_cell_in_worker, token, cell)
                        for cell in pending
                    }
                    for cell, future in futures.items():
                        self._store(results, cell, future.result(), checkpoint_dir)
            return RunMatrixResult({cell: results[cell] for cell in self._cells})
        finally:
            _WORKER_STATES.pop(token, None)

    def _run_sharded(
        self,
        pool,
        cells: Sequence[RunCell],
        shard_rounds: int,
        results: Dict[RunCell, SimulationResult],
        checkpoint_dir: Optional[str],
        submit,
        rounds_of,
        transcript_for,
        materialized_of=None,
        chunk_checkpoint_every: int = 1,
    ) -> None:
        """Pipeline the chunk chains of ``cells`` across a worker pool.

        Chunks of one cell are strictly ordered (chunk ``k+1`` resumes from
        the serialised pricer state chunk ``k`` returned), but chunks of
        *different* cells interleave freely: at any moment each unfinished
        cell has exactly one chunk in flight, so the pool stays busy as long
        as there are more unfinished cells than workers — and a single
        huge-horizon cell still makes forward progress chunk by chunk.

        With ``checkpoint_dir`` set, every ``chunk_checkpoint_every``-th
        completed chunk boundary is additionally persisted as a pricer
        checkpoint (state + completed transcript prefix + market
        fingerprint, the ``run_batch_chunked`` on-disk format), and cells
        whose chunk file survives a crash resume from its boundary instead
        of round zero.  The final boundary is never persisted — the cell's
        result file is written in the same step and supersedes it.
        """
        transcripts: Dict[RunCell, Transcript] = {}
        state_blobs: Dict[RunCell, Optional[bytes]] = {}
        chunk_paths: Dict[RunCell, str] = {}
        fingerprints: Dict[RunCell, str] = {}
        in_flight = {}

        def _submit_next(cell: RunCell, start: int) -> None:
            stop = min(start + shard_rounds, rounds_of(cell))
            future = submit(cell, start, stop, state_blobs.get(cell))
            in_flight[future] = (cell, start, stop)

        for cell in cells:
            transcripts[cell] = transcript_for(cell)
            state_blobs[cell] = None
            start = 0
            if checkpoint_dir is not None and materialized_of is not None:
                chunk_paths[cell] = _cell_chunk_path(
                    checkpoint_dir, cell, self._checkpoint_tag
                )
                fingerprints[cell] = _market_fingerprint(materialized_of(cell))
                start = self._restore_chunk_progress(
                    chunk_paths[cell], fingerprints[cell], rounds_of(cell),
                    transcripts[cell], state_blobs, cell,
                )
            if rounds_of(cell) <= start:
                self._store(
                    results, cell, _finalize_cell(cell, transcripts[cell]), checkpoint_dir
                )
            else:
                _submit_next(cell, start)

        while in_flight:
            done, _ = wait(list(in_flight), return_when=FIRST_COMPLETED)
            for future in done:
                cell, start, stop = in_flight.pop(future)
                columns, blob, pricer_type = future.result()
                transcript = transcripts[cell]
                for name in _DECISION_COLUMNS:
                    getattr(transcript, name)[start:stop] = columns[name]
                state_blobs[cell] = blob
                boundary = (stop + shard_rounds - 1) // shard_rounds
                if (
                    cell in chunk_paths
                    and stop < rounds_of(cell)
                    and boundary % chunk_checkpoint_every == 0
                ):
                    prefix = {
                        name: getattr(transcript, name)[:stop].copy()
                        for name in _DECISION_COLUMNS
                    }
                    checkpoint_store.save_state_checkpoint(
                        chunk_paths[cell],
                        pricer_type,
                        stop,
                        checkpoint_store.deserialize_state(blob),
                        meta={
                            "columns": prefix,
                            "market_fingerprint": fingerprints[cell],
                        },
                    )
                if stop < rounds_of(cell):
                    _submit_next(cell, stop)
                else:
                    self._store(
                        results, cell, _finalize_cell(cell, transcript), checkpoint_dir
                    )

    def _restore_chunk_progress(
        self,
        chunk_path: str,
        fingerprint: str,
        rounds: int,
        transcript: Transcript,
        state_blobs: Dict[RunCell, Optional[bytes]],
        cell: RunCell,
    ) -> int:
        """Load one cell's mid-cell chunk checkpoint, if a valid one exists.

        Returns the round to resume from (0 when there is no usable file).
        A file whose market fingerprint does not match, whose columns are
        mis-sized, or that is unreadable is treated as absent — the cell
        simply re-runs from scratch and overwrites it at the next boundary.
        """
        if not os.path.exists(chunk_path):
            return 0
        try:
            loaded = checkpoint_store.load_checkpoint(chunk_path)
        except (checkpoint_store.CheckpointError, OSError):
            # Malformed or unreadable (e.g. unlinked by a concurrent sweep
            # between the existence check and the open) — run from scratch.
            return 0
        if loaded.meta.get("market_fingerprint") != fingerprint:
            return 0
        done = int(loaded.rounds_done)
        if not 0 < done <= rounds:
            return 0
        columns = loaded.meta.get("columns", {})
        for name in _DECISION_COLUMNS:
            column = columns.get(name)
            if column is None or column.shape[0] != done:
                return 0
        for name in _DECISION_COLUMNS:
            getattr(transcript, name)[:done] = columns[name]
        state_blobs[cell] = checkpoint_store.serialize_state(loaded.state)
        return done

    def _store(
        self,
        results: Dict[RunCell, SimulationResult],
        cell: RunCell,
        result: SimulationResult,
        checkpoint_dir: Optional[str],
    ) -> None:
        results[cell] = result
        if checkpoint_dir is not None:
            checkpoint_store.save_result(
                _cell_result_path(checkpoint_dir, cell, self._checkpoint_tag), result
            )
            # The cell is complete; its mid-cell progress file (if any) is
            # superseded by the result file.
            chunk_path = _cell_chunk_path(checkpoint_dir, cell, self._checkpoint_tag)
            try:
                os.unlink(chunk_path)
            except OSError:
                pass

    def _chunk_path(
        self, cell: RunCell, shard_rounds: Optional[int], checkpoint_dir: Optional[str]
    ) -> Optional[str]:
        """The mid-cell chunk checkpoint path, when both features are on."""
        if shard_rounds is None or checkpoint_dir is None:
            return None
        return _cell_chunk_path(checkpoint_dir, cell, self._checkpoint_tag)

    def _run_cell(
        self,
        prepared: Tuple[MarketScenario, MaterializedArrivals],
        cell: RunCell,
        track_latency: bool,
        shard_rounds: Optional[int] = None,
        chunk_checkpoint_path: Optional[str] = None,
        chunk_checkpoint_every: int = 1,
        backend: Optional[str] = None,
    ) -> SimulationResult:
        scenario, materialized = prepared
        try:
            pricer = self._pricer_factories[cell.pricer](scenario)
            if shard_rounds is not None:
                if chunk_checkpoint_path is None:
                    return run_batch_chunked(
                        scenario.model,
                        pricer,
                        materialized=materialized,
                        chunk_size=shard_rounds,
                        pricer_name=cell.pricer,
                        backend=backend,
                    )
                try:
                    return run_batch_chunked(
                        scenario.model,
                        pricer,
                        materialized=materialized,
                        chunk_size=shard_rounds,
                        pricer_name=cell.pricer,
                        checkpoint_path=chunk_checkpoint_path,
                        resume=True,
                        checkpoint_every=chunk_checkpoint_every,
                        checkpoint_final=False,
                        backend=backend,
                    )
                except checkpoint_store.CheckpointError:
                    # Stale or foreign chunk file (e.g. the workload changed
                    # under unchanged keys) — drop it and run the cell fresh
                    # on a clean pricer.
                    try:
                        os.unlink(chunk_checkpoint_path)
                    except OSError:
                        pass
                    pricer = self._pricer_factories[cell.pricer](scenario)
                    return run_batch_chunked(
                        scenario.model,
                        pricer,
                        materialized=materialized,
                        chunk_size=shard_rounds,
                        pricer_name=cell.pricer,
                        checkpoint_path=chunk_checkpoint_path,
                        checkpoint_every=chunk_checkpoint_every,
                        checkpoint_final=False,
                        backend=backend,
                    )
            return simulate(
                scenario.model,
                pricer,
                materialized=materialized,
                track_latency=track_latency,
                pricer_name=cell.pricer,
                backend=backend,
            )
        except RunCellError:
            raise
        except Exception as exc:
            raise RunCellError(
                cell.scenario, cell.pricer, "%s: %s" % (type(exc).__name__, exc)
            ) from exc

    #: Minimum total round-cells before "auto" pays the fork overhead of the
    #: process executor.
    AUTO_PROCESS_THRESHOLD = 200_000

    def _validate_executor(self, executor: str) -> None:
        if executor not in ("auto", "serial", "thread", "process"):
            raise ValueError(
                "executor must be one of 'auto', 'serial', 'thread', 'process', got %r"
                % executor
            )
        if executor == "process" and "fork" not in multiprocessing.get_all_start_methods():
            raise ValueError(
                "the process executor requires the 'fork' start method; "
                "use executor='thread' or 'serial' on this platform"
            )

    def _parallel_worthwhile(self) -> bool:
        """Whether "auto" should even consider the process executor."""
        fork_available = "fork" in multiprocessing.get_all_start_methods()
        return (os.cpu_count() or 1) >= 2 and fork_available and len(self._cells) >= 2


class _SeededBuilder:
    """Picklable zero-argument builder binding a seed to a seed-taking builder."""

    def __init__(self, builder_for_seed: Callable[[int], MarketScenario], seed: int) -> None:
        self._builder = builder_for_seed
        self._seed = seed

    def __call__(self) -> MarketScenario:
        return self._builder(self._seed)


#: Per-run worker state, registered by :meth:`RunMatrix.run` immediately
#: before forking process workers and removed when the run completes.
_WORKER_STATES: Dict[str, Tuple[dict, dict, bool, Optional[str]]] = {}
_RUN_TOKENS = itertools.count()


def _run_cell_in_worker(token: str, cell: RunCell) -> SimulationResult:
    """Process-pool entry point: run one cell from the fork-inherited state."""
    state = _WORKER_STATES.get(token)
    if state is None:  # pragma: no cover - defensive
        raise RuntimeError(
            "run-matrix worker state %r missing (not forked from run()?)" % token
        )
    prepared, factories, track_latency, backend = state
    scenario, materialized = prepared[cell.scenario]
    try:
        pricer = factories[cell.pricer](scenario)
        return simulate(
            scenario.model,
            pricer,
            materialized=materialized,
            track_latency=track_latency,
            pricer_name=cell.pricer,
            backend=backend,
        )
    except Exception as exc:
        # RunCellError pickles cleanly across the pool pipe (its args are the
        # three strings), so the parent sees the failing cell's identity
        # instead of a bare traceback-less pool error.
        raise RunCellError(
            cell.scenario, cell.pricer, "%s: %s" % (type(exc).__name__, exc)
        ) from exc


def _run_chunk_in_worker(
    token: str, cell: RunCell, start: int, stop: int, state_blob: Optional[bytes]
):
    """Process-pool entry point: run one chunk of one sharded cell."""
    state = _WORKER_STATES.get(token)
    if state is None:  # pragma: no cover - defensive
        raise RuntimeError(
            "run-matrix worker state %r missing (not forked from run()?)" % token
        )
    prepared, factories, _track_latency, backend = state
    return _run_chunk(
        prepared[cell.scenario], factories[cell.pricer], cell, start, stop, state_blob, backend
    )


def _run_chunk(
    prepared: Tuple[MarketScenario, MaterializedArrivals],
    factory: PricerFactory,
    cell: RunCell,
    start: int,
    stop: int,
    state_blob: Optional[bytes],
    backend: Optional[str] = None,
):
    """Run rounds ``[start, stop)`` of one cell from a serialised snapshot.

    A *fresh* pricer is built for every chunk and the previous chunk's
    serialised state is loaded into it — the same restore path a
    crash-resume would take, so the sharded executor continuously exercises
    the checkpoint contract.  Returns the chunk's decision columns, the
    serialised state after the chunk, and the pricer's type name (recorded
    in mid-cell chunk checkpoints so a serial ``run_batch_chunked`` resume
    can type-check against them).
    """
    scenario, materialized = prepared
    try:
        pricer = factory(scenario)
        if state_blob is not None:
            pricer.load_state(checkpoint_store.deserialize_state(state_blob))
        chunk = materialized.slice(start, stop)
        transcript = Transcript.for_materialized(chunk)
        _dispatch(scenario.model, pricer, chunk, transcript, backend=backend)
        columns = {name: getattr(transcript, name) for name in _DECISION_COLUMNS}
        return columns, checkpoint_store.serialize_state(pricer.state_dict()), type(pricer).__name__
    except Exception as exc:
        raise RunCellError(
            cell.scenario,
            cell.pricer,
            "chunk [%d, %d): %s: %s" % (start, stop, type(exc).__name__, exc),
        ) from exc


def _finalize_cell(cell: RunCell, transcript: Transcript) -> SimulationResult:
    transcript.finalize_regrets()
    return SimulationResult(pricer_name=cell.pricer, transcript=transcript)


def _cell_result_path(checkpoint_dir: str, cell: RunCell, tag: str = "") -> str:
    """A stable, filesystem-safe result path for one (scenario, pricer) cell.

    The workload ``tag`` participates in the digest, so two sweeps sharing
    scenario/pricer keys but differing in workload parameters never collide.
    """
    digest = hashlib.sha1(
        ("%s\x00%s\x00%s" % (cell.scenario, cell.pricer, tag)).encode("utf-8")
    ).hexdigest()[:12]
    slug = re.sub(r"[^A-Za-z0-9._=-]+", "-", "%s__%s" % (cell.scenario, cell.pricer))
    return os.path.join(checkpoint_dir, "%s-%s.result.npz" % (slug[:80], digest))


def _cell_chunk_path(checkpoint_dir: str, cell: RunCell, tag: str = "") -> str:
    """The mid-cell chunk-checkpoint path of one sharded (scenario, pricer) cell.

    Shares the result-file naming scheme (slug + workload-tagged digest) with
    a distinct suffix, so the two artifact kinds of one cell sit next to each
    other and never collide across workloads.
    """
    return _cell_result_path(checkpoint_dir, cell, tag)[: -len(".result.npz")] + ".chunk.npz"
