"""Run-matrix executor: fan (pricer × seed × scenario) cells across workers.

Every figure and table of the paper is a grid of independent simulation cells
— one market scenario (environment + seed) replayed by one pricer.  The
:class:`RunMatrix` executor materialises each scenario's arrivals **once** and
fans the cells across workers:

* ``serial`` — run in the calling process (the default on single-core hosts),
* ``thread`` — a :class:`~concurrent.futures.ThreadPoolExecutor`; useful when
  the per-cell work is dominated by BLAS calls that release the GIL,
* ``process`` — a fork-based :class:`~concurrent.futures.ProcessPoolExecutor`.
  Scenarios are built and materialised in the parent before the fork, so the
  (read-only) arrival arrays are shared with every worker through
  copy-on-write; only the scenario/pricer keys cross the pipe going in and the
  columnar results coming back.
* ``auto`` — ``process`` when more than one CPU is available and the platform
  supports ``fork``, otherwise ``serial``.

Seeds live in the scenario: a seed sweep registers one scenario per seed (see
:meth:`RunMatrix.add_scenario_sweep`), which keeps a cell fully described by
the ``(scenario, pricer)`` key pair.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.engine.arrivals import ArrivalBatch, MaterializedArrivals, as_batch, materialize
from repro.engine.results import SimulationResult
from repro.engine.runner import simulate


@dataclass
class MarketScenario:
    """One fully-specified market: a model plus a (noise-resolved) arrival batch.

    ``context`` carries arbitrary caller data (e.g. the originating
    :class:`~repro.apps.common.AppEnvironment`) so pricer factories can read
    hyper-parameters like the knowledge-ball radius or ε.
    """

    name: str
    model: Any
    batch: ArrivalBatch
    context: Any = None

    def __post_init__(self) -> None:
        self.batch = as_batch(self.batch)
        if self.batch.has_missing_noise:
            raise ValueError(
                "scenario %r has arrivals with undrawn noise; resolve it with "
                "ArrivalBatch.with_noise() so every cell replays the same market"
                % self.name
            )


ScenarioBuilder = Callable[[], MarketScenario]
PricerFactory = Callable[[MarketScenario], Any]


@dataclass(frozen=True)
class RunCell:
    """One cell of the run matrix: a scenario replayed by a pricer."""

    scenario: str
    pricer: str


class RunMatrixResult:
    """Results of a run-matrix execution, keyed by ``(scenario, pricer)``."""

    def __init__(self, results: Dict[RunCell, SimulationResult]) -> None:
        self._results = results

    def __len__(self) -> int:
        return len(self._results)

    def __iter__(self):
        return iter(self._results.items())

    def get(self, scenario: str, pricer: str) -> SimulationResult:
        """The result of one cell."""
        return self._results[RunCell(scenario=scenario, pricer=pricer)]

    def by_scenario(self, scenario: str) -> Dict[str, SimulationResult]:
        """All results of one scenario, keyed by pricer name."""
        return {
            cell.pricer: result
            for cell, result in self._results.items()
            if cell.scenario == scenario
        }

    def by_pricer(self, pricer: str) -> Dict[str, SimulationResult]:
        """All results of one pricer, keyed by scenario name."""
        return {
            cell.scenario: result
            for cell, result in self._results.items()
            if cell.pricer == pricer
        }


class RunMatrix:
    """Declarative (pricer × seed × scenario) experiment grid.

    Example
    -------
    >>> matrix = RunMatrix()
    >>> matrix.add_scenario("n=20", lambda: build_scenario(dimension=20))
    ... # doctest: +SKIP
    >>> matrix.add_pricer("pure version", lambda s: make_pricer(...))
    ... # doctest: +SKIP
    >>> results = matrix.run(executor="auto")  # doctest: +SKIP
    """

    def __init__(self) -> None:
        self._scenario_builders: Dict[str, ScenarioBuilder] = {}
        self._pricer_factories: Dict[str, PricerFactory] = {}
        self._cells: List[RunCell] = []
        self._built_scenarios: Dict[str, MarketScenario] = {}

    # ------------------------------------------------------------------ #
    # Declaration
    # ------------------------------------------------------------------ #

    def add_scenario(self, key: str, builder) -> None:
        """Register a scenario under ``key``.

        ``builder`` is either a :class:`MarketScenario` or a zero-argument
        callable returning one (built lazily, once, when first needed).
        """
        if key in self._scenario_builders:
            raise ValueError("scenario %r already registered" % key)
        if isinstance(builder, MarketScenario):
            scenario = builder
            self._scenario_builders[key] = lambda: scenario
        else:
            self._scenario_builders[key] = builder

    def add_scenario_sweep(
        self, prefix: str, builder_for_seed: Callable[[int], MarketScenario], seeds: Iterable[int]
    ) -> List[str]:
        """Register one scenario per seed and return the generated keys."""
        keys = []
        for seed in seeds:
            key = "%s/seed=%d" % (prefix, seed)
            self.add_scenario(key, _SeededBuilder(builder_for_seed, seed))
            keys.append(key)
        return keys

    def add_pricer(self, key: str, factory: PricerFactory) -> None:
        """Register a pricer factory under ``key``.

        The factory receives the cell's :class:`MarketScenario` and must
        return a fresh pricer (cells never share pricer state).
        """
        if key in self._pricer_factories:
            raise ValueError("pricer %r already registered" % key)
        self._pricer_factories[key] = factory

    def add_cell(self, scenario: str, pricer: str) -> None:
        """Add one (scenario, pricer) cell to the grid."""
        if scenario not in self._scenario_builders:
            raise ValueError("unknown scenario %r" % scenario)
        if pricer not in self._pricer_factories:
            raise ValueError("unknown pricer %r" % pricer)
        self._cells.append(RunCell(scenario=scenario, pricer=pricer))

    def add_cross(
        self,
        scenarios: Optional[Sequence[str]] = None,
        pricers: Optional[Sequence[str]] = None,
    ) -> None:
        """Add the full cross product of the given (default: all) keys."""
        for scenario in scenarios if scenarios is not None else self._scenario_builders:
            for pricer in pricers if pricers is not None else self._pricer_factories:
                self.add_cell(scenario, pricer)

    @property
    def cells(self) -> Tuple[RunCell, ...]:
        """The declared cells, in declaration order."""
        return tuple(self._cells)

    @property
    def built_scenarios(self) -> Dict[str, MarketScenario]:
        """Scenarios built by :meth:`run` so far (for metadata access)."""
        return dict(self._built_scenarios)

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def run(
        self,
        executor: str = "auto",
        max_workers: Optional[int] = None,
        track_latency: bool = False,
    ) -> RunMatrixResult:
        """Execute every declared cell and return the result grid.

        ``track_latency`` forces per-round timing, and with it the serial
        executor: the per-round wall-clock the paper reports (Section V-D)
        must not include CPU contention from sibling worker cells, so latency
        runs are serialised across cells as well as within them.
        """
        if not self._cells:
            return RunMatrixResult({})
        self._validate_executor(executor)
        if track_latency:
            executor = "serial"

        needed = []
        for cell in self._cells:
            if cell.scenario not in needed:
                needed.append(cell.scenario)

        if executor == "auto" and not self._parallel_worthwhile():
            executor = "serial"
        if executor == "serial":
            # Lazy per-scenario execution: each scenario is built, materialised,
            # replayed by its cells, and its materialisation dropped before the
            # next one — peak memory is one market, not the whole grid.
            results: Dict[RunCell, SimulationResult] = {}
            for key in needed:
                scenario = self._scenario_builders[key]()
                self._built_scenarios[key] = scenario
                materialized = materialize(scenario.model, scenario.batch)
                for cell in self._cells:
                    if cell.scenario == key:
                        results[cell] = self._run_cell(
                            (scenario, materialized), cell, track_latency
                        )
            return RunMatrixResult({cell: results[cell] for cell in self._cells})

        # Parallel executors: build + materialise every scenario up front —
        # thread workers share the arrays directly, process workers inherit
        # them copy-on-write through the fork.
        prepared: Dict[str, Tuple[MarketScenario, MaterializedArrivals]] = {}
        for key in needed:
            scenario = self._scenario_builders[key]()
            prepared[key] = (scenario, materialize(scenario.model, scenario.batch))
            self._built_scenarios[key] = scenario

        if executor == "auto":
            workload = sum(prepared[cell.scenario][1].rounds for cell in self._cells)
            executor = "process" if workload >= self.AUTO_PROCESS_THRESHOLD else "serial"
            if executor == "serial":
                results = {
                    cell: self._run_cell(prepared[cell.scenario], cell, track_latency)
                    for cell in self._cells
                }
                return RunMatrixResult(results)

        if executor == "thread":
            with ThreadPoolExecutor(max_workers=max_workers) as pool:
                futures = {
                    cell: pool.submit(
                        self._run_cell, prepared[cell.scenario], cell, track_latency
                    )
                    for cell in self._cells
                }
                return RunMatrixResult({cell: f.result() for cell, f in futures.items()})

        # Fork-based process pool: expose the prepared scenarios and factories
        # through a module-level registry so workers reach them via
        # copy-on-write and only the run token + cell keys are pickled.  The
        # registry is keyed per run, so overlapping runs (nested matrices,
        # threads) never clobber each other's state.
        token = "%d-%d" % (os.getpid(), next(_RUN_TOKENS))
        _WORKER_STATES[token] = (prepared, dict(self._pricer_factories), track_latency)
        try:
            context = multiprocessing.get_context("fork")
            workers = max_workers or min(len(self._cells), os.cpu_count() or 1)
            with ProcessPoolExecutor(max_workers=workers, mp_context=context) as pool:
                futures = {
                    cell: pool.submit(_run_cell_in_worker, token, cell)
                    for cell in self._cells
                }
                return RunMatrixResult({cell: f.result() for cell, f in futures.items()})
        finally:
            _WORKER_STATES.pop(token, None)

    def _run_cell(
        self,
        prepared: Tuple[MarketScenario, MaterializedArrivals],
        cell: RunCell,
        track_latency: bool,
    ) -> SimulationResult:
        scenario, materialized = prepared
        pricer = self._pricer_factories[cell.pricer](scenario)
        return simulate(
            scenario.model,
            pricer,
            materialized=materialized,
            track_latency=track_latency,
            pricer_name=cell.pricer,
        )

    #: Minimum total round-cells before "auto" pays the fork overhead of the
    #: process executor.
    AUTO_PROCESS_THRESHOLD = 200_000

    def _validate_executor(self, executor: str) -> None:
        if executor not in ("auto", "serial", "thread", "process"):
            raise ValueError(
                "executor must be one of 'auto', 'serial', 'thread', 'process', got %r"
                % executor
            )
        if executor == "process" and "fork" not in multiprocessing.get_all_start_methods():
            raise ValueError(
                "the process executor requires the 'fork' start method; "
                "use executor='thread' or 'serial' on this platform"
            )

    def _parallel_worthwhile(self) -> bool:
        """Whether "auto" should even consider the process executor."""
        fork_available = "fork" in multiprocessing.get_all_start_methods()
        return (os.cpu_count() or 1) >= 2 and fork_available and len(self._cells) >= 2


class _SeededBuilder:
    """Picklable zero-argument builder binding a seed to a seed-taking builder."""

    def __init__(self, builder_for_seed: Callable[[int], MarketScenario], seed: int) -> None:
        self._builder = builder_for_seed
        self._seed = seed

    def __call__(self) -> MarketScenario:
        return self._builder(self._seed)


#: Per-run worker state, registered by :meth:`RunMatrix.run` immediately
#: before forking process workers and removed when the run completes.
_WORKER_STATES: Dict[str, Tuple[dict, dict, bool]] = {}
_RUN_TOKENS = itertools.count()


def _run_cell_in_worker(token: str, cell: RunCell) -> SimulationResult:
    """Process-pool entry point: run one cell from the fork-inherited state."""
    state = _WORKER_STATES.get(token)
    if state is None:  # pragma: no cover - defensive
        raise RuntimeError(
            "run-matrix worker state %r missing (not forked from run()?)" % token
        )
    prepared, factories, track_latency = state
    scenario, materialized = prepared[cell.scenario]
    pricer = factories[cell.pricer](scenario)
    return simulate(
        scenario.model,
        pricer,
        materialized=materialized,
        track_latency=track_latency,
        pricer_name=cell.pricer,
    )
