"""Application 1: pricing noisy linear queries over a personal data market.

Reproduces the setup of Section V-A:

* the data owners are (synthetic) MovieLens-style raters; their contracts are
  tanh compensation functions and their privacy leakage under a noisy linear
  query is quantified through the Laplace mechanism,
* each arriving query draws its analysis weights from a normal or uniform
  distribution and its Laplace noise scale from ``{10^k : |k| <= 4}``,
* the query's feature vector is the sorted-partition aggregation of the
  per-owner compensations, rescaled to unit L2 norm (``S = 1``), and the
  reserve price is the total compensation in the same scale
  (``q_t = Σ_i x_{t,i}``),
* the market value follows the linear model ``v_t = x_t^T θ*`` with
  ``‖θ*‖ = √(2n)`` (entries drawn like the query weights, taken non-negative so
  that ``v_t ≥ q_t`` with high probability, as the paper's Table I statistics
  require), and the initial knowledge ball has radius ``R = 2√n``,
* the uncertainty versions use ``δ = 0.01`` with per-round normal noise of
  standard deviation ``σ = δ / (√(2 log 2) · log T)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.apps.common import ALGORITHM_VERSIONS, AppEnvironment, run_versions, scale_to_norm
from repro.core.models import LinearModel
from repro.core.noise import GaussianNoise, sigma_for_buffer
from repro.core.pricing import PricerConfig
from repro.core.simulation import QueryArrival, SimulationResult
from repro.datasets.synthetic_ratings import generate_ratings
from repro.market.features import CompensationFeatureExtractor
from repro.market.owners import OwnerPopulation
from repro.market.privacy import LeakageQuantifier
from repro.market.queries import QueryGenerator
from repro.utils.rng import as_rng, spawn_rngs


@dataclass(frozen=True)
class NoisyLinearQueryConfig:
    """Configuration of the noisy-linear-query experiment.

    Attributes
    ----------
    dimension:
        Feature dimension ``n`` (1, 20, 40, 60, 80, 100 in the paper).
    rounds:
        Number of trading rounds ``T``.
    owner_count:
        Number of data owners behind the market (138,493 in the real
        MovieLens; scaled down by default).
    delta:
        The uncertainty buffer used by the "...with uncertainty" versions
        (0.01 in the paper).
    theta_norm_factor:
        ``‖θ*‖ = theta_norm_factor · √n`` (the paper uses √2 · √n).
    radius_factor:
        ``R = radius_factor · √n`` (the paper uses 2 · √n).
    epsilon:
        Optional explicit exploration threshold.  Defaults to the value used
        in the paper's analysis, ``max(n²/T, 4nδ)`` (``log²T / T`` for
        ``n = 1``): Theorem 1 requires ``ε ≥ 4nδ``, and below that floor the
        δ-buffered cuts stall before the exploration threshold is reached, so
        the uncertainty versions would post (and ~half the time lose) the
        exploratory price forever.  One common ε is used for all four
        algorithm versions so they are compared on equal footing.
    seed:
        Master random seed.
    """

    dimension: int = 20
    rounds: int = 10_000
    owner_count: int = 500
    delta: float = 0.01
    theta_norm_factor: float = float(np.sqrt(2.0))
    radius_factor: float = 2.0
    epsilon: Optional[float] = None
    seed: int = 0

    def resolved_epsilon(self) -> float:
        """The exploration threshold actually used."""
        if self.epsilon is not None:
            return self.epsilon
        return PricerConfig.theoretical_epsilon(self.dimension, self.rounds, delta=self.delta)


def build_noisy_query_environment(config: NoisyLinearQueryConfig) -> AppEnvironment:
    """Materialise the market environment (model, arrivals) for the experiment."""
    if config.rounds < 1:
        raise ValueError("rounds must be positive, got %d" % config.rounds)
    rng_owners, rng_theta, rng_queries, rng_noise = spawn_rngs(config.seed, 4)

    # Data owners: records and tanh contracts derived from the rating data.
    ratings = generate_ratings(
        user_count=config.owner_count,
        item_count=max(50, config.owner_count // 4),
        seed=rng_owners,
    )
    owners = OwnerPopulation.from_records(
        ratings.owner_records("mean_rating"), seed=rng_owners
    )

    # Market value model: non-negative weights scaled to ‖θ*‖ = √(2n).
    raw_theta = np.abs(rng_theta.standard_normal(config.dimension))
    theta = scale_to_norm(raw_theta, config.theta_norm_factor * np.sqrt(config.dimension))

    # Per-round uncertainty: δ = 0.01 buffer, normal noise calibrated to it.
    sigma = sigma_for_buffer(config.delta, config.rounds)
    noise = GaussianNoise(sigma) if sigma > 0 else None

    generator = QueryGenerator(owner_count=len(owners), seed=rng_queries)
    quantifier = LeakageQuantifier()
    extractor = CompensationFeatureExtractor(dimension=config.dimension, normalise=True)

    feature_rows: List[np.ndarray] = []
    reserves: List[float] = []
    query_metadata: List[dict] = []
    for _ in range(config.rounds):
        query = generator.generate()
        leakages = quantifier.leakages(query)
        compensations = owners.compensations(leakages)
        extraction = extractor.extract(compensations)
        feature_rows.append(extraction.features)
        reserves.append(extractor.reserve_price(extraction))
        query_metadata.append({"query_id": query.query_id, "noise_scale": query.noise_scale})

    # The paper states that ‖θ*‖ = √(2n) makes the market value exceed the
    # reserve price with high probability.  With synthetic compensation
    # profiles that is not automatic for every random draw of θ*, so enforce
    # it: if the median value/reserve ratio falls below the calibration
    # target, rescale θ* upward (Table I's observed ratio is ≈ 1.14).
    ratios = [
        float(row @ theta) / reserve if reserve > 0 else np.inf
        for row, reserve in zip(feature_rows, reserves)
    ]
    median_ratio = float(np.median(ratios)) if ratios else np.inf
    calibration_target = 1.15
    if np.isfinite(median_ratio) and median_ratio < calibration_target:
        theta = theta * (calibration_target / max(median_ratio, 1e-9))
    model = LinearModel(theta)

    arrivals: List[QueryArrival] = []
    for row, reserve, metadata in zip(feature_rows, reserves, query_metadata):
        noise_value = float(noise.sample(rng_noise)) if noise is not None else 0.0
        arrivals.append(
            QueryArrival(
                features=row, reserve_value=reserve, noise=noise_value, metadata=metadata
            )
        )

    radius = max(
        config.radius_factor * float(np.sqrt(config.dimension)),
        1.25 * float(np.linalg.norm(theta)),
    )
    return AppEnvironment(
        model=model,
        arrivals=arrivals,
        dimension=config.dimension,
        radius=radius,
        epsilon=config.resolved_epsilon(),
        delta=config.delta,
        feature_norm_bound=1.0,
        name="noisy linear query (linear model)",
        metadata={"owner_count": len(owners), "theta_norm": float(np.linalg.norm(theta))},
    )


def build_noisy_query_scenario(config: NoisyLinearQueryConfig, name: Optional[str] = None):
    """Materialise the environment and wrap it as a run-matrix scenario."""
    return build_noisy_query_environment(config).as_scenario(name)


def run_noisy_query_experiment(
    config: NoisyLinearQueryConfig,
    versions: Sequence[str] = ALGORITHM_VERSIONS,
    include_risk_averse: bool = False,
    track_latency: bool = False,
) -> Dict[str, SimulationResult]:
    """Build the environment and simulate the requested algorithm versions."""
    environment = build_noisy_query_environment(config)
    return run_versions(
        environment,
        versions=versions,
        include_risk_averse=include_risk_averse,
        track_latency=track_latency,
    )
