"""Shared plumbing for the three application instances.

An application prepares an :class:`AppEnvironment` — a market value model, a
materialised arrival sequence (so every algorithm version sees the same
market), and the pricer hyper-parameters derived from the paper's setup — and
then asks :func:`run_versions` to simulate any subset of the four algorithm
versions plus the risk-averse baseline over it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.base import PostedPriceMechanism
from repro.core.baselines import RiskAversePricer
from repro.core.models import MarketValueModel
from repro.core.noise import NoNoise
from repro.core.pricing import make_pricer
from repro.core.simulation import QueryArrival, SimulationResult
from repro.engine import ArrivalBatch, MarketScenario, RunMatrix

#: The four algorithm versions evaluated throughout Section V, keyed by the
#: names used in the paper's figures.
ALGORITHM_VERSIONS = (
    "pure version",
    "with uncertainty",
    "with reserve price",
    "with reserve price and uncertainty",
)

#: The paper's risk-averse comparison baseline (post the reserve every round).
RISK_AVERSE = "risk-averse baseline"


@dataclass
class AppEnvironment:
    """A fully materialised market environment for one application instance.

    Attributes
    ----------
    model:
        Market value model generating ``v_t`` (holds the true ``θ*``).
    arrivals:
        The query arrival sequence, with reserve prices and pre-drawn noise.
    dimension:
        Link-space feature dimension ``n`` seen by the pricer.
    radius:
        Radius ``R`` of the initial knowledge ball.
    epsilon:
        Exploration threshold ``ε``.
    delta:
        Uncertainty buffer ``δ`` used by the "...with uncertainty" versions.
    feature_norm_bound:
        The bound ``S`` on the link-space feature norms (reported for context).
    name:
        Application name used in reports.
    initial_ellipsoid:
        Optional warm-start knowledge ellipsoid shared by all pricer versions;
        ``None`` (the paper's setting) means the origin-centered ball of
        radius ``radius``.
    """

    model: MarketValueModel
    arrivals: List[QueryArrival]
    dimension: int
    radius: float
    epsilon: float
    delta: float
    feature_norm_bound: float
    name: str
    metadata: dict = field(default_factory=dict)
    initial_ellipsoid: object = None

    @property
    def rounds(self) -> int:
        """Number of arrivals in the environment."""
        return len(self.arrivals)

    def arrival_batch(self) -> ArrivalBatch:
        """The arrivals as a columnar :class:`~repro.engine.ArrivalBatch`.

        Built once and cached; arrivals without a pre-drawn noise value get
        δ_t = 0, matching the legacy simulator's no-noise default.
        """
        batch = getattr(self, "_batch", None)
        if batch is None:
            batch = ArrivalBatch.from_arrivals(self.arrivals).with_noise(NoNoise())
            self._batch = batch
        return batch

    def as_scenario(self, name: Optional[str] = None) -> MarketScenario:
        """Wrap this environment as a run-matrix :class:`MarketScenario`."""
        return MarketScenario(
            name=name or self.name,
            model=self.model,
            batch=self.arrival_batch(),
            context=self,
        )


def build_pricer_for_version(
    environment: AppEnvironment,
    version: str,
    allow_conservative_cuts: bool = False,
    knowledge: str = "ellipsoid",
) -> PostedPriceMechanism:
    """Instantiate the pricer corresponding to one of the paper's versions."""
    if version == RISK_AVERSE:
        return RiskAversePricer()
    if version not in ALGORITHM_VERSIONS:
        raise ValueError(
            "unknown version %r; expected one of %s or %r"
            % (version, list(ALGORITHM_VERSIONS), RISK_AVERSE)
        )
    use_reserve = "reserve" in version
    delta = environment.delta if "uncertainty" in version else 0.0
    return make_pricer(
        dimension=environment.dimension,
        radius=environment.radius,
        epsilon=environment.epsilon,
        delta=delta,
        use_reserve=use_reserve,
        allow_conservative_cuts=allow_conservative_cuts,
        knowledge=knowledge,
        initial_ellipsoid=environment.initial_ellipsoid,
    )


class VersionPricerFactory:
    """Run-matrix pricer factory for one of the paper's algorithm versions.

    A picklable callable (so it survives process-pool forks) that builds a
    fresh pricer for the scenario's originating :class:`AppEnvironment`.
    """

    def __init__(
        self,
        version: str,
        allow_conservative_cuts: bool = False,
        knowledge: str = "ellipsoid",
    ) -> None:
        self.version = version
        self.allow_conservative_cuts = allow_conservative_cuts
        self.knowledge = knowledge

    def __call__(self, scenario: MarketScenario) -> PostedPriceMechanism:
        environment = scenario.context
        if not isinstance(environment, AppEnvironment):
            raise TypeError(
                "VersionPricerFactory requires scenarios built from an "
                "AppEnvironment, got context %r" % type(environment).__name__
            )
        return build_pricer_for_version(
            environment,
            self.version,
            allow_conservative_cuts=self.allow_conservative_cuts,
            knowledge=self.knowledge,
        )


def run_versions(
    environment: AppEnvironment,
    versions: Sequence[str] = ALGORITHM_VERSIONS,
    include_risk_averse: bool = False,
    track_latency: bool = False,
    allow_conservative_cuts: bool = False,
    knowledge: str = "ellipsoid",
    executor: str = "auto",
    max_workers: Optional[int] = None,
) -> Dict[str, SimulationResult]:
    """Simulate the requested algorithm versions over one environment.

    Every version replays exactly the same arrival sequence (queries, reserve
    prices, and noise realisation), which is the comparison protocol of the
    paper's Fig. 4 / Fig. 5.  The versions are one-scenario cells of a
    :class:`~repro.engine.RunMatrix`: the arrivals are materialised once and
    the cells fan out across workers when the workload warrants it
    (``executor="auto"``).
    """
    names = list(versions)
    if include_risk_averse:
        names.append(RISK_AVERSE)
    # Tolerate duplicates (e.g. the baseline both listed and requested via
    # include_risk_averse) — each version runs once, keyed by name.
    names = list(dict.fromkeys(names))
    matrix = RunMatrix()
    matrix.add_scenario(environment.name, environment.as_scenario())
    for version in names:
        matrix.add_pricer(
            version,
            VersionPricerFactory(
                version,
                allow_conservative_cuts=allow_conservative_cuts,
                knowledge=knowledge,
            ),
        )
    matrix.add_cross()
    grid = matrix.run(executor=executor, max_workers=max_workers, track_latency=track_latency)
    return {version: grid.get(environment.name, version) for version in names}


def scale_to_norm(vector: np.ndarray, norm: float) -> np.ndarray:
    """Rescale ``vector`` so its L2 norm equals ``norm`` (no-op for zero vectors)."""
    current = float(np.linalg.norm(vector))
    if current == 0.0:
        return vector.copy()
    return vector * (norm / current)
