"""Application 2: pricing accommodation rentals under the log-linear model.

Reproduces the setup of Section V-B:

* listings (a synthetic stand-in for the Airbnb U.S. major cities data) are
  encoded into ``n = 55`` numeric features — categorical codes, numeric
  attributes, and interaction features,
* the weight vector ``θ*`` is learned by ordinary least squares on the
  logarithmic lodging prices (80/20 train/test split; the held-out MSE is
  reported in the environment metadata, mirroring the paper's 0.226),
* the market value of a listing is ``v_t = exp(x_t^T θ*)`` (log-linear model),
* the reserve price is controlled by the ratio ``r`` between the natural
  logarithms of reserve and market value: ``log q_t = r · log v_t``
  (``r ∈ {0.4, 0.6, 0.8}`` in the paper's Fig. 5(b)),
* regret ratios are computed on real (exponentiated) prices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.apps.common import ALGORITHM_VERSIONS, AppEnvironment, run_versions
from repro.core.ellipsoid import Ellipsoid
from repro.core.models import LogLinearModel
from repro.core.pricing import PricerConfig
from repro.core.simulation import QueryArrival, SimulationResult
from repro.datasets.listings import generate_listings
from repro.learning.encoding import ListingFeaturizer
from repro.learning.linear_regression import LinearRegression, train_test_split
from repro.learning.metrics import mean_squared_error
from repro.utils.rng import spawn_rngs


@dataclass(frozen=True)
class AccommodationConfig:
    """Configuration of the accommodation-rental experiment.

    Attributes
    ----------
    listing_count:
        Number of listing records (74,111 in the paper; scaled down by default).
    dimension:
        Feature dimension ``n`` (55 in the paper).
    reserve_log_ratio:
        The ratio ``r`` between the natural logs of reserve and market value;
        ``None`` disables reserve prices entirely.
    delta:
        Link-space uncertainty buffer for the "...with uncertainty" versions
        (the paper evaluates this application without uncertainty).
    epsilon:
        Optional explicit exploration threshold; defaults to ``n²/T`` capped at
        ``epsilon_cap``.  The cap is needed because the threshold lives in log
        space: under the log-linear model the conservative price loses a
        ``1 - exp(-ε)`` fraction of the real market value every round, so ε
        must stay well below 1 regardless of the horizon (Theorem 2's Lipschitz
        factor); the paper's own ``n²/T = 0.04`` at ``T = 74,111`` satisfies
        this naturally.
    epsilon_cap:
        Upper bound applied to the default ε.
    test_fraction:
        Held-out fraction of the OLS fit (0.2 in the paper).
    warm_start_count:
        Number of *historical* listing transactions the broker may use to
        warm-start its knowledge set (0, the paper's setting, starts from the
        origin-centered ball).  With a warm start the initial ellipsoid is
        centered at an OLS fit over those historical records and shaped by the
        fit's covariance — see DESIGN.md §6: the paper's reported few-percent
        regret ratios at ``n = 55`` are only reachable when the broker starts
        with some market knowledge, and this option quantifies how much.
    warm_start_inflation:
        Safety factor by which the warm-start ellipsoid is inflated beyond the
        smallest ellipsoid that contains the true weight vector.
    seed:
        Master random seed.
    """

    listing_count: int = 10_000
    dimension: int = 55
    include_amenities: bool = True
    reserve_log_ratio: Optional[float] = 0.6
    delta: float = 0.0
    epsilon: Optional[float] = None
    epsilon_cap: float = 0.1
    test_fraction: float = 0.2
    warm_start_count: int = 0
    warm_start_inflation: float = 4.0
    seed: int = 0

    def resolved_epsilon(self) -> float:
        """The exploration threshold actually used."""
        if self.epsilon is not None:
            return self.epsilon
        theoretical = PricerConfig.theoretical_epsilon(
            self.dimension, self.listing_count, delta=self.delta
        )
        return min(theoretical, self.epsilon_cap)


def build_accommodation_environment(config: AccommodationConfig) -> AppEnvironment:
    """Materialise the accommodation-rental environment."""
    if config.reserve_log_ratio is not None and not 0.0 <= config.reserve_log_ratio <= 1.0:
        raise ValueError(
            "reserve_log_ratio must lie in [0, 1], got %g" % config.reserve_log_ratio
        )
    if config.warm_start_count < 0:
        raise ValueError("warm_start_count must be non-negative")
    rng_data, rng_split, rng_history = spawn_rngs(config.seed, 3)

    dataset = generate_listings(count=config.listing_count, seed=rng_data)
    featurizer = ListingFeaturizer(
        target_dimension=config.dimension, include_amenities=config.include_amenities
    )
    features = featurizer.fit_transform(dataset)
    log_prices = dataset.log_prices()

    train_x, test_x, train_y, test_y = train_test_split(
        features, log_prices, test_fraction=config.test_fraction, seed=rng_split
    )
    regression = LinearRegression(fit_intercept=False, ridge=1e-6).fit(train_x, train_y)
    test_mse = mean_squared_error(test_y, regression.predict(test_x))

    theta = regression.weight_vector(include_intercept=False)
    model = LogLinearModel(theta)

    arrivals: List[QueryArrival] = []
    for row in features:
        link_value = float(row @ theta)
        if config.reserve_log_ratio is None:
            reserve = None
        else:
            reserve = float(np.exp(config.reserve_log_ratio * link_value))
        arrivals.append(QueryArrival(features=row, reserve_value=reserve, noise=0.0))

    feature_norms = np.linalg.norm(features, axis=1)
    radius = 1.25 * max(float(np.linalg.norm(theta)), 1e-6)

    initial_ellipsoid = None
    if config.warm_start_count > 0:
        initial_ellipsoid = _warm_start_ellipsoid(
            featurizer, theta, config, rng_history
        )

    return AppEnvironment(
        model=model,
        arrivals=arrivals,
        dimension=config.dimension,
        radius=radius,
        epsilon=config.resolved_epsilon(),
        delta=config.delta,
        feature_norm_bound=float(np.max(feature_norms)),
        name="accommodation rental (log-linear model)",
        metadata={
            "test_mse": test_mse,
            "reserve_log_ratio": config.reserve_log_ratio,
            "theta_norm": float(np.linalg.norm(theta)),
            "warm_start_count": config.warm_start_count,
        },
        initial_ellipsoid=initial_ellipsoid,
    )


def _warm_start_ellipsoid(featurizer, theta_true, config, rng) -> Ellipsoid:
    """Warm-start knowledge ellipsoid fitted on historical transactions.

    The broker observes ``warm_start_count`` historical listings with their
    (noisy) sold prices, fits the same log-linear regression it will be priced
    against, and takes as its initial knowledge set an ellipsoid centered at
    that fit whose shape follows the fit's coefficient covariance.  The
    ellipsoid is inflated until it contains the true weight vector — the
    analogue of the paper's assumption that a valid bound ``R ≥ ‖θ*‖`` is
    known a priori.
    """
    history = generate_listings(count=config.warm_start_count, seed=rng)
    history_x = featurizer.transform(history)
    history_y = history.log_prices()
    fit = LinearRegression(fit_intercept=False, ridge=1e-3).fit(history_x, history_y)
    center = fit.weight_vector(include_intercept=False)

    residuals = history_y - fit.predict(history_x)
    sigma2 = float(np.mean(residuals**2))
    gram = history_x.T @ history_x + 1e-3 * np.eye(history_x.shape[1])
    covariance = sigma2 * np.linalg.inv(gram)
    covariance = 0.5 * (covariance + covariance.T)

    shape = (config.warm_start_inflation**2) * covariance
    shape += 1e-9 * np.trace(shape) / shape.shape[0] * np.eye(shape.shape[0])
    ellipsoid = Ellipsoid(center, shape)
    # Guarantee feasibility: inflate until the true weight vector is inside.
    while not ellipsoid.contains(theta_true):
        shape = shape * 4.0
        ellipsoid = Ellipsoid(center, shape)
    return ellipsoid


def run_accommodation_experiment(
    config: AccommodationConfig,
    versions: Sequence[str] = ("pure version", "with reserve price"),
    include_risk_averse: bool = False,
    track_latency: bool = False,
) -> Dict[str, SimulationResult]:
    """Build the environment and simulate the requested algorithm versions."""
    environment = build_accommodation_environment(config)
    return run_versions(
        environment,
        versions=versions,
        include_risk_averse=include_risk_averse,
        track_latency=track_latency,
    )
