"""Application 3: pricing ad impressions under the logistic model.

Reproduces the setup of Section V-C:

* ad impressions (a synthetic stand-in for the Avazu click log) are encoded
  with the one-hot hashing trick, the modulus ``n`` being the feature
  dimension (128 or 1024 in the paper),
* the CTR weight vector ``θ*`` is learned with FTRL-Proximal logistic
  regression; L1 regularisation makes it sparse (the paper reports 21–23
  non-zero coordinates),
* the market value of an impression is its predicted CTR
  ``v_t = sigmoid(x_t^T θ*)``,
* the *sparse* case keeps all ``n`` hashed features; the *dense* case drops the
  coordinates whose learned weight is zero, so the pricer works in the much
  smaller support dimension,
* impressions carry no reserve price, so only the pure version (and the
  uncertainty variant) are meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.apps.common import AppEnvironment, run_versions
from repro.core.models import LogisticModel
from repro.core.pricing import PricerConfig
from repro.core.simulation import QueryArrival, SimulationResult
from repro.datasets.ad_clicks import AdClickDataset, generate_ad_clicks
from repro.learning.ftrl import FTRLProximal
from repro.learning.hashing import HashingVectorizer
from repro.learning.metrics import log_loss
from repro.utils.rng import spawn_rngs


@dataclass(frozen=True)
class ImpressionConfig:
    """Configuration of the impression-pricing experiment.

    Attributes
    ----------
    impression_count:
        Number of impressions used for the online pricing phase ``T``.
    training_count:
        Number of (additional) impressions used to fit the CTR model.
    dimension:
        Hashing modulus ``n`` (128 or 1024 in the paper).
    dense:
        ``False`` keeps all hashed features (the sparse case);
        ``True`` restricts to the support of the learned weights (dense case).
    delta:
        Logit-space uncertainty buffer (the paper evaluates this application
        with the pure version only).
    epsilon:
        Optional explicit exploration threshold; defaults to ``n²/T`` computed
        in the pricing dimension (support size in the dense case), capped at
        ``epsilon_cap`` — the threshold lives in logit space, where values
        beyond ~1 would make the conservative price lose a constant fraction
        of the CTR-valued market value every round (Theorem 2's Lipschitz
        factor).
    epsilon_cap:
        Upper bound applied to the default ε.
    l1:
        L1 regularisation strength of the FTRL fit (drives the sparsity of the
        learned weight vector).
    seed:
        Master random seed.
    """

    impression_count: int = 20_000
    training_count: int = 20_000
    dimension: int = 128
    dense: bool = False
    delta: float = 0.0
    epsilon: Optional[float] = None
    epsilon_cap: float = 0.1
    l1: float = 12.0
    seed: int = 0


def build_impression_environment(config: ImpressionConfig) -> AppEnvironment:
    """Materialise the impression-pricing environment."""
    if config.impression_count < 1 or config.training_count < 1:
        raise ValueError("impression_count and training_count must be positive")
    rng_train, rng_online = spawn_rngs(config.seed, 2)

    vectorizer = HashingVectorizer(dimension=config.dimension, binary=True)

    # Offline CTR fit on a separate training log (the paper trains on the first
    # eight days and evaluates on the last two).
    training_log = generate_ad_clicks(count=config.training_count, seed=rng_train)
    train_matrix = vectorizer.transform([imp.tokens() for imp in training_log])
    train_labels = training_log.labels()
    split = max(1, int(0.8 * len(training_log)))
    ftrl = FTRLProximal(dimension=config.dimension, l1=config.l1)
    ftrl.fit(train_matrix[:split], train_labels[:split])
    holdout_loss = log_loss(train_labels[split:], ftrl.predict_proba_batch(train_matrix[split:]))
    theta_full = ftrl.weights

    # Online phase: a fresh impression stream priced by predicted CTR.
    online_log = generate_ad_clicks(count=config.impression_count, seed=rng_online)
    online_matrix = vectorizer.transform([imp.tokens() for imp in online_log])

    support = np.nonzero(theta_full)[0]
    dense_fallback = False
    if config.dense and support.size >= 2:
        theta = theta_full[support]
        online_matrix = online_matrix[:, support]
        pricing_dimension = int(support.size)
    else:
        # The dense case needs a non-trivial support; with a very small
        # training log the L1 penalty can zero out every weight, in which
        # case we fall back to the sparse (full-dimension) setup.
        dense_fallback = config.dense
        theta = theta_full
        pricing_dimension = config.dimension

    model = LogisticModel(theta)
    arrivals: List[QueryArrival] = [
        QueryArrival(features=row, reserve_value=None, noise=0.0) for row in online_matrix
    ]

    if config.epsilon is not None:
        epsilon = config.epsilon
    else:
        epsilon = min(
            PricerConfig.theoretical_epsilon(
                max(pricing_dimension, 2), config.impression_count, delta=config.delta
            ),
            config.epsilon_cap,
        )
    feature_norms = np.linalg.norm(online_matrix, axis=1)
    radius = 1.25 * max(float(np.linalg.norm(theta)), 1.0)

    return AppEnvironment(
        model=model,
        arrivals=arrivals,
        dimension=pricing_dimension,
        radius=radius,
        epsilon=epsilon,
        delta=config.delta,
        feature_norm_bound=float(np.max(feature_norms)) if feature_norms.size else 0.0,
        name="impression (logistic model, %s case)" % ("dense" if config.dense else "sparse"),
        metadata={
            "holdout_log_loss": holdout_loss,
            "nonzero_weights": int(support.size),
            "hashing_dimension": config.dimension,
            "empirical_ctr": online_log.click_rate(),
            "dense_fallback": dense_fallback,
        },
    )


def run_impression_experiment(
    config: ImpressionConfig,
    versions: Sequence[str] = ("pure version",),
    track_latency: bool = False,
) -> Dict[str, SimulationResult]:
    """Build the environment and simulate the requested algorithm versions."""
    environment = build_impression_environment(config)
    return run_versions(environment, versions=versions, track_latency=track_latency)
