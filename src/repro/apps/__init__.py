"""The paper's three application instances.

* :mod:`repro.apps.noisy_linear_query` — pricing noisy linear queries over a
  personal data market (linear market value model; Section V-A),
* :mod:`repro.apps.accommodation` — pricing accommodation rentals on a booking
  platform (log-linear model; Section V-B),
* :mod:`repro.apps.impression` — pricing ad impressions on a web publisher
  (logistic model; Section V-C).

Each module builds a market environment (model + arrival sequence) from its
substrate and runs the requested algorithm versions over it via
:mod:`repro.apps.common`.
"""

from repro.apps.common import (
    ALGORITHM_VERSIONS,
    AppEnvironment,
    build_pricer_for_version,
    run_versions,
)
from repro.apps.noisy_linear_query import (
    NoisyLinearQueryConfig,
    build_noisy_query_environment,
    run_noisy_query_experiment,
)
from repro.apps.accommodation import (
    AccommodationConfig,
    build_accommodation_environment,
    run_accommodation_experiment,
)
from repro.apps.impression import (
    ImpressionConfig,
    build_impression_environment,
    run_impression_experiment,
)

__all__ = [
    "ALGORITHM_VERSIONS",
    "AppEnvironment",
    "build_pricer_for_version",
    "run_versions",
    "NoisyLinearQueryConfig",
    "build_noisy_query_environment",
    "run_noisy_query_experiment",
    "AccommodationConfig",
    "build_accommodation_environment",
    "run_accommodation_experiment",
    "ImpressionConfig",
    "build_impression_environment",
    "run_impression_experiment",
]
