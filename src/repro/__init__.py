"""repro — reproduction of "Online Pricing with Reserve Price Constraint for Personal Data Markets".

The package implements the paper's contextual dynamic pricing mechanism with
reserve price constraint (ICDE 2020, Niu et al.) together with every substrate
its evaluation depends on: the personal data market model (owners, queries,
privacy compensation, feature construction), synthetic stand-ins for the three
evaluation datasets, the offline learning pipelines that fit market value
models, and an experiment harness that regenerates every table and figure.

Quickstart
----------
>>> import numpy as np
>>> from repro import LinearModel, PricerConfig, EllipsoidPricer
>>> theta = np.array([1.0, 2.0, 0.5])
>>> model = LinearModel(theta)
>>> pricer = EllipsoidPricer(PricerConfig(dimension=3, radius=4.0, epsilon=0.01))
>>> decision = pricer.propose(np.array([0.5, 0.5, 0.5]), reserve=1.0)
>>> decision.posted
True
"""

from repro.core import (
    ConstantMarkupPricer,
    Ellipsoid,
    EllipsoidKnowledge,
    EllipsoidPricer,
    FixedPricePricer,
    GaussianNoise,
    GeneralizedLinearMarketModel,
    IntervalKnowledge,
    KernelizedModel,
    KnowledgeSet,
    LinearModel,
    LogLinearModel,
    LogLogModel,
    LogisticModel,
    MarketSimulator,
    MarketValueModel,
    NoNoise,
    OneDimensionalPricer,
    OraclePricer,
    PolytopeKnowledge,
    PricerConfig,
    PricingDecision,
    RegretAccumulator,
    RiskAversePricer,
    SGDContextualPricer,
    SimulationResult,
    SubGaussianNoise,
    UniformNoise,
    make_pricer,
    regret_ratio,
    single_round_regret,
    single_round_regret_curve,
    uncertainty_buffer,
)
from repro.core.simulation import QueryArrival, compare_pricers

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "Ellipsoid",
    "KnowledgeSet",
    "EllipsoidKnowledge",
    "IntervalKnowledge",
    "PolytopeKnowledge",
    "MarketValueModel",
    "GeneralizedLinearMarketModel",
    "LinearModel",
    "LogLinearModel",
    "LogLogModel",
    "LogisticModel",
    "KernelizedModel",
    "SubGaussianNoise",
    "GaussianNoise",
    "UniformNoise",
    "NoNoise",
    "uncertainty_buffer",
    "EllipsoidPricer",
    "OneDimensionalPricer",
    "PricerConfig",
    "PricingDecision",
    "make_pricer",
    "RiskAversePricer",
    "OraclePricer",
    "FixedPricePricer",
    "ConstantMarkupPricer",
    "SGDContextualPricer",
    "single_round_regret",
    "single_round_regret_curve",
    "regret_ratio",
    "RegretAccumulator",
    "MarketSimulator",
    "SimulationResult",
    "QueryArrival",
    "compare_pricers",
]
