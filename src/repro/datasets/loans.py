"""Synthetic loan applications (the Section IV-B loan-pricing scenario).

The paper's extensions section argues the mechanism also applies to loan
applications: the financial institution plays the broker, the borrower plays
the consumer, the quoted interest rate plays the posted price, and the
institution's funding cost plays the reserve.  The interest rate is commonly
interpreted with a linear or log-log model of the applicant's attributes.

This generator produces loan applications whose (log) accepted interest rate
follows a log-log model of strictly positive applicant features — credit
score, annual income, loan amount, debt-to-income ratio, employment length —
so the :class:`~repro.core.models.LogLogModel` pipeline can be exercised end
to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.exceptions import DatasetError
from repro.utils.rng import RngLike, as_rng

#: Feature names, in the order used by :meth:`LoanApplication.feature_vector`.
LOAN_FEATURE_NAMES = (
    "credit_score",
    "annual_income_thousands",
    "loan_amount_thousands",
    "debt_to_income_percent",
    "employment_years",
)

#: Log-log coefficients of the latent interest-rate rule (elasticities).
_TRUE_ELASTICITIES = {
    "credit_score": -0.85,
    "annual_income_thousands": -0.10,
    "loan_amount_thousands": 0.08,
    "debt_to_income_percent": 0.22,
    "employment_years": -0.05,
}
_BASE_LOG_RATE = 7.0  # calibrates rates into a realistic single-digit range


@dataclass(frozen=True)
class LoanApplication:
    """One loan application with strictly positive numeric attributes."""

    application_id: int
    credit_score: float
    annual_income_thousands: float
    loan_amount_thousands: float
    debt_to_income_percent: float
    employment_years: float
    interest_rate_percent: float

    def feature_vector(self) -> np.ndarray:
        """The strictly positive raw features (input of the log-log model)."""
        return np.array(
            [
                self.credit_score,
                self.annual_income_thousands,
                self.loan_amount_thousands,
                self.debt_to_income_percent,
                self.employment_years,
            ]
        )


@dataclass
class LoanDataset:
    """A collection of synthetic loan applications."""

    applications: List[LoanApplication] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.applications)

    def __iter__(self):
        return iter(self.applications)

    def __getitem__(self, index: int) -> LoanApplication:
        return self.applications[index]

    def feature_matrix(self) -> np.ndarray:
        """All applications' raw feature vectors stacked into a matrix."""
        return np.array([application.feature_vector() for application in self.applications])

    def interest_rates(self) -> np.ndarray:
        """Accepted interest rates (percent)."""
        return np.array([a.interest_rate_percent for a in self.applications])


def true_elasticities() -> np.ndarray:
    """The latent log-log coefficients, ordered like :data:`LOAN_FEATURE_NAMES`."""
    return np.array([_TRUE_ELASTICITIES[name] for name in LOAN_FEATURE_NAMES])


def generate_loans(
    count: int = 5_000, rate_noise_sigma: float = 0.05, seed: RngLike = None
) -> LoanDataset:
    """Generate ``count`` synthetic loan applications.

    The log interest rate is log-log in the applicant attributes: better credit
    scores and incomes reduce the rate, larger amounts and debt ratios raise
    it, with small log-normal idiosyncratic noise.
    """
    if count < 1:
        raise DatasetError("count must be positive, got %d" % count)
    if rate_noise_sigma < 0:
        raise DatasetError("rate_noise_sigma must be non-negative")
    rng = as_rng(seed)
    elasticities = true_elasticities()

    applications: List[LoanApplication] = []
    for application_id in range(count):
        credit_score = float(np.clip(rng.normal(690, 60), 450, 850))
        annual_income = float(np.clip(rng.lognormal(np.log(65), 0.5), 15, 500))
        loan_amount = float(np.clip(rng.lognormal(np.log(15), 0.7), 1, 100))
        debt_to_income = float(np.clip(rng.normal(18, 8), 1, 60))
        employment_years = float(np.clip(rng.lognormal(np.log(5), 0.8), 0.5, 40))

        features = np.array(
            [credit_score, annual_income, loan_amount, debt_to_income, employment_years]
        )
        log_rate = (
            _BASE_LOG_RATE
            + float(np.log(features) @ elasticities)
            + float(rng.normal(0.0, rate_noise_sigma))
        )
        applications.append(
            LoanApplication(
                application_id=application_id,
                credit_score=credit_score,
                annual_income_thousands=annual_income,
                loan_amount_thousands=loan_amount,
                debt_to_income_percent=debt_to_income,
                employment_years=employment_years,
                interest_rate_percent=float(np.exp(log_rate)),
            )
        )
    return LoanDataset(applications=applications)
