"""Synthetic user × item rating data (MovieLens 20M stand-in).

The noisy-linear-query application only uses the rating data through the
per-owner records a linear query aggregates, so the stand-in needs to provide

* a population of users ("data owners") with heterogeneous activity levels,
* per-user numeric records derived from their ratings,
* integer ratings on the MovieLens 0.5–5.0 star scale.

Ratings are generated from a simple latent-factor model (user bias + item bias
+ low-rank interaction, clipped to the star scale), and the number of ratings
per user follows a heavy-tailed distribution, mirroring the long-tailed
activity profile of the real dataset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.exceptions import DatasetError
from repro.utils.rng import RngLike, as_rng


@dataclass
class RatingsDataset:
    """A synthetic ratings dataset.

    Attributes
    ----------
    user_ids / item_ids / ratings:
        Parallel arrays, one entry per rating event.
    user_count / item_count:
        Population sizes.
    """

    user_ids: np.ndarray
    item_ids: np.ndarray
    ratings: np.ndarray
    user_count: int
    item_count: int

    @property
    def rating_count(self) -> int:
        """Total number of rating events."""
        return int(self.ratings.shape[0])

    def ratings_per_user(self) -> np.ndarray:
        """Number of ratings each user contributed."""
        counts = np.bincount(self.user_ids, minlength=self.user_count)
        return counts.astype(int)

    def mean_rating_per_user(self, fill_value: float = 3.0) -> np.ndarray:
        """Each user's mean rating (``fill_value`` for users with no ratings)."""
        sums = np.bincount(self.user_ids, weights=self.ratings, minlength=self.user_count)
        counts = np.bincount(self.user_ids, minlength=self.user_count)
        means = np.full(self.user_count, float(fill_value))
        mask = counts > 0
        means[mask] = sums[mask] / counts[mask]
        return means

    def owner_records(self, kind: str = "mean_rating") -> np.ndarray:
        """Per-user numeric records used as the owners' private data.

        ``kind='mean_rating'`` uses each user's mean rating;
        ``kind='activity'`` uses the user's (log-scaled) rating count.
        """
        if kind == "mean_rating":
            return self.mean_rating_per_user()
        if kind == "activity":
            return np.log1p(self.ratings_per_user().astype(float))
        raise DatasetError("unknown owner record kind %r" % kind)


def generate_ratings(
    user_count: int = 1000,
    item_count: int = 200,
    mean_ratings_per_user: float = 20.0,
    latent_rank: int = 8,
    seed: RngLike = None,
) -> RatingsDataset:
    """Generate a synthetic ratings dataset.

    Parameters
    ----------
    user_count / item_count:
        Population sizes (the real MovieLens 20M has 138,493 users and 27,278
        movies; defaults are scaled down for laptop-scale simulation).
    mean_ratings_per_user:
        Mean of the heavy-tailed per-user activity distribution.
    latent_rank:
        Rank of the latent user/item interaction factors.
    seed:
        Random source.
    """
    if user_count < 1 or item_count < 1:
        raise DatasetError("user_count and item_count must be positive")
    if mean_ratings_per_user <= 0:
        raise DatasetError("mean_ratings_per_user must be positive")
    if latent_rank < 1:
        raise DatasetError("latent_rank must be positive")
    rng = as_rng(seed)

    # Heavy-tailed per-user activity: log-normal with the requested mean.
    sigma = 1.0
    mu = np.log(mean_ratings_per_user) - sigma**2 / 2.0
    activity = rng.lognormal(mean=mu, sigma=sigma, size=user_count)
    counts = np.maximum(1, np.minimum(item_count, np.round(activity))).astype(int)

    user_bias = rng.normal(0.0, 0.4, size=user_count)
    item_bias = rng.normal(0.0, 0.4, size=item_count)
    user_factors = rng.normal(0.0, 0.3, size=(user_count, latent_rank))
    item_factors = rng.normal(0.0, 0.3, size=(item_count, latent_rank))

    user_ids = np.repeat(np.arange(user_count), counts)
    item_ids = np.concatenate(
        [rng.choice(item_count, size=c, replace=False) for c in counts]
    )
    base = 3.5 + user_bias[user_ids] + item_bias[item_ids]
    interaction = np.sum(user_factors[user_ids] * item_factors[item_ids], axis=1)
    noise = rng.normal(0.0, 0.3, size=user_ids.shape[0])
    raw = base + interaction + noise
    # Clip to the 0.5–5.0 star scale and round to half stars like MovieLens.
    ratings = np.clip(np.round(raw * 2.0) / 2.0, 0.5, 5.0)

    return RatingsDataset(
        user_ids=user_ids.astype(int),
        item_ids=item_ids.astype(int),
        ratings=ratings.astype(float),
        user_count=int(user_count),
        item_count=int(item_count),
    )
