"""Synthetic mobile ad click log (Avazu stand-in).

The impression-pricing application learns a sparse logistic CTR model with
FTRL-Proximal over hashed one-hot features and then prices impressions by the
predicted CTR.  The stand-in generator produces categorical impression records
(site, app, device, banner position, connection type, hour bucket, ...) whose
click probability follows a *sparse* logistic model: only a few of the
categorical fields carry signal, so the learned weight vector is sparse just
like the paper reports (21–23 non-zero weights out of 128/1024 hashed slots).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from repro.exceptions import DatasetError
from repro.utils.rng import RngLike, as_rng

# Field vocabularies (value counts loosely modelled on the real Avazu fields).
FIELD_CARDINALITIES = {
    "banner_pos": 7,
    "site_category": 20,
    "app_category": 20,
    "device_type": 5,
    "device_conn_type": 4,
    "hour_bucket": 24,
    "site_id": 200,
    "app_id": 150,
    "device_model": 300,
}

# The fields that actually influence the click probability in the generator;
# everything else is noise, which is what produces sparsity in the learned model.
INFORMATIVE_FIELDS = ("banner_pos", "site_category", "device_conn_type", "hour_bucket")


@dataclass(frozen=True)
class AdImpression:
    """One ad impression: categorical field values plus the click label."""

    impression_id: int
    fields: Dict[str, int]
    clicked: bool

    def tokens(self) -> List[str]:
        """String tokens ``field=value`` used by the hashing-trick encoder."""
        return ["%s=%d" % (name, value) for name, value in sorted(self.fields.items())]


@dataclass
class AdClickDataset:
    """A collection of synthetic ad impressions."""

    impressions: List[AdImpression] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.impressions)

    def __iter__(self):
        return iter(self.impressions)

    def __getitem__(self, index: int) -> AdImpression:
        return self.impressions[index]

    def click_rate(self) -> float:
        """Empirical click-through rate of the log."""
        if not self.impressions:
            return 0.0
        return sum(1 for imp in self.impressions if imp.clicked) / len(self.impressions)

    def labels(self) -> np.ndarray:
        """Click labels as a 0/1 array."""
        return np.array([1.0 if imp.clicked else 0.0 for imp in self.impressions])


def generate_ad_clicks(
    count: int = 20000,
    base_ctr: float = 0.17,
    seed: RngLike = None,
) -> AdClickDataset:
    """Generate ``count`` synthetic ad impressions.

    Parameters
    ----------
    count:
        Number of impressions (the real Avazu log has 404M; scaled down).
    base_ctr:
        Approximate marginal click-through rate (Avazu's is ~0.17).
    seed:
        Random source.
    """
    if count < 1:
        raise DatasetError("count must be positive, got %d" % count)
    if not 0.0 < base_ctr < 1.0:
        raise DatasetError("base_ctr must lie strictly inside (0, 1)")
    rng = as_rng(seed)

    # Per-value logit contributions of the informative fields.
    contributions = {
        name: rng.normal(0.0, 0.8, size=FIELD_CARDINALITIES[name])
        for name in INFORMATIVE_FIELDS
    }
    intercept = float(np.log(base_ctr / (1.0 - base_ctr)))

    impressions: List[AdImpression] = []
    for impression_id in range(count):
        values = {
            name: int(rng.integers(0, cardinality))
            for name, cardinality in FIELD_CARDINALITIES.items()
        }
        logit = intercept + sum(
            float(contributions[name][values[name]]) for name in INFORMATIVE_FIELDS
        )
        probability = 1.0 / (1.0 + np.exp(-logit))
        clicked = bool(rng.random() < probability)
        impressions.append(
            AdImpression(impression_id=impression_id, fields=values, clicked=clicked)
        )
    return AdClickDataset(impressions=impressions)
