"""Synthetic stand-ins for the paper's three evaluation datasets.

The paper evaluates on MovieLens 20M, Airbnb listings in U.S. major cities,
and the Avazu mobile ad click dataset.  None of these is available offline, so
each is replaced by a synthetic generator that exercises exactly the same code
path (see DESIGN.md §4 for the substitution rationale):

* :mod:`repro.datasets.synthetic_ratings` — a user × item rating matrix with
  heterogeneous per-user activity (MovieLens stand-in),
* :mod:`repro.datasets.listings` — accommodation listings with categorical and
  numeric attributes and log-linear prices (Airbnb stand-in),
* :mod:`repro.datasets.ad_clicks` — a categorical ad impression log whose
  click probabilities follow a sparse logistic model (Avazu stand-in).
"""

from repro.datasets.synthetic_ratings import RatingsDataset, generate_ratings
from repro.datasets.listings import Listing, ListingsDataset, generate_listings
from repro.datasets.ad_clicks import AdImpression, AdClickDataset, generate_ad_clicks
from repro.datasets.loans import LoanApplication, LoanDataset, generate_loans

__all__ = [
    "RatingsDataset",
    "generate_ratings",
    "Listing",
    "ListingsDataset",
    "generate_listings",
    "AdImpression",
    "AdClickDataset",
    "generate_ad_clicks",
    "LoanApplication",
    "LoanDataset",
    "generate_loans",
]
