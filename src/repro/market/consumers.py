"""Data consumer behaviour.

A data consumer accepts a posted price iff it does not exceed her private
market value for the query (Section II-A).  The simulator usually derives the
market value from a :class:`~repro.core.models.MarketValueModel`, but explicit
consumer agents are useful for integration tests and for building custom
market environments with heterogeneous buyer behaviour.
"""

from __future__ import annotations

import abc
from typing import Callable, Optional

import numpy as np

from repro.utils.rng import RngLike, as_rng
from repro.utils.validation import ensure_finite_scalar


class DataConsumer(abc.ABC):
    """A buyer that either accepts or rejects a posted price for a query."""

    @abc.abstractmethod
    def valuation(self, features) -> float:
        """The consumer's (private) market value for a query with ``features``."""

    def accepts(self, features, price: float) -> bool:
        """Whether the consumer buys at ``price``."""
        price = ensure_finite_scalar(price, name="price")
        return price <= self.valuation(features)


class ThresholdConsumer(DataConsumer):
    """A consumer whose valuation is a fixed function of the query features.

    Parameters
    ----------
    value_function:
        Maps the query's raw feature vector to the consumer's market value.
    noise_sigma:
        Optional standard deviation of zero-mean Gaussian noise added to the
        valuation on every call (idiosyncratic per-round uncertainty).
    seed:
        Random source for the valuation noise.
    """

    def __init__(
        self,
        value_function: Callable[[np.ndarray], float],
        noise_sigma: float = 0.0,
        seed: RngLike = None,
    ) -> None:
        if noise_sigma < 0:
            raise ValueError("noise_sigma must be non-negative, got %g" % noise_sigma)
        self._value_function = value_function
        self.noise_sigma = float(noise_sigma)
        self._rng = as_rng(seed)

    def valuation(self, features) -> float:
        base = float(self._value_function(np.asarray(features, dtype=float)))
        if self.noise_sigma == 0.0:
            return base
        return base + float(self._rng.normal(0.0, self.noise_sigma))


class FixedValuationConsumer(DataConsumer):
    """A consumer with the same valuation for every query (test fixture)."""

    def __init__(self, valuation: float) -> None:
        self._valuation = ensure_finite_scalar(valuation, name="valuation")

    def valuation(self, features) -> float:  # noqa: ARG002 - features unused by design
        return self._valuation
