"""Personal data market substrate.

This package implements the system model of Section II-A of the paper: data
owners contribute personal data to a broker; data consumers arrive online with
customized noisy queries; the broker quantifies per-owner privacy leakage,
computes privacy compensations (whose total is the query's reserve price),
builds the query's feature vector from the compensation profile, and runs a
posted price mechanism.

Modules
-------
* :mod:`repro.market.owners` — data owners and their personal data records,
* :mod:`repro.market.queries` — noisy linear queries (analysis weights + noise level),
* :mod:`repro.market.privacy` — differential-privacy based leakage quantification,
* :mod:`repro.market.compensation` — tanh-based compensation contracts,
* :mod:`repro.market.features` — compensation-profile feature construction,
* :mod:`repro.market.consumers` — data consumer acceptance behaviour,
* :mod:`repro.market.broker` — the data broker tying everything together.
"""

from repro.market.owners import DataOwner, OwnerPopulation
from repro.market.queries import NoisyLinearQuery, QueryGenerator
from repro.market.privacy import laplace_privacy_leakage, LeakageQuantifier
from repro.market.compensation import CompensationContract, TanhCompensation, LinearCompensation
from repro.market.features import CompensationFeatureExtractor
from repro.market.consumers import DataConsumer, ThresholdConsumer
from repro.market.broker import DataBroker, TradeRecord

__all__ = [
    "DataOwner",
    "OwnerPopulation",
    "NoisyLinearQuery",
    "QueryGenerator",
    "laplace_privacy_leakage",
    "LeakageQuantifier",
    "CompensationContract",
    "TanhCompensation",
    "LinearCompensation",
    "CompensationFeatureExtractor",
    "DataConsumer",
    "ThresholdConsumer",
    "DataBroker",
    "TradeRecord",
]
