"""Feature construction from privacy compensation profiles (Section II-B).

The paper represents a query by the state of the privacy compensations it
induces across the data owners: the compensations are sorted, evenly divided
into ``n`` partitions, and the per-partition sums form the ``n``-dimensional
feature vector.  Two extreme cases follow naturally: ``n = 1`` recovers the
total privacy compensation and ``n = owner count`` keeps every individual
compensation as its own feature.  The feature vector is optionally rescaled to
unit L2 norm, which the paper's evaluation does (``S = 1``).

A PCA-based reduction is also available (see :mod:`repro.learning.pca`) for
scenarios where the aggregation pattern is not appropriate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.utils.validation import ensure_vector


@dataclass(frozen=True)
class FeatureExtraction:
    """Result of one feature extraction.

    Attributes
    ----------
    features:
        The (possibly normalised) feature vector handed to the pricer.
    total_compensation:
        The sum of all per-owner compensations — the query's reserve price
        before any normalisation.
    scale:
        The factor by which the raw aggregated features were divided during
        normalisation (1.0 when normalisation is disabled).
    """

    features: np.ndarray
    total_compensation: float
    scale: float

    @property
    def normalised_total(self) -> float:
        """Total compensation measured in the same scale as ``features``."""
        return float(np.sum(self.features))


class CompensationFeatureExtractor:
    """Sorted-partition aggregation of a compensation profile into ``n`` features.

    Parameters
    ----------
    dimension:
        Number of features ``n`` (partitions of the sorted compensation
        profile).
    normalise:
        When true (default, matching the paper's setup) the aggregated vector
        is rescaled to unit L2 norm.
    descending:
        Sort compensations in descending order before partitioning (the
        ordering only permutes features; descending keeps the largest
        compensations in the first feature, which is convenient to interpret).
    """

    def __init__(self, dimension: int, normalise: bool = True, descending: bool = True) -> None:
        if dimension < 1:
            raise ValueError("dimension must be at least 1, got %d" % dimension)
        self.dimension = int(dimension)
        self.normalise = bool(normalise)
        self.descending = bool(descending)

    def extract(self, compensations: Sequence[float]) -> FeatureExtraction:
        """Build the feature vector for one query's compensation profile."""
        compensations = ensure_vector(compensations, name="compensations")
        if np.any(compensations < 0):
            raise ValueError("compensations must be non-negative")
        total = float(np.sum(compensations))

        aggregated = self.aggregate(compensations)
        if self.normalise:
            # Factor out the peak before taking the norm: squaring the raw
            # entries under/overflows for extreme magnitudes (a denormal
            # compensation used to produce a "unit" vector with L2 norm
            # measurably above 1).
            peak = float(np.max(aggregated))
            if peak > 0.0:
                scaled = aggregated / peak
                unit_norm = float(np.linalg.norm(scaled))
                scale = peak * unit_norm
                features = scaled / unit_norm
            else:
                scale = 1.0
                features = aggregated
        else:
            scale = 1.0
            features = aggregated
        return FeatureExtraction(features=features, total_compensation=total, scale=scale)

    def aggregate(self, compensations: np.ndarray) -> np.ndarray:
        """Sort the compensations and sum them within ``dimension`` partitions."""
        ordered = np.sort(compensations)
        if self.descending:
            ordered = ordered[::-1]
        owner_count = ordered.shape[0]
        if self.dimension >= owner_count:
            # Fewer owners than features: pad with zeros (each owner its own feature).
            padded = np.zeros(self.dimension)
            padded[:owner_count] = ordered
            return padded
        boundaries = np.linspace(0, owner_count, self.dimension + 1).astype(int)
        sums = np.add.reduceat(ordered, boundaries[:-1])
        return sums.astype(float)

    def reserve_price(
        self, extraction: FeatureExtraction, use_normalised_scale: bool = True
    ) -> float:
        """The query's reserve price.

        The paper sets the reserve price to the total privacy compensation
        expressed in the same (normalised) scale as the feature vector, i.e.
        ``q_t = Σ_i x_{t,i}``; with ``use_normalised_scale=False`` the raw
        (unnormalised) total compensation is returned instead.
        """
        if use_normalised_scale:
            return extraction.normalised_total
        return extraction.total_compensation
