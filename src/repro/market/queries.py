"""Noisy linear queries over the owners' data.

A query in the paper comprises a concrete data analysis method and a tolerable
noise level (Section II-A).  For the noisy-linear-query application the
analysis is a weighted sum of the owners' records and the noise is Laplace
noise calibrated to the consumer's accuracy requirement — exactly the query
class of Li et al.'s pricing framework, which the paper adopts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence

import numpy as np

from repro.exceptions import DatasetError
from repro.utils.rng import RngLike, as_rng
from repro.utils.validation import ensure_positive, ensure_vector


@dataclass(frozen=True)
class NoisyLinearQuery:
    """A noisy linear query ``answer = w^T d + Laplace(noise_scale)``.

    Attributes
    ----------
    weights:
        Per-owner analysis weights ``w`` (the "data analysis method").
    noise_scale:
        Scale parameter of the Laplace noise added to the true answer (the
        "tolerable level of noise" customised by the consumer).
    query_id:
        Sequential identifier.
    """

    weights: np.ndarray
    noise_scale: float
    query_id: int = 0

    def __post_init__(self) -> None:
        weights = ensure_vector(self.weights, name="weights")
        object.__setattr__(self, "weights", weights)
        ensure_positive(self.noise_scale, name="noise_scale")

    @property
    def owner_count(self) -> int:
        """Number of owners the query touches."""
        return self.weights.shape[0]

    def true_answer(self, data: Sequence[float]) -> float:
        """The noiseless answer ``w^T d`` over the owners' records."""
        data = ensure_vector(data, dimension=self.owner_count, name="data")
        return float(self.weights @ data)

    def noisy_answer(self, data: Sequence[float], rng: RngLike = None) -> float:
        """The perturbed answer actually returned to the data consumer."""
        rng = as_rng(rng)
        return self.true_answer(data) + float(rng.laplace(0.0, self.noise_scale))


class QueryGenerator:
    """Generates random customised queries the way the paper's evaluation does.

    The per-owner weights are drawn either from a standard multivariate normal
    distribution or uniformly from ``[-1, 1]`` (chosen at random per query, to
    exercise adaptivity), and the Laplace noise scale is drawn from
    ``{10^k : |k| <= max_noise_exponent}`` — the paper's
    ``{10^k | k ∈ Z, |k| <= 4}`` grid.

    Parameters
    ----------
    owner_count:
        Number of data owners each query addresses.
    max_noise_exponent:
        Largest absolute exponent of the noise-scale grid.
    weight_styles:
        Subset of ``{"normal", "uniform"}`` to draw the analysis weights from.
    seed:
        Random source.
    """

    def __init__(
        self,
        owner_count: int,
        max_noise_exponent: int = 4,
        weight_styles: Sequence[str] = ("normal", "uniform"),
        seed: RngLike = None,
    ) -> None:
        if owner_count < 1:
            raise DatasetError("owner_count must be positive, got %d" % owner_count)
        if max_noise_exponent < 0:
            raise DatasetError("max_noise_exponent must be non-negative")
        for style in weight_styles:
            if style not in ("normal", "uniform"):
                raise DatasetError("unknown weight style %r" % style)
        if not weight_styles:
            raise DatasetError("weight_styles must not be empty")
        self.owner_count = int(owner_count)
        self.max_noise_exponent = int(max_noise_exponent)
        self.weight_styles = tuple(weight_styles)
        self.rng = as_rng(seed)
        self._next_id = 0

    def generate(self) -> NoisyLinearQuery:
        """Draw one random query."""
        style = self.weight_styles[int(self.rng.integers(0, len(self.weight_styles)))]
        if style == "normal":
            weights = self.rng.standard_normal(self.owner_count)
        else:
            weights = self.rng.uniform(-1.0, 1.0, size=self.owner_count)
        exponent = int(
            self.rng.integers(-self.max_noise_exponent, self.max_noise_exponent + 1)
        )
        query = NoisyLinearQuery(
            weights=weights, noise_scale=10.0**exponent, query_id=self._next_id
        )
        self._next_id += 1
        return query

    def stream(self, count: int) -> Iterator[NoisyLinearQuery]:
        """Yield ``count`` random queries."""
        if count < 0:
            raise DatasetError("count must be non-negative, got %d" % count)
        for _ in range(count):
            yield self.generate()
