"""Privacy compensation contracts.

The broker must adequately compensate each data owner for the privacy leakage
her data suffers when a query's noisy answer is sold.  Following Li et al.'s
"theory of pricing private data" — the mechanism the paper adopts for its
noisy-linear-query application — each owner holds a contract mapping leakage
``ε_i`` to money.  The paper uses the bounded *tanh* contract family, under
which an owner's compensation saturates at a personal cap as her leakage grows.
"""

from __future__ import annotations

import abc
import math

from repro.utils.validation import ensure_positive


class CompensationContract(abc.ABC):
    """Maps a non-negative privacy leakage to a non-negative compensation."""

    @abc.abstractmethod
    def compensation(self, leakage: float) -> float:
        """Compensation owed for ``leakage`` units of privacy loss."""

    def _check_leakage(self, leakage: float) -> float:
        leakage = float(leakage)
        if not math.isfinite(leakage) or leakage < 0:
            raise ValueError("privacy leakage must be finite and non-negative, got %r" % leakage)
        return leakage


class TanhCompensation(CompensationContract):
    """The tanh contract ``c(ε) = base_rate · tanh(sensitivity · ε)``.

    ``base_rate`` is the owner's personal cap (the most she can ever be owed);
    ``sensitivity`` controls how quickly small leakages approach the cap.  This
    is the contract family used for the MovieLens experiment in the paper.
    """

    def __init__(self, base_rate: float, sensitivity: float = 1.0) -> None:
        self.base_rate = ensure_positive(base_rate, name="base_rate", strict=False)
        self.sensitivity = ensure_positive(sensitivity, name="sensitivity")

    def compensation(self, leakage: float) -> float:
        leakage = self._check_leakage(leakage)
        return self.base_rate * math.tanh(self.sensitivity * leakage)

    def __repr__(self) -> str:  # pragma: no cover
        return "TanhCompensation(base_rate=%g, sensitivity=%g)" % (self.base_rate, self.sensitivity)


class LinearCompensation(CompensationContract):
    """The unbounded linear contract ``c(ε) = rate · ε``.

    Provided as the simplest alternative contract family; useful in tests and
    for sensitivity analyses of the feature construction.
    """

    def __init__(self, rate: float) -> None:
        self.rate = ensure_positive(rate, name="rate", strict=False)

    def compensation(self, leakage: float) -> float:
        return self.rate * self._check_leakage(leakage)

    def __repr__(self) -> str:  # pragma: no cover
        return "LinearCompensation(rate=%g)" % self.rate


class CappedLinearCompensation(CompensationContract):
    """A linear contract with a hard cap: ``c(ε) = min(rate · ε, cap)``."""

    def __init__(self, rate: float, cap: float) -> None:
        self.rate = ensure_positive(rate, name="rate", strict=False)
        self.cap = ensure_positive(cap, name="cap", strict=False)

    def compensation(self, leakage: float) -> float:
        return min(self.rate * self._check_leakage(leakage), self.cap)

    def __repr__(self) -> str:  # pragma: no cover
        return "CappedLinearCompensation(rate=%g, cap=%g)" % (self.rate, self.cap)
