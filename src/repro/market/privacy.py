"""Differential-privacy based quantification of per-owner privacy leakage.

The paper adopts the leakage quantification of Li et al.'s framework for
pricing private data: when a linear query with per-owner weights ``w`` is
answered with Laplace noise of scale ``b``, owner ``i`` suffers a differential
privacy leakage proportional to ``|w_i| / b`` — her record influences the
answer by at most ``|w_i| · Δ_i`` (where ``Δ_i`` bounds her record's range) and
the Laplace mechanism with scale ``b`` makes the answer ``(|w_i| Δ_i / b)``-
differentially private with respect to her data.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.market.queries import NoisyLinearQuery
from repro.utils.validation import ensure_positive, ensure_vector


def laplace_privacy_leakage(
    weights: Sequence[float],
    noise_scale: float,
    data_ranges: Optional[Sequence[float]] = None,
) -> np.ndarray:
    """Per-owner differential privacy leakage of a noisy linear query.

    Parameters
    ----------
    weights:
        Per-owner analysis weights ``w``.
    noise_scale:
        Laplace noise scale ``b`` of the returned answer.
    data_ranges:
        Optional per-owner data ranges ``Δ_i`` (defaults to 1 for every owner).

    Returns
    -------
    numpy.ndarray
        The leakage vector ``ε_i = |w_i| · Δ_i / b``.
    """
    weights = ensure_vector(weights, name="weights")
    ensure_positive(noise_scale, name="noise_scale")
    if data_ranges is None:
        ranges = np.ones_like(weights)
    else:
        ranges = ensure_vector(data_ranges, dimension=weights.shape[0], name="data_ranges")
        if np.any(ranges < 0):
            raise ValueError("data ranges must be non-negative")
    return np.abs(weights) * ranges / float(noise_scale)


class LeakageQuantifier:
    """Quantifies privacy leakage for queries over a fixed owner population.

    Parameters
    ----------
    data_ranges:
        Per-owner data ranges ``Δ_i``; defaults to 1.
    leakage_cap:
        Optional cap on the per-owner leakage.  Real systems clamp extreme
        leakages (a nearly noiseless query would otherwise produce unbounded
        epsilon values); the cap keeps compensations — and hence reserve
        prices — finite and comparable across queries.
    """

    def __init__(
        self,
        data_ranges: Optional[Sequence[float]] = None,
        leakage_cap: Optional[float] = 10.0,
    ) -> None:
        self.data_ranges = None if data_ranges is None else ensure_vector(data_ranges, name="data_ranges")
        if leakage_cap is not None:
            ensure_positive(leakage_cap, name="leakage_cap")
        self.leakage_cap = leakage_cap

    def leakages(self, query: NoisyLinearQuery) -> np.ndarray:
        """Per-owner leakage vector for ``query``."""
        ranges = self.data_ranges
        if ranges is not None and ranges.shape[0] != query.owner_count:
            raise ValueError(
                "data_ranges has %d entries but the query touches %d owners"
                % (ranges.shape[0], query.owner_count)
            )
        leakages = laplace_privacy_leakage(query.weights, query.noise_scale, ranges)
        if self.leakage_cap is not None:
            leakages = np.minimum(leakages, self.leakage_cap)
        return leakages
