"""Data owners and their personal data.

In the paper's system model (Fig. 2) the broker first collects personal data
— product ratings, electrical usages, health records, trajectories — from a
population of data owners.  For the noisy-linear-query application the data of
owner ``i`` is reduced to a numeric record ``d_i`` (e.g. the owner's rating of
a target movie), and a linear query aggregates the records with a weight
vector.

Each owner also holds a *compensation contract* describing how much money she
requires for a given amount of privacy leakage (see
:mod:`repro.market.compensation`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence

import numpy as np

from repro.exceptions import DatasetError
from repro.market.compensation import CompensationContract, TanhCompensation
from repro.utils.rng import RngLike, as_rng


@dataclass
class DataOwner:
    """One data owner: an identifier, a private record, and a contract.

    Attributes
    ----------
    owner_id:
        Stable identifier of the owner.
    data:
        The owner's private numeric record used by linear queries.
    contract:
        Maps the owner's privacy leakage under a query to the compensation she
        must be paid if the query's answer is sold.
    """

    owner_id: int
    data: float
    contract: CompensationContract

    def compensation_for(self, leakage: float) -> float:
        """Compensation owed to this owner for the given privacy leakage."""
        return self.contract.compensation(leakage)


class OwnerPopulation:
    """A collection of data owners with convenient vectorised access."""

    def __init__(self, owners: Sequence[DataOwner]) -> None:
        if not owners:
            raise DatasetError("an owner population must contain at least one owner")
        self.owners: List[DataOwner] = list(owners)

    def __len__(self) -> int:
        return len(self.owners)

    def __iter__(self) -> Iterator[DataOwner]:
        return iter(self.owners)

    def __getitem__(self, index: int) -> DataOwner:
        return self.owners[index]

    @property
    def data_vector(self) -> np.ndarray:
        """All owners' private records as a vector (one entry per owner)."""
        return np.array([owner.data for owner in self.owners], dtype=float)

    def compensations(self, leakages: Sequence[float]) -> np.ndarray:
        """Per-owner compensations for a vector of privacy leakages.

        When every owner holds a :class:`TanhCompensation` contract the
        computation is vectorised (the common case in the noisy-linear-query
        application, where it sits on the per-round hot path).
        """
        leakages = np.asarray(leakages, dtype=float)
        if leakages.shape != (len(self.owners),):
            raise DatasetError(
                "expected one leakage per owner (%d), got shape %s"
                % (len(self.owners), leakages.shape)
            )
        if np.any(leakages < 0) or not np.all(np.isfinite(leakages)):
            raise DatasetError("privacy leakages must be finite and non-negative")
        vectorised = self._tanh_contract_arrays()
        if vectorised is not None:
            base_rates, sensitivities = vectorised
            return base_rates * np.tanh(sensitivities * leakages)
        return np.array(
            [owner.compensation_for(float(leak)) for owner, leak in zip(self.owners, leakages)],
            dtype=float,
        )

    def _tanh_contract_arrays(self):
        """Cached (base_rate, sensitivity) arrays when all contracts are tanh."""
        cached = getattr(self, "_tanh_arrays_cache", None)
        if cached is not None:
            return cached if cached != "unsupported" else None
        if all(isinstance(owner.contract, TanhCompensation) for owner in self.owners):
            base_rates = np.array([owner.contract.base_rate for owner in self.owners], dtype=float)
            sensitivities = np.array(
                [owner.contract.sensitivity for owner in self.owners], dtype=float
            )
            self._tanh_arrays_cache = (base_rates, sensitivities)
            return self._tanh_arrays_cache
        self._tanh_arrays_cache = "unsupported"
        return None

    @classmethod
    def from_records(
        cls,
        records: Sequence[float],
        contracts: Optional[Sequence[CompensationContract]] = None,
        base_rates: Optional[Sequence[float]] = None,
        seed: RngLike = None,
    ) -> "OwnerPopulation":
        """Build a population from raw records.

        Parameters
        ----------
        records:
            One private numeric record per owner.
        contracts:
            Optional explicit contracts; when omitted, tanh contracts with
            heterogeneous base rates are generated.
        base_rates:
            Optional per-owner base rates for the generated tanh contracts.
        seed:
            Random source for generated base rates.
        """
        records = np.asarray(records, dtype=float)
        if records.ndim != 1 or records.size == 0:
            raise DatasetError("records must be a non-empty 1-D sequence")
        count = records.shape[0]
        if contracts is None:
            if base_rates is None:
                rng = as_rng(seed)
                # Heterogeneous willingness to sell privacy: log-normal rates.
                base_rates = rng.lognormal(mean=0.0, sigma=0.5, size=count)
            base_rates = np.asarray(base_rates, dtype=float)
            if base_rates.shape != (count,):
                raise DatasetError("base_rates must have one entry per owner")
            contracts = [TanhCompensation(base_rate=float(rate)) for rate in base_rates]
        if len(contracts) != count:
            raise DatasetError("contracts must have one entry per owner")
        owners = [
            DataOwner(owner_id=i, data=float(records[i]), contract=contracts[i])
            for i in range(count)
        ]
        return cls(owners)
