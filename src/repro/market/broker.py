"""The data broker: the seller side of the personal data market.

The broker ties the substrate together (Fig. 2 of the paper): given an owner
population and an incoming query it quantifies privacy leakages, computes the
per-owner compensations and the reserve price, extracts the query's feature
vector, asks its posted price mechanism for a price, and — if the consumer
accepts — returns the noisy answer, charges the consumer, and pays the owners.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.base import PostedPriceMechanism
from repro.market.consumers import DataConsumer
from repro.market.features import CompensationFeatureExtractor, FeatureExtraction
from repro.market.owners import OwnerPopulation
from repro.market.privacy import LeakageQuantifier
from repro.market.queries import NoisyLinearQuery
from repro.utils.rng import RngLike, as_rng


@dataclass
class TradeRecord:
    """Everything that happened while trading one query."""

    query_id: int
    features: np.ndarray
    reserve_price: float
    posted_price: Optional[float]
    sold: bool
    revenue: float
    total_compensation_paid: float
    noisy_answer: Optional[float]
    consumer_valuation: float

    @property
    def profit(self) -> float:
        """Broker profit for this trade (revenue minus compensations paid)."""
        return self.revenue - self.total_compensation_paid


class DataBroker:
    """A data broker running a posted price mechanism over an owner population.

    Parameters
    ----------
    owners:
        The data owner population whose data is being traded.
    pricer:
        Any :class:`~repro.core.base.PostedPriceMechanism` (typically the
        ellipsoid pricer of Algorithm 1/2).
    feature_extractor:
        Builds the query feature vectors from compensation profiles.
    quantifier:
        Privacy leakage quantification; defaults to the Laplace-mechanism
        quantifier with leakage cap 10.
    seed:
        Random source used to perturb query answers.
    """

    def __init__(
        self,
        owners: OwnerPopulation,
        pricer: PostedPriceMechanism,
        feature_extractor: CompensationFeatureExtractor,
        quantifier: Optional[LeakageQuantifier] = None,
        seed: RngLike = None,
    ) -> None:
        self.owners = owners
        self.pricer = pricer
        self.feature_extractor = feature_extractor
        self.quantifier = quantifier if quantifier is not None else LeakageQuantifier()
        self.rng = as_rng(seed)
        self.trades: List[TradeRecord] = []

    # ------------------------------------------------------------------ #

    def prepare_query(self, query: NoisyLinearQuery) -> tuple:
        """Compute compensations, reserve price, and features for ``query``.

        Returns ``(compensations, extraction, reserve_price)``; exposed
        separately so experiment code can pre-compute arrival sequences.
        """
        leakages = self.quantifier.leakages(query)
        compensations = self.owners.compensations(leakages)
        extraction = self.feature_extractor.extract(compensations)
        reserve = self.feature_extractor.reserve_price(extraction)
        return compensations, extraction, reserve

    def trade(self, query: NoisyLinearQuery, consumer: DataConsumer) -> TradeRecord:
        """Run one full round of data trading against ``consumer``."""
        compensations, extraction, reserve = self.prepare_query(query)
        decision = self.pricer.propose(extraction.features, reserve=reserve)

        valuation = consumer.valuation(extraction.features)
        if decision.skipped or decision.price is None:
            posted_price = None
            sold = False
        else:
            posted_price = float(decision.price)
            sold = posted_price <= valuation

        self.pricer.update(decision, accepted=sold)

        if sold:
            revenue = posted_price
            # Compensations are paid in the same normalised scale as the
            # posted price so broker profit is well-defined.
            compensation_paid = reserve
            noisy_answer = query.noisy_answer(self.owners.data_vector, rng=self.rng)
        else:
            revenue = 0.0
            compensation_paid = 0.0
            noisy_answer = None

        record = TradeRecord(
            query_id=query.query_id,
            features=extraction.features,
            reserve_price=reserve,
            posted_price=posted_price,
            sold=sold,
            revenue=revenue,
            total_compensation_paid=compensation_paid,
            noisy_answer=noisy_answer,
            consumer_valuation=valuation,
        )
        self.trades.append(record)
        return record

    # ------------------------------------------------------------------ #

    @property
    def cumulative_revenue(self) -> float:
        """Total revenue charged from consumers so far."""
        return float(sum(trade.revenue for trade in self.trades))

    @property
    def cumulative_profit(self) -> float:
        """Total profit (revenue minus compensations paid) so far."""
        return float(sum(trade.profit for trade in self.trades))

    @property
    def sale_count(self) -> int:
        """Number of queries sold so far."""
        return sum(1 for trade in self.trades if trade.sold)
