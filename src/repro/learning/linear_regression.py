"""Ordinary least squares linear regression (with optional ridge regularisation).

Used by the accommodation-rental application to learn the log-linear market
value model: the paper regresses logarithmic lodging prices on the encoded
listing features and uses the learned coefficients as ``θ*``.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.exceptions import LearningError
from repro.utils.rng import RngLike, as_rng
from repro.utils.validation import ensure_vector


class LinearRegression:
    """Least squares regression ``y ≈ X θ (+ intercept)``.

    Parameters
    ----------
    fit_intercept:
        Whether to fit an intercept term (kept separate from ``coefficients``).
    ridge:
        Optional L2 regularisation strength; 0 gives plain OLS.  A small ridge
        keeps the solution well-defined when encoded categorical features are
        collinear.
    """

    def __init__(self, fit_intercept: bool = True, ridge: float = 0.0) -> None:
        if ridge < 0:
            raise LearningError("ridge must be non-negative, got %g" % ridge)
        self.fit_intercept = bool(fit_intercept)
        self.ridge = float(ridge)
        self.coefficients: Optional[np.ndarray] = None
        self.intercept: float = 0.0

    def fit(self, features, targets) -> "LinearRegression":
        """Fit the model; returns ``self`` for chaining."""
        features = np.asarray(features, dtype=float)
        targets = ensure_vector(targets, name="targets")
        if features.ndim != 2:
            raise LearningError("features must be a 2-D array, got shape %s" % (features.shape,))
        if features.shape[0] != targets.shape[0]:
            raise LearningError(
                "features and targets disagree on the sample count: %d vs %d"
                % (features.shape[0], targets.shape[0])
            )
        if features.shape[0] == 0:
            raise LearningError("cannot fit a regression on zero samples")

        design = features
        if self.fit_intercept:
            design = np.hstack([np.ones((features.shape[0], 1)), features])

        if self.ridge > 0.0:
            gram = design.T @ design + self.ridge * np.eye(design.shape[1])
            solution = np.linalg.solve(gram, design.T @ targets)
        else:
            solution, _, _, _ = np.linalg.lstsq(design, targets, rcond=None)

        if self.fit_intercept:
            self.intercept = float(solution[0])
            self.coefficients = solution[1:]
        else:
            self.intercept = 0.0
            self.coefficients = solution
        return self

    def predict(self, features) -> np.ndarray:
        """Predict targets for ``features``."""
        if self.coefficients is None:
            raise LearningError("the model must be fitted before predicting")
        features = np.asarray(features, dtype=float)
        if features.ndim == 1:
            features = features.reshape(1, -1)
        if features.shape[1] != self.coefficients.shape[0]:
            raise LearningError(
                "feature dimension mismatch: expected %d, got %d"
                % (self.coefficients.shape[0], features.shape[1])
            )
        return features @ self.coefficients + self.intercept

    def weight_vector(self, include_intercept: bool = True) -> np.ndarray:
        """The learned weights as one vector (intercept first when included).

        The online pricer treats the intercept as an extra always-one feature,
        so ``include_intercept=True`` returns the ``θ*`` used by the
        accommodation application.
        """
        if self.coefficients is None:
            raise LearningError("the model must be fitted before reading its weights")
        if include_intercept and self.fit_intercept:
            return np.concatenate([[self.intercept], self.coefficients])
        return self.coefficients.copy()


def train_test_split(
    features, targets, test_fraction: float = 0.2, seed: RngLike = None
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Random train/test split (the paper holds out 20% of the Airbnb records)."""
    features = np.asarray(features, dtype=float)
    targets = ensure_vector(targets, name="targets")
    if features.shape[0] != targets.shape[0]:
        raise LearningError("features and targets disagree on the sample count")
    if not 0.0 < test_fraction < 1.0:
        raise LearningError("test_fraction must lie strictly inside (0, 1)")
    rng = as_rng(seed)
    count = features.shape[0]
    permutation = rng.permutation(count)
    test_count = max(1, int(round(test_fraction * count)))
    test_idx = permutation[:test_count]
    train_idx = permutation[test_count:]
    if train_idx.size == 0:
        raise LearningError("test_fraction leaves no training samples")
    return features[train_idx], features[test_idx], targets[train_idx], targets[test_idx]
