"""FTRL-Proximal logistic regression.

The impression application learns the CTR weight vector with Follow The
(Proximally) Regularized Leader — the online logistic regression algorithm
with per-coordinate learning rates and L1/L2 regularisation deployed at
Google's ad platform (McMahan et al., KDD 2013), which the paper uses to fit
``θ*`` on the Avazu data.  The L1 term is what produces the sparse weight
vectors the paper reports (21–23 non-zero coordinates).

Update rule (per example with features ``x`` and label ``y``):

* prediction ``p = sigmoid(x^T w)`` where each coordinate of ``w`` is derived
  lazily from the accumulated ``z`` and ``n`` statistics,
* gradient ``g = (p - y) x``,
* per-coordinate ``σ_i = (sqrt(n_i + g_i²) - sqrt(n_i)) / α``,
* ``z_i ← z_i + g_i - σ_i w_i`` and ``n_i ← n_i + g_i²``.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from repro.exceptions import LearningError
from repro.utils.validation import ensure_vector


def _sigmoid(z: float) -> float:
    if z >= 0:
        return 1.0 / (1.0 + math.exp(-z))
    expz = math.exp(z)
    return expz / (1.0 + expz)


class FTRLProximal:
    """FTRL-Proximal optimiser for L1/L2-regularised logistic regression.

    Parameters
    ----------
    dimension:
        Feature dimension (the hashing modulus ``n``).
    alpha / beta:
        Per-coordinate learning rate parameters.
    l1 / l2:
        Regularisation strengths; ``l1 > 0`` induces exact zeros in the
        weight vector.
    """

    def __init__(
        self,
        dimension: int,
        alpha: float = 0.1,
        beta: float = 1.0,
        l1: float = 1.0,
        l2: float = 1.0,
    ) -> None:
        if dimension < 1:
            raise LearningError("dimension must be positive, got %d" % dimension)
        for name, value in (("alpha", alpha), ("beta", beta)):
            if value <= 0:
                raise LearningError("%s must be positive, got %g" % (name, value))
        for name, value in (("l1", l1), ("l2", l2)):
            if value < 0:
                raise LearningError("%s must be non-negative, got %g" % (name, value))
        self.dimension = int(dimension)
        self.alpha = float(alpha)
        self.beta = float(beta)
        self.l1 = float(l1)
        self.l2 = float(l2)
        self._z = np.zeros(self.dimension)
        self._n = np.zeros(self.dimension)

    # ------------------------------------------------------------------ #

    @property
    def weights(self) -> np.ndarray:
        """The current (sparse) weight vector implied by the z/n statistics."""
        weights = np.zeros(self.dimension)
        active = np.abs(self._z) > self.l1
        if not np.any(active):
            return weights
        signs = np.sign(self._z[active])
        learning = (self.beta + np.sqrt(self._n[active])) / self.alpha + self.l2
        weights[active] = -(self._z[active] - signs * self.l1) / learning
        return weights

    def sparsity(self) -> int:
        """Number of non-zero coordinates in the current weight vector."""
        return int(np.count_nonzero(self.weights))

    def predict_proba(self, features) -> float:
        """Predicted click probability for one feature vector."""
        features = ensure_vector(features, dimension=self.dimension, name="features")
        return _sigmoid(float(features @ self.weights))

    def predict_proba_batch(self, matrix) -> np.ndarray:
        """Predicted click probabilities for a batch of feature vectors."""
        matrix = np.asarray(matrix, dtype=float)
        if matrix.ndim != 2 or matrix.shape[1] != self.dimension:
            raise LearningError(
                "matrix must have shape (*, %d), got %s" % (self.dimension, matrix.shape)
            )
        logits = matrix @ self.weights
        return np.array([_sigmoid(float(z)) for z in logits])

    # ------------------------------------------------------------------ #

    def update(self, features, label: float) -> float:
        """Process one example; returns the pre-update predicted probability."""
        features = ensure_vector(features, dimension=self.dimension, name="features")
        if label not in (0.0, 1.0):
            raise LearningError("label must be 0 or 1, got %r" % label)
        weights = self.weights
        probability = _sigmoid(float(features @ weights))
        gradient = (probability - float(label)) * features
        sigma = (np.sqrt(self._n + gradient**2) - np.sqrt(self._n)) / self.alpha
        self._z += gradient - sigma * weights
        self._n += gradient**2
        return probability

    def fit(self, matrix, labels, epochs: int = 1) -> "FTRLProximal":
        """Run ``epochs`` passes of online updates over a dataset."""
        matrix = np.asarray(matrix, dtype=float)
        labels = ensure_vector(labels, name="labels")
        if matrix.ndim != 2 or matrix.shape[0] != labels.shape[0]:
            raise LearningError("matrix and labels disagree on the sample count")
        if epochs < 1:
            raise LearningError("epochs must be at least 1, got %d" % epochs)
        for _ in range(epochs):
            for row, label in zip(matrix, labels):
                self.update(row, float(label))
        return self
