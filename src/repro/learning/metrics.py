"""Evaluation metrics for the offline learning pipelines."""

from __future__ import annotations

import numpy as np

from repro.utils.validation import ensure_vector


def mean_squared_error(y_true, y_pred) -> float:
    """Mean squared error between two equal-length vectors."""
    y_true = ensure_vector(y_true, name="y_true")
    y_pred = ensure_vector(y_pred, dimension=y_true.shape[0], name="y_pred")
    return float(np.mean((y_true - y_pred) ** 2))


def r2_score(y_true, y_pred) -> float:
    """Coefficient of determination R²."""
    y_true = ensure_vector(y_true, name="y_true")
    y_pred = ensure_vector(y_pred, dimension=y_true.shape[0], name="y_pred")
    total = float(np.sum((y_true - np.mean(y_true)) ** 2))
    residual = float(np.sum((y_true - y_pred) ** 2))
    if total == 0.0:
        return 0.0 if residual > 0 else 1.0
    return 1.0 - residual / total


def log_loss(y_true, y_prob, eps: float = 1e-12) -> float:
    """Binary cross-entropy (logistic loss).

    Probabilities are clipped to ``[eps, 1 - eps]`` for numerical stability.
    """
    y_true = ensure_vector(y_true, name="y_true")
    y_prob = ensure_vector(y_prob, dimension=y_true.shape[0], name="y_prob")
    if np.any((y_true != 0.0) & (y_true != 1.0)):
        raise ValueError("y_true must contain only 0/1 labels")
    clipped = np.clip(y_prob, eps, 1.0 - eps)
    return float(-np.mean(y_true * np.log(clipped) + (1.0 - y_true) * np.log(1.0 - clipped)))


def accuracy(y_true, y_prob, threshold: float = 0.5) -> float:
    """Classification accuracy of thresholded probabilities."""
    y_true = ensure_vector(y_true, name="y_true")
    y_prob = ensure_vector(y_prob, dimension=y_true.shape[0], name="y_prob")
    predictions = (y_prob >= threshold).astype(float)
    return float(np.mean(predictions == y_true))
