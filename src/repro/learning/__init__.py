"""Offline learning substrate.

The paper's evaluation fits market value models offline before replaying
records through the online pricer:

* the Airbnb application encodes categorical listing attributes (plus
  interaction features) and fits a log-linear model by ordinary least squares,
* the Avazu application encodes impressions with the one-hot hashing trick and
  fits a sparse logistic model with FTRL-Proximal,
* Section II-B also mentions PCA as an alternative dimensionality reduction
  for compensation profiles.

This package implements those pipelines from scratch on top of numpy.
"""

from repro.learning.encoding import CategoricalEncoder, InteractionExpander, ListingFeaturizer
from repro.learning.hashing import HashingVectorizer
from repro.learning.linear_regression import LinearRegression, train_test_split
from repro.learning.ftrl import FTRLProximal
from repro.learning.pca import PCA
from repro.learning.metrics import log_loss, mean_squared_error, r2_score

__all__ = [
    "CategoricalEncoder",
    "InteractionExpander",
    "ListingFeaturizer",
    "HashingVectorizer",
    "LinearRegression",
    "train_test_split",
    "FTRLProximal",
    "PCA",
    "mean_squared_error",
    "log_loss",
    "r2_score",
]
