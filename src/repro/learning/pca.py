"""Principal component analysis.

Section II-B of the paper mentions PCA as an alternative to sorted-partition
aggregation for reducing high-dimensional privacy compensation profiles to a
manageable feature dimension.  This is a small from-scratch implementation on
top of the singular value decomposition.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import LearningError


class PCA:
    """Principal component analysis via SVD of the centred data matrix.

    Parameters
    ----------
    n_components:
        Number of principal components to keep.
    """

    def __init__(self, n_components: int) -> None:
        if n_components < 1:
            raise LearningError("n_components must be positive, got %d" % n_components)
        self.n_components = int(n_components)
        self.mean_: Optional[np.ndarray] = None
        self.components_: Optional[np.ndarray] = None
        self.explained_variance_: Optional[np.ndarray] = None

    def fit(self, matrix) -> "PCA":
        """Fit the principal components of ``matrix`` (rows are samples)."""
        matrix = np.asarray(matrix, dtype=float)
        if matrix.ndim != 2:
            raise LearningError("matrix must be 2-D, got shape %s" % (matrix.shape,))
        samples, features = matrix.shape
        if self.n_components > min(samples, features):
            raise LearningError(
                "n_components=%d exceeds min(samples, features)=%d"
                % (self.n_components, min(samples, features))
            )
        self.mean_ = matrix.mean(axis=0)
        centred = matrix - self.mean_
        _, singular_values, vt = np.linalg.svd(centred, full_matrices=False)
        self.components_ = vt[: self.n_components]
        denom = max(samples - 1, 1)
        self.explained_variance_ = (singular_values[: self.n_components] ** 2) / denom
        return self

    def transform(self, matrix) -> np.ndarray:
        """Project samples onto the fitted components."""
        if self.components_ is None or self.mean_ is None:
            raise LearningError("PCA must be fitted before transforming")
        matrix = np.asarray(matrix, dtype=float)
        single = matrix.ndim == 1
        if single:
            matrix = matrix.reshape(1, -1)
        if matrix.shape[1] != self.mean_.shape[0]:
            raise LearningError(
                "feature dimension mismatch: expected %d, got %d"
                % (self.mean_.shape[0], matrix.shape[1])
            )
        projected = (matrix - self.mean_) @ self.components_.T
        return projected[0] if single else projected

    def fit_transform(self, matrix) -> np.ndarray:
        """Fit and project in one pass."""
        return self.fit(matrix).transform(matrix)

    def inverse_transform(self, projected) -> np.ndarray:
        """Map projections back to the original feature space."""
        if self.components_ is None or self.mean_ is None:
            raise LearningError("PCA must be fitted before inverse transforming")
        projected = np.asarray(projected, dtype=float)
        single = projected.ndim == 1
        if single:
            projected = projected.reshape(1, -1)
        reconstructed = projected @ self.components_ + self.mean_
        return reconstructed[0] if single else reconstructed

    def explained_variance_ratio(self, matrix) -> np.ndarray:
        """Fraction of the total variance explained by each kept component."""
        if self.explained_variance_ is None:
            raise LearningError("PCA must be fitted before reading variance ratios")
        matrix = np.asarray(matrix, dtype=float)
        total = float(np.sum(np.var(matrix, axis=0, ddof=1)))
        if total == 0.0:
            return np.zeros_like(self.explained_variance_)
        return self.explained_variance_ / total
