"""One-hot encoding with the hashing trick.

The impression application maps each categorical ``field=value`` token of an
ad impression to a slot ``hash(token) mod n`` of an ``n``-dimensional feature
vector, exactly as in the paper (``n`` — the modulus — is 128 or 1024 in the
evaluation).  The hash is a deterministic FNV-1a so feature vectors are stable
across processes and test runs (Python's builtin ``hash`` is salted).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

import numpy as np

from repro.exceptions import LearningError

_FNV_OFFSET_BASIS = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_FNV_MASK = 0xFFFFFFFFFFFFFFFF


def fnv1a_hash(token: str) -> int:
    """64-bit FNV-1a hash of a string token (deterministic across processes)."""
    value = _FNV_OFFSET_BASIS
    for byte in token.encode("utf-8"):
        value ^= byte
        value = (value * _FNV_PRIME) & _FNV_MASK
    return value


class HashingVectorizer:
    """Hashes string tokens into a fixed-width one-hot (or counts) vector.

    Parameters
    ----------
    dimension:
        Number of hash slots ``n`` (the modulus).
    binary:
        When true (default) a slot is set to 1 when any token falls into it;
        otherwise slots count colliding tokens.
    normalise:
        Optionally rescale each vector to unit L2 norm, which keeps the
        feature norm bound ``S`` of the regret analysis equal to 1.
    """

    def __init__(self, dimension: int, binary: bool = True, normalise: bool = False) -> None:
        if dimension < 1:
            raise LearningError("dimension must be positive, got %d" % dimension)
        self.dimension = int(dimension)
        self.binary = bool(binary)
        self.normalise = bool(normalise)

    def slot(self, token: str) -> int:
        """The hash slot a token falls into."""
        return fnv1a_hash(token) % self.dimension

    def transform_tokens(self, tokens: Iterable[str]) -> np.ndarray:
        """Vectorise one example given its string tokens."""
        vector = np.zeros(self.dimension, dtype=float)
        for token in tokens:
            index = self.slot(token)
            if self.binary:
                vector[index] = 1.0
            else:
                vector[index] += 1.0
        if self.normalise:
            norm = float(np.linalg.norm(vector))
            if norm > 0:
                vector = vector / norm
        return vector

    def transform(self, examples: Sequence[Iterable[str]]) -> np.ndarray:
        """Vectorise a batch of examples (one token iterable per example)."""
        rows: List[np.ndarray] = [self.transform_tokens(tokens) for tokens in examples]
        if not rows:
            return np.zeros((0, self.dimension))
        return np.vstack(rows)
