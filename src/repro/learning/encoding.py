"""Categorical encoding and interaction features for the listings pipeline.

The paper preprocesses the Airbnb records with pandas "categoricals" (integer
codes per category, with missing values handled) and adds interaction features
to reach a 55-dimensional feature vector.  pandas is not available offline, so
this module implements the equivalent encoders directly:

* :class:`CategoricalEncoder` — maps string categories to integer codes
  (unknown/missing values get code ``-1``, like pandas categoricals),
* :class:`InteractionExpander` — appends pairwise products of selected
  numeric columns,
* :class:`ListingFeaturizer` — the full listings pipeline producing a
  fixed-width numeric feature matrix (default 55 columns, matching the paper's
  ``n = 55``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.datasets.listings import Listing, ListingsDataset
from repro.exceptions import LearningError


class CategoricalEncoder:
    """Maps category values of one field to integer codes.

    Codes are assigned in first-seen order during :meth:`fit`; unseen values
    encode to ``-1`` (the pandas convention for missing categories).
    """

    def __init__(self) -> None:
        self._codes: Dict[str, int] = {}

    def fit(self, values: Iterable[str]) -> "CategoricalEncoder":
        """Learn the category → code mapping."""
        for value in values:
            key = self._normalise(value)
            if key is not None and key not in self._codes:
                self._codes[key] = len(self._codes)
        return self

    def transform(self, values: Iterable[str]) -> np.ndarray:
        """Encode values (unknown or missing values become ``-1``)."""
        encoded = []
        for value in values:
            key = self._normalise(value)
            encoded.append(self._codes.get(key, -1) if key is not None else -1)
        return np.array(encoded, dtype=float)

    def fit_transform(self, values: Sequence[str]) -> np.ndarray:
        """Fit and encode in one pass."""
        return self.fit(values).transform(values)

    @property
    def categories(self) -> List[str]:
        """Known categories in code order."""
        return sorted(self._codes, key=self._codes.get)

    @property
    def cardinality(self) -> int:
        """Number of known categories."""
        return len(self._codes)

    @staticmethod
    def _normalise(value) -> Optional[str]:
        if value is None:
            return None
        text = str(value)
        if text == "" or text.lower() == "nan":
            return None
        return text


class InteractionExpander:
    """Appends pairwise products of selected columns to a feature matrix."""

    def __init__(self, column_pairs: Sequence[Tuple[int, int]]) -> None:
        self.column_pairs = [(int(a), int(b)) for a, b in column_pairs]

    def transform(self, matrix: np.ndarray) -> np.ndarray:
        """Return ``matrix`` with one extra column per configured pair."""
        matrix = np.asarray(matrix, dtype=float)
        if matrix.ndim != 2:
            raise LearningError("matrix must be 2-D, got shape %s" % (matrix.shape,))
        extras = []
        for left, right in self.column_pairs:
            if left >= matrix.shape[1] or right >= matrix.shape[1]:
                raise LearningError(
                    "interaction pair (%d, %d) out of range for %d columns"
                    % (left, right, matrix.shape[1])
                )
            extras.append(matrix[:, left] * matrix[:, right])
        if not extras:
            return matrix
        return np.hstack([matrix, np.column_stack(extras)])


@dataclass
class ListingFeaturizer:
    """Turns :class:`~repro.datasets.listings.Listing` records into feature rows.

    The produced matrix has, per listing: an always-one intercept column, the
    categorical codes, the numeric attributes, and the amenity indicator
    columns — 55 columns in total with the default configuration, the paper's
    ``n``.  If ``target_dimension`` exceeds that base width, pairwise
    interaction features over the low-magnitude (binary / code) columns are
    appended to fill the remaining columns.

    By default every non-intercept column is min-max scaled to ``[0, 1]``
    (``scaling='minmax'``).  This mirrors common preprocessing of the Kaggle
    listings data and has two properties the online pricer's convergence rate
    relies on: the feature norm stays small (the bound ``S`` of the regret
    analysis), and near-constant indicator columns stay near-constant, so the
    listing feature matrix is effectively low-rank.  ``scaling='standardise'``
    z-scores the columns instead (flat spectrum — markedly slower online
    convergence, kept for ablations), and ``scaling='none'`` keeps raw values.

    Attributes
    ----------
    target_dimension:
        Total number of output features (55 by default).
    scaling:
        ``'minmax'`` (default), ``'standardise'``, or ``'none'``.
    include_amenities:
        Whether to include the amenity indicator columns.
    """

    target_dimension: int = 55
    scaling: str = "minmax"
    include_amenities: bool = True

    CATEGORICAL_FIELDS = ("city", "room_type", "property_type", "cancellation_policy", "bed_type")
    NUMERIC_FIELDS = (
        "accommodates",
        "bedrooms",
        "bathrooms",
        "beds",
        "review_score",
        "number_of_reviews",
        "host_response_rate",
        "instant_bookable",
        "cleaning_fee",
        "occupancy_rate",
    )

    def __post_init__(self) -> None:
        if self.scaling not in ("minmax", "standardise", "none"):
            raise LearningError(
                "scaling must be 'minmax', 'standardise', or 'none', got %r" % self.scaling
            )
        if self.target_dimension < self._base_width():
            raise LearningError(
                "target_dimension must be at least %d, got %d"
                % (self._base_width(), self.target_dimension)
            )
        self._encoders: Dict[str, CategoricalEncoder] = {}
        self._column_shift: Optional[np.ndarray] = None
        self._column_scale: Optional[np.ndarray] = None
        self._interaction_pairs: List[Tuple[int, int]] = []

    def _base_width(self) -> int:
        from repro.datasets.listings import AMENITY_NAMES

        width = 1 + len(self.CATEGORICAL_FIELDS) + len(self.NUMERIC_FIELDS)
        if self.include_amenities:
            width += len(AMENITY_NAMES)
        return width

    # ------------------------------------------------------------------ #

    def fit(self, dataset: ListingsDataset) -> "ListingFeaturizer":
        """Learn categorical codes, interaction pairs, and standardisation stats."""
        if len(dataset) == 0:
            raise LearningError("cannot fit a featurizer on an empty dataset")
        for field_name in self.CATEGORICAL_FIELDS:
            encoder = CategoricalEncoder()
            encoder.fit(listing.categorical_values()[field_name] for listing in dataset)
            self._encoders[field_name] = encoder
        self._interaction_pairs = self._choose_interaction_pairs()
        raw = self._assemble(dataset)
        if self.scaling == "standardise":
            shift = raw.mean(axis=0)
            scale = raw.std(axis=0)
        elif self.scaling == "minmax":
            shift = raw.min(axis=0)
            scale = raw.max(axis=0) - raw.min(axis=0)
        else:
            shift = np.zeros(raw.shape[1])
            scale = np.ones(raw.shape[1])
        shift[0] = 0.0  # leave the intercept column untouched
        scale[0] = 1.0
        scale[scale == 0.0] = 1.0
        self._column_shift = shift
        self._column_scale = scale
        return self

    def transform(self, dataset: ListingsDataset) -> np.ndarray:
        """Encode a dataset into the fitted feature space."""
        if not self._encoders:
            raise LearningError("the featurizer must be fitted before transforming")
        raw = self._assemble(dataset)
        if self._column_shift is not None:
            raw = (raw - self._column_shift) / self._column_scale
        return raw

    def fit_transform(self, dataset: ListingsDataset) -> np.ndarray:
        """Fit and transform in one pass."""
        return self.fit(dataset).transform(dataset)

    @property
    def dimension(self) -> int:
        """Width of the produced feature rows."""
        return self.target_dimension

    # ------------------------------------------------------------------ #

    def _base_matrix(self, dataset: ListingsDataset) -> np.ndarray:
        columns = [np.ones(len(dataset))]
        for field_name in self.CATEGORICAL_FIELDS:
            encoder = self._encoders[field_name]
            columns.append(
                encoder.transform(l.categorical_values()[field_name] for l in dataset)
            )
        for field_name in self.NUMERIC_FIELDS:
            columns.append(
                np.array([l.numeric_values()[field_name] for l in dataset], dtype=float)
            )
        if self.include_amenities:
            from repro.datasets.listings import AMENITY_NAMES

            for name in AMENITY_NAMES:
                columns.append(
                    np.array([l.amenity_values()[name] for l in dataset], dtype=float)
                )
        return np.column_stack(columns)

    def _choose_interaction_pairs(self) -> List[Tuple[int, int]]:
        base_width = self._base_width()
        needed = self.target_dimension - base_width
        if needed <= 0:
            return []
        pairs: List[Tuple[int, int]] = []
        # Interactions are taken over the categorical-code columns (small
        # magnitudes) so the added columns do not dominate the feature norm.
        code_columns = range(1, 1 + len(self.CATEGORICAL_FIELDS))
        for left in code_columns:
            for right in code_columns:
                if right < left:
                    continue
                pairs.append((left, right))
                if len(pairs) >= needed:
                    return pairs
        # Fall back to pairs over all non-intercept base columns if more are needed.
        for left in range(1, base_width):
            for right in range(left, base_width):
                if (left, right) in pairs:
                    continue
                pairs.append((left, right))
                if len(pairs) >= needed:
                    return pairs
        return pairs[:needed]

    def _assemble(self, dataset: ListingsDataset) -> np.ndarray:
        base = self._base_matrix(dataset)
        expander = InteractionExpander(self._interaction_pairs)
        matrix = expander.transform(base)
        if matrix.shape[1] != self.target_dimension:
            raise LearningError(
                "assembled %d features but target_dimension is %d"
                % (matrix.shape[1], self.target_dimension)
            )
        return matrix
