"""Exception types used across the :mod:`repro` package."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class DimensionMismatchError(ReproError):
    """A vector or matrix does not have the expected dimension."""


class NotPositiveDefiniteError(ReproError):
    """An ellipsoid shape matrix is not (numerically) positive definite."""


class InvalidCutError(ReproError):
    """A requested ellipsoid cut has a position parameter outside [-1/n, 1]."""


class InvalidPriceError(ReproError):
    """A posted or reserve price is invalid (negative, NaN, or infinite)."""


class ModelSpecificationError(ReproError):
    """A market value model was configured inconsistently."""


class SimulationError(ReproError):
    """The online market simulation was driven into an inconsistent state."""


class DatasetError(ReproError):
    """A synthetic dataset generator received invalid parameters."""


class LearningError(ReproError):
    """An offline learning routine (OLS, FTRL, PCA, ...) failed."""


class ServingError(ReproError):
    """The online quote-serving subsystem was driven into an invalid state.

    Raised for protocol violations such as feedback for an unknown or
    already-settled quote id, or a feedback event routed to a session that
    was never served a quote.
    """
