"""Exception types used across the :mod:`repro` package."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class DimensionMismatchError(ReproError):
    """A vector or matrix does not have the expected dimension."""


class NotPositiveDefiniteError(ReproError):
    """An ellipsoid shape matrix is not (numerically) positive definite."""


class InvalidCutError(ReproError):
    """A requested ellipsoid cut has a position parameter outside [-1/n, 1]."""


class InvalidPriceError(ReproError):
    """A posted or reserve price is invalid (negative, NaN, or infinite)."""


class ModelSpecificationError(ReproError):
    """A market value model was configured inconsistently."""


class SimulationError(ReproError):
    """The online market simulation was driven into an inconsistent state."""


class DatasetError(ReproError):
    """A synthetic dataset generator received invalid parameters."""


class LearningError(ReproError):
    """An offline learning routine (OLS, FTRL, PCA, ...) failed."""


class ServingError(ReproError):
    """The online quote-serving subsystem was driven into an invalid state.

    Raised for protocol violations such as feedback for an unknown or
    already-settled quote id, or a feedback event routed to a session that
    was never served a quote.

    Drain failures carry structured accounting so callers can react
    programmatically instead of parsing the message:

    Attributes
    ----------
    key:
        The session key whose pricer (or factory) raised, when known.
    lost_quote_ids:
        Quote ids that will **never** be served — the failing group's
        unserved requests (or a synchronous caller's cancelled quote).
    requeued_quote_ids:
        Quote ids pushed back to the front of the queue; the next drain
        serves them and their responses surface through ``poll``/``flush``.
    response:
        A :class:`~repro.serving.requests.QuoteResponse` the failing drain
        *did* produce for the synchronous caller (its session group was
        served before another group failed) — handed over on the error so
        it is never stranded in the outbox.

    The attributes survive pickling, so a shard worker's drain failure
    reaches the routing parent with its accounting intact.
    """

    def __init__(
        self,
        message: str = "",
        key=None,
        lost_quote_ids=None,
        requeued_quote_ids=None,
        response=None,
    ) -> None:
        super().__init__(message)
        self.key = key
        self.lost_quote_ids = list(lost_quote_ids) if lost_quote_ids else []
        self.requeued_quote_ids = list(requeued_quote_ids) if requeued_quote_ids else []
        self.response = response

    def __reduce__(self):
        return (
            _rebuild_serving_error,
            (
                type(self),
                self.args[0] if self.args else "",
                self.key,
                self.lost_quote_ids,
                self.requeued_quote_ids,
                self.response,
            ),
        )


class BackpressureError(ServingError):
    """A serving-frontend admission bound rejected the request.

    Raised (client-side) or sent as an ``error`` frame with
    ``code: "backpressure"`` (server-side) when the frontend's waiter map is
    full or a connection exceeded its outstanding-request budget.  The
    request was **not** enqueued — nothing was lost and nothing will be
    served; the caller may retry after draining some of its outstanding
    quotes.
    """


class RebalanceError(ServingError):
    """An online session migration (live reshard) failed or timed out.

    Raised by :meth:`~repro.serving.sharding.ShardedRegistry.rehome_session`
    and :mod:`repro.serving.rebalance` when a session cannot be quiesced
    within its deadline, a moved snapshot fails verification, a routing
    commit finds a key parked on the wrong shard, or a shard involved in a
    move is dead.  Inherits :class:`ServingError`'s structured accounting:
    quotes parked for the moving session that could not be replayed appear
    in ``lost_quote_ids`` (and survive pickling across the worker pipe).
    """


class ReshardingError(ReproError):
    """A snapshot-migration between shard counts failed or was inconsistent.

    Raised by :mod:`repro.serving.resharding` when a snapshot directory
    layout is unrecognisable, a session snapshot carries no identity, a
    session sits on a shard its key does not hash to (wrong declared source
    shard count), or a migrated checkpoint fails exact-state verification.
    """


def _rebuild_serving_error(cls, message, key, lost, requeued, response):
    """Unpickle helper preserving :class:`ServingError`'s class and fields."""
    return cls(
        message,
        key=key,
        lost_quote_ids=lost,
        requeued_quote_ids=requeued,
        response=response,
    )
