"""Command-line interface: ``python -m repro <experiment> [options]``.

Provides quick access to the experiment harness without writing any code:

.. code-block:: console

   python -m repro fig4 --dimensions 1 20 --rounds 2000
   python -m repro fig5a --dimension 40 --rounds 5000
   python -m repro fig5b --listings 5000
   python -m repro fig5c --impressions 5000 --dimensions 128
   python -m repro table1 --dimensions 1 20 40
   python -m repro overhead
   python -m repro lemma8 --rounds 2000
   python -m repro cold-start --dimension 40
   python -m repro noise-robustness
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments.adversarial import run_adversarial_example
from repro.experiments.cold_start import run_cold_start
from repro.experiments.fig4 import run_fig4
from repro.experiments.fig5 import run_fig5a, run_fig5b, run_fig5c
from repro.experiments.noise_robustness import format_noise_robustness, run_noise_robustness
from repro.experiments.overhead import format_overhead, run_overhead
from repro.experiments.table1 import format_table1, run_table1


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the tables and figures of the personal-data-market pricing paper.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    fig4 = subparsers.add_parser("fig4", help="cumulative regret of the four algorithm versions")
    fig4.add_argument("--dimensions", type=int, nargs="+", default=[1, 20])
    fig4.add_argument("--rounds", type=int, default=4000)
    fig4.add_argument("--owners", type=int, default=300)
    fig4.add_argument("--seed", type=int, default=7)

    fig5a = subparsers.add_parser("fig5a", help="regret ratios, noisy linear query")
    fig5a.add_argument("--dimension", type=int, default=40)
    fig5a.add_argument("--rounds", type=int, default=6000)
    fig5a.add_argument("--owners", type=int, default=300)
    fig5a.add_argument("--seed", type=int, default=11)

    fig5b = subparsers.add_parser("fig5b", help="regret ratios, accommodation rental")
    fig5b.add_argument("--listings", type=int, default=8000)
    fig5b.add_argument("--seed", type=int, default=13)

    fig5c = subparsers.add_parser("fig5c", help="regret ratios, impression pricing")
    fig5c.add_argument("--impressions", type=int, default=8000)
    fig5c.add_argument("--dimensions", type=int, nargs="+", default=[128])
    fig5c.add_argument("--seed", type=int, default=17)

    table1 = subparsers.add_parser("table1", help="per-round statistics (version with reserve)")
    table1.add_argument("--dimensions", type=int, nargs="+", default=[1, 20, 40])
    table1.add_argument("--rounds", type=int, default=4000)
    table1.add_argument("--owners", type=int, default=300)
    table1.add_argument("--seed", type=int, default=7)

    overhead = subparsers.add_parser("overhead", help="online latency and memory overhead")
    overhead.add_argument("--rounds", type=int, default=1000)
    overhead.add_argument("--polytope", action="store_true", help="include the polytope ablation")

    lemma8 = subparsers.add_parser("lemma8", help="conservative-price-cut adversarial example")
    lemma8.add_argument("--rounds", type=int, default=2000)

    cold = subparsers.add_parser("cold-start", help="reserve price cold-start mitigation")
    cold.add_argument("--dimension", type=int, default=40)
    cold.add_argument("--rounds", type=int, default=4000)
    cold.add_argument("--window", type=int, default=200)

    noise = subparsers.add_parser("noise-robustness", help="uncertainty buffer ablation")
    noise.add_argument("--rounds", type=int, default=4000)
    noise.add_argument("--no-buffer", action="store_true", help="run without the δ buffer")

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)

    if args.command == "fig4":
        results = run_fig4(
            dimensions=tuple(args.dimensions),
            rounds=args.rounds,
            owner_count=args.owners,
            seed=args.seed,
        )
        for result in results.values():
            print(result.format())
            print()
    elif args.command == "fig5a":
        result = run_fig5a(
            dimension=args.dimension, rounds=args.rounds, owner_count=args.owners, seed=args.seed
        )
        print(result.format())
    elif args.command == "fig5b":
        print(run_fig5b(listing_count=args.listings, seed=args.seed).format())
    elif args.command == "fig5c":
        print(
            run_fig5c(
                impression_count=args.impressions,
                training_count=args.impressions,
                dimensions=tuple(args.dimensions),
                seed=args.seed,
            ).format()
        )
    elif args.command == "table1":
        rows = run_table1(
            dimensions=tuple(args.dimensions),
            rounds=args.rounds,
            owner_count=args.owners,
            seed=args.seed,
        )
        print(format_table1(rows))
    elif args.command == "overhead":
        reports = run_overhead(
            noisy_query_rounds=args.rounds,
            listing_count=args.rounds,
            impression_count=args.rounds,
            include_polytope_ablation=args.polytope,
        )
        print(format_overhead(reports))
    elif args.command == "lemma8":
        for result in run_adversarial_example(rounds=args.rounds).values():
            print(result.format())
    elif args.command == "cold-start":
        print(run_cold_start(dimension=args.dimension, rounds=args.rounds, window=args.window).format())
    elif args.command == "noise-robustness":
        results = run_noise_robustness(use_buffer=not args.no_buffer, rounds=args.rounds)
        print(format_noise_robustness(results))
    else:  # pragma: no cover - argparse enforces the choices
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
