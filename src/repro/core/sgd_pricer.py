"""Stochastic-gradient contextual pricing baseline.

The related-work section of the paper discusses the stochastic gradient
descent approach of Amin, Rostamizadeh and Syed ("Repeated contextual auctions
with strategic buyers", NIPS 2014) as the first contextual posted-price
learner: it maintains a point estimate of the weight vector, posts (roughly)
the estimated value, and nudges the estimate up after an acceptance and down
after a rejection.  Its regret is `O(T^{2/3})` and it needs i.i.d. feature
vectors, both of which the ellipsoid mechanism improves upon — which is
exactly why it makes a useful learning baseline for the experiment harness.

This implementation keeps the spirit of that algorithm while fitting the
repository's posted-price interface:

* the estimate ``θ̂_t`` is updated by ``±η_t · x_t`` depending on the feedback
  (the sign of the surrogate gradient), with ``η_t = learning_rate / sqrt(t)``,
* the posted price is ``max(reserve, x_t^T θ̂_t - margin_t)`` where the margin
  ``margin_t = margin / t^{1/4}`` trades off exploration undershoot against
  lost revenue,
* the estimate is projected back onto the ball of radius ``radius`` so it
  remains comparable to the ellipsoid pricer's knowledge set.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from repro.core.base import PostedPriceMechanism, PricingDecision
from repro.utils.validation import ensure_finite_scalar, ensure_positive, ensure_vector

_NEGATIVE_INFINITY = float("-inf")


class SGDContextualPricer(PostedPriceMechanism):
    """Gradient-based contextual posted-price baseline (Amin et al. style).

    Parameters
    ----------
    dimension:
        Feature dimension ``n``.
    radius:
        Radius of the ball the estimate is projected onto (the analogue of the
        ellipsoid pricer's ``R``).
    learning_rate:
        Base step size; the per-round step is ``learning_rate / sqrt(t)``.
    margin:
        Base undershoot below the estimated value; the per-round margin is
        ``margin / t^{1/4}``.
    use_reserve:
        Whether the reserve price constraint is enforced.
    """

    def __init__(
        self,
        dimension: int,
        radius: float,
        learning_rate: float = 1.0,
        margin: float = 0.5,
        use_reserve: bool = True,
    ) -> None:
        super().__init__()
        if dimension < 1:
            raise ValueError("dimension must be positive, got %d" % dimension)
        ensure_positive(radius, name="radius")
        ensure_positive(learning_rate, name="learning_rate")
        ensure_positive(margin, name="margin", strict=False)
        self.dimension = int(dimension)
        self.radius = float(radius)
        self.learning_rate = float(learning_rate)
        self.margin = float(margin)
        self.use_reserve = bool(use_reserve)
        self.estimate = np.zeros(self.dimension)
        self.name = "SGD baseline" + ("" if use_reserve else " (no reserve)")

    # ------------------------------------------------------------------ #

    def propose(self, features, reserve: Optional[float] = None) -> PricingDecision:
        features = ensure_vector(features, dimension=self.dimension, name="features")
        round_index = self._next_round()
        step = round_index + 1
        estimated_value = float(features @ self.estimate)
        margin = self.margin / step**0.25
        price = estimated_value - margin
        effective_reserve = self._effective_reserve(reserve)
        price = max(price, effective_reserve)
        return PricingDecision(
            features=features,
            reserve=reserve if self.use_reserve else None,
            lower_bound=estimated_value - margin,
            upper_bound=estimated_value + margin,
            price=price,
            exploratory=True,
            skipped=False,
            round_index=round_index,
            metadata={"estimated_value": estimated_value, "margin": margin},
        )

    def update(self, decision: PricingDecision, accepted: bool) -> None:
        if decision.skipped or decision.price is None:
            return
        step = decision.round_index + 1
        learning_rate = self.learning_rate / math.sqrt(step)
        direction = 1.0 if accepted else -1.0
        self.estimate = self.estimate + direction * learning_rate * decision.features
        norm = float(np.linalg.norm(self.estimate))
        if norm > self.radius:
            self.estimate = self.estimate * (self.radius / norm)

    # ------------------------------------------------------------------ #
    # Columnar engine fast path
    # ------------------------------------------------------------------ #

    def run_batch(self, model, materialized, transcript, backend=None) -> bool:
        # The SGD step is already vectorised per round; backends are a no-op.
        """Whole-horizon run for the weakly-stateful SGD pricer.

        The price depends on the running estimate, which depends on feedback,
        so the time loop itself cannot be collapsed — but the per-round
        schedules (margin ``margin / t^{1/4}`` and step size
        ``learning_rate / sqrt(t)``) are precomputed up front and the loop body
        is reduced to the exact arithmetic of propose/update (one dot product,
        one rank-one estimate update, one projection), with no decision-object
        allocation or input re-validation.
        """
        features = materialized.mapped_features
        if features.shape[1] != self.dimension:
            return False  # let the generic loop raise the usual dimension error
        if not np.all(np.isfinite(features)):
            return False
        link_reserves = materialized.link_reserves
        market_values = materialized.market_values
        identity_link = getattr(model, "link_is_identity", False)
        link = model.link
        link_prices = transcript.link_prices
        posted_prices = transcript.posted_prices
        sold_column = transcript.sold
        exploratory_column = transcript.exploratory
        rounds = features.shape[0]
        start = self._round_index
        # Same scalar expressions as propose/update, hoisted out of the loop.
        margins = [self.margin / (start + t + 1) ** 0.25 for t in range(rounds)]
        rates = [self.learning_rate / math.sqrt(start + t + 1) for t in range(rounds)]
        use_reserve = self.use_reserve
        radius = self.radius
        isnan = math.isnan
        estimate = self.estimate
        for index in range(rounds):
            x = features[index]
            estimated_value = float(x @ estimate)
            price = estimated_value - margins[index]
            if use_reserve:
                reserve = link_reserves[index]
                if not isnan(reserve):
                    price = max(price, reserve)
            posted = price if identity_link else link(float(price))
            accepted = posted <= market_values[index]
            link_prices[index] = price
            posted_prices[index] = posted
            sold_column[index] = accepted
            exploratory_column[index] = True
            direction = 1.0 if accepted else -1.0
            estimate = estimate + direction * rates[index] * x
            norm = float(np.linalg.norm(estimate))
            if norm > radius:
                estimate = estimate * (radius / norm)
        self.estimate = estimate
        self.advance_rounds(rounds)
        return True

    # ------------------------------------------------------------------ #

    def state_arrays(self) -> Tuple[np.ndarray, ...]:
        return (self.estimate,)

    def _extra_state(self) -> dict:
        return {"estimate": self.estimate.copy()}

    def _load_extra_state(self, state: dict) -> None:
        estimate = np.asarray(state["estimate"], dtype=float)
        if estimate.shape != (self.dimension,):
            raise ValueError(
                "estimate state has shape %s, expected (%d,)"
                % (estimate.shape, self.dimension)
            )
        self.estimate = estimate.copy()

    def _effective_reserve(self, reserve: Optional[float]) -> float:
        if not self.use_reserve or reserve is None:
            return _NEGATIVE_INFINITY
        return ensure_finite_scalar(reserve, name="reserve")

    def __repr__(self) -> str:  # pragma: no cover
        return "SGDContextualPricer(dimension=%d, radius=%g)" % (self.dimension, self.radius)
