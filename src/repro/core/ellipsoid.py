"""Ellipsoid geometry.

An ellipsoid is represented as in Definition 1 of the paper:

.. math::

   E = \\{ \\theta \\in \\mathbb{R}^n \\mid (\\theta - c)^T A^{-1} (\\theta - c) \\le 1 \\}

where ``c`` is the center and ``A`` is a symmetric positive definite *shape*
matrix.  The broker's knowledge about the unknown weight vector ``θ*`` is kept
as such an ellipsoid; all pricing decisions only need the support values of the
ellipsoid along the query's feature direction, which cost one matrix–vector
product each (this is the efficiency argument of Section III-C1).
"""

from __future__ import annotations

import math
from typing import Iterable, Optional, Tuple

import numpy as np

from repro.exceptions import DimensionMismatchError, NotPositiveDefiniteError
from repro.utils.rng import RngLike, as_rng
from repro.utils.validation import ensure_square_matrix, ensure_vector

# Tolerance used when checking positive definiteness and membership.
_PD_TOLERANCE = 1e-10
_MEMBERSHIP_TOLERANCE = 1e-8

# Smallest direction gain ``x^T A x`` treated as a usable support width.  A
# denormal positive gain passes a plain ``> 0`` check but overflows
# ``1 / sqrt(gain)`` downstream, emitting garbage or NaN cut parameters — the
# same denormal class of bug fixed in ``market/features.py``.  Anything below
# the smallest normal double (including exact zero and NaN) is degenerate.
_DEGENERATE_GAIN = float(np.finfo(float).tiny)


def unit_ball_volume(dimension: int) -> float:
    """Volume of the unit ball in ``dimension`` dimensions (the constant V_n)."""
    if dimension <= 0:
        raise ValueError("dimension must be positive, got %d" % dimension)
    return math.pi ** (dimension / 2.0) / math.gamma(dimension / 2.0 + 1.0)


class Ellipsoid:
    """An ellipsoid ``{θ : (θ - c)^T A^{-1} (θ - c) <= 1}``.

    Parameters
    ----------
    center:
        The center ``c`` (length-``n`` vector).
    shape:
        The shape matrix ``A`` (symmetric positive definite ``n x n``).
    validate:
        When true (default) the shape matrix is checked for symmetry and
        positive definiteness.
    """

    def __init__(self, center, shape, validate: bool = True) -> None:
        self.center = ensure_vector(center, name="center")
        self.shape = ensure_square_matrix(shape, dimension=self.center.shape[0], name="shape")
        # Keep the stored matrix exactly symmetric; repeated rank-one updates
        # otherwise accumulate asymmetry that breaks eigenvalue routines.
        self.shape = 0.5 * (self.shape + self.shape.T)
        if validate:
            self._check_positive_definite()

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #

    @classmethod
    def ball(cls, dimension: int, radius: float, center=None) -> "Ellipsoid":
        """A ball of the given ``radius``; the paper's initial knowledge set ``E_1``."""
        if radius <= 0:
            raise ValueError("radius must be positive, got %g" % radius)
        if center is None:
            center = np.zeros(dimension)
        return cls(center, (radius**2) * np.eye(dimension))

    @classmethod
    def enclosing_box(cls, lower, upper) -> "Ellipsoid":
        """Ball centered at the origin enclosing the box ``[lower, upper]``.

        Mirrors the paper's initialization: given the box knowledge set
        ``K_1 = {θ : l_i <= θ_i <= u_i}``, the initial ellipsoid is a ball with
        radius ``R = sqrt(Σ_i max(l_i², u_i²))``.
        """
        lower = ensure_vector(lower, name="lower")
        upper = ensure_vector(upper, dimension=lower.shape[0], name="upper")
        if np.any(upper < lower):
            raise ValueError("upper bounds must not be below lower bounds")
        radius = math.sqrt(float(np.sum(np.maximum(lower**2, upper**2))))
        if radius == 0.0:
            raise ValueError("box must have at least one non-zero corner")
        return cls.ball(lower.shape[0], radius)

    def copy(self) -> "Ellipsoid":
        """An independent copy of this ellipsoid."""
        return Ellipsoid(self.center.copy(), self.shape.copy(), validate=False)

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #

    @property
    def dimension(self) -> int:
        """Ambient dimension ``n``."""
        return self.center.shape[0]

    def _check_positive_definite(self) -> None:
        try:
            eigenvalues = np.linalg.eigvalsh(self.shape)
        except np.linalg.LinAlgError as exc:  # pragma: no cover - numpy internal failure
            raise NotPositiveDefiniteError("eigenvalue computation failed") from exc
        if np.min(eigenvalues) <= _PD_TOLERANCE * max(1.0, float(np.max(np.abs(eigenvalues)))):
            raise NotPositiveDefiniteError(
                "shape matrix is not positive definite (min eigenvalue %g)"
                % float(np.min(eigenvalues))
            )

    def eigenvalues(self) -> np.ndarray:
        """Eigenvalues of the shape matrix, sorted in descending order."""
        return np.sort(np.linalg.eigvalsh(self.shape))[::-1]

    def smallest_eigenvalue(self) -> float:
        """Smallest eigenvalue of the shape matrix (γ_n(A) in the paper)."""
        return float(np.min(np.linalg.eigvalsh(self.shape)))

    def largest_eigenvalue(self) -> float:
        """Largest eigenvalue of the shape matrix (γ_1(A) in the paper)."""
        return float(np.max(np.linalg.eigvalsh(self.shape)))

    def axis_widths(self) -> np.ndarray:
        """Full widths ``2 sqrt(γ_i(A))`` of the ellipsoid axes, descending."""
        return 2.0 * np.sqrt(self.eigenvalues())

    def volume(self) -> float:
        """Volume ``V_n sqrt(Π_i γ_i(A))`` (Equation (3) of the paper)."""
        eigenvalues = np.linalg.eigvalsh(self.shape)
        return unit_ball_volume(self.dimension) * float(np.sqrt(np.prod(np.maximum(eigenvalues, 0.0))))

    def log_volume(self) -> float:
        """Natural log of the volume; numerically preferable for large ``n``."""
        eigenvalues = np.maximum(np.linalg.eigvalsh(self.shape), np.finfo(float).tiny)
        return math.log(unit_ball_volume(self.dimension)) + 0.5 * float(np.sum(np.log(eigenvalues)))

    # ------------------------------------------------------------------ #
    # Membership and support
    # ------------------------------------------------------------------ #

    def mahalanobis(self, point) -> float:
        """The quadratic form ``(θ - c)^T A^{-1} (θ - c)`` at ``point``."""
        point = ensure_vector(point, dimension=self.dimension, name="point")
        diff = point - self.center
        solved = np.linalg.solve(self.shape, diff)
        return float(diff @ solved)

    def contains(self, point, tolerance: float = _MEMBERSHIP_TOLERANCE) -> bool:
        """Whether ``point`` belongs to the ellipsoid (up to ``tolerance``)."""
        return self.mahalanobis(point) <= 1.0 + tolerance

    def direction_gain(self, direction) -> float:
        """The scalar ``x^T A x`` for a direction ``x`` (must be non-negative)."""
        direction = ensure_vector(direction, dimension=self.dimension, name="direction")
        return float(direction @ self.shape @ direction)

    def boundary_vector(self, direction) -> np.ndarray:
        """The vector ``b = A x / sqrt(x^T A x)`` used in Algorithms 1 and 2."""
        direction = ensure_vector(direction, dimension=self.dimension, name="direction")
        gain = self.direction_gain(direction)
        if not gain >= _DEGENERATE_GAIN:
            raise ValueError(
                "direction must have a non-degenerate support width (x^T A x = %g)" % gain
            )
        return (self.shape @ direction) / math.sqrt(gain)

    def support_interval(self, direction) -> Tuple[float, float]:
        """Minimum and maximum of ``x^T θ`` over the ellipsoid.

        These are the paper's lower and upper bounds on the market value,
        ``p̲_t = x^T (c - b)`` and ``p̄_t = x^T (c + b)``.
        """
        direction = ensure_vector(direction, dimension=self.dimension, name="direction")
        gain = self.direction_gain(direction)
        if not gain >= _DEGENERATE_GAIN:
            # Numerical noise can produce a tiny negative value for a PSD
            # matrix, and a zero/denormal direction a degenerate width; both
            # collapse to an exactly-zero support width.
            gain = 0.0
        half_width = math.sqrt(gain)
        middle = float(direction @ self.center)
        return middle - half_width, middle + half_width

    def width_along(self, direction) -> float:
        """Width ``p̄_t - p̲_t = 2 sqrt(x^T A x)`` along ``direction``."""
        lower, upper = self.support_interval(direction)
        return upper - lower

    # ------------------------------------------------------------------ #
    # Sampling (used by tests and the polytope comparison)
    # ------------------------------------------------------------------ #

    def sample(self, count: int, seed: RngLike = None, boundary: bool = False) -> np.ndarray:
        """Sample ``count`` points uniformly from the ellipsoid (or its boundary).

        Uses the fact that every ellipsoid is the image of the unit ball under
        the affine map ``θ = c + A^{1/2} u``.
        """
        if count < 0:
            raise ValueError("count must be non-negative, got %d" % count)
        rng = as_rng(seed)
        directions = rng.standard_normal((count, self.dimension))
        norms = np.linalg.norm(directions, axis=1, keepdims=True)
        norms[norms == 0.0] = 1.0
        directions = directions / norms
        if boundary:
            radii = np.ones((count, 1))
        else:
            radii = rng.random((count, 1)) ** (1.0 / self.dimension)
        sqrt_shape = self._matrix_square_root()
        return self.center + (directions * radii) @ sqrt_shape.T

    def _matrix_square_root(self) -> np.ndarray:
        eigenvalues, eigenvectors = np.linalg.eigh(self.shape)
        eigenvalues = np.maximum(eigenvalues, 0.0)
        return eigenvectors @ np.diag(np.sqrt(eigenvalues)) @ eigenvectors.T

    # ------------------------------------------------------------------ #
    # Misc
    # ------------------------------------------------------------------ #

    def state_arrays(self) -> Iterable[np.ndarray]:
        """The ndarrays making up this ellipsoid's state (for memory accounting)."""
        return (self.center, self.shape)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Ellipsoid):
            return NotImplemented
        return (
            self.dimension == other.dimension
            and np.allclose(self.center, other.center)
            and np.allclose(self.shape, other.shape)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return "Ellipsoid(dimension=%d, volume=%.4g)" % (self.dimension, self.volume())


def random_ellipsoid(
    dimension: int,
    seed: RngLike = None,
    scale: float = 1.0,
    center_scale: float = 1.0,
) -> Ellipsoid:
    """Generate a random well-conditioned ellipsoid (used by tests).

    The shape matrix is ``scale * (M M^T + n I)`` for a random matrix ``M``,
    which is positive definite by construction.
    """
    if dimension <= 0:
        raise ValueError("dimension must be positive, got %d" % dimension)
    rng = as_rng(seed)
    raw = rng.standard_normal((dimension, dimension))
    shape = scale * (raw @ raw.T + dimension * np.eye(dimension))
    center = center_scale * rng.standard_normal(dimension)
    return Ellipsoid(center, shape)
