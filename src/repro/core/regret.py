"""Regret accounting (Equation (1) of the paper) and derived metrics.

In round ``t`` with market value ``v_t``, reserve price ``q_t``, and posted
price ``p_t``:

* if ``q_t > v_t`` the query cannot be sold by anyone, so the regret is 0;
* otherwise the regret is ``v_t - p_t·1{p_t <= v_t}`` — the adversary would
  have sold at the full market value, the broker earns ``p_t`` on a sale and
  nothing on a rejection.

The *regret ratio* used throughout Section V is the cumulative regret divided
by the cumulative market value.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.utils.validation import ensure_finite_scalar


def single_round_regret(
    market_value: float,
    reserve: Optional[float],
    price: Optional[float],
    sold: Optional[bool] = None,
) -> float:
    """The single-round regret of Equation (1).

    Parameters
    ----------
    market_value:
        The realized market value ``v_t``.
    reserve:
        The reserve price ``q_t``; ``None`` means no reserve constraint, in
        which case the formula degenerates to Equation (7).
    price:
        The posted price ``p_t``; ``None`` means no price was posted this
        round (the pricer skipped), which counts as a rejection.
    sold:
        Whether the deal happened.  When ``None`` it is derived from
        ``price <= market_value``.
    """
    market_value = ensure_finite_scalar(market_value, name="market_value")
    if reserve is not None and reserve > market_value:
        return 0.0
    if price is None:
        return market_value
    price = ensure_finite_scalar(price, name="price")
    if sold is None:
        sold = price <= market_value
    return market_value - (price if sold else 0.0)


def single_round_regret_without_reserve(
    market_value: float, price: Optional[float], sold: Optional[bool] = None
) -> float:
    """The single-round regret without the reserve constraint (Equation (7))."""
    return single_round_regret(market_value, None, price, sold)


def single_round_regret_curve(
    market_value: float, reserve: float, prices: Sequence[float]
) -> np.ndarray:
    """Regret as a function of the posted price — the shape plotted in Fig. 1.

    For ``reserve <= market_value`` the regret decreases linearly in the posted
    price up to the market value and jumps to the full market value beyond it.
    """
    return np.array(
        [single_round_regret(market_value, reserve, float(p)) for p in prices], dtype=float
    )


def batch_regrets(
    market_values: np.ndarray,
    reserves: np.ndarray,
    prices: np.ndarray,
    sold: np.ndarray,
) -> np.ndarray:
    """Vectorised Equation (1) over a whole transcript.

    Element-wise identical to calling :func:`single_round_regret` per round:

    * ``reserves`` uses ``NaN`` for "no reserve constraint" and ``prices`` uses
      ``NaN`` for "no price posted" (a skipped round, counted as a rejection),
    * rounds where the reserve exceeds the market value contribute 0,
    * sold rounds contribute ``v_t - p_t``; unsold rounds contribute ``v_t``.

    The arithmetic per element (``market_value - price``) is the same scalar
    subtraction the sequential loop performs, so seeded transcripts agree to
    the last bit.
    """
    market_values = np.asarray(market_values, dtype=float)
    reserves = np.asarray(reserves, dtype=float)
    prices = np.asarray(prices, dtype=float)
    sold = np.asarray(sold, dtype=bool)
    if not (market_values.shape == reserves.shape == prices.shape == sold.shape):
        raise ValueError(
            "market_values, reserves, prices, and sold must share one shape, got %s/%s/%s/%s"
            % (market_values.shape, reserves.shape, prices.shape, sold.shape)
        )
    # NaN prices only appear on unsold (skipped) rounds, where np.where picks
    # the market value; the NaN in the discarded branch is harmless.
    lost = np.where(sold, market_values - prices, market_values)
    no_sale_possible = ~np.isnan(reserves) & (reserves > market_values)
    return np.where(no_sale_possible, 0.0, lost)


def regret_ratio(regrets: Sequence[float], market_values: Sequence[float]) -> float:
    """Cumulative regret divided by cumulative market value (Section V-A)."""
    regrets = np.asarray(regrets, dtype=float)
    market_values = np.asarray(market_values, dtype=float)
    if regrets.shape != market_values.shape:
        raise ValueError(
            "regrets and market values must have the same length, got %s vs %s"
            % (regrets.shape, market_values.shape)
        )
    total_value = float(np.sum(market_values))
    if total_value <= 0.0:
        return 0.0
    return float(np.sum(regrets)) / total_value


@dataclass
class RegretAccumulator:
    """Accumulates per-round regrets, revenues and market values during a simulation."""

    regrets: List[float] = field(default_factory=list)
    revenues: List[float] = field(default_factory=list)
    market_values: List[float] = field(default_factory=list)

    @classmethod
    def from_arrays(
        cls,
        regrets: np.ndarray,
        revenues: np.ndarray,
        market_values: np.ndarray,
    ) -> "RegretAccumulator":
        """Build an accumulator from transcript columns (engine adapter)."""
        return cls(
            regrets=[float(r) for r in regrets],
            revenues=[float(r) for r in revenues],
            market_values=[float(v) for v in market_values],
        )

    def record(self, market_value: float, reserve: Optional[float], price: Optional[float], sold: bool) -> float:
        """Record one round and return its regret."""
        regret = single_round_regret(market_value, reserve, price, sold)
        revenue = float(price) if (sold and price is not None) else 0.0
        self.regrets.append(regret)
        self.revenues.append(revenue)
        self.market_values.append(float(market_value))
        return regret

    @property
    def rounds(self) -> int:
        """Number of recorded rounds."""
        return len(self.regrets)

    @property
    def cumulative_regret(self) -> float:
        """Total regret so far."""
        return float(np.sum(self.regrets))

    @property
    def cumulative_revenue(self) -> float:
        """Total broker revenue so far."""
        return float(np.sum(self.revenues))

    @property
    def cumulative_market_value(self) -> float:
        """Total market value so far."""
        return float(np.sum(self.market_values))

    @property
    def ratio(self) -> float:
        """Current regret ratio."""
        return regret_ratio(self.regrets, self.market_values)

    def cumulative_regret_curve(self) -> np.ndarray:
        """Cumulative regret after each round (the curves of Fig. 4)."""
        return np.cumsum(np.asarray(self.regrets, dtype=float))

    def regret_ratio_curve(self) -> np.ndarray:
        """Regret ratio after each round (the curves of Fig. 5)."""
        regrets = np.cumsum(np.asarray(self.regrets, dtype=float))
        values = np.cumsum(np.asarray(self.market_values, dtype=float))
        with np.errstate(divide="ignore", invalid="ignore"):
            ratios = np.where(values > 0, regrets / values, 0.0)
        return ratios

    def ratio_at(self, round_count: int) -> float:
        """Regret ratio at the end of ``round_count`` rounds."""
        if round_count < 1 or round_count > self.rounds:
            raise ValueError(
                "round_count must be in [1, %d], got %d" % (self.rounds, round_count)
            )
        return regret_ratio(self.regrets[:round_count], self.market_values[:round_count])
