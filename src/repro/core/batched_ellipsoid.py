"""Batched Löwner–John ellipsoid updates over stacked ellipsoids.

One stacked cut over ``k`` ellipsoids at once: centers as a ``(k, n)`` array,
shape matrices as ``(k, n, n)``, one cut direction/offset per ellipsoid.  The
per-item semantics replicate :func:`repro.core.cuts.loewner_john_cut` under
``on_infeasible='skip'`` — the mode every online consumer (the ellipsoid
pricer's ``update``, the serving feedback path) uses — including the
degenerate-direction clamp, the no-op range ``α < -1/n``, the skip range
``α > 1`` and the point-collapse at ``α = 1``.

Two interchangeable implementations sit behind :func:`get_backend`:

* ``"batched"`` — numpy ``einsum``/broadcast arithmetic.  This is the default
  fast backend: one stacked update replaces ``k`` Python-level cut calls.
* ``"batched-torch"`` — the same formulas in ``torch`` (double precision),
  available only when torch is importable; :data:`HAS_TORCH` gates it and
  :class:`BackendUnavailableError` is raised otherwise.

Both round differently than the scalar reference path (``einsum``/gemm
contraction order vs. per-round ``x @ A @ x``), so results are admitted under
the **relaxed** equivalence tier (:mod:`repro.engine.equivalence`), never the
bit-exact golden tier.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional, Tuple

import numpy as np

from repro.core.cuts import _ALPHA_TOLERANCE, _DEGENERATE_GAIN

try:  # pragma: no cover - exercised only where torch is installed
    import torch

    HAS_TORCH = True
except ImportError:  # pragma: no cover
    torch = None
    HAS_TORCH = False


class BackendUnavailableError(RuntimeError):
    """A requested math backend's runtime dependency is not installed."""


#: Names accepted by :func:`get_backend` (and the engine/serving ``backend=``
#: knobs; ``"reference"`` is handled by the callers, not here).
BACKEND_NAMES = ("batched", "batched-torch")


def keep_signs(keep) -> np.ndarray:
    """Map per-item ``'leq'``/``'geq'`` keep modes to the cut-formula signs.

    ``+1`` keeps ``{θ : x^T θ <= offset}`` (rejection feedback), ``-1`` keeps
    ``{θ : x^T θ >= offset}`` (acceptance feedback) — the same convention as
    the scalar :func:`~repro.core.cuts.loewner_john_cut`.
    """
    if isinstance(keep, str):
        keep = [keep]
    signs = np.empty(len(keep), dtype=float)
    for index, mode in enumerate(keep):
        if mode == "leq":
            signs[index] = 1.0
        elif mode == "geq":
            signs[index] = -1.0
        else:
            raise ValueError("keep must be 'leq' or 'geq', got %r" % (mode,))
    return signs


@dataclass
class BatchedCutResult:
    """Outcome of one stacked cut over ``k`` ellipsoids.

    ``centers``/``shapes`` hold the post-cut geometry for every item (no-op
    items carry their input values through unchanged); ``alphas`` the position
    parameters (``NaN`` for degenerate directions); ``updated`` which items
    actually changed — the batch analogue of ``CutResult.updated``, which is
    what counter bookkeeping (``cuts_applied``/``cut_count``) keys off.
    """

    centers: np.ndarray
    shapes: np.ndarray
    alphas: np.ndarray
    updated: np.ndarray


def _validate_batch(centers, shapes, directions, offsets, signs):
    centers = np.ascontiguousarray(centers, dtype=float)
    shapes = np.ascontiguousarray(shapes, dtype=float)
    directions = np.ascontiguousarray(directions, dtype=float)
    offsets = np.ascontiguousarray(offsets, dtype=float).reshape(-1)
    signs = np.ascontiguousarray(signs, dtype=float).reshape(-1)
    if centers.ndim != 2:
        raise ValueError("centers must be (k, n), got shape %s" % (centers.shape,))
    count, dimension = centers.shape
    if dimension < 2:
        raise ValueError(
            "batched Löwner–John updates require dimension >= 2, got %d" % dimension
        )
    if shapes.shape != (count, dimension, dimension):
        raise ValueError(
            "shapes must be (k, n, n) = %s, got %s"
            % ((count, dimension, dimension), shapes.shape)
        )
    if directions.shape != (count, dimension):
        raise ValueError(
            "directions must be (k, n) = %s, got %s"
            % ((count, dimension), directions.shape)
        )
    if offsets.shape != (count,) or signs.shape != (count,):
        raise ValueError(
            "offsets and keep signs must be length-%d vectors, got %s / %s"
            % (count, offsets.shape, signs.shape)
        )
    if not np.all(np.abs(signs) == 1.0):
        raise ValueError("keep signs must be +1 (leq) or -1 (geq)")
    return centers, shapes, directions, offsets, signs


# --------------------------------------------------------------------------- #
# numpy implementation
# --------------------------------------------------------------------------- #


def batched_support_intervals(
    centers: np.ndarray, shapes: np.ndarray, directions: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Support intervals ``x^T c ± sqrt(x^T A x)`` for ``k`` (ellipsoid, direction) pairs.

    All inputs are stacked along axis 0; returns ``(lower, upper)`` length-k
    vectors.  Negative gains from numerical noise are clamped to zero, like
    the scalar :meth:`Ellipsoid.support_interval`.
    """
    raw = np.matmul(shapes, directions[:, :, None])[:, :, 0]  # A x, batched gemm
    gains = np.einsum("ki,ki->k", raw, directions)
    np.maximum(gains, 0.0, out=gains)
    half_widths = np.sqrt(gains)
    middles = np.einsum("ki,ki->k", directions, centers)
    return middles - half_widths, middles + half_widths


def block_support_intervals(
    center: np.ndarray, shape: np.ndarray, features: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Support intervals of **one** ellipsoid along ``r`` feature directions.

    The engine's conservative-tail block primitive: between two applied cuts
    the knowledge ellipsoid is constant, so a whole block of rounds can be
    bounded with one gemm-backed contraction instead of ``r`` Python-level
    matrix–vector products.
    """
    raw = features @ shape  # one gemm for the whole block
    gains = np.einsum("ri,ri->r", raw, features)
    np.maximum(gains, 0.0, out=gains)
    half_widths = np.sqrt(gains)
    middles = features @ center
    return middles - half_widths, middles + half_widths


def batched_cut(
    centers: np.ndarray,
    shapes: np.ndarray,
    directions: np.ndarray,
    offsets: np.ndarray,
    signs: np.ndarray,
    validate: bool = True,
) -> BatchedCutResult:
    """One stacked Löwner–John cut over ``k`` ellipsoids (numpy).

    Item-wise semantics match ``loewner_john_cut(..., on_infeasible='skip')``:

    * degenerate direction (``x^T A x < tiny``, including exact zero and
      denormal underflow) — no-op, ``alpha = NaN``;
    * ``α < -1/n - tol`` — no-op (the kept region's Löwner–John ellipsoid is
      the original);
    * ``α > 1 + tol`` — no-op (inconsistent observation, skipped);
    * ``1 <= α <= 1 + tol`` — collapse onto the supporting point with a tiny
      positive-definite shape;
    * otherwise — the Grötschel–Lovász–Schrijver deep/shallow-cut formulas,
      re-symmetrised.

    ``validate=False`` skips the dtype/shape validation pass for trusted
    internal callers (the engine's per-cut hot path) — inputs must already be
    C-contiguous float arrays of the documented shapes.
    """
    if validate:
        centers, shapes, directions, offsets, signs = _validate_batch(
            centers, shapes, directions, offsets, signs
        )
    count, dimension = centers.shape

    raw = np.matmul(shapes, directions[:, :, None])[:, :, 0]  # A x per item
    gains = np.einsum("ki,ki->k", raw, directions)  # x^T A x per item
    degenerate = ~(gains >= _DEGENERATE_GAIN)

    safe_gains = np.where(degenerate, 1.0, gains)
    roots = np.sqrt(safe_gains)
    signed = (np.einsum("ki,ki->k", directions, centers) - offsets) / roots
    alphas = signs * signed
    alphas[degenerate] = np.nan

    noop = degenerate | (alphas < -1.0 / dimension - _ALPHA_TOLERANCE)
    noop |= alphas > 1.0 + _ALPHA_TOLERANCE
    collapse = ~noop & (alphas >= 1.0)
    regular = ~noop & ~collapse

    new_centers = centers.copy()
    new_shapes = shapes.copy()
    boundary = raw / roots[:, None]  # b = A x / sqrt(x^T A x)

    if np.any(collapse):
        idx = np.nonzero(collapse)[0]
        new_centers[idx] = centers[idx] - signs[idx, None] * boundary[idx]
        traces = np.trace(shapes[idx], axis1=1, axis2=2)
        tiny = 1e-18 * traces / dimension
        new_shapes[idx] = tiny[:, None, None] * np.eye(dimension)[None, :, :]

    if np.any(regular):
        idx = np.nonzero(regular)[0]
        a = alphas[idx]
        scale = dimension**2 * (1.0 - a**2) / (dimension**2 - 1.0)
        rank_one = 2.0 * (1.0 + dimension * a) / ((dimension + 1.0) * (1.0 + a))
        outer = boundary[idx, :, None] * boundary[idx, None, :]
        shaped = scale[:, None, None] * (
            shapes[idx] - rank_one[:, None, None] * outer
        )
        new_shapes[idx] = 0.5 * (shaped + np.swapaxes(shaped, 1, 2))
        step = ((1.0 + dimension * a) / (dimension + 1.0)) * signs[idx]
        new_centers[idx] = centers[idx] - step[:, None] * boundary[idx]

    return BatchedCutResult(
        centers=new_centers, shapes=new_shapes, alphas=alphas, updated=~noop
    )


def single_cut(
    center: np.ndarray,
    shape: np.ndarray,
    direction: np.ndarray,
    offset: float,
    sign: float,
) -> Optional[Tuple[np.ndarray, np.ndarray]]:
    """Scalar twin of :func:`batched_cut` for the engine's k=1 hot path.

    Returns ``(new_center, new_shape)`` (fresh arrays, re-symmetrised) when
    the cut changes the ellipsoid, or ``None`` for every no-op outcome —
    degenerate direction, shallow-cut no-op, inconsistent skip.  Inputs must
    already be float arrays of matching dimension; nothing is validated.
    """
    dimension = center.shape[0]
    raw = shape @ direction  # A x
    gain = float(raw @ direction)  # x^T A x
    if not gain >= _DEGENERATE_GAIN:
        return None
    root = math.sqrt(gain)
    alpha = sign * (float(direction @ center) - offset) / root
    if alpha < -1.0 / dimension - _ALPHA_TOLERANCE or alpha > 1.0 + _ALPHA_TOLERANCE:
        return None
    boundary = raw / root
    if alpha >= 1.0:
        tiny = 1e-18 * float(np.trace(shape)) / dimension
        return center - sign * boundary, tiny * np.eye(dimension)
    scale = dimension**2 * (1.0 - alpha**2) / (dimension**2 - 1.0)
    rank_one = 2.0 * (1.0 + dimension * alpha) / ((dimension + 1.0) * (1.0 + alpha))
    shaped = scale * (shape - rank_one * np.outer(boundary, boundary))
    step = ((1.0 + dimension * alpha) / (dimension + 1.0)) * sign
    return center - step * boundary, 0.5 * (shaped + shaped.T)


# --------------------------------------------------------------------------- #
# torch implementation (optional; same interface, numpy in / numpy out)
# --------------------------------------------------------------------------- #


def _require_torch() -> None:
    if not HAS_TORCH:
        raise BackendUnavailableError(
            "the 'batched-torch' backend requires torch, which is not installed; "
            "use backend='batched' (numpy)"
        )


def batched_support_intervals_torch(centers, shapes, directions):
    """Torch twin of :func:`batched_support_intervals` (double precision)."""
    _require_torch()
    c = torch.as_tensor(np.ascontiguousarray(centers, dtype=float))
    a = torch.as_tensor(np.ascontiguousarray(shapes, dtype=float))
    d = torch.as_tensor(np.ascontiguousarray(directions, dtype=float))
    gains = torch.einsum("ki,kij,kj->k", d, a, d).clamp_min(0.0)
    half_widths = torch.sqrt(gains)
    middles = torch.einsum("ki,ki->k", d, c)
    return (middles - half_widths).numpy(), (middles + half_widths).numpy()


def block_support_intervals_torch(center, shape, features):
    """Torch twin of :func:`block_support_intervals` (double precision)."""
    _require_torch()
    c = torch.as_tensor(np.ascontiguousarray(center, dtype=float))
    a = torch.as_tensor(np.ascontiguousarray(shape, dtype=float))
    x = torch.as_tensor(np.ascontiguousarray(features, dtype=float))
    gains = torch.einsum("ri,ij,rj->r", x, a, x).clamp_min(0.0)
    half_widths = torch.sqrt(gains)
    middles = x @ c
    return (middles - half_widths).numpy(), (middles + half_widths).numpy()


def batched_cut_torch(
    centers, shapes, directions, offsets, signs, validate: bool = True
) -> BatchedCutResult:
    """Torch twin of :func:`batched_cut` (double precision, numpy in/out)."""
    _require_torch()
    if validate:
        centers, shapes, directions, offsets, signs = _validate_batch(
            centers, shapes, directions, offsets, signs
        )
    centers_np, shapes_np, directions_np, offsets_np, signs_np = (
        np.asarray(centers, dtype=float),
        np.asarray(shapes, dtype=float),
        np.asarray(directions, dtype=float),
        np.asarray(offsets, dtype=float),
        np.asarray(signs, dtype=float),
    )
    count, dimension = centers_np.shape
    c = torch.as_tensor(centers_np)
    a = torch.as_tensor(shapes_np)
    d = torch.as_tensor(directions_np)
    o = torch.as_tensor(offsets_np)
    s = torch.as_tensor(signs_np)

    raw = torch.einsum("kij,kj->ki", a, d)
    gains = torch.einsum("ki,ki->k", raw, d)
    degenerate = ~(gains >= _DEGENERATE_GAIN)

    roots = torch.sqrt(torch.where(degenerate, torch.ones_like(gains), gains))
    signed = (torch.einsum("ki,ki->k", d, c) - o) / roots
    alphas = s * signed
    alphas = torch.where(degenerate, torch.full_like(alphas, float("nan")), alphas)

    noop = degenerate | (alphas < -1.0 / dimension - _ALPHA_TOLERANCE)
    noop |= alphas > 1.0 + _ALPHA_TOLERANCE
    collapse = ~noop & (alphas >= 1.0)
    regular = ~noop & ~collapse

    new_c = c.clone()
    new_a = a.clone()
    boundary = raw / roots[:, None]

    if bool(collapse.any()):
        idx = torch.nonzero(collapse).reshape(-1)
        new_c[idx] = c[idx] - s[idx, None] * boundary[idx]
        traces = torch.diagonal(a[idx], dim1=1, dim2=2).sum(dim=1)
        tiny = 1e-18 * traces / dimension
        eye = torch.eye(dimension, dtype=a.dtype)
        new_a[idx] = tiny[:, None, None] * eye[None, :, :]

    if bool(regular.any()):
        idx = torch.nonzero(regular).reshape(-1)
        al = alphas[idx]
        scale = dimension**2 * (1.0 - al**2) / (dimension**2 - 1.0)
        rank_one = 2.0 * (1.0 + dimension * al) / ((dimension + 1.0) * (1.0 + al))
        outer = boundary[idx, :, None] * boundary[idx, None, :]
        shaped = scale[:, None, None] * (a[idx] - rank_one[:, None, None] * outer)
        new_a[idx] = 0.5 * (shaped + shaped.transpose(1, 2))
        step = ((1.0 + dimension * al) / (dimension + 1.0)) * s[idx]
        new_c[idx] = c[idx] - step[:, None] * boundary[idx]

    return BatchedCutResult(
        centers=new_c.numpy(),
        shapes=new_a.numpy(),
        alphas=alphas.numpy(),
        updated=(~noop).numpy(),
    )


def single_cut_torch(center, shape, direction, offset, sign):
    """Torch twin of :func:`single_cut` — delegates to the stacked kernel."""
    result = batched_cut_torch(
        np.asarray(center, dtype=float)[None, :],
        np.asarray(shape, dtype=float)[None, :, :],
        np.asarray(direction, dtype=float)[None, :],
        np.array([offset], dtype=float),
        np.array([sign], dtype=float),
        validate=False,
    )
    if not result.updated[0]:
        return None
    return result.centers[0], result.shapes[0]


# --------------------------------------------------------------------------- #
# Backend selection
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class Backend:
    """One batched math backend: the primitive set the engine/serving use."""

    name: str
    batched_cut: Callable[..., BatchedCutResult]
    batched_support_intervals: Callable[..., Tuple[np.ndarray, np.ndarray]]
    block_support_intervals: Callable[..., Tuple[np.ndarray, np.ndarray]]
    single_cut: Callable[..., Optional[Tuple[np.ndarray, np.ndarray]]]


_NUMPY_BACKEND = Backend(
    name="batched",
    batched_cut=batched_cut,
    batched_support_intervals=batched_support_intervals,
    block_support_intervals=block_support_intervals,
    single_cut=single_cut,
)

_TORCH_BACKEND = Backend(
    name="batched-torch",
    batched_cut=batched_cut_torch,
    batched_support_intervals=batched_support_intervals_torch,
    block_support_intervals=block_support_intervals_torch,
    single_cut=single_cut_torch,
)


def get_backend(name: str) -> Backend:
    """Resolve a backend name to its primitive set.

    ``"batched"`` always resolves; ``"batched-torch"`` raises
    :class:`BackendUnavailableError` when torch is not installed (the
    container's toolchain is numpy-first — torch is strictly optional).
    """
    if name == "batched":
        return _NUMPY_BACKEND
    if name == "batched-torch":
        _require_torch()
        return _TORCH_BACKEND
    raise ValueError(
        "unknown batched backend %r; expected one of %r" % (name, BACKEND_NAMES)
    )
