"""Baseline posted price mechanisms used for comparison in the evaluation.

The paper's main comparator is the *risk-averse* baseline which posts the
reserve price in every round (Section V-A / V-B); the oracle pricer plays the
adversary's optimal price and therefore achieves zero regret, which makes it a
useful reference and test fixture.  Two simple additional baselines (fixed
price and constant markup over the reserve) round out the comparison set.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.core.base import BatchDecisions, PostedPriceMechanism, PricingDecision
from repro.utils.validation import ensure_finite_scalar, ensure_positive

_NEGATIVE_INFINITY = float("-inf")
_POSITIVE_INFINITY = float("inf")


class _StatelessPricer(PostedPriceMechanism):
    """Common plumbing for baselines that never learn from feedback.

    Stateless pricers are the fully vectorisable case of the batched engine
    protocol: their proposals never depend on accept/reject feedback, so a
    whole horizon of prices is computed in one array pass
    (:meth:`propose_batch`) and the feedback hook stays the no-op default.
    """

    supports_batch_propose = True

    def update(self, decision: PricingDecision, accepted: bool) -> None:  # noqa: D401
        """Baselines ignore feedback."""

    def _decision(self, features, reserve: Optional[float], price: Optional[float]) -> PricingDecision:
        features = np.atleast_1d(np.asarray(features, dtype=float))
        skipped = price is None
        return PricingDecision(
            features=features,
            reserve=reserve,
            lower_bound=_NEGATIVE_INFINITY,
            upper_bound=_POSITIVE_INFINITY,
            price=price,
            exploratory=False,
            skipped=skipped,
            round_index=self._next_round(),
        )

    def _batch(self, prices: np.ndarray) -> BatchDecisions:
        """Wrap a price column (``NaN`` = skip) and advance the round counter."""
        prices = np.asarray(prices, dtype=float)
        rounds = prices.shape[0]
        self.advance_rounds(rounds)
        return BatchDecisions(
            link_prices=prices,
            exploratory=np.zeros(rounds, dtype=bool),
            skipped=np.isnan(prices),
        )


class RiskAversePricer(_StatelessPricer):
    """The paper's risk-averse baseline: always post the reserve price.

    Posting the reserve guarantees a sale whenever a sale is possible at all
    (the reserve is a lower bound on any admissible price), but leaves the
    whole markup between reserve and market value on the table; the paper
    reports regret ratios of 9–23% for this baseline.
    """

    name = "risk-averse (post reserve)"

    def propose(self, features, reserve: Optional[float] = None) -> PricingDecision:
        if reserve is None:
            raise ValueError("RiskAversePricer requires a reserve price each round")
        reserve = ensure_finite_scalar(reserve, name="reserve")
        return self._decision(features, reserve, reserve)

    def propose_batch(self, features: np.ndarray, reserves: np.ndarray) -> BatchDecisions:
        reserves = np.asarray(reserves, dtype=float)
        if np.any(np.isnan(reserves)):
            raise ValueError("RiskAversePricer requires a reserve price each round")
        if not np.all(np.isfinite(reserves)):
            raise ValueError("reserve must be finite")
        return self._batch(reserves.copy())


class OraclePricer(_StatelessPricer):
    """The adversary's pricer: knows the market value and posts it.

    With the reserve price constraint the oracle posts
    ``max(reserve, market value)`` when the reserve does not exceed the market
    value (selling at full value) and skips otherwise; its regret is zero in
    every round, matching the benchmark used in Equation (1).
    """

    name = "oracle"

    def __init__(self, value_function: Callable[[np.ndarray], float]) -> None:
        super().__init__()
        self._value_function = value_function

    def propose(self, features, reserve: Optional[float] = None) -> PricingDecision:
        features_arr = np.atleast_1d(np.asarray(features, dtype=float))
        value = float(self._value_function(features_arr))
        if reserve is not None and reserve > value:
            return self._decision(features_arr, reserve, None)
        price = value if reserve is None else max(float(reserve), value)
        return self._decision(features_arr, reserve, price)

    def propose_batch(self, features: np.ndarray, reserves: np.ndarray) -> BatchDecisions:
        features = np.asarray(features, dtype=float)
        reserves = np.asarray(reserves, dtype=float)
        # The value function is an arbitrary scalar callable; applying it per
        # row keeps the values bit-identical to the sequential loop.
        values = np.array(
            [float(self._value_function(row)) for row in features], dtype=float
        )
        has_reserve = ~np.isnan(reserves)
        prices = np.where(has_reserve, np.maximum(reserves, values), values)
        prices[has_reserve & (reserves > values)] = np.nan
        return self._batch(prices)


class FixedPricePricer(_StatelessPricer):
    """Posts the same constant price in every round (respecting the reserve)."""

    def __init__(self, price: float) -> None:
        super().__init__()
        self.price = ensure_finite_scalar(price, name="price")
        self.name = "fixed price (%g)" % self.price

    def propose(self, features, reserve: Optional[float] = None) -> PricingDecision:
        price = self.price
        if reserve is not None:
            price = max(price, ensure_finite_scalar(reserve, name="reserve"))
        return self._decision(features, reserve, price)

    def propose_batch(self, features: np.ndarray, reserves: np.ndarray) -> BatchDecisions:
        reserves = np.asarray(reserves, dtype=float)
        has_reserve = ~np.isnan(reserves)
        if np.any(~np.isfinite(reserves[has_reserve])):
            raise ValueError("reserve must be finite")
        prices = np.where(has_reserve, np.maximum(self.price, reserves), self.price)
        return self._batch(prices)


class ConstantMarkupPricer(_StatelessPricer):
    """Posts ``markup × reserve`` — the cost-plus pricing rule with a fixed markup.

    This captures the static cost-plus strategy discussed in Section II-B
    (the reserve price is the cost; a fixed multiplicative markup is applied),
    without any learning of the actual revenue-to-cost ratio.
    """

    def __init__(self, markup: float) -> None:
        super().__init__()
        self.markup = ensure_positive(markup, name="markup")
        self.name = "constant markup (x%g)" % self.markup

    def propose(self, features, reserve: Optional[float] = None) -> PricingDecision:
        if reserve is None:
            raise ValueError("ConstantMarkupPricer requires a reserve price each round")
        reserve = ensure_finite_scalar(reserve, name="reserve")
        return self._decision(features, reserve, max(reserve, self.markup * reserve))

    def propose_batch(self, features: np.ndarray, reserves: np.ndarray) -> BatchDecisions:
        reserves = np.asarray(reserves, dtype=float)
        if np.any(np.isnan(reserves)):
            raise ValueError("ConstantMarkupPricer requires a reserve price each round")
        if not np.all(np.isfinite(reserves)):
            raise ValueError("reserve must be finite")
        return self._batch(np.maximum(reserves, self.markup * reserves))
