"""The one-dimensional posted price mechanism (Section II-C, Theorem 3).

When the feature vector is a single scalar (for instance the total privacy
compensation), the knowledge set is an interval of feasible weights and the
Löwner–John machinery degenerates: the exploratory price bisects the interval
of possible market values, the conservative price posts its lower end, and the
worst-case regret of the pure version is ``O(log T)`` (Theorem 3).

The uncertainty buffer and the reserve price constraint work exactly as in the
multi-dimensional Algorithms 1/2; only the knowledge-set update differs.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from repro.core.base import KnowledgePricerStateMixin, PostedPriceMechanism, PricingDecision
from repro.core.knowledge import IntervalKnowledge
from repro.utils.validation import ensure_finite_scalar, ensure_positive

_NEGATIVE_INFINITY = float("-inf")


class OneDimensionalPricer(KnowledgePricerStateMixin, PostedPriceMechanism):
    """Posted price mechanism for a one-dimensional feature (``n = 1``).

    Parameters
    ----------
    theta_lower, theta_upper:
        The initial interval ``[l, u]`` of feasible scalar weights ``θ*``.
    epsilon:
        Exploration threshold on the width of the market value bounds;
        the paper's Theorem 3 uses ``ε = log²(T)/T``.
    delta:
        Uncertainty buffer (0 for the deterministic setting).
    use_reserve:
        Whether the reserve price constraint is enforced.
    allow_conservative_cuts:
        Ablation switch mirroring the multi-dimensional pricer: when true,
        conservative-price feedback also refines the interval.
    """

    def __init__(
        self,
        theta_lower: float,
        theta_upper: float,
        epsilon: float,
        delta: float = 0.0,
        use_reserve: bool = True,
        allow_conservative_cuts: bool = False,
    ) -> None:
        super().__init__()
        theta_lower = ensure_finite_scalar(theta_lower, name="theta_lower")
        theta_upper = ensure_finite_scalar(theta_upper, name="theta_upper")
        ensure_positive(epsilon, name="epsilon")
        ensure_positive(delta, name="delta", strict=False)
        self.knowledge = IntervalKnowledge(theta_lower, theta_upper)
        self.epsilon = float(epsilon)
        self.delta = float(delta)
        self.use_reserve = bool(use_reserve)
        self.allow_conservative_cuts = bool(allow_conservative_cuts)
        self.exploratory_rounds = 0
        self.conservative_rounds = 0
        self.skipped_rounds = 0
        self.cuts_applied = 0
        self.name = self._derive_name()

    def _derive_name(self) -> str:
        if self.use_reserve and self.delta > 0:
            return "with reserve price and uncertainty"
        if self.use_reserve:
            return "with reserve price"
        if self.delta > 0:
            return "with uncertainty"
        return "pure version"

    # ------------------------------------------------------------------ #

    def propose(self, features, reserve: Optional[float] = None) -> PricingDecision:
        feature = _as_scalar_feature(features)
        effective_reserve = self._effective_reserve(reserve)
        lower, upper = self.knowledge.value_bounds(feature)

        if effective_reserve >= upper + self.delta:
            self.skipped_rounds += 1
            self._next_round()
            return PricingDecision(
                features=np.array([feature]),
                reserve=reserve if self.use_reserve else None,
                lower_bound=lower,
                upper_bound=upper,
                price=None,
                exploratory=False,
                skipped=True,
                round_index=self.rounds_seen - 1,
            )

        width = upper - lower
        if width > self.epsilon:
            price = max(effective_reserve, 0.5 * (lower + upper))
            exploratory = True
            self.exploratory_rounds += 1
        else:
            price = max(effective_reserve, lower - self.delta)
            exploratory = False
            self.conservative_rounds += 1

        self._next_round()
        return PricingDecision(
            features=np.array([feature]),
            reserve=reserve if self.use_reserve else None,
            lower_bound=lower,
            upper_bound=upper,
            price=price,
            exploratory=exploratory,
            skipped=False,
            round_index=self.rounds_seen - 1,
        )

    def update(self, decision: PricingDecision, accepted: bool) -> None:
        if decision.skipped or decision.price is None:
            return
        refine = decision.exploratory or self.allow_conservative_cuts
        if not refine:
            return
        feature = float(decision.features[0])
        if feature == 0.0:
            return
        if accepted:
            changed = self.knowledge.cut(feature, decision.price - self.delta, keep="geq")
        else:
            changed = self.knowledge.cut(feature, decision.price + self.delta, keep="leq")
        if changed:
            self.cuts_applied += 1

    # ------------------------------------------------------------------ #
    # Columnar engine fast path
    # ------------------------------------------------------------------ #

    def run_batch(self, model, materialized, transcript, backend=None) -> bool:
        # The interval update is O(1) scalar arithmetic — there is no stacked
        # kernel to gain from, so every backend runs the reference path.
        """Whole-horizon loop with the exact per-round arithmetic of
        propose/update (interval bounds, bisection prices, interval cuts),
        minus the per-round validation and decision allocation."""
        features = materialized.mapped_features
        if features.ndim != 2 or features.shape[1] != 1:
            return False  # let the generic loop raise the usual shape error
        if not np.all(np.isfinite(features)):
            return False
        knowledge = self.knowledge
        use_reserve = self.use_reserve
        delta = self.delta
        epsilon = self.epsilon
        allow_conservative_cuts = self.allow_conservative_cuts
        link_reserves = materialized.link_reserves
        market_values = materialized.market_values
        identity_link = getattr(model, "link_is_identity", False)
        link = model.link
        link_prices = transcript.link_prices
        posted_prices = transcript.posted_prices
        sold_column = transcript.sold
        skipped_column = transcript.skipped
        exploratory_column = transcript.exploratory
        isnan = math.isnan
        rounds = features.shape[0]
        skipped_rounds = exploratory_rounds = conservative_rounds = cuts_applied = 0
        theta_lower, theta_upper = knowledge.lower, knowledge.upper
        for index in range(rounds):
            feature = float(features[index, 0])
            # Inlined IntervalKnowledge.value_bounds (same expressions).
            bound_a = feature * theta_lower
            bound_b = feature * theta_upper
            lower = min(bound_a, bound_b)
            upper = max(bound_a, bound_b)
            if use_reserve:
                reserve = link_reserves[index]
                effective_reserve = _NEGATIVE_INFINITY if isnan(reserve) else reserve
            else:
                effective_reserve = _NEGATIVE_INFINITY
            if effective_reserve >= upper + delta:
                skipped_rounds += 1
                skipped_column[index] = True
                continue
            width = upper - lower
            if width > epsilon:
                price = max(effective_reserve, 0.5 * (lower + upper))
                exploratory = True
                exploratory_rounds += 1
            else:
                price = max(effective_reserve, lower - delta)
                exploratory = False
                conservative_rounds += 1
            posted = price if identity_link else link(float(price))
            accepted = posted <= market_values[index]
            link_prices[index] = price
            posted_prices[index] = posted
            sold_column[index] = accepted
            exploratory_column[index] = exploratory
            if (exploratory or allow_conservative_cuts) and feature != 0.0:
                if accepted:
                    changed = knowledge.cut(feature, price - delta, keep="geq")
                else:
                    changed = knowledge.cut(feature, price + delta, keep="leq")
                if changed:
                    cuts_applied += 1
                    theta_lower, theta_upper = knowledge.lower, knowledge.upper
        self.skipped_rounds += skipped_rounds
        self.exploratory_rounds += exploratory_rounds
        self.conservative_rounds += conservative_rounds
        self.cuts_applied += cuts_applied
        self.advance_rounds(rounds)
        return True

    # ------------------------------------------------------------------ #

    def value_bounds(self, features) -> Tuple[float, float]:
        """Current bounds on the market value for the scalar feature."""
        return self.knowledge.value_bounds(_as_scalar_feature(features))

    def state_arrays(self) -> Tuple[np.ndarray, ...]:
        return self.knowledge.state_arrays()

    def _effective_reserve(self, reserve: Optional[float]) -> float:
        if not self.use_reserve or reserve is None:
            return _NEGATIVE_INFINITY
        return ensure_finite_scalar(reserve, name="reserve")

    def __repr__(self) -> str:  # pragma: no cover
        return "OneDimensionalPricer(%s, theta in [%g, %g])" % (
            self.name,
            self.knowledge.lower,
            self.knowledge.upper,
        )


def _as_scalar_feature(features) -> float:
    arr = np.asarray(features, dtype=float)
    if arr.ndim == 0:
        return float(arr)
    if arr.ndim == 1 and arr.shape[0] == 1:
        return float(arr[0])
    raise ValueError(
        "OneDimensionalPricer expects a scalar feature, got shape %s" % (arr.shape,)
    )
