"""Löwner–John ellipsoid updates after a halfspace cut.

After posting a price ``p_t`` along the feature direction ``x_t`` and observing
accept/reject feedback, the broker keeps one side of the cutting hyperplane
``{θ : x_t^T θ = p_t}`` and replaces the remaining region of the ellipsoid with
its minimum-volume enclosing (Löwner–John) ellipsoid.  The closed-form update
is the classical deep/shallow-cut formula of Grötschel, Lovász and Schrijver,
reproduced in Lines 17 and 21 of Algorithms 1 and 2 of the paper.

Conventions
-----------
The *position parameter* ``α`` is the signed distance from the ellipsoid's
center to the cutting hyperplane in the ellipsoidal norm:

* ``α = 0``      — central cut (keep exactly half),
* ``0 < α <= 1`` — deep cut (keep less than half),
* ``-1/n <= α < 0`` — shallow cut (keep more than half, volume still shrinks),
* ``α < -1/n``   — the Löwner–John ellipsoid of the kept region is the original
  ellipsoid, so the update is a no-op,
* ``α > 1``      — the kept region is empty; this indicates an inconsistent
  observation and raises :class:`~repro.exceptions.InvalidCutError`.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

import numpy as np

from repro.core.ellipsoid import _DEGENERATE_GAIN, Ellipsoid
from repro.exceptions import InvalidCutError
from repro.utils.validation import ensure_finite_scalar, ensure_vector

# Numerical slack applied when classifying alpha against its legal range.
_ALPHA_TOLERANCE = 1e-12


class CutKind(enum.Enum):
    """Classification of a cut by the fraction of the ellipsoid it keeps."""

    CENTRAL = "central"
    DEEP = "deep"
    SHALLOW = "shallow"
    NOOP = "noop"


@dataclass(frozen=True)
class CutResult:
    """Outcome of a Löwner–John cut.

    Attributes
    ----------
    ellipsoid:
        The updated ellipsoid (identical to the input for a no-op cut).
    alpha:
        The position parameter of the cut.
    kind:
        Whether the cut was central, deep, shallow, or a no-op.
    updated:
        ``True`` when the ellipsoid actually changed.
    """

    ellipsoid: Ellipsoid
    alpha: float
    kind: CutKind
    updated: bool


def classify_alpha(alpha: float, dimension: int) -> CutKind:
    """Classify a position parameter ``alpha`` for an ``n``-dimensional ellipsoid."""
    if dimension < 2:
        raise ValueError("ellipsoid cuts require dimension >= 2, got %d" % dimension)
    if alpha < -1.0 / dimension - _ALPHA_TOLERANCE:
        return CutKind.NOOP
    if abs(alpha) <= _ALPHA_TOLERANCE:
        return CutKind.CENTRAL
    if alpha > 0:
        return CutKind.DEEP
    return CutKind.SHALLOW


def cut_position(ellipsoid: Ellipsoid, direction, offset: float, keep: str) -> float:
    """Position parameter ``α`` of the cut ``x^T θ (<=|>=) offset``.

    For ``keep='leq'`` (retain ``{θ : x^T θ <= offset}``) this is the paper's
    ``α_t = (x^T c_t - offset) / sqrt(x^T A_t x)``; for ``keep='geq'`` the sign
    flips, matching the symmetry argument used for the acceptance branch.
    """
    direction = ensure_vector(direction, dimension=ellipsoid.dimension, name="direction")
    offset = ensure_finite_scalar(offset, name="offset")
    gain = ellipsoid.direction_gain(direction)
    if not gain >= _DEGENERATE_GAIN:
        # ``not >=`` also catches NaN.  A denormal positive gain would pass a
        # plain ``> 0`` check and then overflow ``1 / sqrt(gain)``, emitting
        # garbage or NaN cut parameters downstream.
        raise InvalidCutError(
            "cut direction has a degenerate support width (x^T A x = %g)" % gain
        )
    signed = (float(direction @ ellipsoid.center) - offset) / math.sqrt(gain)
    if keep == "leq":
        return signed
    if keep == "geq":
        return -signed
    raise ValueError("keep must be 'leq' or 'geq', got %r" % keep)


def loewner_john_cut(
    ellipsoid: Ellipsoid,
    direction,
    offset: float,
    keep: str,
    on_infeasible: str = "raise",
) -> CutResult:
    """Cut ``ellipsoid`` with the halfspace ``x^T θ <= offset`` or ``>= offset``.

    Parameters
    ----------
    ellipsoid:
        The current knowledge ellipsoid ``E_t``.
    direction:
        The feature direction ``x_t`` of the cut.
    offset:
        The (effective) posted price defining the cutting hyperplane.
    keep:
        ``'leq'`` keeps ``{θ : x^T θ <= offset}`` (rejection feedback);
        ``'geq'`` keeps ``{θ : x^T θ >= offset}`` (acceptance feedback).
    on_infeasible:
        Behaviour when the kept halfspace does not intersect the ellipsoid
        (``α > 1``): ``'raise'`` (default) raises
        :class:`~repro.exceptions.InvalidCutError`; ``'skip'`` leaves the
        ellipsoid unchanged (the behaviour of Algorithms 1/2 when the position
        parameter falls outside its legal range); ``'clamp'`` collapses the
        ellipsoid onto the single supporting point at ``α = 1``.

    Returns
    -------
    CutResult
        The updated ellipsoid together with the cut's position parameter and
        classification.
    """
    direction = ensure_vector(direction, dimension=ellipsoid.dimension, name="direction")
    dimension = ellipsoid.dimension
    if dimension < 2:
        raise InvalidCutError(
            "Löwner–John updates require dimension >= 2; use IntervalKnowledge for n = 1"
        )
    if on_infeasible not in ("raise", "skip", "clamp"):
        raise ValueError("on_infeasible must be 'raise', 'skip', or 'clamp', got %r" % on_infeasible)
    if keep not in ("leq", "geq"):
        raise ValueError("keep must be 'leq' or 'geq', got %r" % keep)
    gain = ellipsoid.direction_gain(direction)
    if not gain >= _DEGENERATE_GAIN:
        # Degenerate direction: zero, denormal, or NaN support width.  The
        # ellipsoid carries no information along such a direction, so in the
        # non-raising modes the cut is a no-op rather than a division by ~0
        # that would emit NaN cut parameters.
        if on_infeasible == "raise":
            raise InvalidCutError(
                "cut direction has a degenerate support width (x^T A x = %g)" % gain
            )
        return CutResult(
            ellipsoid=ellipsoid, alpha=float("nan"), kind=CutKind.NOOP, updated=False
        )
    alpha = cut_position(ellipsoid, direction, offset, keep)

    if alpha > 1.0 + _ALPHA_TOLERANCE:
        if on_infeasible == "raise":
            raise InvalidCutError(
                "cut with alpha=%.6g > 1 would leave an empty region" % alpha
            )
        if on_infeasible == "skip":
            return CutResult(ellipsoid=ellipsoid, alpha=alpha, kind=CutKind.NOOP, updated=False)
        alpha = 1.0

    kind = classify_alpha(alpha, dimension)
    if kind is CutKind.NOOP:
        return CutResult(ellipsoid=ellipsoid, alpha=alpha, kind=kind, updated=False)

    sign = 1.0 if keep == "leq" else -1.0
    boundary = ellipsoid.boundary_vector(direction)
    updated = _apply_cut_formulas(ellipsoid, boundary, alpha, sign)
    return CutResult(ellipsoid=updated, alpha=alpha, kind=kind, updated=True)


def _apply_cut_formulas(
    ellipsoid: Ellipsoid, boundary: np.ndarray, alpha: float, sign: float
) -> Ellipsoid:
    """Apply the Grötschel–Lovász–Schrijver deep-cut formulas.

    ``sign=+1`` corresponds to keeping ``{x^T θ <= offset}`` (the paper's
    rejection branch, Lines 16–17); ``sign=-1`` to keeping ``{x^T θ >= offset}``
    (the acceptance branch, Line 21), which is the mirrored formula.
    """
    dimension = ellipsoid.dimension
    if alpha >= 1.0:
        # Degenerate cut: the kept region is a single point.  Collapse the
        # ellipsoid onto that point with a tiny, still positive definite shape
        # so downstream linear algebra keeps working.
        new_center = ellipsoid.center - sign * boundary
        tiny = 1e-18 * np.trace(ellipsoid.shape) / dimension
        new_shape = tiny * np.eye(dimension)
        return Ellipsoid(new_center, new_shape, validate=False)

    scale = dimension**2 * (1.0 - alpha**2) / (dimension**2 - 1.0)
    rank_one_coefficient = 2.0 * (1.0 + dimension * alpha) / ((dimension + 1.0) * (1.0 + alpha))
    new_shape = scale * (ellipsoid.shape - rank_one_coefficient * np.outer(boundary, boundary))
    new_center = ellipsoid.center - sign * ((1.0 + dimension * alpha) / (dimension + 1.0)) * boundary
    new_shape = 0.5 * (new_shape + new_shape.T)
    return Ellipsoid(new_center, new_shape, validate=False)


def volume_ratio_upper_bound(alpha: float, dimension: int) -> float:
    """Upper bound on ``V(E_{t+1}) / V(E_t)`` from Lemma 2 of the paper.

    For a cut with position parameter ``α ∈ [-1/n, 0]`` the volume shrinks at
    least by the factor ``exp(-(1 + nα)² / (5n))``.
    """
    if dimension < 2:
        raise ValueError("dimension must be >= 2, got %d" % dimension)
    if not -1.0 / dimension - _ALPHA_TOLERANCE <= alpha <= 1.0 + _ALPHA_TOLERANCE:
        raise ValueError("alpha=%g outside the valid cut range" % alpha)
    return math.exp(-((1.0 + dimension * alpha) ** 2) / (5.0 * dimension))
