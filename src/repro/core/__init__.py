"""Core pricing library: ellipsoid geometry, knowledge sets, posted price mechanisms.

This package implements the paper's primary contribution:

* :mod:`repro.core.ellipsoid` / :mod:`repro.core.cuts` — ellipsoid geometry and
  Löwner–John cut updates,
* :mod:`repro.core.knowledge` — interval, ellipsoid, and exact-polytope
  knowledge sets over the unknown weight vector,
* :mod:`repro.core.pricing` — Algorithms 1, 1*, 2, 2* (ellipsoid based posted
  price mechanisms with/without reserve price and uncertainty),
* :mod:`repro.core.one_dim` — the one-dimensional bisection pricer (Theorem 3),
* :mod:`repro.core.baselines` — risk-averse / oracle / fixed-price baselines,
* :mod:`repro.core.models` — linear and non-linear market value models,
* :mod:`repro.core.noise` — sub-Gaussian uncertainty and the buffer δ,
* :mod:`repro.core.regret` — the regret definition of Eq. (1) and derived metrics,
* :mod:`repro.core.simulation` — the online market simulation loop.
"""

from repro.core.ellipsoid import Ellipsoid
from repro.core.cuts import CutResult, CutKind, loewner_john_cut
from repro.core.batched_ellipsoid import (
    BackendUnavailableError,
    BatchedCutResult,
    batched_cut,
    get_backend,
)
from repro.core.knowledge import (
    EllipsoidKnowledge,
    IntervalKnowledge,
    KnowledgeSet,
    PolytopeKnowledge,
)
from repro.core.models import (
    GeneralizedLinearMarketModel,
    KernelizedModel,
    LinearModel,
    LogisticModel,
    LogLinearModel,
    LogLogModel,
    MarketValueModel,
)
from repro.core.noise import (
    BoundedNoise,
    GaussianNoise,
    NoNoise,
    RademacherNoise,
    SubGaussianNoise,
    UniformNoise,
    uncertainty_buffer,
)
from repro.core.base import BatchDecisions, PostedPriceMechanism
from repro.core.pricing import EllipsoidPricer, PricerConfig, PricingDecision, make_pricer
from repro.core.one_dim import OneDimensionalPricer
from repro.core.baselines import (
    ConstantMarkupPricer,
    FixedPricePricer,
    OraclePricer,
    RiskAversePricer,
)
from repro.core.sgd_pricer import SGDContextualPricer
from repro.core.regret import (
    RegretAccumulator,
    batch_regrets,
    regret_ratio,
    single_round_regret,
    single_round_regret_curve,
    single_round_regret_without_reserve,
)
from repro.core.simulation import (
    MarketSimulator,
    QueryArrival,
    RoundOutcome,
    SimulationResult,
    compare_pricers,
)

__all__ = [
    "Ellipsoid",
    "CutResult",
    "CutKind",
    "loewner_john_cut",
    "BackendUnavailableError",
    "BatchedCutResult",
    "batched_cut",
    "get_backend",
    "KnowledgeSet",
    "EllipsoidKnowledge",
    "IntervalKnowledge",
    "PolytopeKnowledge",
    "MarketValueModel",
    "GeneralizedLinearMarketModel",
    "LinearModel",
    "LogLinearModel",
    "LogLogModel",
    "LogisticModel",
    "KernelizedModel",
    "SubGaussianNoise",
    "GaussianNoise",
    "UniformNoise",
    "RademacherNoise",
    "BoundedNoise",
    "NoNoise",
    "uncertainty_buffer",
    "EllipsoidPricer",
    "PricerConfig",
    "PricingDecision",
    "make_pricer",
    "OneDimensionalPricer",
    "RiskAversePricer",
    "OraclePricer",
    "FixedPricePricer",
    "ConstantMarkupPricer",
    "SGDContextualPricer",
    "single_round_regret",
    "single_round_regret_without_reserve",
    "single_round_regret_curve",
    "regret_ratio",
    "batch_regrets",
    "BatchDecisions",
    "PostedPriceMechanism",
    "RegretAccumulator",
    "MarketSimulator",
    "QueryArrival",
    "RoundOutcome",
    "SimulationResult",
    "compare_pricers",
]
