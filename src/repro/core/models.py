"""Market value models.

The paper assumes the market value of a query is a deterministic function of
its feature vector plus some uncertainty (Section II-B).  The fundamental model
is linear, ``v_t = x_t^T θ*``; Section IV unifies the non-linear extensions
(log-linear, log-log, logistic, kernelized) into the general form

.. math::

   v_t = g(\\phi(x_t)^T \\theta^*)

where ``g`` is a public non-decreasing continuous *link* function and ``φ`` is
a public feature map; only the weight vector ``θ*`` is unknown.  The pricing
mechanism operates entirely in the *link space* ``z = φ(x)^T θ`` and posts the
real price ``g(z)``.

A deliberate deviation from the paper: its logistic model is written
``v = 1 / (1 + exp(x^T θ))``, which is *decreasing* in ``x^T θ`` and therefore
contradicts the paper's own requirement that ``g`` be non-decreasing.  We use
the standard non-decreasing sigmoid ``g(z) = 1 / (1 + exp(-z))``; the mechanism
is identical up to the sign of ``θ`` (documented in DESIGN.md).
"""

from __future__ import annotations

import abc
import math
from typing import Callable, Optional

import numpy as np

from repro.exceptions import ModelSpecificationError
from repro.utils.validation import ensure_vector


def _identity(value: float) -> float:
    """Identity link ``g(z) = z`` (recognised by the engine's fast paths)."""
    return value


def _sigmoid(z: float) -> float:
    """Numerically stable logistic sigmoid."""
    if z >= 0:
        return 1.0 / (1.0 + math.exp(-z))
    expz = math.exp(z)
    return expz / (1.0 + expz)


def _logit(p: float) -> float:
    """Inverse of the logistic sigmoid; requires ``p`` strictly inside (0, 1)."""
    if not 0.0 < p < 1.0:
        raise ValueError("logit is only defined on (0, 1), got %g" % p)
    return math.log(p / (1.0 - p))


class MarketValueModel(abc.ABC):
    """Interface of a market value model ``v = g(φ(x)^T θ*)``."""

    @property
    @abc.abstractmethod
    def weight_dimension(self) -> int:
        """Dimension of the weight vector ``θ*`` (and of ``φ(x)``)."""

    @property
    @abc.abstractmethod
    def theta(self) -> np.ndarray:
        """The true weight vector ``θ*`` used to generate market values."""

    @abc.abstractmethod
    def feature_map(self, features) -> np.ndarray:
        """The feature map ``φ`` applied to a raw feature vector."""

    @abc.abstractmethod
    def link(self, z: float) -> float:
        """The outer link function ``g`` (non-decreasing, continuous)."""

    @abc.abstractmethod
    def link_inverse(self, value: float) -> float:
        """The inverse of ``g`` (used to express real reserve prices in link space)."""

    def link_value(self, features) -> float:
        """The deterministic link-space value ``φ(x)^T θ*``."""
        mapped = self.feature_map(features)
        return float(mapped @ self.theta)

    def value(self, features) -> float:
        """The deterministic market value ``g(φ(x)^T θ*)``."""
        return self.link(self.link_value(features))

    # ------------------------------------------------------------------ #
    # Batched application (columnar engine support)
    # ------------------------------------------------------------------ #

    #: Whether ``link`` is the identity map.  The engine's fast loops skip the
    #: per-round ``link``/``link_inverse`` round-trips when this is set.
    link_is_identity: bool = False

    def feature_map_batch(self, features: np.ndarray) -> np.ndarray:
        """Apply the feature map ``φ`` to a ``(rounds, raw_dim)`` matrix.

        The default applies :meth:`feature_map` row by row, which guarantees
        bit-identical results to the sequential loop for any subclass;
        concrete models override it with vectorised implementations where the
        vectorised arithmetic provably rounds identically.
        """
        features = np.asarray(features, dtype=float)
        if features.ndim != 2:
            raise ValueError(
                "feature_map_batch expects a (rounds, dim) matrix, got shape %s"
                % (features.shape,)
            )
        if features.shape[0] == 0:
            return np.empty((0, self.weight_dimension))
        return np.vstack([self.feature_map(row) for row in features])

    def link_batch(self, z: np.ndarray) -> np.ndarray:
        """Apply the link function ``g`` element-wise to an array.

        ``NaN`` entries (skipped rounds) pass through untouched.  The default
        calls the scalar :meth:`link` per element so results match the
        sequential loop exactly; identity-link models return the input values
        unchanged.
        """
        z = np.asarray(z, dtype=float)
        if self.link_is_identity:
            return z.copy()
        out = np.full(z.shape, np.nan)
        flat_in = z.ravel()
        flat_out = out.ravel()
        for index in range(flat_in.shape[0]):
            value = flat_in[index]
            if not math.isnan(value):
                flat_out[index] = self.link(float(value))
        return out


class GeneralizedLinearMarketModel(MarketValueModel):
    """A concrete market value model with pluggable link and feature map.

    Parameters
    ----------
    theta:
        The weight vector ``θ*``.
    link / link_inverse:
        The outer function ``g`` and its inverse.  ``g`` must be non-decreasing.
    feature_map:
        The map ``φ``; defaults to the identity.
    name:
        Human-readable model name used in reports.
    """

    def __init__(
        self,
        theta,
        link: Callable[[float], float],
        link_inverse: Callable[[float], float],
        feature_map: Optional[Callable[[np.ndarray], np.ndarray]] = None,
        name: str = "generalized-linear",
    ) -> None:
        self._theta = ensure_vector(theta, name="theta")
        self._link = link
        self._link_inverse = link_inverse
        self._feature_map = feature_map
        self.link_is_identity = link is _identity
        self.name = name

    @property
    def weight_dimension(self) -> int:
        return self._theta.shape[0]

    @property
    def theta(self) -> np.ndarray:
        return self._theta

    def feature_map(self, features) -> np.ndarray:
        raw = np.asarray(features, dtype=float)
        if self._feature_map is None:
            mapped = raw
        else:
            mapped = np.asarray(self._feature_map(raw), dtype=float)
        return ensure_vector(mapped, dimension=self.weight_dimension, name="mapped features")

    def feature_map_batch(self, features: np.ndarray) -> np.ndarray:
        features = np.asarray(features, dtype=float)
        if features.ndim != 2:
            raise ValueError(
                "feature_map_batch expects a (rounds, dim) matrix, got shape %s"
                % (features.shape,)
            )
        if self._feature_map is None:
            # Identity feature map: the stacked raw features *are* the mapped
            # features (bit-identical to per-row application).
            if features.shape[0] > 0 and features.shape[1] != self.weight_dimension:
                raise ValueError(
                    "mapped features must have dimension %d, got %d"
                    % (self.weight_dimension, features.shape[1])
                )
            if not np.all(np.isfinite(features)):
                raise ValueError("mapped features contains non-finite entries")
            return features
        return super().feature_map_batch(features)

    def link(self, z: float) -> float:
        return float(self._link(float(z)))

    def link_inverse(self, value: float) -> float:
        return float(self._link_inverse(float(value)))

    def __repr__(self) -> str:  # pragma: no cover
        return "%s(name=%r, weight_dimension=%d)" % (
            type(self).__name__,
            self.name,
            self.weight_dimension,
        )


class LinearModel(GeneralizedLinearMarketModel):
    """The fundamental linear model ``v = x^T θ*`` (Section III)."""

    def __init__(self, theta) -> None:
        super().__init__(
            theta,
            link=_identity,
            link_inverse=_identity,
            feature_map=None,
            name="linear",
        )


class LogLinearModel(GeneralizedLinearMarketModel):
    """The log-linear hedonic model ``log v = x^T θ*`` (Section IV-A)."""

    def __init__(self, theta) -> None:
        super().__init__(
            theta,
            link=math.exp,
            link_inverse=_safe_log,
            feature_map=None,
            name="log-linear",
        )


class LogLogModel(GeneralizedLinearMarketModel):
    """The log-log hedonic model ``log v = Σ_i log(x_i) θ*_i`` (Section IV-A).

    The feature map applies an element-wise natural logarithm, so raw features
    must be strictly positive.
    """

    def __init__(self, theta) -> None:
        super().__init__(
            theta,
            link=math.exp,
            link_inverse=_safe_log,
            feature_map=_elementwise_log,
            name="log-log",
        )


class LogisticModel(GeneralizedLinearMarketModel):
    """The logistic (CTR-style) model ``v = sigmoid(x^T θ*)`` (Section IV-A)."""

    def __init__(self, theta) -> None:
        super().__init__(
            theta,
            link=_sigmoid,
            link_inverse=_logit,
            feature_map=None,
            name="logistic",
        )


class KernelizedModel(GeneralizedLinearMarketModel):
    """A kernelized model over a fixed dictionary of anchor points.

    The paper's kernelized model ``v_t = Σ_{k<t} K(x_t, x_k) θ*_k`` has a weight
    dimension that grows with the round index, which is incompatible with a
    fixed-dimension ellipsoid.  We use the standard practical variant: a fixed
    dictionary of ``m`` anchor points ``a_1..a_m`` and the feature map
    ``φ(x) = (K(x, a_1), ..., K(x, a_m))`` (documented substitution; see
    DESIGN.md §4).

    Parameters
    ----------
    theta:
        Weight vector over the anchors, length ``m``.
    anchors:
        Matrix of anchor points, shape ``(m, d)`` where ``d`` is the raw
        feature dimension.
    bandwidth:
        Bandwidth of the radial basis function kernel
        ``K(x, a) = exp(-||x - a||² / (2 · bandwidth²))``.
    """

    def __init__(self, theta, anchors, bandwidth: float = 1.0) -> None:
        anchors = np.asarray(anchors, dtype=float)
        if anchors.ndim != 2:
            raise ModelSpecificationError("anchors must be a 2-D array, got shape %s" % (anchors.shape,))
        theta = ensure_vector(theta, dimension=anchors.shape[0], name="theta")
        if bandwidth <= 0:
            raise ModelSpecificationError("bandwidth must be positive, got %g" % bandwidth)
        self.anchors = anchors
        self.bandwidth = float(bandwidth)
        super().__init__(
            theta,
            link=_identity,
            link_inverse=_identity,
            feature_map=self._kernel_features,
            name="kernelized",
        )

    def _kernel_features(self, features: np.ndarray) -> np.ndarray:
        features = np.asarray(features, dtype=float)
        if features.ndim != 1 or features.shape[0] != self.anchors.shape[1]:
            raise ModelSpecificationError(
                "raw features must have dimension %d, got shape %s"
                % (self.anchors.shape[1], features.shape)
            )
        squared_distances = np.sum((self.anchors - features) ** 2, axis=1)
        return np.exp(-squared_distances / (2.0 * self.bandwidth**2))

    def feature_map_batch(self, features: np.ndarray) -> np.ndarray:
        """Vectorised RBF features for a whole batch.

        Element-wise ufunc arithmetic only (broadcast subtract, square,
        last-axis pairwise sum, exp) — the same reduction order as the per-row
        map, so the result is bit-identical to row-by-row application.
        """
        features = np.asarray(features, dtype=float)
        if features.ndim != 2 or (features.shape[0] > 0 and features.shape[1] != self.anchors.shape[1]):
            raise ModelSpecificationError(
                "raw feature batch must have shape (rounds, %d), got %s"
                % (self.anchors.shape[1], features.shape)
            )
        if features.shape[0] == 0:
            return np.empty((0, self.anchors.shape[0]))
        squared_distances = np.sum(
            (features[:, None, :] - self.anchors[None, :, :]) ** 2, axis=2
        )
        return np.exp(-squared_distances / (2.0 * self.bandwidth**2))


def _safe_log(value: float) -> float:
    if value <= 0:
        raise ValueError("log-link models require strictly positive values, got %g" % value)
    return math.log(value)


def _elementwise_log(features: np.ndarray) -> np.ndarray:
    if np.any(features <= 0):
        raise ValueError("the log-log model requires strictly positive features")
    return np.log(features)
