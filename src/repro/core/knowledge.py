"""Knowledge-set representations of the broker's belief about the weight vector.

The broker never observes the market value directly; each accept/reject
feedback only yields a linear inequality on the unknown weight vector ``θ*``.
Three representations of the resulting knowledge set are provided:

* :class:`IntervalKnowledge` — the one-dimensional case, where the knowledge
  set is simply an interval (Section II-C of the paper),
* :class:`EllipsoidKnowledge` — the paper's main representation: the raw
  polytope is replaced by its Löwner–John ellipsoid so every round only costs
  a few matrix–vector products,
* :class:`PolytopeKnowledge` — the exact polytope of all accumulated
  inequalities, with support values computed by linear programming.  It is the
  slow-but-exact reference used for validation and the latency-ablation bench.
"""

from __future__ import annotations

import abc
from typing import List, Optional, Tuple

import numpy as np

from repro.core.cuts import CutKind, CutResult, loewner_john_cut
from repro.core.ellipsoid import Ellipsoid
from repro.exceptions import DimensionMismatchError
from repro.utils.validation import ensure_finite_scalar, ensure_vector


class KnowledgeSet(abc.ABC):
    """Interface shared by all knowledge-set representations."""

    @property
    @abc.abstractmethod
    def dimension(self) -> int:
        """Dimension of the weight vector the set describes."""

    @abc.abstractmethod
    def value_bounds(self, direction) -> Tuple[float, float]:
        """Lower and upper bounds on ``x^T θ`` over the knowledge set."""

    @abc.abstractmethod
    def cut(self, direction, offset: float, keep: str) -> bool:
        """Intersect with ``{θ : x^T θ <= offset}`` (``keep='leq'``) or ``>=``.

        Returns ``True`` when the representation actually changed.
        """

    @abc.abstractmethod
    def contains(self, theta) -> bool:
        """Whether ``theta`` is consistent with the knowledge set."""

    @abc.abstractmethod
    def state_arrays(self) -> Tuple[np.ndarray, ...]:
        """Arrays making up the state (for memory accounting)."""

    @abc.abstractmethod
    def state_dict(self) -> dict:
        """Complete snapshot of the mutable state (see ``repro.engine.checkpoint``).

        The snapshot must allow :meth:`load_state` to restore a same-shaped
        knowledge set bit-identically: every subsequent ``value_bounds`` /
        ``cut`` call must produce exactly the floats an uninterrupted instance
        would have produced.
        """

    @abc.abstractmethod
    def load_state(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`state_dict` (same kind/shape)."""

    def _require_kind(self, state: dict, kind: str) -> None:
        found = state.get("kind")
        if found != kind:
            raise ValueError(
                "cannot load %r knowledge state into %s (expected kind %r)"
                % (found, type(self).__name__, kind)
            )

    def width_along(self, direction) -> float:
        """Width of the knowledge set along ``direction`` (``p̄ - p̲``)."""
        lower, upper = self.value_bounds(direction)
        return upper - lower


class IntervalKnowledge(KnowledgeSet):
    """One-dimensional knowledge set: an interval for the scalar weight ``θ``.

    The paper's one-dimensional warm-up (Section II-C, Theorem 3) keeps the
    feasible values of ``θ*`` as an interval ``[lo, hi]`` and bisects it with
    exploratory prices.
    """

    def __init__(self, lower: float, upper: float) -> None:
        lower = ensure_finite_scalar(lower, name="lower")
        upper = ensure_finite_scalar(upper, name="upper")
        if upper < lower:
            raise ValueError("upper (%g) must be >= lower (%g)" % (upper, lower))
        self.lower = lower
        self.upper = upper

    @property
    def dimension(self) -> int:
        return 1

    @property
    def width(self) -> float:
        """Width of the parameter interval itself."""
        return self.upper - self.lower

    def value_bounds(self, direction) -> Tuple[float, float]:
        scalar = _as_scalar_direction(direction)
        lo = scalar * self.lower
        hi = scalar * self.upper
        return (min(lo, hi), max(lo, hi))

    def cut(self, direction, offset: float, keep: str) -> bool:
        scalar = _as_scalar_direction(direction)
        offset = ensure_finite_scalar(offset, name="offset")
        if scalar == 0.0:
            return False
        bound = offset / scalar
        # keep x*θ <= offset  <=>  θ <= bound (x > 0) or θ >= bound (x < 0).
        keep_upper = (keep == "leq") == (scalar > 0.0)
        if keep not in ("leq", "geq"):
            raise ValueError("keep must be 'leq' or 'geq', got %r" % keep)
        changed = False
        if keep_upper:
            if bound < self.upper:
                self.upper = max(bound, self.lower)
                changed = True
        else:
            if bound > self.lower:
                self.lower = min(bound, self.upper)
                changed = True
        return changed

    def contains(self, theta) -> bool:
        theta = float(np.asarray(theta).reshape(()))
        return self.lower - 1e-12 <= theta <= self.upper + 1e-12

    def state_arrays(self) -> Tuple[np.ndarray, ...]:
        return (np.array([self.lower, self.upper]),)

    def state_dict(self) -> dict:
        return {"kind": "interval", "lower": float(self.lower), "upper": float(self.upper)}

    def load_state(self, state: dict) -> None:
        self._require_kind(state, "interval")
        lower = float(state["lower"])
        upper = float(state["upper"])
        if upper < lower:
            raise ValueError("interval state has upper (%g) < lower (%g)" % (upper, lower))
        self.lower = lower
        self.upper = upper

    def __repr__(self) -> str:  # pragma: no cover
        return "IntervalKnowledge([%g, %g])" % (self.lower, self.upper)


class EllipsoidKnowledge(KnowledgeSet):
    """Ellipsoid-shaped knowledge set — the paper's main representation.

    Parameters
    ----------
    ellipsoid:
        The initial ellipsoid ``E_1`` (typically a ball of radius ``R``).
    """

    def __init__(self, ellipsoid: Ellipsoid) -> None:
        if ellipsoid.dimension < 2:
            raise DimensionMismatchError(
                "EllipsoidKnowledge requires dimension >= 2; use IntervalKnowledge for n = 1"
            )
        self.ellipsoid = ellipsoid
        self.cut_count = 0
        self.last_cut: Optional[CutResult] = None

    @classmethod
    def from_radius(cls, dimension: int, radius: float) -> "EllipsoidKnowledge":
        """Initial knowledge set: a ball of the given radius centered at the origin."""
        return cls(Ellipsoid.ball(dimension, radius))

    @property
    def dimension(self) -> int:
        return self.ellipsoid.dimension

    def value_bounds(self, direction) -> Tuple[float, float]:
        return self.ellipsoid.support_interval(direction)

    def cut(self, direction, offset: float, keep: str, on_infeasible: str = "skip") -> bool:
        result = loewner_john_cut(self.ellipsoid, direction, offset, keep, on_infeasible=on_infeasible)
        self.last_cut = result
        if result.updated:
            self.ellipsoid = result.ellipsoid
            self.cut_count += 1
        return result.updated

    def contains(self, theta) -> bool:
        return self.ellipsoid.contains(theta)

    def state_arrays(self) -> Tuple[np.ndarray, ...]:
        return tuple(self.ellipsoid.state_arrays())

    def state_dict(self) -> dict:
        # ``last_cut`` is diagnostic-only (never read by propose/update) and
        # is deliberately not part of the resumable state.
        return {
            "kind": "ellipsoid",
            "center": self.ellipsoid.center.copy(),
            "shape": self.ellipsoid.shape.copy(),
            "cut_count": int(self.cut_count),
        }

    def load_state(self, state: dict) -> None:
        self._require_kind(state, "ellipsoid")
        center = np.asarray(state["center"], dtype=float)
        shape = np.asarray(state["shape"], dtype=float)
        if center.shape[0] != self.dimension:
            raise DimensionMismatchError(
                "ellipsoid state has dimension %d, expected %d"
                % (center.shape[0], self.dimension)
            )
        # The stored shape matrix is already exactly symmetric, so the
        # constructor's re-symmetrisation 0.5 * (S + S^T) is a bit-exact no-op
        # and the restored ellipsoid reproduces the snapshot verbatim.
        self.ellipsoid = Ellipsoid(center.copy(), shape.copy(), validate=False)
        self.cut_count = int(state["cut_count"])
        self.last_cut = None

    def volume(self) -> float:
        """Volume of the current ellipsoid."""
        return self.ellipsoid.volume()

    def __repr__(self) -> str:  # pragma: no cover
        return "EllipsoidKnowledge(dimension=%d, cuts=%d)" % (self.dimension, self.cut_count)


class PolytopeKnowledge(KnowledgeSet):
    """Exact polytope knowledge set, evaluated with linear programming.

    The raw knowledge set of the paper is a polytope: the initial box plus one
    linear inequality per informative feedback.  Computing the support values
    needs two LPs per round, which the paper argues is too slow for online use;
    this class exists as the exact reference for correctness tests and for the
    latency comparison in the overhead bench.
    """

    def __init__(self, lower, upper, max_constraints: int = 10_000) -> None:
        self.lower = ensure_vector(lower, name="lower")
        self.upper = ensure_vector(upper, dimension=self.lower.shape[0], name="upper")
        if np.any(self.upper < self.lower):
            raise ValueError("upper bounds must not be below lower bounds")
        if max_constraints <= 0:
            raise ValueError("max_constraints must be positive")
        self.max_constraints = max_constraints
        self._constraint_directions: List[np.ndarray] = []
        self._constraint_offsets: List[float] = []

    @classmethod
    def from_radius(
        cls, dimension: int, radius: float, max_constraints: int = 10_000
    ) -> "PolytopeKnowledge":
        """Box ``[-radius, radius]^n`` — encloses the ball used by the ellipsoid pricer."""
        bound = radius * np.ones(dimension)
        return cls(-bound, bound, max_constraints=max_constraints)

    @property
    def dimension(self) -> int:
        return self.lower.shape[0]

    @property
    def constraint_count(self) -> int:
        """Number of accumulated halfspace constraints (excluding box bounds)."""
        return len(self._constraint_offsets)

    def value_bounds(self, direction) -> Tuple[float, float]:
        direction = ensure_vector(direction, dimension=self.dimension, name="direction")
        lower = self._solve(direction, maximize=False)
        upper = self._solve(direction, maximize=True)
        return lower, upper

    def _solve(self, direction: np.ndarray, maximize: bool) -> float:
        from scipy.optimize import linprog

        sign = -1.0 if maximize else 1.0
        a_ub = np.array(self._constraint_directions) if self._constraint_directions else None
        b_ub = np.array(self._constraint_offsets) if self._constraint_offsets else None
        bounds = list(zip(self.lower.tolist(), self.upper.tolist()))
        result = linprog(
            sign * direction,
            A_ub=a_ub,
            b_ub=b_ub,
            bounds=bounds,
            method="highs",
        )
        if not result.success:
            raise RuntimeError("LP for polytope support value failed: %s" % result.message)
        return float(sign * result.fun)

    def cut(self, direction, offset: float, keep: str) -> bool:
        direction = ensure_vector(direction, dimension=self.dimension, name="direction")
        offset = ensure_finite_scalar(offset, name="offset")
        if keep == "leq":
            row, rhs = direction, offset
        elif keep == "geq":
            row, rhs = -direction, -offset
        else:
            raise ValueError("keep must be 'leq' or 'geq', got %r" % keep)
        if self.constraint_count >= self.max_constraints:
            raise RuntimeError(
                "polytope knowledge set exceeded %d constraints" % self.max_constraints
            )
        self._constraint_directions.append(np.asarray(row, dtype=float))
        self._constraint_offsets.append(float(rhs))
        return True

    def contains(self, theta) -> bool:
        theta = ensure_vector(theta, dimension=self.dimension, name="theta")
        if np.any(theta < self.lower - 1e-9) or np.any(theta > self.upper + 1e-9):
            return False
        for row, rhs in zip(self._constraint_directions, self._constraint_offsets):
            if float(row @ theta) > rhs + 1e-9:
                return False
        return True

    def state_arrays(self) -> Tuple[np.ndarray, ...]:
        arrays: List[np.ndarray] = [self.lower, self.upper]
        if self._constraint_directions:
            arrays.append(np.array(self._constraint_directions))
            arrays.append(np.array(self._constraint_offsets))
        return tuple(arrays)

    def state_dict(self) -> dict:
        directions = (
            np.array(self._constraint_directions, dtype=float)
            if self._constraint_directions
            else np.empty((0, self.dimension))
        )
        return {
            "kind": "polytope",
            "lower": self.lower.copy(),
            "upper": self.upper.copy(),
            "constraint_directions": directions,
            "constraint_offsets": np.array(self._constraint_offsets, dtype=float),
        }

    def load_state(self, state: dict) -> None:
        self._require_kind(state, "polytope")
        lower = ensure_vector(state["lower"], dimension=self.dimension, name="lower")
        upper = ensure_vector(state["upper"], dimension=self.dimension, name="upper")
        directions = np.asarray(state["constraint_directions"], dtype=float)
        offsets = np.asarray(state["constraint_offsets"], dtype=float)
        if directions.ndim != 2 or directions.shape[1] != self.dimension:
            raise DimensionMismatchError(
                "polytope state constraints have shape %s, expected (k, %d)"
                % (directions.shape, self.dimension)
            )
        if offsets.shape != (directions.shape[0],):
            raise ValueError("constraint offsets do not match the direction rows")
        self.lower = lower.copy()
        self.upper = upper.copy()
        self._constraint_directions = [row.copy() for row in directions]
        self._constraint_offsets = [float(value) for value in offsets]

    def __repr__(self) -> str:  # pragma: no cover
        return "PolytopeKnowledge(dimension=%d, constraints=%d)" % (
            self.dimension,
            self.constraint_count,
        )


def _as_scalar_direction(direction) -> float:
    """Interpret a one-dimensional direction (scalar or length-1 array) as a float."""
    arr = np.asarray(direction, dtype=float)
    if arr.ndim == 0:
        return float(arr)
    if arr.ndim == 1 and arr.shape[0] == 1:
        return float(arr[0])
    raise DimensionMismatchError(
        "one-dimensional knowledge sets accept scalar directions, got shape %s" % (arr.shape,)
    )
