"""Sub-Gaussian uncertainty in market values and the buffer ``δ``.

The paper models the market value of a query as ``v_t = f(x_t) + δ_t`` where
``δ_t`` is a σ-sub-Gaussian random variable: there is a constant ``C`` with
``Pr(|δ_t| > z) <= C exp(-z² / (2σ²))`` for all ``z > 0`` (Equation (4)).
Setting ``δ = sqrt(2 log C) · σ · log T`` yields ``Pr(|δ_t| <= δ) >= 1 - 1/T``
for all rounds simultaneously (Equation (6)), so the pricing mechanism can use
``δ`` as a buffer around posted prices when refining its knowledge set.
"""

from __future__ import annotations

import abc
import math
from typing import Optional

import numpy as np

from repro.utils.rng import RngLike, as_rng
from repro.utils.validation import ensure_positive


def uncertainty_buffer(sigma: float, total_rounds: int, constant: float = 2.0) -> float:
    """The buffer ``δ = sqrt(2 log C) · σ · log T`` from Algorithm 2's input.

    Parameters
    ----------
    sigma:
        Sub-Gaussian scale of the per-round uncertainty.
    total_rounds:
        The horizon ``T``.
    constant:
        The sub-Gaussian constant ``C`` (``2`` for the normal distribution).
    """
    sigma = ensure_positive(sigma, name="sigma", strict=False)
    if total_rounds < 1:
        raise ValueError("total_rounds must be at least 1, got %d" % total_rounds)
    constant = ensure_positive(constant, name="constant")
    if constant <= 1.0:
        # log C <= 0 would yield a non-real buffer; the paper uses C >= 2.
        raise ValueError("the sub-Gaussian constant must exceed 1, got %g" % constant)
    if total_rounds == 1:
        return 0.0
    return math.sqrt(2.0 * math.log(constant)) * sigma * math.log(total_rounds)


def sigma_for_buffer(delta: float, total_rounds: int, constant: float = 2.0) -> float:
    """Invert :func:`uncertainty_buffer`: the σ that yields a given buffer ``δ``.

    The paper's evaluation fixes ``δ = 0.01`` and draws the per-round noise
    from a normal distribution with ``σ = δ / (sqrt(2 log 2) · log T)``; this
    helper reproduces that choice.
    """
    delta = ensure_positive(delta, name="delta", strict=False)
    if total_rounds < 2:
        return 0.0
    constant = ensure_positive(constant, name="constant")
    if constant <= 1.0:
        raise ValueError("the sub-Gaussian constant must exceed 1, got %g" % constant)
    return delta / (math.sqrt(2.0 * math.log(constant)) * math.log(total_rounds))


class SubGaussianNoise(abc.ABC):
    """A σ-sub-Gaussian zero-mean noise distribution."""

    def __init__(self, sigma: float, constant: float = 2.0) -> None:
        self.sigma = ensure_positive(sigma, name="sigma", strict=False)
        self.constant = ensure_positive(constant, name="constant")

    @abc.abstractmethod
    def sample(self, rng: RngLike = None, size: Optional[int] = None):
        """Draw one sample (``size=None``) or an array of samples."""

    def buffer(self, total_rounds: int) -> float:
        """The buffer δ appropriate for this noise over ``total_rounds`` rounds."""
        if self.sigma == 0.0:
            return 0.0
        return uncertainty_buffer(self.sigma, total_rounds, self.constant)

    def __repr__(self) -> str:  # pragma: no cover
        return "%s(sigma=%g)" % (type(self).__name__, self.sigma)


class NoNoise(SubGaussianNoise):
    """The deterministic setting: no uncertainty in market values."""

    def __init__(self) -> None:
        super().__init__(sigma=0.0)

    def sample(self, rng: RngLike = None, size: Optional[int] = None):
        if size is None:
            return 0.0
        return np.zeros(size)


class GaussianNoise(SubGaussianNoise):
    """Normal noise with standard deviation σ (sub-Gaussian with ``C = 2``)."""

    def sample(self, rng: RngLike = None, size: Optional[int] = None):
        rng = as_rng(rng)
        return rng.normal(0.0, self.sigma, size=size)


class UniformNoise(SubGaussianNoise):
    """Uniform noise on ``[-half_width, half_width]``.

    A bounded random variable on ``[-b, b]`` is sub-Gaussian with σ = b.
    """

    def __init__(self, half_width: float) -> None:
        half_width = ensure_positive(half_width, name="half_width", strict=False)
        super().__init__(sigma=half_width)
        self.half_width = half_width

    def sample(self, rng: RngLike = None, size: Optional[int] = None):
        rng = as_rng(rng)
        return rng.uniform(-self.half_width, self.half_width, size=size)


class RademacherNoise(SubGaussianNoise):
    """Rademacher noise: ±scale with equal probability (sub-Gaussian, σ = scale)."""

    def __init__(self, scale: float) -> None:
        scale = ensure_positive(scale, name="scale", strict=False)
        super().__init__(sigma=scale)
        self.scale = scale

    def sample(self, rng: RngLike = None, size: Optional[int] = None):
        rng = as_rng(rng)
        signs = rng.integers(0, 2, size=size if size is not None else 1) * 2 - 1
        values = self.scale * signs.astype(float)
        if size is None:
            return float(values[0])
        return values


class BoundedNoise(SubGaussianNoise):
    """Truncated normal noise, hard-clipped to ``[-bound, bound]``.

    Useful for stress tests: the realized noise never exceeds the buffer when
    ``bound <= δ``, so the knowledge set provably never loses ``θ*``.
    """

    def __init__(self, sigma: float, bound: float) -> None:
        super().__init__(sigma=sigma)
        self.bound = ensure_positive(bound, name="bound", strict=False)

    def sample(self, rng: RngLike = None, size: Optional[int] = None):
        rng = as_rng(rng)
        raw = rng.normal(0.0, self.sigma, size=size)
        return np.clip(raw, -self.bound, self.bound) if size is not None else float(
            np.clip(raw, -self.bound, self.bound)
        )
