"""Online market simulation (public API over the columnar engine).

The simulator plays the repeated game of Section II-B between a posted price
mechanism (the broker) and a stream of query arrivals (the consumers chosen by
the adversary):

1. a query arrives with a raw feature vector and a reserve price,
2. the market value model produces its link-space value ``φ(x)^T θ*``; a
   sub-Gaussian noise term may be added in link space,
3. the pricer proposes a link-space price (or skips), which is translated to a
   real price through the model's link function ``g``,
4. the consumer accepts iff the real posted price does not exceed the real
   market value,
5. the pricer receives the accept/reject feedback and the regret of
   Equation (1) is recorded.

Since the columnar-engine refactor the per-round work is executed by
:mod:`repro.engine`: arrivals are materialised once as struct-of-arrays
columns, pricers run through batched fast paths where available, and the
transcript is stored as preallocated NumPy columns.  :class:`QueryArrival` and
:class:`RoundOutcome` remain the stable row-level API (re-exported here), and
:class:`SimulationResult` exposes the same ``outcomes`` / ``accumulator`` /
curve interface as before.  The original sequential loop is preserved in
:mod:`repro.engine.reference` and pinned element-wise-identical by the
equivalence tests.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.core.base import PostedPriceMechanism
from repro.core.models import MarketValueModel
from repro.core.noise import NoNoise, SubGaussianNoise
from repro.engine.arrivals import ArrivalBatch, as_batch
from repro.engine.records import QueryArrival, RoundOutcome
from repro.engine.reference import simulate_reference
from repro.engine.results import SimulationResult
from repro.engine.runner import prepare, simulate
from repro.utils.rng import RngLike, as_rng

__all__ = [
    "ArrivalBatch",
    "MarketSimulator",
    "QueryArrival",
    "RoundOutcome",
    "SimulationResult",
    "compare_pricers",
]


class MarketSimulator:
    """Drives one posted price mechanism through a sequence of query arrivals.

    Parameters
    ----------
    model:
        The market value model generating ``v_t`` from raw features.
    pricer:
        The posted price mechanism under evaluation.
    noise:
        Per-round link-space uncertainty; used only for arrivals that do not
        carry a pre-drawn noise value.  Defaults to no noise.
    rng:
        Random source for on-the-fly noise sampling.
    track_latency:
        When true, the per-round wall-clock time spent inside the pricer is
        recorded (the Section V-D latency measurement); this forces the
        sequential engine path, since batched strategies have no per-round
        boundary to time.
    """

    def __init__(
        self,
        model: MarketValueModel,
        pricer: PostedPriceMechanism,
        noise: Optional[SubGaussianNoise] = None,
        rng: RngLike = None,
        track_latency: bool = False,
    ) -> None:
        self.model = model
        self.pricer = pricer
        self.noise = noise if noise is not None else NoNoise()
        self.rng = as_rng(rng)
        self.track_latency = bool(track_latency)

    def run(self, arrivals: Iterable[QueryArrival]) -> SimulationResult:
        """Simulate the full sequence of arrivals and return the transcript.

        ``arrivals`` may be a sequence of :class:`QueryArrival` objects or an
        :class:`~repro.engine.arrivals.ArrivalBatch`.
        """
        return simulate(
            self.model,
            self.pricer,
            arrivals=as_batch(arrivals),
            noise=self.noise,
            rng=self.rng,
            track_latency=self.track_latency,
        )

    def run_reference(self, arrivals: Iterable[QueryArrival]) -> SimulationResult:
        """Run the legacy sequential loop (validation/debugging only)."""
        batch = as_batch(arrivals)
        return simulate_reference(
            self.model,
            self.pricer,
            batch.to_arrivals(),
            noise=self.noise,
            rng=self.rng,
            track_latency=self.track_latency,
        )


def compare_pricers(
    model: MarketValueModel,
    pricers: Sequence[PostedPriceMechanism],
    arrivals,
    noise: Optional[SubGaussianNoise] = None,
    rng: RngLike = None,
    track_latency: bool = False,
) -> List[SimulationResult]:
    """Run several pricers over the *same* arrival sequence.

    The arrivals are materialised once so every pricer faces exactly the same
    queries, reserve prices, and noise realization — the comparison protocol
    used for the four algorithm versions in Fig. 4 and Fig. 5.

    Arrivals without a pre-drawn noise value have it drawn **once, up front**
    from ``noise``/``rng`` and shared by every pricer.  (Before the columnar
    engine, each pricer's run consumed the mutable ``rng`` independently, so
    pricers silently faced *different* noise realizations despite the
    same-market protocol.)
    """
    materialized = prepare(model, as_batch(arrivals), noise=noise, rng=rng)
    return [
        simulate(
            model,
            pricer,
            materialized=materialized,
            track_latency=track_latency,
        )
        for pricer in pricers
    ]
