"""Online market simulation loop.

The simulator plays the repeated game of Section II-B between a posted price
mechanism (the broker) and a stream of query arrivals (the consumers chosen by
the adversary):

1. a query arrives with a raw feature vector and a reserve price,
2. the market value model produces its link-space value ``φ(x)^T θ*``; a
   sub-Gaussian noise term may be added in link space,
3. the pricer proposes a link-space price (or skips), which is translated to a
   real price through the model's link function ``g``,
4. the consumer accepts iff the real posted price does not exceed the real
   market value,
5. the pricer receives the accept/reject feedback and the regret of
   Equation (1) is recorded.

All per-round information is kept in :class:`RoundOutcome` records so the
experiment harness can regenerate every curve and table of the paper from a
single simulation transcript.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.core.base import PostedPriceMechanism
from repro.core.models import MarketValueModel
from repro.core.noise import NoNoise, SubGaussianNoise
from repro.core.regret import RegretAccumulator
from repro.exceptions import SimulationError
from repro.utils.rng import RngLike, as_rng
from repro.utils.timing import OnlineLatencyTracker


@dataclass(frozen=True)
class QueryArrival:
    """One consumer arrival: a query's raw features, reserve price, and noise.

    Attributes
    ----------
    features:
        Raw feature vector of the query (before the model's feature map).
    reserve_value:
        Reserve price in *real* price space, or ``None`` when the scenario has
        no reserve price (e.g. the impression application).
    noise:
        Optional pre-drawn link-space noise δ_t.  Pre-drawing the noise in the
        arrival sequence lets several algorithm versions be compared on an
        identical realization of the market (as in Fig. 4).
    metadata:
        Free-form extra information (query id, owner ids, ...).
    """

    features: np.ndarray
    reserve_value: Optional[float] = None
    noise: Optional[float] = None
    metadata: dict = field(default_factory=dict)


@dataclass
class RoundOutcome:
    """Everything that happened in one round of data trading."""

    round_index: int
    link_value: float
    market_value: float
    reserve_value: Optional[float]
    posted_price: Optional[float]
    link_price: Optional[float]
    sold: bool
    skipped: bool
    exploratory: bool
    regret: float
    latency_seconds: float = 0.0


@dataclass
class SimulationResult:
    """Transcript of a full simulation run."""

    pricer_name: str
    outcomes: List[RoundOutcome]
    accumulator: RegretAccumulator
    latency: OnlineLatencyTracker

    @property
    def rounds(self) -> int:
        """Number of simulated rounds."""
        return len(self.outcomes)

    @property
    def cumulative_regret(self) -> float:
        """Total regret over the run."""
        return self.accumulator.cumulative_regret

    @property
    def cumulative_revenue(self) -> float:
        """Total broker revenue over the run."""
        return self.accumulator.cumulative_revenue

    @property
    def regret_ratio(self) -> float:
        """Final regret ratio (cumulative regret / cumulative market value)."""
        return self.accumulator.ratio

    def cumulative_regret_curve(self) -> np.ndarray:
        """Cumulative regret after each round (Fig. 4 series)."""
        return self.accumulator.cumulative_regret_curve()

    def regret_ratio_curve(self) -> np.ndarray:
        """Regret ratio after each round (Fig. 5 series)."""
        return self.accumulator.regret_ratio_curve()

    def sale_rate(self) -> float:
        """Fraction of rounds in which a deal occurred."""
        if not self.outcomes:
            return 0.0
        return sum(1 for o in self.outcomes if o.sold) / len(self.outcomes)

    def summary_statistics(self) -> dict:
        """Mean/standard deviation of per-round quantities (Table I columns)."""
        market_values = np.array([o.market_value for o in self.outcomes], dtype=float)
        reserves = np.array(
            [o.reserve_value for o in self.outcomes if o.reserve_value is not None], dtype=float
        )
        posted = np.array(
            [o.posted_price for o in self.outcomes if o.posted_price is not None], dtype=float
        )
        regrets = np.array([o.regret for o in self.outcomes], dtype=float)

        def _mean_std(values: np.ndarray) -> tuple:
            if values.size == 0:
                return (0.0, 0.0)
            return (float(np.mean(values)), float(np.std(values)))

        return {
            "rounds": self.rounds,
            "market_value": _mean_std(market_values),
            "reserve_price": _mean_std(reserves),
            "posted_price": _mean_std(posted),
            "regret": _mean_std(regrets),
            "regret_ratio": self.regret_ratio,
            "cumulative_regret": self.cumulative_regret,
            "cumulative_revenue": self.cumulative_revenue,
            "sale_rate": self.sale_rate(),
        }


class MarketSimulator:
    """Drives one posted price mechanism through a sequence of query arrivals.

    Parameters
    ----------
    model:
        The market value model generating ``v_t`` from raw features.
    pricer:
        The posted price mechanism under evaluation.
    noise:
        Per-round link-space uncertainty; used only for arrivals that do not
        carry a pre-drawn noise value.  Defaults to no noise.
    rng:
        Random source for on-the-fly noise sampling.
    track_latency:
        When true, the per-round wall-clock time spent inside the pricer is
        recorded (the Section V-D latency measurement).
    """

    def __init__(
        self,
        model: MarketValueModel,
        pricer: PostedPriceMechanism,
        noise: Optional[SubGaussianNoise] = None,
        rng: RngLike = None,
        track_latency: bool = False,
    ) -> None:
        self.model = model
        self.pricer = pricer
        self.noise = noise if noise is not None else NoNoise()
        self.rng = as_rng(rng)
        self.track_latency = bool(track_latency)

    def run(self, arrivals: Iterable[QueryArrival]) -> SimulationResult:
        """Simulate the full sequence of arrivals and return the transcript."""
        accumulator = RegretAccumulator()
        latency = OnlineLatencyTracker()
        outcomes: List[RoundOutcome] = []

        for round_index, arrival in enumerate(arrivals):
            outcome = self._play_round(round_index, arrival, accumulator, latency)
            outcomes.append(outcome)

        return SimulationResult(
            pricer_name=getattr(self.pricer, "name", type(self.pricer).__name__),
            outcomes=outcomes,
            accumulator=accumulator,
            latency=latency,
        )

    # ------------------------------------------------------------------ #

    def _play_round(
        self,
        round_index: int,
        arrival: QueryArrival,
        accumulator: RegretAccumulator,
        latency: OnlineLatencyTracker,
    ) -> RoundOutcome:
        mapped_features = self.model.feature_map(arrival.features)
        link_value = float(mapped_features @ self.model.theta)
        noise_value = arrival.noise
        if noise_value is None:
            noise_value = float(self.noise.sample(self.rng))
        market_value = self.model.link(link_value + noise_value)

        reserve_value = arrival.reserve_value
        link_reserve = None
        if reserve_value is not None:
            link_reserve = self.model.link_inverse(reserve_value)

        start = time.perf_counter() if self.track_latency else 0.0
        decision = self.pricer.propose(mapped_features, reserve=link_reserve)
        elapsed_propose = (time.perf_counter() - start) if self.track_latency else 0.0

        if decision.skipped or decision.price is None:
            posted_price = None
            link_price = None
            sold = False
        else:
            link_price = float(decision.price)
            posted_price = self.model.link(link_price)
            sold = posted_price <= market_value

        start = time.perf_counter() if self.track_latency else 0.0
        self.pricer.update(decision, accepted=sold)
        elapsed_update = (time.perf_counter() - start) if self.track_latency else 0.0

        if self.track_latency:
            latency.record(elapsed_propose + elapsed_update)

        regret = accumulator.record(
            market_value=market_value,
            reserve=reserve_value,
            price=posted_price,
            sold=sold,
        )

        if not np.isfinite(regret):
            raise SimulationError(
                "non-finite regret %r in round %d; inconsistent market state" % (regret, round_index)
            )

        return RoundOutcome(
            round_index=round_index,
            link_value=link_value,
            market_value=market_value,
            reserve_value=reserve_value,
            posted_price=posted_price,
            link_price=link_price,
            sold=sold,
            skipped=decision.skipped,
            exploratory=decision.exploratory,
            regret=regret,
            latency_seconds=(elapsed_propose + elapsed_update) if self.track_latency else 0.0,
        )


def compare_pricers(
    model: MarketValueModel,
    pricers: Sequence[PostedPriceMechanism],
    arrivals: Sequence[QueryArrival],
    noise: Optional[SubGaussianNoise] = None,
    rng: RngLike = None,
    track_latency: bool = False,
) -> List[SimulationResult]:
    """Run several pricers over the *same* arrival sequence.

    The arrivals are materialised once so every pricer faces exactly the same
    queries, reserve prices, and noise realization — the comparison protocol
    used for the four algorithm versions in Fig. 4 and Fig. 5.
    """
    materialised = list(arrivals)
    results = []
    for pricer in pricers:
        simulator = MarketSimulator(
            model=model, pricer=pricer, noise=noise, rng=rng, track_latency=track_latency
        )
        results.append(simulator.run(materialised))
    return results
